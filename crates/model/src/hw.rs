//! Hardware configuration: the description every cost component prices.
//!
//! `HwConfig` (and the `SpatialMapping` dataflows it fuses) used to live in
//! `lego-sim`; it moved down into the cost-model layer so that one
//! [`CostContext`](crate::CostContext) can bundle the configuration with
//! the technology, SRAM, and NoC models it is priced under. `lego-sim`
//! re-exports both types, so simulator-facing code keeps its paths.

use lego_noc::{Butterfly, Mesh};
use std::fmt;

/// A spatial dataflow the hardware can be configured into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpatialMapping {
    /// GEMM output tile (M on rows, N on columns); convs run as im2col.
    GemmMN,
    /// GEMM K on rows, N on columns (reduction-parallel).
    GemmKN,
    /// Conv input channels × output channels (NVDLA-style).
    ConvIcOc,
    /// Conv output plane (ShiDianNao-style) — the depthwise rescuer.
    ConvOhOw,
    /// Conv kernel rows × output rows (Eyeriss-style).
    ConvKhOh,
}

impl SpatialMapping {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SpatialMapping::GemmMN => "MN",
            SpatialMapping::GemmKN => "KN",
            SpatialMapping::ConvIcOc => "ICOC",
            SpatialMapping::ConvOhOw => "OHOW",
            SpatialMapping::ConvKhOh => "KHOH",
        }
    }
}

/// Why a [`HwConfig`] is not a valid design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwConfigError {
    /// The fused-dataflow set is empty: nothing can be mapped.
    NoDataflows,
    /// The FU array has a non-positive extent.
    EmptyArray,
    /// A cluster-grid extent is zero.
    EmptyClusterGrid,
    /// The on-chip buffer has zero capacity.
    NoBuffer,
    /// DRAM bandwidth is non-positive.
    NoBandwidth,
}

impl fmt::Display for HwConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwConfigError::NoDataflows => write!(f, "hardware fuses no spatial dataflows"),
            HwConfigError::EmptyArray => write!(f, "FU array extent must be positive"),
            HwConfigError::EmptyClusterGrid => write!(f, "cluster grid extent must be positive"),
            HwConfigError::NoBuffer => write!(f, "on-chip buffer capacity must be positive"),
            HwConfigError::NoBandwidth => write!(f, "DRAM bandwidth must be positive"),
        }
    }
}

impl std::error::Error for HwConfigError {}

/// Hardware configuration under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// FU array extent per cluster (P0 × P1).
    pub array: (i64, i64),
    /// L2 mesh of clusters (1×1 = single array).
    pub clusters: (u32, u32),
    /// On-chip buffer capacity in KB (shared pool, per cluster).
    pub buffer_kb: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Number of post-processing units (LUT + reduction each).
    pub num_ppus: i64,
    /// Spatial dataflows this design supports (fused configurations).
    pub dataflows: Vec<SpatialMapping>,
    /// Static (leakage + clock) power of the chip in mW.
    pub static_mw: f64,
    /// Peak dynamic power of the FU array + NoC at full activity, in mW.
    pub dynamic_mw: f64,
}

impl HwConfig {
    /// The paper's Gemmini-comparable LEGO configuration: 256 MACs,
    /// 256 KB buffer, 16 GB/s DRAM (§VI-A), fused MN/ICOC/OHOW dataflows.
    pub fn lego_256() -> Self {
        HwConfig {
            array: (16, 16),
            clusters: (1, 1),
            buffer_kb: 256,
            dram_gbps: 16.0,
            num_ppus: 16,
            dataflows: vec![
                SpatialMapping::GemmMN,
                SpatialMapping::ConvIcOc,
                SpatialMapping::ConvOhOw,
            ],
            static_mw: 45.0,
            dynamic_mw: 240.0,
        }
    }

    /// The Table II generative-AI configuration: 1024 FUs, 576 KB,
    /// 32 PPUs, 32 GB/s, single ICOC-style dataflow.
    pub fn lego_icoc_1k() -> Self {
        HwConfig {
            array: (32, 32),
            clusters: (1, 1),
            buffer_kb: 576,
            dram_gbps: 32.0,
            num_ppus: 32,
            dataflows: vec![SpatialMapping::GemmMN, SpatialMapping::ConvIcOc],
            static_mw: 95.0,
            dynamic_mw: 506.0,
        }
    }

    /// Checks that the configuration describes a buildable, mappable
    /// design. Call sites that construct configurations from search axes
    /// (rather than the fixed presets) should validate before simulating.
    ///
    /// # Errors
    ///
    /// Returns the first [`HwConfigError`] found.
    pub fn validate(&self) -> Result<(), HwConfigError> {
        if self.array.0 <= 0 || self.array.1 <= 0 {
            return Err(HwConfigError::EmptyArray);
        }
        if self.clusters.0 == 0 || self.clusters.1 == 0 {
            return Err(HwConfigError::EmptyClusterGrid);
        }
        if self.buffer_kb == 0 {
            return Err(HwConfigError::NoBuffer);
        }
        if self.dram_gbps <= 0.0 {
            return Err(HwConfigError::NoBandwidth);
        }
        if self.dataflows.is_empty() {
            return Err(HwConfigError::NoDataflows);
        }
        Ok(())
    }

    /// Number of L2 clusters.
    pub fn num_clusters(&self) -> i64 {
        i64::from(self.clusters.0) * i64::from(self.clusters.1)
    }

    /// Total number of functional units.
    pub fn num_fus(&self) -> i64 {
        self.array.0 * self.array.1 * self.num_clusters()
    }

    /// The L2 mesh model (one router per cluster).
    pub fn l2_mesh(&self) -> Mesh {
        Mesh::new(self.clusters.0.max(1), self.clusters.1.max(1), 16, 1)
    }

    /// The L1 distribution butterfly spanning one cluster's FU array.
    pub fn l1_butterfly(&self) -> Butterfly {
        Butterfly::with_endpoints((self.array.0.max(1) * self.array.1.max(1)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configs_validate() {
        assert_eq!(HwConfig::lego_256().validate(), Ok(()));
        assert_eq!(HwConfig::lego_icoc_1k().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_empty_dataflow_sets() {
        let mut hw = HwConfig::lego_256();
        hw.dataflows.clear();
        assert_eq!(hw.validate(), Err(HwConfigError::NoDataflows));
    }

    #[test]
    fn validation_catches_degenerate_resources() {
        let mut hw = HwConfig::lego_256();
        hw.array = (0, 16);
        assert_eq!(hw.validate(), Err(HwConfigError::EmptyArray));
        let mut hw = HwConfig::lego_256();
        hw.clusters = (2, 0);
        assert_eq!(hw.validate(), Err(HwConfigError::EmptyClusterGrid));
        let mut hw = HwConfig::lego_256();
        hw.buffer_kb = 0;
        assert_eq!(hw.validate(), Err(HwConfigError::NoBuffer));
        let mut hw = HwConfig::lego_256();
        hw.dram_gbps = 0.0;
        assert_eq!(hw.validate(), Err(HwConfigError::NoBandwidth));
    }

    #[test]
    fn l1_butterfly_spans_the_array() {
        let hw = HwConfig::lego_256();
        assert_eq!(hw.l1_butterfly().stages(), 8); // log2(256)
    }
}
