//! The composable cost-model layer: one [`CostContext`] per hardware
//! configuration, priced by component traits.
//!
//! Before this layer existed, every evaluation site re-derived its costs
//! inline — `SramModel::default()` here, a `mean_hops()` call there — and
//! the L2 cluster mesh divided compute cycles for free, so nothing could
//! honestly search the cluster axis. Following the layered analytic cost
//! stacks of Sparseloop/Timeloop, the components are now explicit:
//!
//! * [`ComputeCost`] — FU-array cycles and datapath energy;
//! * [`MemoryCost`] — DRAM stream cycles, SRAM/DRAM access energy, leakage;
//! * [`NocCost`] — L1 butterfly fill and L2 wormhole-mesh transfer latency
//!   ([`lego_noc::Transfer`]-returning, so latency and hop counts travel
//!   together) plus transport energy.
//!
//! [`CostContext`] bundles `{ hw, tech, sram, noc }`, implements all three
//! traits, and is built **once** per configuration; `lego_sim` consumes it
//! for per-layer simulation, `lego_mapper` and `lego-explorer` thread it
//! through whole-model mapping and design-space search. New cost
//! components (e.g. a different NoC topology or a DRAM controller model)
//! plug in by implementing the trait next to the hardware they model.

use crate::cost::{l2_router_area_um2, macro_area, MacroArea};
use crate::hw::HwConfig;
use crate::{SramModel, TechModel};
use lego_noc::{Butterfly, Mesh, Transfer};
use lego_sparse::{LayerSparsity, SparseEffects, SparseHw};

/// Prices the FU array: cycle counts and datapath energy.
pub trait ComputeCost {
    /// Cycles to execute `macs` multiply-accumulates at the achieved
    /// spatial `utilization` (fraction of peak lanes busy).
    fn compute_cycles(&self, macs: i64, utilization: f64) -> i64;

    /// Datapath (multiplier + accumulator) energy for `macs` MACs, in pJ.
    fn mac_energy_pj(&self, macs: i64) -> f64;

    /// Clock-tree / operand-network share of the array's dynamic energy
    /// over `time_ns`, scaled by duty cycle and utilization.
    fn array_energy_pj(&self, time_ns: f64, busy: f64, utilization: f64) -> f64;
}

/// Prices the memory system: DRAM stream time, access energy, leakage.
pub trait MemoryCost {
    /// Cycles to stream `bytes` over the DRAM interface (double-buffered,
    /// so callers overlap this against compute).
    fn dram_cycles(&self, bytes: i64) -> i64;

    /// DRAM access energy for `bytes`, in pJ.
    fn dram_energy_pj(&self, bytes: i64) -> f64;

    /// On-chip buffer energy for `accesses` single-element accesses, in pJ.
    fn sram_energy_pj(&self, accesses: i64) -> f64;

    /// Static (leakage + clock) energy over `time_ns`, in pJ.
    fn static_energy_pj(&self, time_ns: f64) -> f64;
}

/// Traffic one layer pushes through the L2 cluster mesh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Traffic {
    /// Bytes scattered/gathered between the memory port and individual
    /// clusters (disjoint per-cluster payloads: inputs and outputs of the
    /// split dimension).
    pub scatter_bytes: i64,
    /// Bytes multicast from the port to every cluster (operands every
    /// cluster needs in full — the weight stream when clusters split M).
    pub broadcast_bytes: i64,
    /// Bytes exchanged between adjacent clusters (conv halo rows), summed
    /// over every cluster boundary; the per-boundary exchanges overlap.
    pub halo_bytes: i64,
}

impl L2Traffic {
    /// Total bytes crossing any mesh link.
    pub fn total_bytes(&self) -> i64 {
        self.scatter_bytes + self.broadcast_bytes + self.halo_bytes
    }
}

/// Prices the on-chip networks: L1 distribution and the L2 cluster mesh.
pub trait NocCost {
    /// Pipeline-fill cycles of the L1 distribution network (butterfly
    /// stages between the buffer and the FU array).
    fn l1_fill_cycles(&self) -> i64;

    /// Full latency of routing `traffic` over the L2 mesh: worst-case X-Y
    /// head latency plus wormhole serialization. Zero for a single cluster.
    fn l2_latency(&self, traffic: &L2Traffic) -> Transfer;

    /// The non-overlappable part of [`NocCost::l2_latency`]: the X-Y head
    /// latency to the farthest cluster. The serialized body streams behind
    /// the head and may overlap with the compute/memory body.
    fn l2_head_cycles(&self) -> i64;

    /// Transport energy of moving `dram_bytes` through the distribution
    /// network(s) plus `halo_bytes` of neighbor exchange, in pJ.
    fn transport_energy_pj(&self, dram_bytes: i64, halo_bytes: i64) -> f64;
}

/// The full cost stack: every component a layer simulation charges.
pub trait CostModel: ComputeCost + MemoryCost + NocCost {}

impl<T: ComputeCost + MemoryCost + NocCost + ?Sized> CostModel for T {}

/// The NoC instances of one configuration: the L1 distribution butterfly
/// inside a cluster and the L2 wormhole mesh across clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocModel {
    /// L2 wormhole mesh (one router per cluster).
    pub mesh: Mesh,
    /// L1 distribution butterfly spanning one cluster's FU array.
    pub butterfly: Butterfly,
}

impl NocModel {
    /// The networks `hw` instantiates.
    pub fn for_hw(hw: &HwConfig) -> Self {
        NocModel {
            mesh: hw.l2_mesh(),
            butterfly: hw.l1_butterfly(),
        }
    }
}

/// Everything needed to price one hardware configuration, built once and
/// threaded through per-layer simulation, whole-model mapping, and
/// design-space search.
#[derive(Debug, Clone, PartialEq)]
pub struct CostContext {
    /// The configuration under evaluation.
    pub hw: HwConfig,
    /// Technology constants.
    pub tech: TechModel,
    /// SRAM macro model.
    pub sram: SramModel,
    /// Instantiated NoC models.
    pub noc: NocModel,
    /// The sparse half of the configuration: which acceleration feature
    /// (gating/skipping) the PE datapath carries, if any. Dense by
    /// default; priced in area whenever present, and in per-layer costs
    /// whenever a layer actually carries zeros.
    pub sparse: SparseHw,
}

impl CostContext {
    /// Builds the context for `hw` under `tech`, with the default SRAM
    /// model, a dense datapath, and the NoCs the configuration implies.
    pub fn new(hw: HwConfig, tech: TechModel) -> Self {
        let noc = NocModel::for_hw(&hw);
        CostContext {
            hw,
            tech,
            sram: SramModel::default(),
            noc,
            sparse: SparseHw::dense(),
        }
    }

    /// Replaces the SRAM model.
    #[must_use]
    pub fn with_sram(mut self, sram: SramModel) -> Self {
        self.sram = sram;
        self
    }

    /// Rebuilds this context in place for a new configuration, re-deriving
    /// only the components whose inputs actually changed.
    ///
    /// The L2 mesh is a function of the cluster grid alone and the L1
    /// butterfly of the array extent alone, so a design-space move that
    /// touches one axis (buffer size, bandwidth, dataflow set, sparse
    /// feature…) re-prices neither network, and an array-only mutation
    /// keeps the mesh. The `hw` assignment reuses the existing heap
    /// allocation of the dataflow list ([`Clone::clone_from`]).
    ///
    /// Equivalent to building `CostContext::new(hw.clone(),
    /// tech).with_sram(sram).with_sparse(sparse)` — the equality is pinned
    /// by unit tests here and by proptests over explorer genomes — but
    /// without the from-scratch derivation, which is what makes session
    /// context recycling safe.
    pub fn update(&mut self, hw: &HwConfig, tech: TechModel, sram: SramModel, sparse: SparseHw) {
        if self.hw.clusters != hw.clusters {
            self.noc.mesh = hw.l2_mesh();
        }
        if self.hw.array != hw.array {
            self.noc.butterfly = hw.l1_butterfly();
        }
        self.hw.clone_from(hw);
        self.tech = tech;
        self.sram = sram;
        self.sparse = sparse;
    }

    /// Replaces the sparse datapath configuration.
    #[must_use]
    pub fn with_sparse(mut self, sparse: SparseHw) -> Self {
        self.sparse = sparse;
        self
    }

    /// The sparse-execution effects of running a layer annotated with
    /// `sparsity` on this configuration, or `None` when the execution is
    /// provably dense (no acceleration feature, or a fully dense layer) —
    /// in which case callers must take their exact dense arithmetic path.
    pub fn sparse_effects(&self, sparsity: &LayerSparsity) -> Option<SparseEffects> {
        self.sparse.effects(sparsity)
    }

    /// Analytic area of the whole configuration: FU arrays, the total
    /// (per-cluster × clusters) buffer pool split into
    /// `banks_per_cluster × clusters` banks, PPUs, and — for multi-cluster
    /// designs — the L2 wormhole routers.
    pub fn area(&self, banks_per_cluster: u64) -> MacroArea {
        let n = self.hw.num_clusters().max(1) as u64;
        let mut area = macro_area(
            self.hw.num_fus(),
            self.hw.buffer_kb * n,
            banks_per_cluster.max(1) * n,
            self.hw.num_ppus,
            &self.tech,
            &self.sram,
        );
        if n > 1 {
            area.noc_um2 += l2_router_area_um2(self.noc.mesh.routers(), &self.tech);
        }
        // Sparse frontend (zero-detect latch or intersection unit) sits on
        // every FU datapath — paid even when the data turns out dense,
        // which is exactly what makes sparse support a real area trade-off.
        if self.sparse.is_enabled() {
            area.array_um2 +=
                self.sparse.accel.frontend_area_um2_per_fu() * self.hw.num_fus() as f64;
        }
        area
    }

    /// Peak power draw (static + full-activity dynamic), in mW — the
    /// quantity design-space power budgets constrain.
    pub fn peak_power_mw(&self) -> f64 {
        self.hw.static_mw + self.hw.dynamic_mw
    }
}

impl ComputeCost for CostContext {
    fn compute_cycles(&self, macs: i64, utilization: f64) -> i64 {
        let peak_per_cycle = (self.hw.array.0 * self.hw.array.1 * self.hw.num_clusters()) as f64;
        (macs as f64 / (peak_per_cycle * utilization.max(1e-4))).ceil() as i64
    }

    fn mac_energy_pj(&self, macs: i64) -> f64 {
        // One int8 MAC: 8×8 multiply plus a 32-bit accumulate.
        macs as f64
            * (64.0 * self.tech.mult_energy_pj_per_bit2 + 32.0 * self.tech.add_energy_pj_per_bit)
    }

    fn array_energy_pj(&self, time_ns: f64, busy: f64, utilization: f64) -> f64 {
        self.hw.dynamic_mw * time_ns * busy * utilization * 0.35
    }
}

impl MemoryCost for CostContext {
    fn dram_cycles(&self, bytes: i64) -> i64 {
        let bytes_per_cycle = self.hw.dram_gbps / self.tech.freq_ghz; // GB/s ÷ Gcycle/s
        (bytes as f64 / bytes_per_cycle).ceil() as i64
    }

    fn dram_energy_pj(&self, bytes: i64) -> f64 {
        bytes as f64 * self.tech.dram_pj_per_byte
    }

    fn sram_energy_pj(&self, accesses: i64) -> f64 {
        self.sram.access_energy_pj(self.hw.buffer_kb * 1024, 1) * accesses as f64
    }

    fn static_energy_pj(&self, time_ns: f64) -> f64 {
        self.hw.static_mw * time_ns // mW × ns = pJ
    }
}

impl NocCost for CostContext {
    fn l1_fill_cycles(&self) -> i64 {
        i64::from(self.noc.butterfly.stages())
    }

    fn l2_latency(&self, traffic: &L2Traffic) -> Transfer {
        if self.hw.num_clusters() <= 1 {
            return Transfer { cycles: 0, hops: 0 };
        }
        // Scatter and multicast traffic share the injection port, so their
        // serialization adds; halo exchange rides neighbor links and
        // overlaps, so the slower of the two streams bounds the transfer.
        let port_bytes = (traffic.scatter_bytes + traffic.broadcast_bytes).max(0) as u64;
        let inject = self.noc.mesh.scatter(port_bytes);
        let halo_cycles = if traffic.halo_bytes > 0 {
            // `halo_bytes` totals every boundary; the exchanges overlap, so
            // latency is one boundary's share streamed over its own link.
            let boundaries = (self.noc.mesh.routers() - 1).max(1);
            self.noc
                .mesh
                .neighbor_exchange((traffic.halo_bytes as u64).div_ceil(boundaries))
                .cycles
        } else {
            0
        };
        Transfer {
            cycles: inject.cycles.max(halo_cycles),
            hops: inject.hops,
        }
    }

    fn l2_head_cycles(&self) -> i64 {
        if self.hw.num_clusters() <= 1 {
            return 0;
        }
        (self.noc.mesh.max_hops() * u64::from(self.noc.mesh.hop_cycles)) as i64
    }

    fn transport_energy_pj(&self, dram_bytes: i64, halo_bytes: i64) -> f64 {
        let per_byte_hop = self.tech.noc_pj_per_byte_hop;
        if self.hw.num_clusters() > 1 {
            dram_bytes as f64 * self.noc.mesh.mean_hops() * per_byte_hop
                + halo_bytes as f64 * per_byte_hop
        } else {
            // Single cluster: only the L1 distribution network toggles.
            dram_bytes as f64 * 0.25 * per_byte_hop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(clusters: (u32, u32)) -> CostContext {
        let mut hw = HwConfig::lego_256();
        hw.clusters = clusters;
        CostContext::new(hw, TechModel::default())
    }

    #[test]
    fn clusters_divide_compute_cycles() {
        let single = ctx((1, 1));
        let quad = ctx((2, 2));
        let macs = 1 << 20;
        assert_eq!(
            single.compute_cycles(macs, 1.0),
            4 * quad.compute_cycles(macs, 1.0)
        );
    }

    #[test]
    fn l2_latency_is_zero_for_one_cluster_and_positive_otherwise() {
        let traffic = L2Traffic {
            scatter_bytes: 4096,
            broadcast_bytes: 1024,
            halo_bytes: 0,
        };
        assert_eq!(ctx((1, 1)).l2_latency(&traffic).cycles, 0);
        assert_eq!(ctx((1, 1)).l2_head_cycles(), 0);
        let quad = ctx((2, 2));
        assert!(quad.l2_latency(&traffic).cycles > 0);
        assert!(quad.l2_head_cycles() > 0);
    }

    #[test]
    fn l2_latency_monotone_in_hop_distance() {
        // Same cluster count, longer mesh diagonal ⇒ no cheaper.
        let traffic = L2Traffic {
            scatter_bytes: 1 << 16,
            broadcast_bytes: 1 << 12,
            halo_bytes: 512,
        };
        let compact = ctx((2, 4)).l2_latency(&traffic);
        let strip = ctx((1, 8)).l2_latency(&traffic);
        assert!(compact.hops < strip.hops);
        assert!(compact.cycles <= strip.cycles);
    }

    #[test]
    fn halo_latency_is_per_boundary_not_total() {
        // 8 clusters in a strip have 7 boundaries; the exchanges overlap,
        // so 7 × 1024 B of total halo streams as one 1024 B exchange.
        let c = ctx((1, 8));
        let traffic = L2Traffic {
            scatter_bytes: 0,
            broadcast_bytes: 0,
            halo_bytes: 7 * 1024,
        };
        let per_boundary = c.noc.mesh.neighbor_exchange(1024).cycles;
        assert_eq!(c.l2_latency(&traffic).cycles, per_boundary);
    }

    #[test]
    fn area_adds_routers_only_for_multi_cluster() {
        let single = ctx((1, 1)).area(32);
        let quad = ctx((2, 2)).area(32);
        // Four clusters: 4× arrays and buffers, plus routers.
        assert!(quad.array_um2 > 3.9 * single.array_um2);
        assert!(quad.noc_um2 > 4.0 * single.noc_um2);
        let routers = l2_router_area_um2(4, &TechModel::default());
        assert!((quad.noc_um2 - 4.0 * single.noc_um2 - routers).abs() < 1e-6);
    }

    #[test]
    fn sparse_frontend_is_area_not_a_dense_cost() {
        use lego_sparse::SparseAccel;
        let dense = ctx((1, 1));
        let mut gate = dense.clone();
        gate.sparse = SparseHw::with_accel(SparseAccel::Gating);
        let mut skip = dense.clone();
        skip.sparse = SparseHw::with_accel(SparseAccel::Skipping);
        // Frontend area stacks: none < gating < skipping.
        let a = |c: &CostContext| c.area(32).total_um2();
        assert!(a(&dense) < a(&gate));
        assert!(a(&gate) < a(&skip));
        // A dense layer yields no effects on any datapath: the exact dense
        // arithmetic path is taken.
        assert!(dense.sparse_effects(&LayerSparsity::dense()).is_none());
        assert!(skip.sparse_effects(&LayerSparsity::dense()).is_none());
        // A sparse layer yields effects only on sparse hardware.
        let sp = LayerSparsity::weights(lego_sparse::DensityModel::two_to_four());
        assert!(dense.sparse_effects(&sp).is_none());
        assert!(skip.sparse_effects(&sp).is_some());
    }

    #[test]
    fn update_equals_fresh_rebuild_on_every_axis() {
        use lego_sparse::SparseAccel;
        let tech = TechModel::default();
        let sram = crate::SramModel::default();
        let base = HwConfig::lego_256();
        // Mutations along each design axis, including ones that change the
        // mesh (clusters), the butterfly (array), and neither (buffer,
        // bandwidth, dataflows, power).
        let mut variants = vec![base.clone(), HwConfig::lego_icoc_1k()];
        for (i, hw) in (0..6).map(|i| (i, base.clone())) {
            let mut hw = hw;
            match i {
                0 => hw.array = (32, 8),
                1 => hw.clusters = (2, 4),
                2 => hw.buffer_kb = 512,
                3 => hw.dram_gbps = 64.0,
                4 => hw.dataflows.truncate(1),
                _ => hw.static_mw = 99.0,
            }
            variants.push(hw);
        }
        let mut ctx = CostContext::new(base, tech);
        for hw in &variants {
            for accel in [SparseAccel::None, SparseAccel::Skipping] {
                let sparse = SparseHw::with_accel(accel);
                ctx.update(hw, tech, sram, sparse);
                assert_eq!(
                    ctx,
                    CostContext::new(hw.clone(), tech)
                        .with_sram(sram)
                        .with_sparse(sparse),
                    "incremental update must equal a fresh rebuild"
                );
            }
        }
    }

    #[test]
    fn context_matches_reference_energy_constants() {
        let c = ctx((1, 1));
        let t = TechModel::default();
        assert!(
            (c.mac_energy_pj(1000)
                - 1000.0 * (64.0 * t.mult_energy_pj_per_bit2 + 32.0 * t.add_energy_pj_per_bit))
                .abs()
                < 1e-9
        );
        assert_eq!(c.dram_cycles(16_000), 1000); // 16 GB/s at 1 GHz
        assert!((c.static_energy_pj(10.0) - 450.0).abs() < 1e-9); // 45 mW × 10 ns
    }
}
