//! Area / power / energy models and the unified cost stack (paper §VI-A).
//!
//! The paper synthesizes generated RTL with Synopsys DC on TSMC 28 nm and
//! models SRAM with CACTI. This crate substitutes analytic per-primitive
//! cost tables calibrated to the paper's reported design points (Figure 12:
//! 256-FU LEGO-MNICOC at 1.76 mm² / 285 mW with buffers at 86 % of area and
//! the FU array at 57 % of power). The paper's area/power *deltas* come from
//! counting structural resources — registers removed by the LP, adders
//! removed by pin reuse, shared control logic — so counting the same
//! primitives with fixed per-primitive costs reproduces the ratios.
//!
//! # The cost stack
//!
//! Beyond the per-primitive tables, this crate owns the **cost-model
//! layer** the rest of the workspace evaluates designs through
//! ([`costmodel`]): a [`CostContext`] bundling `{ hw, tech, sram, noc }`
//! is built once per [`HwConfig`] and priced through three component
//! traits —
//!
//! * [`ComputeCost`] (FU-array cycles, datapath energy),
//! * [`MemoryCost`] (DRAM stream cycles, SRAM/DRAM access energy, leakage),
//! * [`NocCost`] (L1 butterfly fill, L2 wormhole-mesh transfer latency as
//!   [`lego_noc::Transfer`]s, transport energy).
//!
//! `lego-sim` consumes the context for per-layer simulation (multi-cluster
//! designs pay modeled L2-mesh latency, not just energy), `lego-mapper`
//! threads it through whole-model mapping, and `lego-explorer` searches
//! the cluster axis against it under area/power feasibility constraints.

pub mod cost;
pub mod costmodel;
pub mod hw;
pub mod sram;

pub use cost::{dag_cost, l2_router_area_um2, macro_area, DagCost, FpgaCost, MacroArea};
pub use costmodel::{
    ComputeCost, CostContext, CostModel, L2Traffic, MemoryCost, NocCost, NocModel,
};
pub use hw::{HwConfig, HwConfigError, SpatialMapping};
pub use lego_sparse::{
    CompressedFormat, DensityModel, LayerSparsity, SparseAccel, SparseEffects, SparseHw,
};
pub use sram::SramModel;

/// Technology constants (TSMC 28 nm @ 1 GHz unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechModel {
    /// Area of one flip-flop bit (µm²).
    pub ff_area_um2: f64,
    /// Area of one LUT-equivalent / adder bit (µm²).
    pub lut_area_um2: f64,
    /// Area of a multiplier per bit-product (µm², scales with w1·w2).
    pub mult_area_um2_per_bit2: f64,
    /// Area of one mux input bit (µm²).
    pub mux_area_um2_per_bit: f64,
    /// Dynamic energy of one flip-flop toggle (pJ/bit).
    pub ff_energy_pj: f64,
    /// Dynamic energy of one adder bit (pJ).
    pub add_energy_pj_per_bit: f64,
    /// Dynamic energy of a multiplier per bit-product (pJ).
    pub mult_energy_pj_per_bit2: f64,
    /// Leakage + clock-tree power per µm² of logic (µW/µm²).
    pub static_uw_per_um2: f64,
    /// DRAM access energy (pJ/byte, LPDDR4-class).
    pub dram_pj_per_byte: f64,
    /// NoC energy per byte per hop (pJ).
    pub noc_pj_per_byte_hop: f64,
    /// Clock frequency (GHz).
    pub freq_ghz: f64,
}

impl Default for TechModel {
    fn default() -> Self {
        TechModel {
            ff_area_um2: 2.5,
            lut_area_um2: 2.0,
            mult_area_um2_per_bit2: 4.7,
            mux_area_um2_per_bit: 0.9,
            ff_energy_pj: 0.0018,
            add_energy_pj_per_bit: 0.003,
            mult_energy_pj_per_bit2: 0.0011,
            static_uw_per_um2: 0.12,
            dram_pj_per_byte: 20.0,
            noc_pj_per_byte_hop: 0.18,
            freq_ghz: 1.0,
        }
    }
}

impl TechModel {
    /// Scales the model to another node by a simple Dennard-ish factor
    /// (area ∝ λ², energy ∝ λ): used for the 45 nm SODA comparison and the
    /// 65 nm Eyeriss point.
    pub fn scaled_to(&self, nm: f64) -> TechModel {
        let lambda = nm / 28.0;
        TechModel {
            ff_area_um2: self.ff_area_um2 * lambda * lambda,
            lut_area_um2: self.lut_area_um2 * lambda * lambda,
            mult_area_um2_per_bit2: self.mult_area_um2_per_bit2 * lambda * lambda,
            mux_area_um2_per_bit: self.mux_area_um2_per_bit * lambda * lambda,
            ff_energy_pj: self.ff_energy_pj * lambda,
            add_energy_pj_per_bit: self.add_energy_pj_per_bit * lambda,
            mult_energy_pj_per_bit2: self.mult_energy_pj_per_bit2 * lambda,
            static_uw_per_um2: self.static_uw_per_um2 / lambda,
            dram_pj_per_byte: self.dram_pj_per_byte,
            noc_pj_per_byte_hop: self.noc_pj_per_byte_hop * lambda,
            freq_ghz: self.freq_ghz / lambda,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_28nm_1ghz() {
        let t = TechModel::default();
        assert_eq!(t.freq_ghz, 1.0);
        assert!(t.ff_area_um2 > 0.0);
    }

    #[test]
    fn scaling_grows_area_quadratically() {
        let t = TechModel::default();
        let t45 = t.scaled_to(45.0);
        let ratio = t45.ff_area_um2 / t.ff_area_um2;
        assert!((ratio - (45.0f64 / 28.0).powi(2)).abs() < 1e-9);
        assert!(t45.freq_ghz < t.freq_ghz);
    }
}
