//! DAG costing: area, power, FF/LUT resource counts.
//!
//! Every primitive of the backend DAG maps to flip-flop bits, LUT-equivalent
//! logic bits, and multiplier bit-products; [`dag_cost`] rolls them up into
//! ASIC area/power through the [`TechModel`] and FPGA-style FF/LUT counts
//! for the AutoSA comparison (paper Table VIII).

use crate::TechModel;
use lego_backend::{Dag, Prim};

/// FPGA-style resource counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FpgaCost {
    /// Flip-flop count.
    pub ff: f64,
    /// LUT count (logic-bit equivalents).
    pub lut: f64,
    /// DSP slices (one per multiplier).
    pub dsp: f64,
}

/// Rolled-up cost of one DAG under a technology model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DagCost {
    /// Logic area in µm² (excludes SRAM).
    pub area_um2: f64,
    /// Dynamic power in mW at full activity and the model's frequency.
    pub dynamic_mw: f64,
    /// Static power in mW.
    pub static_mw: f64,
    /// Total flip-flop bits (pipeline + FIFO + control + accumulators).
    pub ff_bits: f64,
    /// FPGA-style counts.
    pub fpga: FpgaCost,
}

impl DagCost {
    /// Total power (mW).
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }
}

/// Computes area/power/resource cost of a DAG.
///
/// `activity` scales dynamic power (1.0 = every node toggles every cycle);
/// clock-gated edges contribute dynamic power scaled by the fraction of
/// dataflows that use them (the §V-D power-gating benefit).
pub fn dag_cost(dag: &Dag, tech: &TechModel, activity: f64) -> DagCost {
    let mut area = 0.0f64;
    let mut dyn_pj_per_cycle = 0.0f64;
    let mut ff_bits = 0.0f64;
    let mut lut_bits = 0.0f64;
    let mut dsp = 0.0f64;

    for node in &dag.nodes {
        let w = f64::from(node.width.max(1));
        match &node.prim {
            Prim::Mul => {
                // Operand widths multiply; approximate by (w/2)² since the
                // output is the sum of the operand widths.
                let bit2 = (w / 2.0) * (w / 2.0);
                area += bit2 * tech.mult_area_um2_per_bit2;
                dyn_pj_per_cycle += bit2 * tech.mult_energy_pj_per_bit2;
                dsp += 1.0;
            }
            Prim::Add | Prim::Max | Prim::Shift => {
                area += w * tech.lut_area_um2;
                dyn_pj_per_cycle += w * tech.add_energy_pj_per_bit;
                lut_bits += w;
                if node.accumulate {
                    area += w * tech.ff_area_um2;
                    dyn_pj_per_cycle += w * tech.ff_energy_pj;
                    ff_bits += w;
                }
            }
            Prim::Reducer { inputs } => {
                // Balanced tree: inputs-1 adders plus a register per level.
                let adders = (*inputs as f64 - 1.0).max(0.0);
                area += adders * w * tech.lut_area_um2;
                dyn_pj_per_cycle += adders * w * tech.add_energy_pj_per_bit;
                lut_bits += adders * w;
                let levels = (usize::BITS - inputs.max(&1).leading_zeros()) as f64;
                area += levels * w * tech.ff_area_um2;
                dyn_pj_per_cycle += levels * w * tech.ff_energy_pj;
                ff_bits += levels * w;
                if node.accumulate {
                    area += w * tech.ff_area_um2;
                    ff_bits += w;
                }
            }
            Prim::Mux { inputs } => {
                let ins = *inputs as f64;
                area += ins * w * tech.mux_area_um2_per_bit;
                dyn_pj_per_cycle += ins * w * tech.add_energy_pj_per_bit * 0.2;
                lut_bits += ins * w * 0.5;
            }
            Prim::Fifo { depth } => {
                let max_depth = depth.iter().flatten().copied().max().unwrap_or(0) as f64;
                area += max_depth * w * tech.ff_area_um2;
                dyn_pj_per_cycle += max_depth.min(2.0) * w * tech.ff_energy_pj;
                ff_bits += max_depth * w;
            }
            Prim::Counter { levels } => {
                // One full-width counter per loop level.
                let bits = *levels as f64 * w;
                area += bits * (tech.ff_area_um2 + tech.lut_area_um2);
                dyn_pj_per_cycle += bits * (tech.ff_energy_pj + tech.add_energy_pj_per_bit);
                ff_bits += bits;
                lut_bits += bits;
            }
            Prim::AddrGen { terms } => {
                // terms constant-multiplies + adds at address width, plus an
                // output register.
                let bits = *terms as f64 * w;
                area += bits * tech.lut_area_um2 * 1.5 + w * tech.ff_area_um2;
                dyn_pj_per_cycle += bits * tech.add_energy_pj_per_bit + w * tech.ff_energy_pj;
                ff_bits += w;
                lut_bits += bits * 1.5;
            }
            Prim::CtrlFwd => {
                area += w * tech.ff_area_um2;
                dyn_pj_per_cycle += w * tech.ff_energy_pj;
                ff_bits += w;
            }
            Prim::ReadPort { .. } | Prim::WritePort { .. } => {
                // Port register + handshake.
                area += w * (tech.ff_area_um2 + 0.5 * tech.lut_area_um2);
                dyn_pj_per_cycle += w * tech.ff_energy_pj;
                ff_bits += w;
                lut_bits += 0.5 * w;
            }
            Prim::Lut => {
                // 256-entry activation table.
                area += 256.0 * w * 0.35;
                dyn_pj_per_cycle += w * 0.02;
                lut_bits += 64.0;
            }
            Prim::Const { .. } => {}
        }
    }

    for e in &dag.edges {
        let w = f64::from(e.width.max(1));
        let regs = e.extra_regs as f64;
        area += regs * w * tech.ff_area_um2;
        ff_bits += regs * w;
        // Gated edges only toggle in the dataflows that use them.
        let act = e.active.iter().filter(|&&a| a).count() as f64 / dag.n_dataflows.max(1) as f64;
        let toggle = if e.gated { act } else { 1.0 };
        dyn_pj_per_cycle += regs * w * tech.ff_energy_pj * toggle;
        // Wire toggle energy.
        dyn_pj_per_cycle += w * 0.0004 * toggle;
    }

    let dynamic_mw = dyn_pj_per_cycle * tech.freq_ghz * activity;
    let static_mw = area * tech.static_uw_per_um2 / 1000.0;
    DagCost {
        area_um2: area,
        dynamic_mw,
        static_mw,
        ff_bits,
        fpga: FpgaCost {
            ff: ff_bits,
            lut: lut_bits,
            dsp,
        },
    }
}

/// Area breakdown of a whole accelerator *configuration*.
///
/// [`dag_cost`] prices a generated primitive DAG; this estimate prices a
/// configuration (FU count, buffer capacity, PPUs) before any hardware is
/// generated, which is what a design-space search needs — thousands of
/// candidate configurations per second, not one RTL elaboration each. The
/// constants count the same primitives the DAG costing uses (8-bit
/// multiplier, 32-bit accumulator and adder, operand registers, distribution
/// muxes) and land the paper's 256-FU / 256 KB point near its reported
/// 1.76 mm² (Figure 12a, buffers ≈ 86 % of area).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroArea {
    /// FU array (multipliers, accumulators, operand registers).
    pub array_um2: f64,
    /// On-chip SRAM macros.
    pub sram_um2: f64,
    /// Distribution/reduction network registers.
    pub noc_um2: f64,
    /// Post-processing units (LUT + reduction tree each).
    pub ppu_um2: f64,
}

impl MacroArea {
    /// Total area in µm².
    pub fn total_um2(&self) -> f64 {
        self.array_um2 + self.sram_um2 + self.noc_um2 + self.ppu_um2
    }
}

/// Analytic area of an accelerator configuration (see [`MacroArea`]).
///
/// # Panics
///
/// Panics if `buffer_kb == 0` or `banks == 0`.
pub fn macro_area(
    num_fus: i64,
    buffer_kb: u64,
    banks: u64,
    num_ppus: i64,
    tech: &TechModel,
    sram: &crate::SramModel,
) -> MacroArea {
    let fus = num_fus.max(1) as f64;
    // One int8 FU: 8×8 multiplier, 32-bit accumulator + adder, two 8-bit
    // operand registers, and a 2-input operand mux.
    let per_fu = 64.0 * tech.mult_area_um2_per_bit2
        + 32.0 * (tech.ff_area_um2 + tech.lut_area_um2)
        + 16.0 * tech.ff_area_um2
        + 16.0 * tech.mux_area_um2_per_bit;
    // Distribution/drain pipeline: ~24 register bits per FU.
    let noc_per_fu = 24.0 * tech.ff_area_um2;
    // One PPU: 256-entry×8-bit LUT plus a 32-bit 8-way reduction tree.
    let per_ppu = 256.0 * 8.0 * 0.35 + 8.0 * 32.0 * tech.lut_area_um2 + 64.0 * tech.ff_area_um2;
    MacroArea {
        array_um2: fus * per_fu,
        sram_um2: sram.area_um2(buffer_kb * 1024, banks),
        noc_um2: fus * noc_per_fu,
        ppu_um2: num_ppus.max(0) as f64 * per_ppu,
    }
}

/// Area of the L2 wormhole-mesh routers in µm² (`routers` ≥ 1 per
/// cluster): a 5-port, 16-byte crossbar of muxes plus flit buffering.
/// Matches the Table IV scaling harness, which shows the L2 NoC staying
/// under 10 % of total area.
pub fn l2_router_area_um2(routers: u64, tech: &TechModel) -> f64 {
    let per_router = 128.0 * 16.0 * tech.mux_area_um2_per_bit + 512.0 * tech.ff_area_um2;
    routers as f64 * per_router
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
    use lego_frontend::{build_adg, FrontendConfig};
    use lego_ir::kernels::{self, dataflows};

    fn cost_of(
        w: &lego_ir::Workload,
        dfs: &[lego_ir::Dataflow],
        opts: &OptimizeOptions,
    ) -> DagCost {
        let adg = build_adg(w, dfs, &FrontendConfig::default()).unwrap();
        let mut dag = lower(&adg, &BackendConfig::default());
        optimize(&mut dag, opts);
        dag_cost(&dag, &TechModel::default(), 1.0)
    }

    #[test]
    fn optimized_design_is_cheaper() {
        let gemm = kernels::gemm(16, 4, 4);
        let df = dataflows::par2(&gemm, "k", 4, "j", 4, "KJ").unwrap();
        let base = cost_of(
            &gemm,
            std::slice::from_ref(&df),
            &OptimizeOptions::baseline(),
        );
        let opt = cost_of(&gemm, &[df], &OptimizeOptions::default());
        assert!(opt.area_um2 < base.area_um2, "{opt:?} vs {base:?}");
        assert!(opt.total_mw() <= base.total_mw());
    }

    #[test]
    fn shared_control_beats_per_fu_control() {
        // The Table VI/VIII mechanism: per-FU control multiplies FF cost.
        let gemm = kernels::gemm(16, 8, 8);
        let df = dataflows::gemm_ij(&gemm, 8);
        let adg = build_adg(&gemm, &[df], &FrontendConfig::default()).unwrap();
        let mut shared = lower(&adg, &BackendConfig::default());
        let mut perfu = lower(
            &adg,
            &BackendConfig {
                per_fu_control: true,
                ..Default::default()
            },
        );
        optimize(&mut shared, &OptimizeOptions::default());
        optimize(&mut perfu, &OptimizeOptions::default());
        let t = TechModel::default();
        let cs = dag_cost(&shared, &t, 1.0);
        let cp = dag_cost(&perfu, &t, 1.0);
        assert!(
            cp.fpga.ff > 2.0 * cs.fpga.ff,
            "per-FU control FF {} vs shared {}",
            cp.fpga.ff,
            cs.fpga.ff
        );
    }

    #[test]
    fn macro_area_lands_near_paper_figure12() {
        let t = TechModel::default();
        let s = crate::SramModel::default();
        let a = macro_area(256, 256, 32, 16, &t, &s);
        let mm2 = a.total_um2() / 1e6;
        // Paper: 1.76 mm² with buffers at ~86 % of area.
        assert!(mm2 > 1.0 && mm2 < 2.5, "total {mm2} mm²");
        assert!(a.sram_um2 / a.total_um2() > 0.6, "{a:?}");
        // Monotone in every resource.
        let bigger = macro_area(1024, 576, 64, 32, &t, &s);
        assert!(bigger.total_um2() > a.total_um2());
    }

    #[test]
    fn larger_arrays_cost_more() {
        let g1 = kernels::gemm(8, 4, 4);
        let g2 = kernels::gemm(8, 8, 8);
        let c1 = cost_of(
            &g1,
            &[dataflows::gemm_ij(&g1, 4)],
            &OptimizeOptions::default(),
        );
        let c2 = cost_of(
            &g2,
            &[dataflows::gemm_ij(&g2, 8)],
            &OptimizeOptions::default(),
        );
        assert!(c2.area_um2 > 2.0 * c1.area_um2);
        assert!(c2.fpga.dsp == 4.0 * c1.fpga.dsp);
    }
}
