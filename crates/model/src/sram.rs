//! CACTI-style SRAM model: capacity/width → area and access energy.
//!
//! CACTI's outputs over the capacities LEGO uses (tens of KB to ~1 MB,
//! 28 nm) are well fit by a power law in capacity with a weak width term;
//! the constants below are anchored so a 256 KB pool lands near the paper's
//! Figure 12 (≈1.5 mm² of buffer area in the 1.76 mm² design).

/// Analytic SRAM macro model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Area coefficient (µm² per byte at the anchor point).
    pub area_um2_per_byte: f64,
    /// Banking overhead exponent: smaller banks cost more per byte.
    pub bank_overhead: f64,
    /// Read/write energy at the anchor capacity (pJ per byte accessed).
    pub access_pj_per_byte: f64,
    /// Leakage (µW per KB).
    pub leak_uw_per_kb: f64,
}

impl Default for SramModel {
    fn default() -> Self {
        SramModel {
            area_um2_per_byte: 5.2,
            bank_overhead: 0.12,
            access_pj_per_byte: 0.55,
            leak_uw_per_kb: 1.4,
        }
    }
}

impl SramModel {
    /// Total macro area in µm² for `bytes` of storage split into `banks`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0` or `banks == 0`.
    pub fn area_um2(&self, bytes: u64, banks: u64) -> f64 {
        assert!(bytes > 0 && banks > 0, "empty SRAM");
        let per_bank = bytes as f64 / banks as f64;
        // Small banks amortize periphery poorly: overhead grows as the bank
        // shrinks below 8 KB (CACTI's knee for 28 nm single-port macros).
        let knee = 8192.0f64;
        let factor = 1.0 + self.bank_overhead * (knee / per_bank.max(64.0)).max(1.0).ln();
        bytes as f64 * self.area_um2_per_byte * factor
    }

    /// Energy of accessing `bytes_per_access` from a pool of `total_bytes`
    /// (pJ). Larger macros cost more per access (longer lines).
    pub fn access_energy_pj(&self, total_bytes: u64, bytes_per_access: u64) -> f64 {
        let scale = ((total_bytes.max(1024) as f64) / (256.0 * 1024.0)).powf(0.35);
        bytes_per_access as f64 * self.access_pj_per_byte * scale
    }

    /// Leakage power in µW.
    pub fn leakage_uw(&self, bytes: u64) -> f64 {
        bytes as f64 / 1024.0 * self.leak_uw_per_kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_monotone_in_capacity() {
        let m = SramModel::default();
        let a = m.area_um2(64 * 1024, 4);
        let b = m.area_um2(256 * 1024, 4);
        assert!(b > a);
        // 256 KB lands in the ballpark of the paper's buffer area (~1.5 mm²).
        assert!(b > 1.0e6 && b < 2.5e6, "256 KB = {b} um^2");
    }

    #[test]
    fn many_small_banks_cost_more() {
        let m = SramModel::default();
        let few = m.area_um2(256 * 1024, 4);
        let many = m.area_um2(256 * 1024, 256);
        assert!(many > few);
    }

    #[test]
    fn access_energy_scales_with_pool() {
        let m = SramModel::default();
        let small = m.access_energy_pj(32 * 1024, 16);
        let large = m.access_energy_pj(1024 * 1024, 16);
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "empty SRAM")]
    fn zero_capacity_panics() {
        SramModel::default().area_um2(0, 1);
    }
}
