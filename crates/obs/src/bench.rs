//! The `BENCH_*.json` row format: a machine-readable perf trajectory.
//!
//! `perf_bench` writes `BENCH_eval.json` at the repo root as a JSON array
//! of `{"metric", "value", "unit", "config"}` objects — one row per
//! measurement — so subsequent performance PRs have a before/after anchor
//! that scripts (and the CI bench-smoke job) can parse without a JSON
//! dependency. [`render_bench_json`] and [`parse_bench_json`] are exact
//! inverses for every finite row.
//!
//! ```
//! use lego_obs::bench::{render_bench_json, parse_bench_json, BenchRow};
//!
//! let rows = vec![BenchRow::new("evaluate_single", 123456.0, "ns", "lenet@lego_256")];
//! let text = render_bench_json(&rows);
//! assert_eq!(parse_bench_json(&text).unwrap(), rows);
//! ```

use std::fmt;

/// One benchmark measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Stable metric name, e.g. `evaluate_single_cold_ns`.
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// Unit of `value`, e.g. `ns`, `evals/s`, `bytes`.
    pub unit: String,
    /// Workload/hardware configuration the measurement was taken under,
    /// e.g. `resnet50@lego_256 mode=deterministic`.
    pub config: String,
}

impl BenchRow {
    /// Build a row. Non-finite values are clamped to `0` so the rendered
    /// document is always valid JSON.
    pub fn new(
        metric: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
        config: impl Into<String>,
    ) -> Self {
        BenchRow {
            metric: metric.into(),
            value: if value.is_finite() { value } else { 0.0 },
            unit: unit.into(),
            config: config.into(),
        }
    }
}

/// Render rows as a stable JSON array (one object per line, sorted-input
/// order preserved).
pub fn render_bench_json(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {\"metric\": \"");
        escape_into(&mut out, &row.metric);
        out.push_str("\", \"value\": ");
        out.push_str(&fmt_f64(if row.value.is_finite() {
            row.value
        } else {
            0.0
        }));
        out.push_str(", \"unit\": \"");
        escape_into(&mut out, &row.unit);
        out.push_str("\", \"config\": \"");
        escape_into(&mut out, &row.config);
        out.push_str("\"}");
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Why [`parse_bench_json`] rejected a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bench json error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for BenchParseError {}

/// Parse a document produced by [`render_bench_json`] (or any JSON array
/// of objects). Unknown fields are ignored — including structured values
/// (nested objects/arrays, booleans, `null`), which are skipped, so the
/// parser also validates documents like Chrome trace-event JSON whose
/// events carry an `args` object. Missing fields default (`value` to 0,
/// strings to empty). Never panics on malformed input.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRow>, BenchParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut rows = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            rows.push(p.object()?);
            p.skip_ws();
            match p.next() {
                Some(b',') => p.skip_ws(),
                Some(b']') => break,
                _ => return Err(p.err("expected ',' or ']' after object")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after array"));
    }
    Ok(rows)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> BenchParseError {
        BenchParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), BenchParseError> {
        if self.next() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn object(&mut self) -> Result<BenchRow, BenchParseError> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut row = BenchRow::new("", 0.0, "", "");
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(row);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match self.peek() {
                Some(b'"') => {
                    let value = self.string()?;
                    match key.as_str() {
                        "metric" => row.metric = value,
                        "unit" => row.unit = value,
                        "config" => row.config = value,
                        _ => {}
                    }
                }
                Some(b'{' | b'[' | b't' | b'f' | b'n') => self.skip_value()?,
                _ => {
                    let value = self.number()?;
                    if key == "value" {
                        row.value = value;
                    }
                }
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => return Ok(row),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, BenchParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    /// Skip one JSON value of any shape (used for unknown structured
    /// fields like a trace event's `args` object).
    fn skip_value(&mut self) -> Result<(), BenchParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b'{') | Some(b'[') => {
                let (open, close) = if self.peek() == Some(b'{') {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(close) {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    if open == b'{' {
                        self.skip_ws();
                        self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                    }
                    self.skip_value()?;
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b) if b == close => return Ok(()),
                        _ => return Err(self.err("expected ',' or close in value")),
                    }
                }
            }
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'n') => self.keyword("null"),
            _ => {
                self.number()?;
                Ok(())
            }
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), BenchParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<f64, BenchParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| self.err("malformed number"))
    }
}

/// Render one `BENCH_trajectory.jsonl` line: a single-line JSON object
/// stamping a bench run with its mode and iteration count alongside the
/// measured rows. `perf_bench record` appends these to an append-only
/// trajectory log so the perf history of the repo survives each
/// overwrite of the latest `BENCH_*.json` document.
///
/// ```
/// use lego_obs::bench::{render_trajectory_line, BenchRow};
///
/// let line = render_trajectory_line(
///     "wall_clock",
///     7,
///     &[BenchRow::new("evaluate_single_wall", 123.0, "ns", "cfg")],
/// );
/// assert!(line.starts_with("{\"mode\": \"wall_clock\", \"iters\": 7, \"rows\": ["));
/// assert!(!line.contains('\n'));
/// ```
pub fn render_trajectory_line(mode_label: &str, iters: u32, rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\"mode\": \"");
    escape_into(&mut out, mode_label);
    out.push_str(&format!("\", \"iters\": {iters}, \"rows\": ["));
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"metric\": \"");
        escape_into(&mut out, &row.metric);
        out.push_str("\", \"value\": ");
        out.push_str(&fmt_f64(if row.value.is_finite() {
            row.value
        } else {
            0.0
        }));
        out.push_str(", \"unit\": \"");
        escape_into(&mut out, &row.unit);
        out.push_str("\", \"config\": \"");
        escape_into(&mut out, &row.config);
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

/// Format an `f64` for JSON output: shortest round-trip decimal, with a
/// plain integer rendering for integral values. Deterministic.
pub(crate) fn fmt_f64(v: f64) -> String {
    let mut s = format!("{v}");
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// JSON-escape `s` into `out` (quotes, backslashes, control characters).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let rows = vec![
            BenchRow::new("evaluate_single_cold", 123456.0, "ns", "lenet@lego_256"),
            BenchRow::new("batch_throughput", 12.5, "evals/s", "zoo mode=wall_clock"),
            BenchRow::new("weird \"name\"\n", -0.75, "x\\y", "tabs\there"),
        ];
        let text = render_bench_json(&rows);
        assert_eq!(parse_bench_json(&text).unwrap(), rows);
        // Render is deterministic.
        assert_eq!(render_bench_json(&rows), text);
    }

    #[test]
    fn empty_array() {
        assert_eq!(parse_bench_json("[]").unwrap(), vec![]);
        assert_eq!(parse_bench_json(&render_bench_json(&[])).unwrap(), vec![]);
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for bad in [
            "",
            "[",
            "[{",
            "[{}",
            "[{\"metric\": }]",
            "[{\"value\": nope}]",
            "[{\"metric\": \"unterminated}]",
            "[{}] trailing",
            "{\"metric\": \"not an array\"}",
            "[{\"metric\": \"a\"} {\"metric\": \"b\"}]",
        ] {
            assert!(parse_bench_json(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn unknown_fields_ignored_missing_fields_default() {
        let rows =
            parse_bench_json("[{\"metric\": \"m\", \"extra\": 7, \"note\": \"hi\"}]").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].metric, "m");
        assert_eq!(rows[0].value, 0.0);
        assert_eq!(rows[0].unit, "");
    }

    #[test]
    fn structured_unknown_fields_are_skipped() {
        // The shape of a Chrome trace-event row: nested args object,
        // plus booleans/null/arrays for good measure.
        let text = "[{\"metric\": \"m\", \"args\": {\"request_id\": 7, \"nested\": {\"deep\": [1, 2, {\"x\": null}]}}, \"flag\": true, \"off\": false, \"none\": null, \"list\": [], \"value\": 3}]";
        let rows = parse_bench_json(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].metric, "m");
        assert_eq!(rows[0].value, 3.0);
        // Unterminated nesting still errors without panicking.
        assert!(parse_bench_json("[{\"args\": {\"a\": [1, }]").is_err());
        assert!(parse_bench_json("[{\"flag\": tru}]").is_err());
    }

    #[test]
    fn trajectory_lines_are_single_line_json() {
        let line = render_trajectory_line(
            "deterministic",
            3,
            &[
                BenchRow::new("a", 1.0, "ns", "cfg"),
                BenchRow::new("b", 2.5, "evals/s", "cfg"),
            ],
        );
        assert!(!line.contains('\n'));
        assert!(line.contains("\"iters\": 3"));
        assert!(line.contains("\"metric\": \"b\""));
        // Each line's rows array round-trips through the parser.
        let rows_start = line.find('[').unwrap();
        let rows_json = &line[rows_start..line.len() - 1];
        let parsed = parse_bench_json(rows_json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].value, 2.5);
    }

    #[test]
    fn scientific_notation_parses() {
        let rows = parse_bench_json("[{\"metric\": \"m\", \"value\": 1.5e3}]").unwrap();
        assert_eq!(rows[0].value, 1500.0);
    }

    #[test]
    fn non_finite_values_clamp_to_zero() {
        let row = BenchRow::new("m", f64::NAN, "ns", "");
        assert_eq!(row.value, 0.0);
        let text = render_bench_json(&[BenchRow {
            metric: "m".into(),
            value: f64::INFINITY,
            unit: "ns".into(),
            config: String::new(),
        }]);
        assert_eq!(parse_bench_json(&text).unwrap()[0].value, 0.0);
    }
}
