//! Bench-document comparison: the logic behind `perf_bench diff`, which
//! turns two `BENCH_*.json` row sets into a per-metric verdict and a
//! single regressed-or-not answer a CI job can gate on.
//!
//! Each metric's improvement direction is inferred from its unit: `ns`
//! (and any `*_ns`) means lower is better, rate units (`*/s`) mean higher
//! is better, and anything else (counts, bytes, layers) is informational
//! — a changed work count is reported but never fails the gate on its
//! own. Rows whose baseline or candidate value is `0` are skipped too: a
//! deterministic-mode document pins every wall metric to exactly `0`, and
//! a ratio against zero is meaningless.
//!
//! ```
//! use lego_obs::bench::BenchRow;
//! use lego_obs::diff::{diff_rows, Tolerances};
//!
//! let before = vec![BenchRow::new("evaluate_single_wall", 100.0, "ns", "cfg")];
//! let after = vec![BenchRow::new("evaluate_single_wall", 160.0, "ns", "cfg")];
//! let report = diff_rows(&before, &after, &Tolerances::new(1.5));
//! assert_eq!(report.regressions().len(), 1); // 1.6× > 1.5× tolerance
//! assert!(diff_rows(&before, &before, &Tolerances::new(1.5)).passed());
//! ```

use crate::bench::BenchRow;
use std::fmt::Write as _;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time-like metrics (`ns`): smaller is faster.
    LowerIsBetter,
    /// Rate metrics (`…/s`): bigger is faster.
    HigherIsBetter,
    /// Work counts and sizes: changes are reported, never gated.
    Informational,
}

/// Infer the improvement direction from a row's unit.
pub fn direction_for(unit: &str) -> Direction {
    if unit == "ns" || unit.ends_with("_ns") {
        Direction::LowerIsBetter
    } else if unit.ends_with("/s") {
        Direction::HigherIsBetter
    } else {
        Direction::Informational
    }
}

/// Per-metric regression thresholds: a default ratio plus any number of
/// per-metric overrides. A tolerance of `1.5` allows a metric to get up
/// to 50% worse (slower, or lower-throughput) before it counts as a
/// regression. Ratios below `1` are clamped to `1`.
#[derive(Debug, Clone)]
pub struct Tolerances {
    default_ratio: f64,
    per_metric: Vec<(String, f64)>,
}

impl Tolerances {
    /// Thresholds with one default ratio and no overrides.
    pub fn new(default_ratio: f64) -> Self {
        Tolerances {
            default_ratio: default_ratio.max(1.0),
            per_metric: Vec::new(),
        }
    }

    /// Override the threshold for one metric.
    #[must_use]
    pub fn with_metric(mut self, metric: impl Into<String>, ratio: f64) -> Self {
        self.per_metric.push((metric.into(), ratio.max(1.0)));
        self
    }

    /// The threshold that applies to `metric`.
    pub fn ratio_for(&self, metric: &str) -> f64 {
        self.per_metric
            .iter()
            .rev()
            .find(|(m, _)| m == metric)
            .map_or(self.default_ratio, |(_, r)| *r)
    }
}

impl Default for Tolerances {
    /// A 25% default threshold — tight enough to catch a real regression,
    /// loose enough for run-to-run scheduler noise on a quiet machine.
    fn default() -> Self {
        Tolerances::new(1.25)
    }
}

/// One metric's before/after verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Unit (from the baseline row).
    pub unit: String,
    /// Baseline value.
    pub before: f64,
    /// Candidate value.
    pub after: f64,
    /// `after / before` (`0` when the baseline is zero).
    pub ratio: f64,
    /// Improvement direction inferred from the unit.
    pub direction: Direction,
    /// Whether this metric regressed past its tolerance.
    pub regressed: bool,
}

/// The outcome of comparing two bench documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One verdict per metric present in both documents.
    pub deltas: Vec<MetricDelta>,
    /// Baseline metrics the candidate no longer emits — always a failure
    /// (a metric silently disappearing is how a gate goes blind).
    pub missing_after: Vec<String>,
    /// Candidate metrics the baseline lacks (reported, not gated).
    pub added: Vec<String>,
    /// Metrics whose unit changed between the documents — a contract
    /// break, always a failure.
    pub unit_changed: Vec<String>,
}

impl DiffReport {
    /// The deltas that regressed.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// `true` when nothing regressed, disappeared, or changed unit.
    pub fn passed(&self) -> bool {
        self.missing_after.is_empty()
            && self.unit_changed.is_empty()
            && self.deltas.iter().all(|d| !d.regressed)
    }

    /// Human-readable table, one line per metric, stable order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.direction == Direction::Informational {
                "info"
            } else if d.before == 0.0 || d.after == 0.0 {
                "skipped (zero)"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<28} {:>14} -> {:>14} {:<10} x{:.3}  {}",
                d.metric,
                crate::bench::fmt_f64(d.before),
                crate::bench::fmt_f64(d.after),
                d.unit,
                d.ratio,
                verdict,
            );
        }
        for m in &self.missing_after {
            let _ = writeln!(out, "{m:<28} MISSING from candidate");
        }
        for m in &self.unit_changed {
            let _ = writeln!(out, "{m:<28} UNIT CHANGED between documents");
        }
        for m in &self.added {
            let _ = writeln!(out, "{m:<28} new in candidate");
        }
        out
    }
}

/// Compare `after` against the `before` baseline under `tol`. Metrics are
/// matched by name (first occurrence wins); see the module docs for the
/// zero-value and direction rules.
pub fn diff_rows(before: &[BenchRow], after: &[BenchRow], tol: &Tolerances) -> DiffReport {
    let find = |rows: &[BenchRow], metric: &str| -> Option<BenchRow> {
        rows.iter().find(|r| r.metric == metric).cloned()
    };
    let mut report = DiffReport::default();
    let mut seen = std::collections::BTreeSet::new();
    for b in before {
        if !seen.insert(b.metric.clone()) {
            continue;
        }
        let Some(a) = find(after, &b.metric) else {
            report.missing_after.push(b.metric.clone());
            continue;
        };
        if a.unit != b.unit {
            report.unit_changed.push(b.metric.clone());
            continue;
        }
        let direction = direction_for(&b.unit);
        let ratio = if b.value == 0.0 {
            0.0
        } else {
            a.value / b.value
        };
        let threshold = tol.ratio_for(&b.metric);
        let gated = b.value > 0.0 && a.value > 0.0;
        let regressed = gated
            && match direction {
                Direction::LowerIsBetter => a.value > b.value * threshold,
                Direction::HigherIsBetter => a.value * threshold < b.value,
                Direction::Informational => false,
            };
        report.deltas.push(MetricDelta {
            metric: b.metric.clone(),
            unit: b.unit.clone(),
            before: b.value,
            after: a.value,
            ratio,
            direction,
            regressed,
        });
    }
    for a in after {
        if !seen.contains(&a.metric) && !report.added.contains(&a.metric) {
            report.added.push(a.metric.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(values: &[(&str, f64, &str)]) -> Vec<BenchRow> {
        values
            .iter()
            .map(|(m, v, u)| BenchRow::new(*m, *v, *u, "cfg"))
            .collect()
    }

    #[test]
    fn self_diff_always_passes() {
        let doc = rows(&[
            ("wall", 100.0, "ns"),
            ("throughput", 50.0, "evals/s"),
            ("bytes", 4096.0, "bytes"),
        ]);
        let report = diff_rows(&doc, &doc, &Tolerances::default());
        assert!(report.passed());
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn directions_follow_units() {
        assert_eq!(direction_for("ns"), Direction::LowerIsBetter);
        assert_eq!(direction_for("evals/s"), Direction::HigherIsBetter);
        assert_eq!(direction_for("requests/s"), Direction::HigherIsBetter);
        assert_eq!(direction_for("bytes"), Direction::Informational);
        assert_eq!(direction_for("count"), Direction::Informational);
    }

    #[test]
    fn fifty_percent_wall_regression_fails_a_quarter_tolerance() {
        let before = rows(&[("wall", 100.0, "ns")]);
        let after = rows(&[("wall", 150.0, "ns")]);
        let report = diff_rows(&before, &after, &Tolerances::new(1.25));
        assert!(!report.passed());
        assert_eq!(report.regressions().len(), 1);
        // A generous 2× threshold tolerates the same change.
        assert!(diff_rows(&before, &after, &Tolerances::new(2.0)).passed());
    }

    #[test]
    fn throughput_drops_regress_and_gains_never_do() {
        let before = rows(&[("throughput", 100.0, "evals/s")]);
        let slower = rows(&[("throughput", 60.0, "evals/s")]);
        let faster = rows(&[("throughput", 500.0, "evals/s")]);
        assert!(!diff_rows(&before, &slower, &Tolerances::new(1.25)).passed());
        assert!(diff_rows(&before, &faster, &Tolerances::new(1.25)).passed());
    }

    #[test]
    fn zero_baselines_are_skipped() {
        // Deterministic documents pin wall metrics to 0; they can never
        // gate a wallclock run (or vice versa).
        let det = rows(&[("wall", 0.0, "ns")]);
        let wall = rows(&[("wall", 123456.0, "ns")]);
        assert!(diff_rows(&det, &wall, &Tolerances::new(1.0)).passed());
        assert!(diff_rows(&wall, &det, &Tolerances::new(1.0)).passed());
    }

    #[test]
    fn missing_metrics_and_unit_changes_fail() {
        let before = rows(&[("wall", 100.0, "ns"), ("gone", 5.0, "count")]);
        let after = rows(&[("wall", 100.0, "us"), ("new", 7.0, "count")]);
        let report = diff_rows(&before, &after, &Tolerances::default());
        assert!(!report.passed());
        assert_eq!(report.missing_after, vec!["gone".to_string()]);
        assert_eq!(report.unit_changed, vec!["wall".to_string()]);
        assert_eq!(report.added, vec!["new".to_string()]);
    }

    #[test]
    fn per_metric_overrides_take_precedence() {
        let before = rows(&[("wall", 100.0, "ns")]);
        let after = rows(&[("wall", 180.0, "ns")]);
        let tol = Tolerances::new(1.25).with_metric("wall", 2.0);
        assert!(diff_rows(&before, &after, &tol).passed());
        assert_eq!(tol.ratio_for("wall"), 2.0);
        assert_eq!(tol.ratio_for("other"), 1.25);
    }
}
