//! Structured event tracing: a bounded ring buffer of typed events with
//! two exporters — Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`) and folded-stack text for flamegraphs.
//!
//! Tracing is opt-in per recorder ([`Obs::traced`](crate::Obs::traced)):
//! when enabled, every span enter/exit and counter increment appends a
//! [`TraceEvent`] carrying a monotonic timestamp (zero in
//! [`ObsMode::Deterministic`](crate::ObsMode::Deterministic) — the clock
//! is never read), a process-logical thread id, and the current request
//! id ([`Obs::request_scope`](crate::Obs::request_scope)). The ring is
//! bounded: at capacity the oldest events are overwritten, and the
//! exporters emit only **matched** enter/exit pairs, so a truncated ring
//! still produces a well-formed trace (orphaned exits whose enters were
//! overwritten, and still-open spans, are dropped).
//!
//! ```
//! use lego_obs::Obs;
//!
//! let obs = Obs::deterministic().traced(1024);
//! {
//!     let _req = obs.request_scope(7);
//!     let _span = obs.span("eval/evaluate");
//!     obs.count("cache.hits", 3);
//! }
//! let snap = obs.trace_snapshot().unwrap();
//! assert_eq!(snap.events.len(), 3); // enter, count, exit
//! let json = snap.chrome_trace_json();
//! assert!(json.contains("\"ph\": \"B\""));
//! assert!(json.contains("\"request_id\": 7"));
//! ```

use crate::bench::{escape_into, fmt_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What one [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A span of this name was entered.
    Enter(Box<str>),
    /// The matching span exited.
    Exit(Box<str>),
    /// A counter was incremented by this delta.
    Count(Box<str>, u64),
}

impl TraceKind {
    /// The span or counter name this event refers to.
    pub fn name(&self) -> &str {
        match self {
            TraceKind::Enter(n) | TraceKind::Exit(n) | TraceKind::Count(n, _) => n,
        }
    }
}

/// One typed event in a [`TraceLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder was constructed; always `0` in
    /// deterministic mode (the clock is never read).
    pub ts_ns: u64,
    /// Process-logical thread id: `0` for the first thread that traced,
    /// `1` for the second, and so on. Stable within a process run.
    pub tid: u32,
    /// The request id active on the recording thread (see
    /// [`Obs::request_scope`](crate::Obs::request_scope)); `0` = none.
    pub request_id: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded ring buffer of [`TraceEvent`]s. At capacity, pushing a new
/// event overwrites the oldest one; [`TraceLog::dropped`] counts the
/// overwritten events so an exporter can say how much history was lost.
#[derive(Debug, Clone)]
pub struct TraceLog {
    ring: Vec<TraceEvent>,
    /// Index of the oldest event once the ring is full.
    head: usize,
    /// Total events ever pushed (including overwritten ones).
    pushed: u64,
    capacity: usize,
}

impl TraceLog {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceLog {
            ring: Vec::with_capacity(capacity.min(1024)),
            head: 0,
            pushed: 0,
            capacity,
        }
    }

    /// Append an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Events currently resident.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are resident.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum resident events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.ring.len() as u64
    }

    /// The resident events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Snapshot for export.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            events: self.events(),
            dropped: self.dropped(),
            capacity: self.capacity,
        }
    }
}

/// An immutable copy of a [`TraceLog`]'s resident events, with the two
/// exporters hanging off it.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Resident events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events the ring overwrote before this snapshot.
    pub dropped: u64,
    /// The ring's capacity.
    pub capacity: usize,
}

/// Per-tid matching of enter/exit events: returns the event indices that
/// form complete pairs. Span guards drop in LIFO order per thread, so an
/// exit either matches the top of its thread's enter stack or is an
/// orphan (its enter was overwritten by the ring) and is skipped; enters
/// left on a stack (spans still open, or exits lost to snapshot timing)
/// are skipped too. The result is balanced by construction: every kept
/// enter has exactly one kept exit on the same thread.
fn matched_pairs(events: &[TraceEvent]) -> Vec<(usize, usize)> {
    let mut stacks: BTreeMap<u32, Vec<(usize, &str)>> = BTreeMap::new();
    let mut pairs = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match &e.kind {
            TraceKind::Enter(name) => {
                stacks.entry(e.tid).or_default().push((i, name));
            }
            TraceKind::Exit(name) => {
                let stack = stacks.entry(e.tid).or_default();
                if stack.last().is_some_and(|(_, top)| *top == &**name) {
                    let (enter, _) = stack.pop().expect("just checked non-empty");
                    pairs.push((enter, i));
                }
            }
            TraceKind::Count(..) => {}
        }
    }
    pairs.sort_unstable();
    pairs
}

impl TraceSnapshot {
    /// Export as Chrome trace-event JSON (the
    /// [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
    /// Perfetto and `chrome://tracing` load): matched spans as `B`/`E`
    /// duration events, counters as `C` events carrying their running
    /// total. Timestamps are microseconds; a span's `B` event carries the
    /// request id in `args` when one was active. The output is a pure
    /// function of the events, so deterministic-mode traces are
    /// byte-identical across runs.
    pub fn chrome_trace_json(&self) -> String {
        let kept: std::collections::BTreeSet<usize> = matched_pairs(&self.events)
            .into_iter()
            .flat_map(|(b, e)| [b, e])
            .collect();
        // Counter events carry running totals per (tid, name).
        let mut totals: BTreeMap<(u32, &str), u64> = BTreeMap::new();
        let mut out = String::from("[\n");
        let mut first = true;
        for (i, e) in self.events.iter().enumerate() {
            let ph = match &e.kind {
                TraceKind::Enter(_) if kept.contains(&i) => "B",
                TraceKind::Exit(_) if kept.contains(&i) => "E",
                TraceKind::Count(..) => "C",
                _ => continue,
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("{\"name\": \"");
            escape_into(&mut out, e.kind.name());
            let _ = write!(
                out,
                "\", \"cat\": \"lego\", \"ph\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {}",
                ph,
                e.tid,
                fmt_f64(e.ts_ns as f64 / 1000.0),
            );
            match &e.kind {
                TraceKind::Enter(_) if e.request_id != 0 => {
                    let _ = write!(out, ", \"args\": {{\"request_id\": {}}}", e.request_id);
                }
                TraceKind::Count(name, delta) => {
                    let slot = totals.entry((e.tid, name)).or_default();
                    *slot += delta;
                    let _ = write!(out, ", \"args\": {{\"value\": {}}}", slot);
                }
                _ => {}
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Export as folded-stack text (`outer;inner self_ns` per line, the
    /// format `flamegraph.pl` and speedscope consume): one line per
    /// distinct call stack, carrying the **self** nanoseconds spent there
    /// (total minus time attributed to children). Lines are sorted, so
    /// the output is deterministic; in deterministic mode every value is
    /// `0` (the stacks still show the shape of the run).
    pub fn folded_stacks(&self) -> String {
        let pairs = matched_pairs(&self.events);
        let enters: std::collections::BTreeSet<usize> = pairs.iter().map(|&(b, _)| b).collect();
        let exits: std::collections::BTreeSet<usize> = pairs.iter().map(|&(_, e)| e).collect();
        let mut lines: BTreeMap<String, u64> = BTreeMap::new();
        // Replay per thread: a stack of open matched frames, each
        // accumulating the time its children consumed.
        struct Frame<'a> {
            name: &'a str,
            start_ns: u64,
            child_ns: u64,
        }
        let mut stacks: BTreeMap<u32, Vec<Frame<'_>>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match &e.kind {
                TraceKind::Enter(name) if enters.contains(&i) => {
                    stacks.entry(e.tid).or_default().push(Frame {
                        name,
                        start_ns: e.ts_ns,
                        child_ns: 0,
                    });
                }
                TraceKind::Exit(_) if exits.contains(&i) => {
                    let stack = stacks.entry(e.tid).or_default();
                    let frame = stack.pop().expect("matched exit has a frame");
                    let total = e.ts_ns.saturating_sub(frame.start_ns);
                    let self_ns = total.saturating_sub(frame.child_ns);
                    let mut key = String::new();
                    for f in stack.iter() {
                        key.push_str(f.name);
                        key.push(';');
                    }
                    key.push_str(frame.name);
                    *lines.entry(key).or_default() += self_ns;
                    if let Some(parent) = stack.last_mut() {
                        parent.child_ns = parent.child_ns.saturating_add(total);
                    }
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (stack, ns) in &lines {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, tid: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            ts_ns,
            tid,
            request_id: 0,
            kind,
        }
    }

    fn enter(name: &str) -> TraceKind {
        TraceKind::Enter(name.into())
    }
    fn exit(name: &str) -> TraceKind {
        TraceKind::Exit(name.into())
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut log = TraceLog::new(3);
        for i in 0..5u64 {
            log.push(ev(i, 0, TraceKind::Count("c".into(), i)));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let ts: Vec<u64> = log.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn exporters_skip_orphaned_exits_and_open_enters() {
        // An exit whose enter was overwritten, plus a still-open span.
        let events = vec![
            ev(0, 0, exit("lost")),
            ev(1, 0, enter("kept")),
            ev(2, 0, exit("kept")),
            ev(3, 0, enter("open")),
        ];
        let snap = TraceSnapshot {
            events,
            dropped: 1,
            capacity: 4,
        };
        let json = snap.chrome_trace_json();
        assert!(json.contains("\"kept\""));
        assert!(!json.contains("\"lost\""));
        assert!(!json.contains("\"open\""));
        let folded = snap.folded_stacks();
        assert_eq!(folded, "kept 1\n");
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let events = vec![
            ev(0, 0, enter("outer")),
            ev(10, 0, enter("inner")),
            ev(40, 0, exit("inner")),
            ev(100, 0, exit("outer")),
        ];
        let snap = TraceSnapshot {
            events,
            dropped: 0,
            capacity: 16,
        };
        // outer total 100, inner total 30 → outer self 70.
        assert_eq!(snap.folded_stacks(), "outer 70\nouter;inner 30\n");
    }

    #[test]
    fn chrome_counters_carry_running_totals() {
        let events = vec![
            ev(0, 0, TraceKind::Count("cache.hits".into(), 2)),
            ev(1, 0, TraceKind::Count("cache.hits".into(), 3)),
        ];
        let snap = TraceSnapshot {
            events,
            dropped: 0,
            capacity: 16,
        };
        let json = snap.chrome_trace_json();
        assert!(json.contains("{\"value\": 2}"));
        assert!(json.contains("{\"value\": 5}"));
    }

    #[test]
    fn threads_match_independently() {
        // Interleaved enters/exits across two threads still pair up.
        let events = vec![
            ev(0, 0, enter("a")),
            ev(1, 1, enter("b")),
            ev(2, 0, exit("a")),
            ev(3, 1, exit("b")),
        ];
        let pairs = matched_pairs(&events);
        assert_eq!(pairs, vec![(0, 2), (1, 3)]);
    }
}
