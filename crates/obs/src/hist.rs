//! Log-bucketed histograms: fixed-size percentile estimation for the
//! value and span series a [`Recorder`](crate::Recorder) accumulates.
//!
//! A [`Hist`] is 64 power-of-two buckets of sample counts — no stored
//! samples, so recording is O(1), merging is a vector add, and the memory
//! cost is constant no matter how many samples arrive. Percentiles are
//! estimated as the **lower bound** of the bucket holding the requested
//! rank, so an estimate is exact for integral powers of two and otherwise
//! correct to within 2× — the right resolution for the "where did the
//! time go" questions this crate answers.
//!
//! Determinism: a bucket index is computed from the sample's binary
//! exponent (no floating-point log), so the counts — and therefore every
//! percentile — are a pure function of the recorded samples. In
//! [`ObsMode::Deterministic`](crate::ObsMode::Deterministic) span
//! durations are recorded as `0`, which lands in bucket 0 and reports
//! every percentile as `0`: bucket counts are kept, wall values are
//! zeroed, and the rendered summary stays byte-identical across runs.

/// Number of power-of-two buckets; bucket `0` holds samples below `1`,
/// bucket `i ≥ 1` holds samples in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything above `2^62`.
pub const BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed histogram of non-negative samples.
///
/// ```
/// use lego_obs::hist::Hist;
///
/// let mut h = Hist::default();
/// for v in [1.0, 2.0, 3.0, 900.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.percentile(0.50), 2.0); // 2 and 3 share bucket [2, 4)
/// assert_eq!(h.percentile(0.99), 512.0); // 900 lands in [512, 1024)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

/// Bucket index for one sample (see [`BUCKETS`] for the layout).
/// Computed from the float's binary exponent, not a floating-point log,
/// so the mapping is exact and deterministic.
fn bucket_of(value: f64) -> usize {
    // Sub-1 samples, zeros, negatives, and NaN all fall into the "below
    // resolution" bucket (callers drop non-finite samples before
    // recording; this is belt and braces). NaN fails the comparison.
    if value < 1.0 || !value.is_finite() {
        return 0;
    }
    // For a normal f64 ≥ 1, the unbiased exponent is floor(log2(v)).
    let exponent = ((value.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (exponent as usize + 1).min(BUCKETS - 1)
}

impl Hist {
    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.counts[bucket_of(value)] += 1;
        self.total += 1;
    }

    /// Fold another histogram into this one (stripe merging).
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the lower bound of
    /// the bucket containing the sample of that rank (`0` when empty or
    /// when the rank falls in the sub-1 bucket). Exact for integral
    /// powers of two, otherwise an underestimate by less than 2×.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
            }
        }
        // Unreachable: the counts sum to `total` and rank ≤ total.
        0.0
    }

    /// Median estimate — `percentile(0.50)`.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.5), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(1.99), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(3.0), 2);
        assert_eq!(bucket_of(4.0), 3);
        assert_eq!(bucket_of(1024.0), 11);
        assert_eq!(bucket_of(f64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(-5.0), 0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Hist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn constant_power_of_two_samples_are_exact() {
        let mut h = Hist::default();
        for _ in 0..100 {
            h.record(8.0);
        }
        assert_eq!(h.p50(), 8.0);
        assert_eq!(h.p90(), 8.0);
        assert_eq!(h.p99(), 8.0);
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = Hist::default();
        // 90 fast samples around 2^4, 10 slow ones around 2^10.
        for _ in 0..90 {
            h.record(20.0); // bucket [16, 32)
        }
        for _ in 0..10 {
            h.record(1500.0); // bucket [1024, 2048)
        }
        assert_eq!(h.p50(), 16.0);
        assert_eq!(h.p90(), 16.0);
        assert_eq!(h.p99(), 1024.0);
    }

    #[test]
    fn zeros_report_zero_percentiles() {
        // The deterministic-mode contract: span durations recorded as 0
        // keep their counts but every percentile stays 0.
        let mut h = Hist::default();
        for _ in 0..50 {
            h.record(0.0);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn merge_is_a_vector_add() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        a.record(4.0);
        b.record(4.0);
        b.record(4096.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.p50(), 4.0);
        assert_eq!(a.p99(), 4096.0);
        // Merge order never changes the result.
        let mut c = Hist::default();
        c.record(4096.0);
        c.record(4.0);
        c.record(4.0);
        assert_eq!(a, c);
    }
}
