//! # lego-obs — zero-dependency observability for the evaluation stack
//!
//! Every hot path in the workspace (the `EvalSession` request/response
//! layer, the explorer worker pool, the bench bins) threads an [`Obs`]
//! handle: a cheap, cloneable reference to a shared [`Recorder`] that
//! accumulates **counters**, **value histograms** (count/sum plus
//! log-bucketed p50/p90/p99), and **named timed spans**. The design constraint that shapes the whole
//! crate is the repository's byte-identical determinism CI: observability
//! must never perturb results, and in [`ObsMode::Deterministic`] the
//! summary itself must be byte-identical across runs.
//!
//! Three modes:
//!
//! * [`Obs::disabled`] — a `None` handle; every operation is a single
//!   branch and no allocation. This is the default everywhere.
//! * [`Obs::deterministic`] — records counts, values, and span *counts*,
//!   but never reads the clock (all durations render as `0`) and drops
//!   scheduling-dependent values ([`Obs::count_scheduling`] /
//!   [`Obs::record_scheduling`]), so [`Summary::render`] is byte-stable
//!   across identical runs regardless of thread interleaving.
//! * [`Obs::wall_clock`] — records real durations and the
//!   scheduling-dependent series too; for perf runs, not for CI diffing.
//!
//! # Quickstart
//!
//! ```
//! use lego_obs::{Obs, ObsMode};
//!
//! let obs = Obs::deterministic();
//! {
//!     let _span = obs.span("eval/mapping_search");
//!     obs.count("sim.mappings_tried", 12);
//!     obs.record("pool.queue_depth", 3.0);
//! } // span closes on drop
//!
//! let summary = obs.summary();
//! assert_eq!(summary.mode, ObsMode::Deterministic);
//! assert_eq!(summary.counter("sim.mappings_tried"), 12);
//! assert_eq!(summary.spans["eval/mapping_search"].count, 1);
//! // Deterministic mode never reads the clock:
//! assert_eq!(summary.spans["eval/mapping_search"].total_ns, 0);
//! // The render is a stable JSON document (sorted keys, fixed layout),
//! // safe to byte-compare across runs in CI.
//! let text = summary.render();
//! assert_eq!(text, obs.summary().render());
//! ```
//!
//! Timing a closure and nesting spans:
//!
//! ```
//! use lego_obs::Obs;
//!
//! let obs = Obs::wall_clock();
//! let span = obs.span("explore/generation");
//! let value = span.time("score_batch", || 6 * 7); // "explore/generation/score_batch"
//! assert_eq!(value, 42);
//! drop(span);
//! assert!(obs.summary().spans["explore/generation/score_batch"].total_ns > 0);
//! ```
//!
//! Every value and span series additionally feeds a log-bucketed
//! histogram ([`mod@hist`]), so summaries report p50/p90/p99 estimates
//! instead of min/max — and a recorder can carry an optional bounded
//! [`TraceLog`] of typed events ([`Obs::traced`]) with
//! Chrome-trace and folded-stack exporters; see [`mod@trace`].
//!
//! The [`mod@bench`] module holds the machine-readable `BENCH_*.json` row
//! format (`{metric, value, unit, config}`) that `perf_bench` writes and
//! CI re-parses, and [`mod@diff`] the regression comparison behind
//! `perf_bench diff`.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod bench;
pub mod diff;
pub mod hist;
pub mod trace;

pub use bench::BenchRow;
pub use hist::Hist;
pub use trace::{TraceEvent, TraceKind, TraceLog, TraceSnapshot};

/// What a [`Recorder`] is allowed to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsMode {
    /// No recorder attached; every operation is a no-op.
    Disabled,
    /// Record counts and values, but never read the clock and never
    /// record scheduling-dependent series: the summary is byte-identical
    /// across identical runs, whatever the thread interleaving.
    Deterministic,
    /// Record everything, including real wall-clock durations.
    WallClock,
}

impl ObsMode {
    /// Stable lowercase name: `disabled` / `deterministic` / `wall_clock`.
    pub fn label(self) -> &'static str {
        match self {
            ObsMode::Disabled => "disabled",
            ObsMode::Deterministic => "deterministic",
            ObsMode::WallClock => "wall_clock",
        }
    }
}

/// Statistics for one recorded value series: count, sum, and a
/// log-bucketed percentile histogram ([`Hist`]) over the samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValueStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Log-bucketed distribution of the samples.
    hist: Hist,
}

impl ValueStat {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.hist.record(value);
    }

    /// Folds another stat into this one (used when a summary merges the
    /// per-thread recorder stripes).
    fn merge(&mut self, other: &ValueStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.hist.merge(&other.hist);
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated quantile of the samples (see [`Hist::percentile`]).
    pub fn percentile(&self, q: f64) -> f64 {
        self.hist.percentile(q)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.hist.p50()
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.hist.p90()
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.hist.p99()
    }
}

/// Aggregate statistics for one named span: entry count, total
/// nanoseconds, and a log-bucketed duration histogram. In
/// [`ObsMode::Deterministic`] durations are recorded as `0`, so the
/// bucket counts survive but every wall value (total and percentiles)
/// renders as exactly `0`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries; always `0` in
    /// [`ObsMode::Deterministic`].
    pub total_ns: u64,
    /// Log-bucketed distribution of per-entry durations.
    hist: Hist,
}

impl SpanStat {
    fn observe(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
        self.hist.record(elapsed_ns as f64);
    }

    fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.hist.merge(&other.hist);
    }

    /// Estimated duration quantile in nanoseconds.
    pub fn percentile_ns(&self, q: f64) -> f64 {
        self.hist.percentile(q)
    }

    /// Median duration estimate in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.hist.p50()
    }

    /// 90th-percentile duration estimate in nanoseconds.
    pub fn p90_ns(&self) -> f64 {
        self.hist.p90()
    }

    /// 99th-percentile duration estimate in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.hist.p99()
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, ValueStat>,
    spans: BTreeMap<String, SpanStat>,
}

/// One stripe of recorder state on its own cache line, so two threads
/// recording into different stripes never bounce a line between cores.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(Mutex<State>);

/// Stripe count. Threads are spread across stripes round-robin by a
/// per-thread index, so with a pool-sized thread count each recording
/// thread effectively owns a stripe and never contends.
const STRIPES: usize = 16;

/// Monotonic per-thread index, assigned on a thread's first recording.
static NEXT_THREAD: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
thread_local! {
    static THREAD_STRIPE: usize =
        NEXT_THREAD.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % STRIPES;
}

/// Process-logical trace thread ids, assigned on a thread's first traced
/// event: the main thread of a fresh process is `0`, the next thread to
/// trace is `1`, and so on. Unlike OS thread ids these are stable across
/// runs of a single-threaded workload, which is what keeps deterministic
/// trace exports byte-identical.
static NEXT_TID: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
thread_local! {
    static TRACE_TID: u32 = NEXT_TID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

thread_local! {
    /// The request id active on this thread (see [`Obs::request_scope`]);
    /// `0` = none.
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// The trace half of a recorder: the bounded event ring plus the epoch
/// timestamps are measured from.
#[derive(Debug)]
struct TraceState {
    log: Mutex<TraceLog>,
    epoch: Instant,
}

/// The shared sink behind an [`Obs`] handle. Interior-mutable and
/// thread-safe. State is striped per recording thread (summaries merge
/// the stripes), so concurrent workers do not serialize on one lock; all
/// maps are `BTreeMap`s so summaries iterate in a stable order.
#[derive(Debug)]
pub struct Recorder {
    mode: ObsMode,
    stripes: [Stripe; STRIPES],
    /// `Some` when tracing is enabled ([`Obs::traced`]).
    trace: Option<TraceState>,
}

impl Recorder {
    fn new(mode: ObsMode) -> Self {
        Recorder {
            mode,
            stripes: Default::default(),
            trace: None,
        }
    }

    /// Append a trace event, if tracing is enabled. The timestamp is read
    /// only in [`ObsMode::WallClock`]; deterministic traces carry `0`.
    fn trace_push(&self, kind: TraceKind) {
        if let Some(trace) = &self.trace {
            let ts_ns = if self.mode == ObsMode::WallClock {
                u64::try_from(trace.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            } else {
                0
            };
            let event = TraceEvent {
                ts_ns,
                tid: TRACE_TID.with(|t| *t),
                request_id: CURRENT_REQUEST.with(|c| c.get()),
                kind,
            };
            trace
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(event);
        }
    }

    /// Locks the calling thread's stripe.
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        let i = THREAD_STRIPE.with(|i| *i);
        // Observability must never take the process down: if another
        // thread panicked while holding the lock, keep recording into
        // whatever state it left behind.
        self.stripes[i].0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks every stripe in order and folds it into `f`.
    fn fold_stripes(&self, mut f: impl FnMut(&State)) {
        for stripe in &self.stripes {
            f(&stripe.0.lock().unwrap_or_else(|e| e.into_inner()));
        }
    }

    fn end_span(&self, name: &str, elapsed_ns: u64) {
        let mut state = self.lock();
        // `get_mut` first: the common case is a hot span name recorded
        // thousands of times, which must not allocate a key per entry.
        let stat = match state.spans.get_mut(name) {
            Some(stat) => stat,
            None => state.spans.entry(name.to_string()).or_default(),
        };
        stat.observe(elapsed_ns);
    }
}

/// A cheap, cloneable observability handle: `None` when disabled, a
/// shared [`Recorder`] otherwise. See the crate docs for the quickstart.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    rec: Option<Arc<Recorder>>,
}

impl Obs {
    /// A handle that records nothing; every operation is a single branch.
    /// This is also what [`Obs::default`] returns.
    pub fn disabled() -> Self {
        Obs { rec: None }
    }

    /// A recorder whose summary is byte-identical across identical runs:
    /// counts and values are recorded, the clock is never read, and
    /// scheduling-dependent series are dropped.
    pub fn deterministic() -> Self {
        Obs {
            rec: Some(Arc::new(Recorder::new(ObsMode::Deterministic))),
        }
    }

    /// A recorder that also measures real wall-clock durations and keeps
    /// scheduling-dependent series. Use for perf runs, not CI diffing.
    pub fn wall_clock() -> Self {
        Obs {
            rec: Some(Arc::new(Recorder::new(ObsMode::WallClock))),
        }
    }

    /// Enables structured event tracing on this handle: span enter/exit
    /// and counter events are appended to a bounded ring of `capacity`
    /// events (oldest overwritten first; see [`TraceLog`]). Call at
    /// construction time — the recorder is rebuilt, so clones taken
    /// before this call keep recording into the untraced recorder, and
    /// any already-recorded data is discarded. No-op when disabled.
    #[must_use]
    pub fn traced(self, capacity: usize) -> Self {
        match self.rec {
            None => self,
            Some(rec) => Obs {
                rec: Some(Arc::new(Recorder {
                    mode: rec.mode,
                    stripes: Default::default(),
                    trace: Some(TraceState {
                        log: Mutex::new(TraceLog::new(capacity)),
                        epoch: Instant::now(),
                    }),
                })),
            },
        }
    }

    /// Snapshot the trace ring for export ([`TraceSnapshot`]); `None`
    /// when this handle is untraced or disabled.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        let trace = self.rec.as_ref()?.trace.as_ref()?;
        Some(
            trace
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .snapshot(),
        )
    }

    /// Marks the calling thread as working on request `id` until the
    /// returned guard drops: every trace event recorded on this thread in
    /// between (span enter/exit, counter deltas) carries the id, which is
    /// how an exported trace attributes spans to the
    /// [`EvalSession`]-minted `RequestId` in a report's provenance.
    /// Scopes nest — the guard restores the previous id on drop. No-op
    /// when disabled.
    ///
    /// [`EvalSession`]: https://docs.rs/lego-eval
    pub fn request_scope(&self, id: u64) -> RequestScope {
        if self.rec.is_none() {
            return RequestScope {
                prev: 0,
                active: false,
                _not_send: std::marker::PhantomData,
            };
        }
        let prev = CURRENT_REQUEST.with(|c| c.replace(id));
        RequestScope {
            prev,
            active: true,
            _not_send: std::marker::PhantomData,
        }
    }

    /// The mode of the attached recorder ([`ObsMode::Disabled`] if none).
    pub fn mode(&self) -> ObsMode {
        self.rec.as_ref().map_or(ObsMode::Disabled, |r| r.mode)
    }

    /// `true` unless this handle is [`Obs::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Add `n` to the named counter.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(rec) = &self.rec {
            {
                let mut state = rec.lock();
                match state.counters.get_mut(name) {
                    Some(c) => *c += n,
                    None => {
                        state.counters.insert(name.to_string(), n);
                    }
                }
            }
            if rec.trace.is_some() {
                rec.trace_push(TraceKind::Count(name.into(), n));
            }
        }
    }

    /// Record one sample of the named value series (count/sum plus the
    /// percentile histogram). Non-finite samples are dropped: they cannot
    /// render as JSON and a single NaN would poison the sum forever.
    pub fn record(&self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        if let Some(rec) = &self.rec {
            let mut state = rec.lock();
            let stat = match state.values.get_mut(name) {
                Some(stat) => stat,
                None => state
                    .values
                    .entry(name.to_string())
                    .or_insert_with(ValueStat::default),
            };
            stat.observe(value);
        }
    }

    /// Like [`Obs::count`], but for totals that depend on thread
    /// scheduling (per-worker evaluation counts, duplicate computes from
    /// racing cache fills). Dropped in [`ObsMode::Deterministic`] so the
    /// summary stays byte-stable; recorded normally in
    /// [`ObsMode::WallClock`].
    pub fn count_scheduling(&self, name: &str, n: u64) {
        if self.mode() == ObsMode::WallClock {
            self.count(name, n);
        }
    }

    /// Like [`Obs::record`], but for scheduling-dependent samples (queue
    /// depths observed by racing workers). Dropped in
    /// [`ObsMode::Deterministic`].
    pub fn record_scheduling(&self, name: &str, value: f64) {
        if self.mode() == ObsMode::WallClock {
            self.record(name, value);
        }
    }

    /// Open a named span; it closes (and records) when the returned guard
    /// drops. In [`ObsMode::Deterministic`] the entry is counted but the
    /// clock is never read, so the recorded duration is `0`.
    ///
    /// The guard borrows both this handle and the name, so opening a span
    /// on the hot path allocates nothing.
    pub fn span<'a>(&'a self, name: &'a str) -> Span<'a> {
        match &self.rec {
            None => Span {
                rec: None,
                name: Cow::Borrowed(""),
                start: None,
            },
            Some(rec) => {
                if rec.trace.is_some() {
                    rec.trace_push(TraceKind::Enter(name.into()));
                }
                Span {
                    rec: Some(rec),
                    name: Cow::Borrowed(name),
                    start: if rec.mode == ObsMode::WallClock {
                        Some(Instant::now())
                    } else {
                        None
                    },
                }
            }
        }
    }

    /// Run `f` inside a span of the given name and return its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Snapshot the recorder into an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        match &self.rec {
            None => Summary {
                mode: ObsMode::Disabled,
                counters: BTreeMap::new(),
                values: BTreeMap::new(),
                spans: BTreeMap::new(),
            },
            Some(rec) => {
                let mut counters: BTreeMap<String, u64> = BTreeMap::new();
                let mut values: BTreeMap<String, ValueStat> = BTreeMap::new();
                let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
                rec.fold_stripes(|state| {
                    for (k, v) in &state.counters {
                        match counters.get_mut(k) {
                            Some(c) => *c += v,
                            None => {
                                counters.insert(k.clone(), *v);
                            }
                        }
                    }
                    for (k, v) in &state.values {
                        match values.get_mut(k) {
                            Some(s) => s.merge(v),
                            None => {
                                values.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    for (k, v) in &state.spans {
                        match spans.get_mut(k) {
                            Some(s) => s.merge(v),
                            None => {
                                spans.insert(k.clone(), v.clone());
                            }
                        }
                    }
                });
                Summary {
                    mode: rec.mode,
                    counters,
                    values,
                    spans,
                }
            }
        }
    }

    /// Clear all recorded data (mode is kept; the trace ring is emptied
    /// too, keeping its capacity).
    pub fn reset(&self) {
        if let Some(rec) = &self.rec {
            for stripe in &rec.stripes {
                let mut state = stripe.0.lock().unwrap_or_else(|e| e.into_inner());
                state.counters.clear();
                state.values.clear();
                state.spans.clear();
            }
            if let Some(trace) = &rec.trace {
                let mut log = trace.log.lock().unwrap_or_else(|e| e.into_inner());
                *log = TraceLog::new(log.capacity());
            }
        }
    }
}

/// Drop guard from [`Obs::request_scope`]: restores the thread's previous
/// request id when dropped. Deliberately `!Send` — the guard manipulates
/// thread-local state, so it must drop on the thread that created it.
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if self.active {
            CURRENT_REQUEST.with(|c| c.set(self.prev));
        }
    }
}

/// Drop guard for one entry into a named span. Created by [`Obs::span`].
/// Borrows the recorder and (usually) the name, so the guard itself is
/// allocation-free; only [`Span::child`] builds an owned composed name.
#[derive(Debug)]
pub struct Span<'a> {
    rec: Option<&'a Recorder>,
    name: Cow<'a, str>,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Open a nested span named `parent/child`.
    pub fn child(&self, name: &str) -> Span<'a> {
        match self.rec {
            None => Span {
                rec: None,
                name: Cow::Borrowed(""),
                start: None,
            },
            Some(rec) => {
                let composed = format!("{}/{}", self.name, name);
                if rec.trace.is_some() {
                    rec.trace_push(TraceKind::Enter(composed.as_str().into()));
                }
                Span {
                    rec: Some(rec),
                    name: Cow::Owned(composed),
                    start: if rec.mode == ObsMode::WallClock {
                        Some(Instant::now())
                    } else {
                        None
                    },
                }
            }
        }
    }

    /// Run `f` inside a nested span named `parent/child`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.child(name);
        f()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let ns = self
                .start
                .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            rec.end_span(&self.name, ns);
            if rec.trace.is_some() {
                rec.trace_push(TraceKind::Exit(self.name.as_ref().into()));
            }
        }
    }
}

/// An immutable snapshot of a [`Recorder`], with a byte-stable
/// [`Summary::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Mode of the recorder this was snapshotted from.
    pub mode: ObsMode,
    /// Counter totals, keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// Value series statistics, keyed by name.
    pub values: BTreeMap<String, ValueStat>,
    /// Span statistics, keyed by name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Summary {
    /// Counter total by name (`0` if never counted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.values.is_empty() && self.spans.is_empty()
    }

    /// Render as a stable JSON document: sorted keys, fixed layout, no
    /// clock-derived content in [`ObsMode::Deterministic`]. Two identical
    /// runs produce byte-identical output, so CI can `diff` it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.label()));
        out.push_str("  \"counters\": {");
        render_map(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"values\": {");
        render_map(&mut out, &self.values, |out, v| {
            out.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                v.count,
                bench::fmt_f64(v.sum),
                bench::fmt_f64(v.p50()),
                bench::fmt_f64(v.p90()),
                bench::fmt_f64(v.p99()),
            ))
        });
        out.push_str("},\n  \"spans\": {");
        render_map(&mut out, &self.spans, |out, v| {
            out.push_str(&format!(
                "{{\"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                v.count,
                v.total_ns,
                bench::fmt_f64(v.p50_ns()),
                bench::fmt_f64(v.p90_ns()),
                bench::fmt_f64(v.p99_ns()),
            ))
        });
        out.push_str("}\n}\n");
        out
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut render_value: impl FnMut(&mut String, &V),
) {
    if map.is_empty() {
        return;
    }
    out.push('\n');
    for (i, (k, v)) in map.iter().enumerate() {
        out.push_str("    \"");
        bench::escape_into(out, k);
        out.push_str("\": ");
        render_value(out, v);
        if i + 1 < map.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        obs.count("a", 1);
        obs.record("b", 2.0);
        let _span = obs.span("c");
        drop(_span);
        let s = obs.summary();
        assert_eq!(s.mode, ObsMode::Disabled);
        assert!(s.is_empty());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn deterministic_counts_but_never_times() {
        let obs = Obs::deterministic();
        obs.count("eval.requests", 2);
        obs.count("eval.requests", 1);
        obs.record("bytes", 10.0);
        obs.record("bytes", 4.0);
        obs.count_scheduling("worker.0.evals", 5);
        obs.record_scheduling("queue", 3.0);
        obs.time("phase", || ());
        obs.time("phase", || ());

        let s = obs.summary();
        assert_eq!(s.counter("eval.requests"), 3);
        assert_eq!(s.values["bytes"].count, 2);
        assert_eq!(s.values["bytes"].sum, 14.0);
        assert_eq!(s.values["bytes"].p50(), 4.0); // bucket [4, 8)
        assert_eq!(s.values["bytes"].p99(), 8.0); // 10 lands in [8, 16)
        assert_eq!(s.values["bytes"].mean(), 7.0);
        // Scheduling-dependent series are dropped in deterministic mode.
        assert_eq!(s.counter("worker.0.evals"), 0);
        assert!(!s.values.contains_key("queue"));
        assert_eq!(s.spans["phase"].count, 2);
        assert_eq!(s.spans["phase"].total_ns, 0);
        // Zero durations keep their counts but report zero percentiles.
        assert_eq!(s.spans["phase"].p99_ns(), 0.0);
    }

    #[test]
    fn wall_clock_times_and_keeps_scheduling_series() {
        let obs = Obs::wall_clock();
        obs.count_scheduling("worker.0.evals", 5);
        obs.record_scheduling("queue", 3.0);
        obs.time("phase", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let s = obs.summary();
        assert_eq!(s.counter("worker.0.evals"), 5);
        assert_eq!(s.values["queue"].count, 1);
        assert_eq!(s.spans["phase"].count, 1);
        assert!(s.spans["phase"].total_ns >= 1_000_000);
    }

    #[test]
    fn nested_spans_compose_names() {
        let obs = Obs::deterministic();
        let outer = obs.span("a");
        let v = outer.time("b", || 7);
        assert_eq!(v, 7);
        drop(outer);
        let s = obs.summary();
        assert_eq!(s.spans["a"].count, 1);
        assert_eq!(s.spans["a/b"].count, 1);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let obs = Obs::deterministic();
        obs.record("v", f64::NAN);
        obs.record("v", f64::INFINITY);
        obs.record("v", 1.5);
        let s = obs.summary();
        assert_eq!(s.values["v"].count, 1);
        assert_eq!(s.values["v"].sum, 1.5);
    }

    #[test]
    fn render_is_stable_and_sorted() {
        let obs = Obs::deterministic();
        obs.count("zeta", 1);
        obs.count("alpha", 2);
        obs.record("mid", 3.5);
        obs.time("span", || ());
        let a = obs.summary().render();
        let b = obs.summary().render();
        assert_eq!(a, b);
        let alpha = a.find("\"alpha\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "keys must render sorted");
        assert!(a.contains("\"mode\": \"deterministic\""));
        assert!(a.contains("\"sum\": 3.5"));
    }

    #[test]
    fn reset_clears_everything() {
        let obs = Obs::deterministic();
        obs.count("a", 1);
        obs.time("s", || ());
        obs.reset();
        assert!(obs.summary().is_empty());
        assert_eq!(obs.mode(), ObsMode::Deterministic);
    }

    #[test]
    fn clones_share_one_recorder() {
        let obs = Obs::deterministic();
        let clone = obs.clone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = clone.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        h.count("shared", 1);
                    }
                });
            }
        });
        assert_eq!(obs.summary().counter("shared"), 400);
    }
}
