//! Property tests for the determinism contract of `lego-obs`: a
//! `Deterministic`-mode summary must be byte-identical across two
//! identical runs, whatever sequence of operations produced it, and the
//! bench-row JSON must round-trip exactly.

use lego_obs::bench::{parse_bench_json, render_bench_json, BenchRow};
use lego_obs::{Obs, TraceEvent, TraceKind, TraceLog};
use proptest::prelude::*;
use proptest::{collection, sample};
use std::collections::BTreeMap;

/// One recorded operation, replayable onto any recorder.
#[derive(Debug, Clone)]
enum Op {
    Count(String, u64),
    Record(String, f64),
    CountScheduling(String, u64),
    Span(String),
    NestedSpan(String, String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = sample::select(vec![
        "eval/context_build".to_string(),
        "eval.requests".to_string(),
        "sim.mappings_tried".to_string(),
        "pool.queue_depth".to_string(),
        "codec/encode".to_string(),
    ]);
    (name, 0u8..5, 0u64..1000).prop_map(|(name, kind, raw)| match kind {
        0 => Op::Count(name, raw),
        1 => Op::Record(name, raw as f64 / 8.0),
        2 => Op::CountScheduling(name, raw),
        3 => Op::Span(name),
        _ => Op::NestedSpan(name, format!("sub{}", raw % 3)),
    })
}

fn replay(obs: &Obs, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Count(name, n) => obs.count(name, *n),
            Op::Record(name, v) => obs.record(name, *v),
            Op::CountScheduling(name, n) => obs.count_scheduling(name, *n),
            Op::Span(name) => drop(obs.span(name)),
            Op::NestedSpan(name, child) => {
                let span = obs.span(name);
                span.time(child, || ());
            }
        }
    }
}

/// An arbitrary trace event kind over a small name vocabulary, so the
/// generated sequences contain plenty of enters/exits that do and do not
/// match up (orphans, still-open spans, cross-thread interleavings).
fn kind_strategy() -> impl Strategy<Value = TraceKind> {
    let name = sample::select(vec![
        "eval/evaluate".to_string(),
        "eval/context_build".to_string(),
        "explore/shard".to_string(),
        "cache.hits".to_string(),
    ]);
    (name, 0u8..3, 0u64..10).prop_map(|(name, kind, delta)| match kind {
        0 => TraceKind::Enter(name.into()),
        1 => TraceKind::Exit(name.into()),
        _ => TraceKind::Count(name.into(), delta),
    })
}

/// Assert that a Chrome-trace JSON export has balanced `B`/`E` events per
/// thread: scanning each event line in order, a thread's open-span depth
/// never goes negative and ends at zero.
fn assert_balanced_per_tid(json: &str) -> Result<(), TestCaseError> {
    let mut depth: BTreeMap<String, i64> = BTreeMap::new();
    for line in json.lines() {
        let delta = if line.contains("\"ph\": \"B\"") {
            1
        } else if line.contains("\"ph\": \"E\"") {
            -1
        } else {
            continue;
        };
        let tid: String = line
            .split("\"tid\": ")
            .nth(1)
            .map(|rest| rest.chars().take_while(|c| c.is_ascii_digit()).collect())
            .unwrap_or_default();
        prop_assert!(!tid.is_empty(), "event line missing tid: {line}");
        let d = depth.entry(tid).or_default();
        *d += delta;
        prop_assert!(*d >= 0, "exit before enter on a thread: {line}");
    }
    for (tid, d) in depth {
        prop_assert_eq!(d, 0, "unbalanced spans on tid {}", tid);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Satellite 3: any event sequence pushed through a bounded ring —
    // including ones whose enters were overwritten — exports Chrome-trace
    // JSON that parses with the crate's own JSON parser and stays
    // enter/exit balanced per thread.
    #[test]
    fn chrome_trace_export_parses_and_balances(
        kinds in collection::vec((kind_strategy(), 0u32..3), 0usize..48),
        capacity in 1usize..32,
    ) {
        let mut log = TraceLog::new(capacity);
        for (i, (kind, tid)) in kinds.iter().enumerate() {
            log.push(TraceEvent {
                ts_ns: i as u64,
                tid: *tid,
                request_id: (i % 3) as u64,
                kind: kind.clone(),
            });
        }
        let snap = log.snapshot();
        let json = snap.chrome_trace_json();
        prop_assert!(
            parse_bench_json(&json).is_ok(),
            "export must be valid JSON: {json}"
        );
        assert_balanced_per_tid(&json)?;
        // The folded exporter never panics on the same inputs.
        let _ = snap.folded_stacks();
    }

    // The real recorder path: spans/counters replayed onto a traced
    // deterministic recorder export parseable JSON, byte-identical across
    // two identical replays (same thread → same logical tid, ts always 0).
    #[test]
    fn traced_deterministic_exports_are_byte_identical(
        ops in collection::vec(op_strategy(), 0usize..40),
    ) {
        let a = Obs::deterministic().traced(64);
        let b = Obs::deterministic().traced(64);
        replay(&a, &ops);
        replay(&b, &ops);
        let ja = a.trace_snapshot().unwrap().chrome_trace_json();
        let jb = b.trace_snapshot().unwrap().chrome_trace_json();
        prop_assert!(parse_bench_json(&ja).is_ok());
        assert_balanced_per_tid(&ja)?;
        prop_assert_eq!(&ja, &jb);
        prop_assert_eq!(
            a.trace_snapshot().unwrap().folded_stacks(),
            b.trace_snapshot().unwrap().folded_stacks()
        );
    }

    // Satellite 3: every-prefix truncation. After each push, the ring
    // holds exactly the newest min(pushed, capacity) events in order and
    // accounts for every overwritten event.
    #[test]
    fn ring_truncates_correctly_at_every_prefix(
        n in 0usize..80,
        capacity in 1usize..16,
    ) {
        let mut log = TraceLog::new(capacity);
        prop_assert!(log.is_empty());
        for i in 0..n {
            log.push(TraceEvent {
                ts_ns: i as u64,
                tid: 0,
                request_id: 0,
                kind: TraceKind::Count("c".into(), 1),
            });
            let pushed = i + 1;
            let expect_len = pushed.min(capacity);
            prop_assert_eq!(log.len(), expect_len);
            prop_assert_eq!(log.dropped(), (pushed - expect_len) as u64);
            let resident: Vec<u64> = log.events().iter().map(|e| e.ts_ns).collect();
            let expected: Vec<u64> = ((pushed - expect_len)..pushed).map(|x| x as u64).collect();
            prop_assert_eq!(resident, expected, "prefix of {} events", pushed);
        }
    }

    // The satellite-3 contract: replaying any op sequence onto two fresh
    // deterministic recorders yields byte-identical summary renders.
    #[test]
    fn deterministic_summary_is_byte_identical_across_runs(
        ops in collection::vec(op_strategy(), 0usize..40),
    ) {
        let a = Obs::deterministic();
        let b = Obs::deterministic();
        replay(&a, &ops);
        replay(&b, &ops);
        prop_assert_eq!(a.summary().render(), b.summary().render());
        // And the snapshot itself compares equal.
        prop_assert_eq!(a.summary(), b.summary());
    }

    // Deterministic renders never contain clock-derived nanoseconds.
    #[test]
    fn deterministic_spans_always_render_zero_ns(
        ops in collection::vec(op_strategy(), 1usize..40),
    ) {
        let obs = Obs::deterministic();
        replay(&obs, &ops);
        for stat in obs.summary().spans.values() {
            prop_assert_eq!(stat.total_ns, 0);
        }
    }

    // Bench-row JSON round-trips exactly for arbitrary row contents.
    #[test]
    fn bench_rows_roundtrip(
        rows in collection::vec(
            (
                sample::select(vec![
                    "evaluate_single".to_string(),
                    "batch_throughput".to_string(),
                    "odd \"quoted\"\\name".to_string(),
                ]),
                -1_000_000i64..1_000_000,
                0u8..3,
            )
                .prop_map(|(metric, v, unit)| BenchRow::new(
                    metric,
                    v as f64 / 16.0,
                    ["ns", "evals/s", "bytes"][unit as usize],
                    format!("cfg{}", v % 7),
                )),
            0usize..12,
        ),
    ) {
        let text = render_bench_json(&rows);
        prop_assert_eq!(parse_bench_json(&text).unwrap(), rows);
    }
}
