//! Property tests for the determinism contract of `lego-obs`: a
//! `Deterministic`-mode summary must be byte-identical across two
//! identical runs, whatever sequence of operations produced it, and the
//! bench-row JSON must round-trip exactly.

use lego_obs::bench::{parse_bench_json, render_bench_json, BenchRow};
use lego_obs::Obs;
use proptest::prelude::*;
use proptest::{collection, sample};

/// One recorded operation, replayable onto any recorder.
#[derive(Debug, Clone)]
enum Op {
    Count(String, u64),
    Record(String, f64),
    CountScheduling(String, u64),
    Span(String),
    NestedSpan(String, String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = sample::select(vec![
        "eval/context_build".to_string(),
        "eval.requests".to_string(),
        "sim.mappings_tried".to_string(),
        "pool.queue_depth".to_string(),
        "codec/encode".to_string(),
    ]);
    (name, 0u8..5, 0u64..1000).prop_map(|(name, kind, raw)| match kind {
        0 => Op::Count(name, raw),
        1 => Op::Record(name, raw as f64 / 8.0),
        2 => Op::CountScheduling(name, raw),
        3 => Op::Span(name),
        _ => Op::NestedSpan(name, format!("sub{}", raw % 3)),
    })
}

fn replay(obs: &Obs, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Count(name, n) => obs.count(name, *n),
            Op::Record(name, v) => obs.record(name, *v),
            Op::CountScheduling(name, n) => obs.count_scheduling(name, *n),
            Op::Span(name) => drop(obs.span(name)),
            Op::NestedSpan(name, child) => {
                let span = obs.span(name);
                span.time(child, || ());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The satellite-3 contract: replaying any op sequence onto two fresh
    // deterministic recorders yields byte-identical summary renders.
    #[test]
    fn deterministic_summary_is_byte_identical_across_runs(
        ops in collection::vec(op_strategy(), 0usize..40),
    ) {
        let a = Obs::deterministic();
        let b = Obs::deterministic();
        replay(&a, &ops);
        replay(&b, &ops);
        prop_assert_eq!(a.summary().render(), b.summary().render());
        // And the snapshot itself compares equal.
        prop_assert_eq!(a.summary(), b.summary());
    }

    // Deterministic renders never contain clock-derived nanoseconds.
    #[test]
    fn deterministic_spans_always_render_zero_ns(
        ops in collection::vec(op_strategy(), 1usize..40),
    ) {
        let obs = Obs::deterministic();
        replay(&obs, &ops);
        for stat in obs.summary().spans.values() {
            prop_assert_eq!(stat.total_ns, 0);
        }
    }

    // Bench-row JSON round-trips exactly for arbitrary row contents.
    #[test]
    fn bench_rows_roundtrip(
        rows in collection::vec(
            (
                sample::select(vec![
                    "evaluate_single".to_string(),
                    "batch_throughput".to_string(),
                    "odd \"quoted\"\\name".to_string(),
                ]),
                -1_000_000i64..1_000_000,
                0u8..3,
            )
                .prop_map(|(metric, v, unit)| BenchRow::new(
                    metric,
                    v as f64 / 16.0,
                    ["ns", "evals/s", "bytes"][unit as usize],
                    format!("cfg{}", v % 7),
                )),
            0usize..12,
        ),
    ) {
        let text = render_bench_json(&rows);
        prop_assert_eq!(parse_bench_json(&text).unwrap(), rows);
    }
}
