//! The canonical perf workloads behind the `perf_bench` binary: a small,
//! fixed set of measurements over the evaluation stack, emitted as
//! [`BenchRow`]s for `BENCH_eval.json`.
//!
//! Every run exercises five surfaces:
//!
//! 1. **Single evaluate** — one cold `EvalSession::evaluate` of ResNet-50
//!    on `lego_256`;
//! 2. **Batch throughput** — `evaluate_batch` over a small zoo mix;
//! 3. **Explorer** — a full [`explore`] (grid + random + ES) over the tiny
//!    design space, with the obs handle threaded through the strategies;
//! 4. **Snapshot codec** — encode, decode, and merge of two shard
//!    checkpoints;
//! 5. **Mapspace rewrite search** — one cold
//!    [`MapSearch`] run (seed → saturate →
//!    extract) of MobileNetV2 on the menu-restricted `lego_icoc_1k`.
//!
//! The same row set is emitted in every [`ObsMode`]. In
//! [`ObsMode::Deterministic`] all wall-clock rows are exactly `0` and the
//! work-count rows (layers, evaluations, bytes, cache entries) carry the
//! signal — so the rendered document is byte-identical across runs and CI
//! can diff it. In [`ObsMode::WallClock`] each surface is repeated
//! [`WALL_ITERS`] times and the wall rows hold the **minimum** observed
//! nanoseconds (the scheduler-noise-free estimate; single-shot walls on a
//! shared machine vary by 2-3×), with the derived throughput rows
//! (`requests/s`, `evals/s`) computed from that minimum. Deterministic
//! mode always runs exactly one iteration, so its byte-identity is
//! unaffected by the repetition protocol.

use lego_eval::{EvalRequest, EvalSession};
use lego_explorer::{
    default_strategies, explore, explore_shard, DesignSpace, ExploreOptions, Snapshot,
};
use lego_mapspace::MapSearch;
use lego_model::TechModel;
use lego_obs::bench::BenchRow;
use lego_obs::{Obs, ObsMode, Summary};
use lego_sim::HwConfig;
use lego_workloads::zoo;

/// Wall-clock repetitions per surface (see the module docs); deterministic
/// and disabled modes always run each surface once.
pub const WALL_ITERS: u32 = 7;

/// Metric names every `perf_bench` run must emit — the contract the CI
/// bench-smoke job (and `perf_bench check`) verifies after parsing
/// `BENCH_eval.json`.
pub const REQUIRED_METRICS: &[&str] = &[
    "evaluate_single_wall",
    "evaluate_single_layers",
    "evaluate_batch_wall",
    "evaluate_batch_requests",
    "evaluate_batch_throughput",
    "explore_wall",
    "explore_evals",
    "explore_throughput",
    "snapshot_encode_wall",
    "snapshot_decode_wall",
    "snapshot_merge_wall",
    "snapshot_bytes",
    "mapspace_wall",
    "mapspace_nodes",
    "mapspace_classes",
];

/// The subset of [`REQUIRED_METRICS`] a wallclock-mode run must fill with
/// real measurements — deterministic mode pins every one of these to
/// exactly `0` (it never reads the clock), so `perf_bench check --wall`
/// asserting them nonzero-and-finite distinguishes a genuine wallclock
/// trajectory from a deterministic document passed off as one.
pub const WALL_METRICS: &[&str] = &[
    "evaluate_single_wall",
    "evaluate_batch_wall",
    "evaluate_batch_throughput",
    "explore_wall",
    "explore_throughput",
    "snapshot_encode_wall",
    "snapshot_decode_wall",
    "snapshot_merge_wall",
    "mapspace_wall",
];

/// Everything one perf run produces: the machine-readable rows plus the
/// full observability summary behind them.
#[derive(Debug, Clone)]
pub struct PerfRun {
    /// `BENCH_eval.json` rows, in stable emission order.
    pub rows: Vec<BenchRow>,
    /// The recorder snapshot the rows were derived from.
    pub summary: Summary,
}

/// Required metrics absent from `rows` (empty = the contract holds).
pub fn missing_metrics(rows: &[BenchRow]) -> Vec<&'static str> {
    REQUIRED_METRICS
        .iter()
        .copied()
        .filter(|m| !rows.iter().any(|r| r.metric == *m))
        .collect()
}

/// Wall metrics in `rows` that are missing, non-finite, or not strictly
/// positive (empty = a credible wallclock measurement).
pub fn invalid_wall_metrics(rows: &[BenchRow]) -> Vec<&'static str> {
    WALL_METRICS
        .iter()
        .copied()
        .filter(|m| {
            !rows
                .iter()
                .any(|r| r.metric == *m && r.value.is_finite() && r.value > 0.0)
        })
        .collect()
}

/// The unit a known metric must carry (`None` for metrics this crate does
/// not emit). Wall metrics are nanoseconds, throughputs are rates, and
/// work counts are what their name says — a mismatched unit means the
/// document was hand-edited or produced by an incompatible build.
pub fn expected_unit(metric: &str) -> Option<&'static str> {
    match metric {
        m if m.ends_with("_wall") => Some("ns"),
        "evaluate_single_layers" => Some("layers"),
        "evaluate_batch_throughput" => Some("requests/s"),
        "explore_throughput" => Some("evals/s"),
        "snapshot_bytes" => Some("bytes"),
        "evaluate_single_cache_misses"
        | "evaluate_batch_requests"
        | "explore_evals"
        | "snapshot_cache_entries"
        | "snapshot_evaluated"
        | "mapspace_nodes"
        | "mapspace_classes" => Some("count"),
        _ => None,
    }
}

/// Structural problems in a bench document: rows whose value is
/// non-finite or negative (no perf measurement is either), and known
/// metrics carrying the wrong unit. One malformed row used to pass
/// `perf_bench check --wall` as long as the [`WALL_METRICS`] were
/// present; this is the rest of the validation. Empty = clean.
pub fn invalid_rows(rows: &[BenchRow]) -> Vec<String> {
    let mut problems = Vec::new();
    for row in rows {
        if !row.value.is_finite() {
            problems.push(format!("{}: non-finite value", row.metric));
        } else if row.value < 0.0 {
            problems.push(format!("{}: negative value {}", row.metric, row.value));
        }
        if let Some(expected) = expected_unit(&row.metric) {
            if row.unit != expected {
                problems.push(format!(
                    "{}: unit '{}' (expected '{}')",
                    row.metric, row.unit, expected
                ));
            }
        }
    }
    problems
}

fn obs_for(mode: ObsMode) -> Obs {
    match mode {
        ObsMode::Disabled => Obs::disabled(),
        ObsMode::Deterministic => Obs::deterministic(),
        ObsMode::WallClock => Obs::wall_clock(),
    }
}

/// `value / (ns ⋅ 1e-9)`, or `0` when no time was recorded (deterministic
/// mode never reads the clock, so its throughput rows are exactly zero).
fn per_second(value: f64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        value / (ns as f64 * 1e-9)
    }
}

/// Folds one iteration's wall time into the running minimum. `started` is
/// `None` outside wall-clock mode, which keeps the minimum at `0` (and the
/// deterministic path off the clock entirely).
fn fold_min_wall(min_ns: &mut u64, iteration: u32, started: Option<std::time::Instant>) {
    if let Some(start) = started {
        let ns = start.elapsed().as_nanos() as u64;
        *min_ns = if iteration == 0 {
            ns
        } else {
            (*min_ns).min(ns)
        };
    }
}

/// Runs the canonical workloads under `mode` and returns the rows.
///
/// Deterministic runs pin every thread pool to one worker so cache-warmth
/// counters cannot race; wall-clock runs use the automatic pool width
/// (that is the configuration whose performance matters).
pub fn run(mode: ObsMode) -> PerfRun {
    let obs = obs_for(mode);
    let threads = if mode == ObsMode::WallClock { 0 } else { 1 };
    let iters = if mode == ObsMode::WallClock {
        WALL_ITERS
    } else {
        1
    };
    // `Some` only in wall-clock mode: the deterministic path never reads
    // the clock, and the minimum over iterations stays exactly 0.
    let clock = || (mode == ObsMode::WallClock).then(std::time::Instant::now);
    let tag = |workload: &str| format!("{workload} mode={}", mode.label());
    let mut rows = Vec::new();

    // 1. Single cold evaluate: a fresh session per iteration, so every
    // repetition prices from an empty cache.
    {
        let request = EvalRequest::builder(zoo::resnet50(), HwConfig::lego_256())
            .build()
            .expect("zoo model on stock hardware is a valid request");
        let cfg = tag("resnet50@lego_256");
        let mut wall = 0u64;
        let mut last = None;
        for it in 0..iters {
            let session = EvalSession::new()
                .with_threads(if threads == 0 { 8 } else { threads })
                .with_obs(obs.clone());
            let started = clock();
            let report = obs.time("bench/evaluate_single", || session.evaluate(&request));
            fold_min_wall(&mut wall, it, started);
            last = Some(report);
        }
        let report = last.expect("at least one iteration");
        rows.push(BenchRow::new(
            "evaluate_single_wall",
            wall as f64,
            "ns",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "evaluate_single_layers",
            report.per_layer.len() as f64,
            "layers",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "evaluate_single_cache_misses",
            report.provenance.cache_misses as f64,
            "count",
            &cfg,
        ));
    }

    // 2. Batch throughput over a zoo mix: one session reused across
    // iterations, so the minimum reflects the steady state a sweep driver
    // sees (warm cache, warm pool) rather than first-touch costs.
    {
        let session = EvalSession::new()
            .with_threads(if threads == 0 { 8 } else { threads })
            .with_obs(obs.clone());
        let requests: Vec<EvalRequest> = [zoo::lenet(), zoo::mobilenet_v2(), zoo::resnet50()]
            .into_iter()
            .map(|m| {
                EvalRequest::builder(m, HwConfig::lego_256())
                    .build()
                    .expect("zoo model on stock hardware is a valid request")
            })
            .collect();
        let cfg = tag("lenet+mobilenet_v2+resnet50@lego_256");
        let mut wall = 0u64;
        for it in 0..iters {
            let started = clock();
            let reports = obs.time("bench/evaluate_batch", || session.evaluate_batch(&requests));
            fold_min_wall(&mut wall, it, started);
            assert_eq!(reports.len(), requests.len());
        }
        rows.push(BenchRow::new(
            "evaluate_batch_wall",
            wall as f64,
            "ns",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "evaluate_batch_requests",
            requests.len() as f64,
            "count",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "evaluate_batch_throughput",
            per_second(requests.len() as f64, wall),
            "requests/s",
            &cfg,
        ));
    }

    // 3. Explorer: the full strategy portfolio over the tiny space, fresh
    // strategies (and a fresh evaluator inside `explore`) per iteration.
    let opts = ExploreOptions {
        budget_per_strategy: 24,
        threads,
        obs: obs.clone(),
        ..Default::default()
    };
    {
        let model = zoo::lenet();
        let cfg = tag("lenet@tiny_space budget=24x3");
        let mut wall = 0u64;
        let mut evals = 0u64;
        for it in 0..iters {
            let started = clock();
            let result = obs.time("bench/explore", || {
                explore(
                    &model,
                    &DesignSpace::tiny(),
                    &mut default_strategies(7),
                    &opts,
                )
            });
            fold_min_wall(&mut wall, it, started);
            assert!(!result.frontier.is_empty());
            if it == 0 {
                // `explore.evals` is counted before each batch evaluates,
                // so one iteration's total is identical in every mode and
                // under any pool width.
                evals = obs.summary().counter("explore.evals");
            }
        }
        rows.push(BenchRow::new("explore_wall", wall as f64, "ns", &cfg));
        rows.push(BenchRow::new("explore_evals", evals as f64, "count", &cfg));
        rows.push(BenchRow::new(
            "explore_throughput",
            per_second(evals as f64, wall),
            "evals/s",
            &cfg,
        ));
    }

    // 4. Snapshot codec: encode / decode / merge two shard checkpoints
    // (the checkpoints themselves are produced once; only the codec work
    // is repeated and timed).
    {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let snap = |i: u32| {
            explore_shard(
                &model,
                &space.shard(i, 2),
                &mut default_strategies(7),
                &opts,
            )
            .snapshot(&model.name, 7)
        };
        let (a, b) = (snap(0), snap(1));
        let cfg = tag("lenet@tiny_space shards=2");
        let mut encode_wall = 0u64;
        let mut decode_wall = 0u64;
        let mut merge_wall = 0u64;
        let mut bytes = Vec::new();
        let mut merged = a.clone();
        for it in 0..iters {
            let started = clock();
            bytes = obs.time("bench/snapshot_encode", || a.encode());
            fold_min_wall(&mut encode_wall, it, started);
            let started = clock();
            let decoded = obs.time("bench/snapshot_decode", || {
                Snapshot::decode(&bytes).expect("own encoding decodes")
            });
            fold_min_wall(&mut decode_wall, it, started);
            assert_eq!(decoded.cache, a.cache);
            let started = clock();
            merged = obs.time("bench/snapshot_merge", || {
                let mut m = a.clone();
                m.absorb(&b);
                m
            });
            fold_min_wall(&mut merge_wall, it, started);
        }
        rows.push(BenchRow::new(
            "snapshot_encode_wall",
            encode_wall as f64,
            "ns",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "snapshot_decode_wall",
            decode_wall as f64,
            "ns",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "snapshot_merge_wall",
            merge_wall as f64,
            "ns",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "snapshot_bytes",
            bytes.len() as f64,
            "bytes",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "snapshot_cache_entries",
            merged.cache.len() as f64,
            "count",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "snapshot_evaluated",
            merged.evaluated as f64,
            "count",
            &cfg,
        ));
    }

    // 5. Mapspace rewrite search: seed → saturate → extract against a
    // fresh session per iteration, so the minimum is a cold search (warm
    // extraction is the `EvalCache`'s job and surface 2 already covers
    // cache-hit pricing).
    {
        let model = zoo::mobilenet_v2();
        let cfg = tag("mobilenet_v2@lego_icoc_1k");
        let mut wall = 0u64;
        let mut outcome = None;
        for it in 0..iters {
            let session = EvalSession::new()
                .with_threads(if threads == 0 { 8 } else { threads })
                .with_obs(obs.clone());
            let started = clock();
            let out = obs.time("bench/mapspace_search", || {
                MapSearch::new(&model, HwConfig::lego_icoc_1k(), TechModel::default())
                    .with_obs(obs.clone())
                    .run(&session)
            });
            fold_min_wall(&mut wall, it, started);
            assert!(
                out.rewrite_edp <= out.enumerated_edp,
                "rewrite search must never lose to enumeration"
            );
            outcome = Some(out);
        }
        let out = outcome.expect("at least one iteration");
        rows.push(BenchRow::new("mapspace_wall", wall as f64, "ns", &cfg));
        rows.push(BenchRow::new(
            "mapspace_nodes",
            out.stats.nodes as f64,
            "count",
            &cfg,
        ));
        rows.push(BenchRow::new(
            "mapspace_classes",
            out.stats.classes as f64,
            "count",
            &cfg,
        ));
    }

    PerfRun {
        rows,
        summary: obs.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_obs::bench::render_bench_json;

    #[test]
    fn every_required_metric_is_emitted() {
        let run = run(ObsMode::Deterministic);
        assert!(missing_metrics(&run.rows).is_empty(), "{:?}", run.rows);
        // Work-count rows carry real signal even without a clock.
        let value = |metric: &str| {
            run.rows
                .iter()
                .find(|r| r.metric == metric)
                .map(|r| r.value)
                .unwrap()
        };
        assert!(value("evaluate_single_layers") > 0.0);
        assert!(value("explore_evals") > 0.0);
        assert!(value("snapshot_bytes") > 0.0);
        assert!(value("snapshot_cache_entries") > 0.0);
        // Deterministic mode never reads the clock.
        assert_eq!(value("evaluate_single_wall"), 0.0);
        assert_eq!(value("explore_throughput"), 0.0);
    }

    #[test]
    fn wall_metric_contract_splits_the_modes() {
        // A deterministic run fails the wall contract on every wall
        // metric; a wallclock run passes it completely.
        let det = run(ObsMode::Deterministic);
        assert!(missing_metrics(&det.rows).is_empty());
        assert_eq!(invalid_wall_metrics(&det.rows), WALL_METRICS);
        let wall = run(ObsMode::WallClock);
        assert!(missing_metrics(&wall.rows).is_empty());
        assert!(
            invalid_wall_metrics(&wall.rows).is_empty(),
            "{:?}",
            wall.rows
        );
    }

    #[test]
    fn emitted_rows_pass_structural_validation() {
        let run = run(ObsMode::Deterministic);
        assert!(invalid_rows(&run.rows).is_empty(), "{:?}", run.rows);
        // Every emitted metric has a pinned unit expectation.
        for row in &run.rows {
            assert_eq!(
                expected_unit(&row.metric),
                Some(row.unit.as_str()),
                "{} must have a pinned unit",
                row.metric
            );
        }
    }

    #[test]
    fn structural_validation_rejects_malformed_rows() {
        let bad = vec![
            BenchRow {
                metric: "evaluate_single_wall".into(),
                value: f64::NAN,
                unit: "ns".into(),
                config: String::new(),
            },
            BenchRow::new("explore_evals", -3.0, "count", ""),
            BenchRow::new("evaluate_batch_throughput", 10.0, "ns", ""),
            BenchRow::new("some_unknown_metric", 1.0, "widgets", ""),
        ];
        let problems = invalid_rows(&bad);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems[0].contains("non-finite"));
        assert!(problems[1].contains("negative"));
        assert!(problems[2].contains("expected 'requests/s'"));
    }

    #[test]
    fn deterministic_runs_render_byte_identically() {
        let a = run(ObsMode::Deterministic);
        let b = run(ObsMode::Deterministic);
        assert_eq!(render_bench_json(&a.rows), render_bench_json(&b.rows));
        assert_eq!(a.summary.render(), b.summary.render());
    }
}
