//! The eleven kernel/dataflow design points of Figures 10, 13 and 14.

use lego_ir::kernels::{self, dataflows};
use lego_ir::{Dataflow, DataflowBuilder, Workload};

/// One named design point: a workload and the dataflows fused into it.
pub struct KernelDesign {
    /// Name as it appears on the paper's x-axis (Operation-Dataflow).
    pub name: &'static str,
    /// Workload.
    pub workload: Workload,
    /// Spatial dataflows fused into the design.
    pub dataflows: Vec<Dataflow>,
}

/// Builds all eleven designs on a `p × p` array.
///
/// # Panics
///
/// Panics if `p` does not divide the fixed problem sizes (use 4, 8, or 16).
pub fn kernel_designs(p: i64) -> Vec<KernelDesign> {
    let d = 4 * p; // problem dimension, divisible by p
    let gemm = kernels::gemm(d, d, d);
    let conv = kernels::conv2d(1, p, p, d, d, 3, 3, 1);
    let mtt = kernels::mttkrp(d, d, p, p);
    let attn = kernels::attention_scores(d, d, d);

    let gemm_systolic_ik = DataflowBuilder::new(&gemm)
        .par("i", p)
        .par("k", p)
        .control(vec![1, 1])
        .build("GEMM-IK")
        .expect("valid GEMM-IK");
    let attn_qp = dataflows::par2(&attn, "q", p, "p", p, "Attn-QP").expect("valid Attn-QP");
    let attn_pd = dataflows::par2(&attn, "p", p, "d", p, "Attn-PD").expect("valid Attn-PD");
    let mtt_mj = vec![dataflows::mttkrp_ij(&mtt, p), dataflows::mttkrp_kj(&mtt, p)];

    vec![
        KernelDesign {
            name: "Attention",
            workload: attn.clone(),
            dataflows: vec![attn_qp, attn_pd],
        },
        KernelDesign {
            name: "Conv2d-ICOC",
            workload: conv.clone(),
            dataflows: vec![dataflows::conv_icoc(&conv, p)],
        },
        KernelDesign {
            name: "Conv2d-MNICOC",
            workload: conv.clone(),
            dataflows: vec![
                dataflows::conv_icoc(&conv, p),
                dataflows::conv_ohow(&conv, p),
            ],
        },
        KernelDesign {
            name: "Conv2d-OHOW",
            workload: conv.clone(),
            dataflows: vec![dataflows::conv_ohow(&conv, p)],
        },
        KernelDesign {
            name: "GEMM-IJ",
            workload: gemm.clone(),
            dataflows: vec![dataflows::gemm_ij(&gemm, p)],
        },
        KernelDesign {
            name: "GEMM-IK",
            workload: gemm.clone(),
            dataflows: vec![gemm_systolic_ik],
        },
        KernelDesign {
            name: "GEMM-KJ",
            workload: gemm.clone(),
            dataflows: vec![dataflows::gemm_kj(&gemm, p)],
        },
        KernelDesign {
            name: "GEMM-MJ",
            workload: gemm.clone(),
            dataflows: vec![dataflows::gemm_ij(&gemm, p), dataflows::gemm_kj(&gemm, p)],
        },
        KernelDesign {
            name: "MTTKRP-IJ",
            workload: mtt.clone(),
            dataflows: vec![dataflows::mttkrp_ij(&mtt, p)],
        },
        KernelDesign {
            name: "MTTKRP-KJ",
            workload: mtt.clone(),
            dataflows: vec![dataflows::mttkrp_kj(&mtt, p)],
        },
        KernelDesign {
            name: "MTTKRP-MJ",
            workload: mtt,
            dataflows: mtt_mj,
        },
    ]
}
