//! Design-space exploration vs. the hand-picked baseline.
//!
//! For each model, the explorer's full portfolio (exhaustive grid, seeded
//! random sampling, (μ+λ) evolutionary) searches the paper-bracketing
//! space of array shape × L2 cluster grid × buffer × bandwidth × dataflow
//! set × tiling under a hard area/power budget, and the best feasible
//! design by EDP is compared against the paper's hand-picked `lego_256`
//! configuration. Multi-cluster candidates pay modeled wormhole-mesh
//! latency and router area through the shared cost stack, so the cluster
//! column reports a real trade-off. The run is deterministic: fixed seed,
//! shared memoized cache, order-preserving parallel evaluation.

use lego_bench::harness::{f, row, section};
use lego_explorer::{
    default_strategies, explore, Constraints, DesignSpace, Evaluator, ExploreOptions, Genome,
};
use lego_model::TechModel;
use lego_workloads::zoo;

const SEED: u64 = 0xDE5E;

fn main() {
    let space = DesignSpace::paper();
    // Hard feasibility: a 10 mm² / 3 W chip budget. The hand-picked
    // baseline (~1.8 mm², ~285 mW) fits comfortably; the largest
    // multi-cluster configurations do not, so the budget genuinely prunes.
    let constraints = Constraints::none()
        .with_max_area_mm2(10.0)
        .with_max_power_mw(3000.0);
    let opts = ExploreOptions {
        budget_per_strategy: space.size(),
        constraints,
        ..Default::default()
    };

    section(&format!(
        "DSE vs hand-picked lego_256 ({} configs; grid+random+ES, seed {SEED:#x}; \
         budget 10 mm2 / 3 W)",
        space.size()
    ));
    row(&[
        "model".into(),
        "base EDP".into(),
        "best EDP".into(),
        "EDP gain".into(),
        "best config".into(),
        "frontier".into(),
        "multi-cluster".into(),
        "cache hit%".into(),
    ]);

    for model in [zoo::mobilenet_v2(), zoo::resnet50(), zoo::bert_base()] {
        let result = explore(&model, &space, &mut default_strategies(SEED), &opts);
        let baseline =
            Evaluator::new(&model, TechModel::default()).eval(&Genome::lego_256_baseline());
        let best = result.best_by_edp().expect("non-empty frontier");
        let clustered = result
            .frontier
            .points()
            .iter()
            .filter(|p| p.genome.clusters != (1, 1))
            .count();
        let hit_pct = 100.0 * result.cache_hits as f64
            / (result.cache_hits + result.cache_misses).max(1) as f64;
        row(&[
            model.name.clone(),
            format!("{:.3e}", baseline.objectives.edp()),
            format!("{:.3e}", best.objectives.edp()),
            f(baseline.objectives.edp() / best.objectives.edp(), 2),
            best.genome.to_string(),
            format!("{}", result.frontier.len()),
            if clustered > 0 {
                format!("yes ({clustered})")
            } else {
                "no".into()
            },
            f(hit_pct, 1),
        ]);
    }
    println!("\nEDP gain > 1.00 means the explorer beat the hand-picked baseline;");
    println!("the baseline genome is inside the space and the budget, so gain >= 1.00 always.");
    println!("multi-cluster = feasible multi-cluster designs on the Pareto frontier.");
}
