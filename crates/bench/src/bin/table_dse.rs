//! Design-space exploration vs. the hand-picked baseline.
//!
//! For each model, the explorer's full portfolio (exhaustive grid, seeded
//! random sampling, (μ+λ) evolutionary) searches the paper-bracketing
//! space of array shape × buffer × bandwidth × dataflow set × tiling, and
//! the best design by EDP is compared against the paper's hand-picked
//! `lego_256` configuration. The run is deterministic: fixed seed, shared
//! memoized cache, order-preserving parallel evaluation.

use lego_bench::harness::{f, row, section};
use lego_explorer::{default_strategies, explore, DesignSpace, Evaluator, ExploreOptions, Genome};
use lego_model::TechModel;
use lego_workloads::zoo;

const SEED: u64 = 0xDE5E;

fn main() {
    let space = DesignSpace::paper();
    let opts = ExploreOptions {
        budget_per_strategy: space.size(),
        ..Default::default()
    };

    section(&format!(
        "DSE vs hand-picked lego_256 ({} configs; grid+random+ES, seed {SEED:#x})",
        space.size()
    ));
    row(&[
        "model".into(),
        "base EDP".into(),
        "best EDP".into(),
        "EDP gain".into(),
        "best config".into(),
        "frontier".into(),
        "cache hit%".into(),
    ]);

    for model in [zoo::mobilenet_v2(), zoo::resnet50(), zoo::bert_base()] {
        let result = explore(&model, &space, &mut default_strategies(SEED), &opts);
        let baseline =
            Evaluator::new(&model, TechModel::default()).eval(&Genome::lego_256_baseline());
        let best = result.best_by_edp().expect("non-empty frontier");
        let hit_pct = 100.0 * result.cache_hits as f64
            / (result.cache_hits + result.cache_misses).max(1) as f64;
        row(&[
            model.name.clone(),
            format!("{:.3e}", baseline.objectives.edp()),
            format!("{:.3e}", best.objectives.edp()),
            f(baseline.objectives.edp() / best.objectives.edp(), 2),
            best.genome.to_string(),
            format!("{}", result.frontier.len()),
            f(hit_pct, 1),
        ]);
    }
    println!("\nEDP gain > 1.00 means the explorer beat the hand-picked baseline;");
    println!("the baseline genome is inside the space, so gain >= 1.00 always.");
}
