//! Runs the canonical perf workloads and writes `BENCH_eval.json` — the
//! machine-readable performance trajectory subsequent PRs diff against.
//!
//! ```text
//! perf_bench [--mode deterministic|wallclock] [--out PATH]
//! perf_bench check [--wall] [PATH]
//! ```
//!
//! The default mode is `deterministic`: wall-clock rows are exactly `0`,
//! work-count rows carry the signal, and two runs render byte-identical
//! documents (the CI bench-smoke job diffs them). `--mode wallclock`
//! fills in real nanoseconds and throughput figures for humans chasing a
//! regression. `check` re-parses an existing file and verifies the
//! required-metric contract ([`perf::REQUIRED_METRICS`]); `check --wall`
//! additionally requires every wall/throughput metric
//! ([`perf::WALL_METRICS`]) to be finite and strictly positive — the
//! guard CI runs on wallclock output so the measured trajectory can
//! never silently degenerate to zeros.

use lego_bench::perf;
use lego_obs::bench::{parse_bench_json, render_bench_json};
use lego_obs::ObsMode;
use std::process::ExitCode;

const DEFAULT_OUT: &str = "BENCH_eval.json";

fn usage() -> ExitCode {
    eprintln!("usage: perf_bench [--mode deterministic|wallclock] [--out PATH]");
    eprintln!("       perf_bench check [--wall] [PATH]");
    ExitCode::FAILURE
}

fn check(path: &str, wall: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_bench check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = match parse_bench_json(&text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("perf_bench check: {path} is not a bench document: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing = perf::missing_metrics(&rows);
    if !missing.is_empty() {
        eprintln!("perf_bench check: {path} is missing required metrics: {missing:?}");
        return ExitCode::FAILURE;
    }
    if wall {
        let invalid = perf::invalid_wall_metrics(&rows);
        if !invalid.is_empty() {
            eprintln!(
                "perf_bench check: {path} has zero or non-finite wall metrics: {invalid:?} \
                 (was this file produced with --mode wallclock?)"
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "perf_bench check: {path} OK ({} rows, all {} required metrics present{})",
        rows.len(),
        perf::REQUIRED_METRICS.len(),
        if wall {
            ", all wall metrics nonzero and finite"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        let mut rest: Vec<&str> = args[1..].iter().map(String::as_str).collect();
        let wall = rest.iter().position(|a| *a == "--wall").map(|i| {
            rest.remove(i);
        });
        match rest.as_slice() {
            [] => return check(DEFAULT_OUT, wall.is_some()),
            [path] => return check(path, wall.is_some()),
            _ => return usage(),
        }
    }

    let mut mode = ObsMode::Deterministic;
    let mut out = DEFAULT_OUT.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => match it.next().map(String::as_str) {
                Some("deterministic") => mode = ObsMode::Deterministic,
                Some("wallclock" | "wall_clock") => mode = ObsMode::WallClock,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let run = perf::run(mode);
    let doc = render_bench_json(&run.rows);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("perf_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "perf_bench: wrote {} rows to {out} (mode={})",
        run.rows.len(),
        mode.label()
    );
    println!("\n=== observability summary ===");
    print!("{}", run.summary.render());
    ExitCode::SUCCESS
}
