//! Runs the canonical perf workloads and writes `BENCH_eval.json` — the
//! machine-readable performance trajectory subsequent PRs diff against.
//!
//! ```text
//! perf_bench [--mode deterministic|wallclock] [--out PATH]
//! perf_bench check [--wall] [PATH]
//! perf_bench diff BEFORE AFTER [--tolerance R] [--tolerance-for METRIC=R]
//! perf_bench record [--mode deterministic|wallclock] [--out PATH]
//! ```
//!
//! The default mode is `deterministic`: wall-clock rows are exactly `0`,
//! work-count rows carry the signal, and two runs render byte-identical
//! documents (the CI bench-smoke job diffs them). `--mode wallclock`
//! fills in real nanoseconds and throughput figures for humans chasing a
//! regression.
//!
//! `check` re-parses an existing file and verifies the required-metric
//! contract ([`perf::REQUIRED_METRICS`]) plus structural validity
//! ([`perf::invalid_rows`]: finite, non-negative, correct units);
//! `check --wall` additionally requires every wall/throughput metric
//! ([`perf::WALL_METRICS`]) to be finite and strictly positive — the
//! guard CI runs on wallclock output so the measured trajectory can
//! never silently degenerate to zeros.
//!
//! `diff` is the regression gate: it compares two bench documents with
//! per-metric tolerance ratios (default 1.25×; override globally with
//! `--tolerance` or per metric with `--tolerance-for explore_wall=2.0`)
//! and exits nonzero when any lower-is-better metric grew — or any
//! higher-is-better metric shrank — past its tolerance, or when a metric
//! disappeared or changed unit.
//!
//! `record` appends one single-line JSON object (mode, iteration count,
//! full row set) to `BENCH_trajectory.jsonl`, the append-only log from
//! which the performance trajectory across commits is reconstructed.

use lego_bench::perf;
use lego_obs::bench::{parse_bench_json, render_bench_json, render_trajectory_line, BenchRow};
use lego_obs::diff::{diff_rows, Tolerances};
use lego_obs::ObsMode;
use std::io::Write as _;
use std::process::ExitCode;

const DEFAULT_OUT: &str = "BENCH_eval.json";
const DEFAULT_TRAJECTORY: &str = "BENCH_trajectory.jsonl";

fn usage() -> ExitCode {
    eprintln!("usage: perf_bench [--mode deterministic|wallclock] [--out PATH]");
    eprintln!("       perf_bench check [--wall] [PATH]");
    eprintln!("       perf_bench diff BEFORE AFTER [--tolerance R] [--tolerance-for METRIC=R]");
    eprintln!("       perf_bench record [--mode deterministic|wallclock] [--out PATH]");
    ExitCode::FAILURE
}

fn load_rows(path: &str) -> Result<Vec<BenchRow>, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("perf_bench: cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    parse_bench_json(&text).map_err(|e| {
        eprintln!("perf_bench: {path} is not a bench document: {e}");
        ExitCode::FAILURE
    })
}

fn check(path: &str, wall: bool) -> ExitCode {
    let rows = match load_rows(path) {
        Ok(rows) => rows,
        Err(code) => return code,
    };
    let missing = perf::missing_metrics(&rows);
    if !missing.is_empty() {
        eprintln!("perf_bench check: {path} is missing required metrics: {missing:?}");
        return ExitCode::FAILURE;
    }
    let malformed = perf::invalid_rows(&rows);
    if !malformed.is_empty() {
        eprintln!("perf_bench check: {path} has malformed rows: {malformed:?}");
        return ExitCode::FAILURE;
    }
    if wall {
        let invalid = perf::invalid_wall_metrics(&rows);
        if !invalid.is_empty() {
            eprintln!(
                "perf_bench check: {path} has zero or non-finite wall metrics: {invalid:?} \
                 (was this file produced with --mode wallclock?)"
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "perf_bench check: {path} OK ({} rows, all {} required metrics present, units valid{})",
        rows.len(),
        perf::REQUIRED_METRICS.len(),
        if wall {
            ", all wall metrics nonzero and finite"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

fn diff(args: &[&str]) -> ExitCode {
    let mut tol = Tolerances::default();
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(ratio) if ratio.is_finite() && ratio > 0.0 => {
                    tol = Tolerances::new(ratio);
                }
                _ => return usage(),
            },
            "--tolerance-for" => match it.next().and_then(|v| v.split_once('=')) {
                Some((metric, ratio)) => match ratio.parse::<f64>() {
                    Ok(ratio) if ratio.is_finite() && ratio > 0.0 => {
                        tol = tol.with_metric(metric, ratio);
                    }
                    _ => return usage(),
                },
                None => return usage(),
            },
            path => paths.push(path),
        }
    }
    let [before_path, after_path] = paths.as_slice() else {
        return usage();
    };
    let (before, after) = match (load_rows(before_path), load_rows(after_path)) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let report = diff_rows(&before, &after, &tol);
    print!("{}", report.render());
    if report.passed() {
        println!("perf_bench diff: PASS ({before_path} -> {after_path})");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf_bench diff: FAIL — {} regression(s), {} missing, {} unit change(s)",
            report.regressions().len(),
            report.missing_after.len(),
            report.unit_changed.len()
        );
        ExitCode::FAILURE
    }
}

fn parse_mode_out(args: &[&str]) -> Option<(ObsMode, Option<String>)> {
    let mut mode = ObsMode::Deterministic;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--mode" => match it.next().copied() {
                Some("deterministic") => mode = ObsMode::Deterministic,
                Some("wallclock" | "wall_clock") => mode = ObsMode::WallClock,
                _ => return None,
            },
            "--out" => match it.next() {
                Some(path) => out = Some(path.to_string()),
                None => return None,
            },
            _ => return None,
        }
    }
    Some((mode, out))
}

fn record(args: &[&str]) -> ExitCode {
    let Some((mode, out)) = parse_mode_out(args) else {
        return usage();
    };
    let out = out.unwrap_or_else(|| DEFAULT_TRAJECTORY.to_string());
    let iters = if mode == ObsMode::WallClock {
        perf::WALL_ITERS
    } else {
        1
    };
    let run = perf::run(mode);
    let line = render_trajectory_line(mode.label(), iters, &run.rows);
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = result {
        eprintln!("perf_bench record: cannot append to {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "perf_bench record: appended {} rows to {out} (mode={}, iters={iters})",
        run.rows.len(),
        mode.label()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    match argv.split_first() {
        Some((&"check", rest)) => {
            let mut rest = rest.to_vec();
            let wall = rest.iter().position(|a| *a == "--wall").map(|i| {
                rest.remove(i);
            });
            match rest.as_slice() {
                [] => check(DEFAULT_OUT, wall.is_some()),
                [path] => check(path, wall.is_some()),
                _ => usage(),
            }
        }
        Some((&"diff", rest)) => diff(rest),
        Some((&"record", rest)) => record(rest),
        _ => {
            let Some((mode, out)) = parse_mode_out(&argv) else {
                return usage();
            };
            let out = out.unwrap_or_else(|| DEFAULT_OUT.to_string());
            let run = perf::run(mode);
            let doc = render_bench_json(&run.rows);
            if let Err(e) = std::fs::write(&out, &doc) {
                eprintln!("perf_bench: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "perf_bench: wrote {} rows to {out} (mode={})",
                run.rows.len(),
                mode.label()
            );
            println!("\n=== observability summary ===");
            print!("{}", run.summary.render());
            ExitCode::SUCCESS
        }
    }
}
