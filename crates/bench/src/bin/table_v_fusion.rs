//! Table V: efficacy of fusing multiple dataflows in a single design.
//! Single-dataflow designs vs a naive mux-merge of their interconnects vs
//! the heuristic-optimized fusion (§IV-C). Paper: the optimized fusion
//! matches the merged design's performance at up to 20 % better energy.

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_baselines::naive_fusion_adg;
use lego_bench::harness::evaluate;
use lego_bench::harness::{f, row, section};
use lego_eval::EvalSession;
use lego_frontend::{build_adg, FrontendConfig};
use lego_ir::kernels::{self, dataflows};
use lego_model::{dag_cost, TechModel};
use lego_sim::{HwConfig, SpatialMapping};

fn main() {
    let session = EvalSession::new();
    let tech = TechModel::default();
    let conv = kernels::conv2d(1, 16, 16, 64, 64, 3, 3, 1);
    let icoc = dataflows::conv_icoc(&conv, 16);
    let ohow = dataflows::conv_ohow(&conv, 16);
    // A third configuration with a different output-plane aspect ratio:
    // its chains overlap the 16x16 OHOW ones, which is where the heuristic
    // re-uses connections that a naive merge duplicates.
    let khoh = lego_ir::DataflowBuilder::new(&conv)
        .par("oh", 4)
        .par("ow", 64)
        .build("Conv2d-OHOW-4x64")
        .unwrap();

    let cost = |adg: &lego_frontend::Adg| {
        let mut dag = lower(adg, &BackendConfig::default());
        optimize(&mut dag, &OptimizeOptions::default());
        dag_cost(&dag, &tech, 1.0)
    };
    let cfg = FrontendConfig::default();
    let solo_icoc = cost(&build_adg(&conv, std::slice::from_ref(&icoc), &cfg).unwrap());
    let solo_ohow = cost(&build_adg(&conv, std::slice::from_ref(&ohow), &cfg).unwrap());
    let merged = cost(&naive_fusion_adg(
        &conv,
        &[icoc.clone(), ohow.clone(), khoh.clone()],
    ));
    let fused = cost(&build_adg(&conv, &[icoc, ohow, khoh], &cfg).unwrap());

    // Performance side: what each hardware achieves on MBV2 and ResNet50.
    let perf_of = |dataflows: Vec<SpatialMapping>, power: f64| {
        let hw = HwConfig {
            static_mw: power * 0.25,
            dynamic_mw: power * 0.75,
            dataflows,
            ..HwConfig::lego_256()
        };
        let mbv2 = evaluate(&session, &lego_workloads::zoo::mobilenet_v2(), &hw).model;
        let rn = evaluate(&session, &lego_workloads::zoo::resnet50(), &hw).model;
        (mbv2, rn)
    };
    let single_icoc = perf_of(
        vec![SpatialMapping::ConvIcOc, SpatialMapping::GemmMN],
        solo_icoc.total_mw(),
    );
    let single_ohow = perf_of(
        vec![SpatialMapping::ConvOhOw, SpatialMapping::GemmMN],
        solo_ohow.total_mw(),
    );
    let both_merged = perf_of(
        vec![
            SpatialMapping::ConvIcOc,
            SpatialMapping::ConvOhOw,
            SpatialMapping::GemmMN,
        ],
        merged.total_mw(),
    );
    let both_fused = perf_of(
        vec![
            SpatialMapping::ConvIcOc,
            SpatialMapping::ConvOhOw,
            SpatialMapping::GemmMN,
        ],
        fused.total_mw(),
    );

    section("Table V: dataflow fusion efficacy (Conv2d ICOC + OHOW, 256 FUs)");
    row(&[
        "design".into(),
        "FU power mW".into(),
        "MBV2 GOP/s".into(),
        "MBV2 GOPS/W".into(),
        "RN50 GOP/s".into(),
        "RN50 GOPS/W".into(),
    ]);
    for (name, c, (mbv2, rn)) in [
        ("ICOC only", &solo_icoc, &single_icoc),
        ("OHOW only", &solo_ohow, &single_ohow),
        ("simply merged", &merged, &both_merged),
        ("LEGO fused", &fused, &both_fused),
    ] {
        row(&[
            name.into(),
            f(c.total_mw(), 0),
            f(mbv2.gops, 0),
            f(mbv2.gops_per_watt, 0),
            f(rn.gops, 0),
            f(rn.gops_per_watt, 0),
        ]);
    }
    println!(
        "fusion energy win vs naive merge: {:.1}% (paper: up to 20%)",
        100.0 * (1.0 - fused.total_mw() / merged.total_mw())
    );
    println!("paper power: 123 / 155 / 196 / 163 mW across the four columns");
}
