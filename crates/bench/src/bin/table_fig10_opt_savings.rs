//! Figure 10: area and energy savings of the LEGO back-end optimizations on
//! the eleven kernel/dataflow design points, relative to the mandatory
//! delay-matching-only baseline. Paper: 1.5× area and 1.4× energy geomean.

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_bench::harness::{f, geomean, row, section};
use lego_bench::kernel_designs;
use lego_frontend::{build_adg, FrontendConfig};
use lego_model::{dag_cost, TechModel};

fn main() {
    let tech = TechModel::default();
    section("Figure 10: LEGO optimization area/energy savings (vs delay-matching-only)");
    row(&["design".into(), "area x".into(), "energy x".into()]);

    let mut area_ratios = Vec::new();
    let mut energy_ratios = Vec::new();
    for d in kernel_designs(8) {
        let adg =
            build_adg(&d.workload, &d.dataflows, &FrontendConfig::default()).expect("valid design");
        let mut base = lower(&adg, &BackendConfig::default());
        optimize(&mut base, &OptimizeOptions::baseline());
        let mut opt = lower(&adg, &BackendConfig::default());
        optimize(&mut opt, &OptimizeOptions::default());

        let cb = dag_cost(&base, &tech, 1.0);
        let co = dag_cost(&opt, &tech, 1.0);
        let area = cb.area_um2 / co.area_um2;
        let energy = cb.total_mw() / co.total_mw();
        area_ratios.push(area);
        energy_ratios.push(energy);
        row(&[d.name.into(), f(area, 2), f(energy, 2)]);
    }
    row(&[
        "GEOMEAN".into(),
        f(geomean(&area_ratios), 2),
        f(geomean(&energy_ratios), 2),
    ]);
    println!("paper reports geomean: area 1.5x, energy 1.4x");
}
