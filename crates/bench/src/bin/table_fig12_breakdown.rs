//! Figure 12: (a) area and on-chip power breakdown of the LEGO-MNICOC
//! design (paper: buffers 86 % of 1.76 mm²; FU array 57 % of 285 mW) and
//! (b) the end-to-end latency share of the post-processing units
//! (paper: 0.5 %–7.2 % per model).

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_bench::harness::evaluate;
use lego_bench::harness::{f, row, section};
use lego_eval::EvalSession;
use lego_frontend::{build_adg, FrontendConfig};
use lego_ir::kernels::{self, dataflows};
use lego_model::{dag_cost, SramModel, TechModel};
use lego_sim::HwConfig;
use lego_workloads::zoo;

fn main() {
    let tech = TechModel::default();
    let sram = SramModel::default();

    // The LEGO-MNICOC FU array: fused GEMM-MN + Conv ICOC on 16×16.
    let gemm = kernels::gemm(64, 64, 64);
    let conv = kernels::conv2d(1, 16, 16, 64, 64, 3, 3, 1);
    let mn = build_design(&gemm, &[dataflows::gemm_ij(&gemm, 16)], &tech);
    let icoc = build_design(&conv, &[dataflows::conv_icoc(&conv, 16)], &tech);
    let fu_area = mn.0.max(icoc.0);
    let fu_power = mn.1.max(icoc.1);

    let buf_bytes = 256 * 1024u64;
    let buf_area = sram.area_um2(buf_bytes, 32);
    let buf_power =
        sram.leakage_uw(buf_bytes) / 1000.0 + sram.access_energy_pj(buf_bytes, 64) * tech.freq_ghz; // ~64 B/cycle

    // L1 butterfly + distribution switches.
    let bf = lego_noc::Butterfly::with_endpoints(32);
    let noc_area = bf.switch_count() as f64 * 2.0 * 64.0 * tech.mux_area_um2_per_bit
        + 3000.0 * tech.ff_area_um2;
    let noc_power = 64.0 * tech.noc_pj_per_byte_hop * bf.stages() as f64 * tech.freq_ghz;

    // 16 PPUs: 256-entry LUT + 16-wide reduction each.
    let ppu_area = 16.0 * (256.0 * 16.0 * 0.35 + 15.0 * 16.0 * tech.lut_area_um2);
    let ppu_power = 16.0 * 0.9;

    let total_area = fu_area + buf_area + noc_area + ppu_area;
    let total_power = fu_power + buf_power + noc_power + ppu_power;

    section("Figure 12a: area breakdown of LEGO-MNICOC");
    row(&["component".into(), "area mm2".into(), "share %".into()]);
    for (n, a) in [
        ("FU array", fu_area),
        ("Buffers", buf_area),
        ("NoC", noc_area),
        ("PPUs", ppu_area),
    ] {
        row(&[n.into(), f(a / 1e6, 3), f(100.0 * a / total_area, 1)]);
    }
    row(&["TOTAL".into(), f(total_area / 1e6, 2), "100.0".into()]);
    println!("paper reports: FU 7%, buffers 86%, NoC 5%, PPUs 2% of 1.76 mm^2");

    section("Figure 12a: on-chip power breakdown of LEGO-MNICOC");
    row(&["component".into(), "power mW".into(), "share %".into()]);
    for (n, p) in [
        ("FU array", fu_power),
        ("Buffers", buf_power),
        ("NoC", noc_power),
        ("PPUs", ppu_power),
    ] {
        row(&[n.into(), f(p, 1), f(100.0 * p / total_power, 1)]);
    }
    row(&["TOTAL".into(), f(total_power, 1), "100.0".into()]);
    println!("paper reports: FU 57%, buffers 12%, NoC 26%, PPUs 5% of 285 mW");

    section("Figure 12b: post-processing share of end-to-end latency");
    row(&["model".into(), "PPU %".into()]);
    let session = EvalSession::new();
    let hw = HwConfig::lego_256();
    for m in zoo::figure11_models() {
        let perf = evaluate(&session, &m, &hw).model;
        row(&[m.name.clone(), f(100.0 * perf.ppu_fraction, 1)]);
    }
    println!("paper reports per-model PPU overhead between 0.5% and 7.2%");
}

fn build_design(w: &lego_ir::Workload, dfs: &[lego_ir::Dataflow], tech: &TechModel) -> (f64, f64) {
    let adg = build_adg(w, dfs, &FrontendConfig::default()).expect("valid");
    let mut dag = lower(&adg, &BackendConfig::default());
    optimize(&mut dag, &OptimizeOptions::default());
    let c = dag_cost(&dag, tech, 1.0);
    (c.area_um2, c.total_mw())
}
