//! Table III: LEGO-generated designs vs expert handwritten accelerators,
//! using the same dataflows. Eyeriss (KH-OH parallel, 168 FUs, 65 nm class,
//! 200 MHz) and NVDLA (IC-OC parallel, 256 FUs, 28 nm, 1 GHz).
//! Paper: Eyeriss 9.6 mm² / 278 mW vs LEGO-KHOH 7.4 mm² / 112 mW;
//! NVDLA 1.7 mm² / 300 mW vs LEGO-ICOC 1.5 mm² / 209 mW.

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_bench::harness::{f, row, section};
use lego_frontend::{build_adg, FrontendConfig};
use lego_ir::kernels::{self, dataflows};
use lego_model::{dag_cost, SramModel, TechModel};

fn main() {
    section("Table III: handwritten vs LEGO-generated (same dataflow)");
    row(&[
        "design".into(),
        "#FUs".into(),
        "area mm2".into(),
        "power mW".into(),
    ]);

    // LEGO-KHOH: 3×56 = 168 FUs on the Eyeriss dataflow, 65 nm @ 200 MHz.
    let t65 = {
        let mut t = TechModel::default().scaled_to(65.0);
        t.freq_ghz = 0.2;
        t
    };
    let conv = kernels::conv2d(1, 4, 4, 56, 56, 3, 3, 1);
    let khoh = dataflows::conv_khoh(&conv, 3, 56);
    let adg = build_adg(&conv, &[khoh], &FrontendConfig::default()).expect("valid");
    let mut dag = lower(&adg, &BackendConfig::default());
    optimize(&mut dag, &OptimizeOptions::default());
    let c = dag_cost(&dag, &t65, 0.8);
    let sram65 = SramModel {
        area_um2_per_byte: SramModel::default().area_um2_per_byte * (65.0f64 / 28.0).powi(2),
        ..SramModel::default()
    };
    let buf = 108 * 1024u64; // Eyeriss's 108 KB scratchpad
    let area = (c.area_um2 + sram65.area_um2(buf, 27)) / 1e6;
    let power = c.total_mw() + sram65.leakage_uw(buf) / 1000.0 + 12.0;
    row(&[
        "Eyeriss (paper)".into(),
        "168".into(),
        "9.6".into(),
        "278".into(),
    ]);
    row(&["LEGO-KHOH".into(), "168".into(), f(area, 1), f(power, 0)]);

    // LEGO-ICOC: 16×16 on the NVDLA dataflow, 28 nm @ 1 GHz.
    let t28 = TechModel::default();
    let conv = kernels::conv2d(1, 16, 16, 32, 32, 3, 3, 1);
    let icoc = dataflows::conv_icoc(&conv, 16);
    let adg = build_adg(&conv, &[icoc], &FrontendConfig::default()).expect("valid");
    let mut dag = lower(&adg, &BackendConfig::default());
    optimize(&mut dag, &OptimizeOptions::default());
    let c = dag_cost(&dag, &t28, 0.9);
    let buf = 128 * 1024u64;
    let sram = SramModel::default();
    let area = (c.area_um2 + sram.area_um2(buf, 16)) / 1e6;
    let power = c.total_mw()
        + sram.leakage_uw(buf) / 1000.0
        + sram.access_energy_pj(buf, 48) * t28.freq_ghz;
    row(&[
        "NVDLA (paper)".into(),
        "256".into(),
        "1.7".into(),
        "300".into(),
    ]);
    row(&["LEGO-ICOC".into(), "256".into(), f(area, 1), f(power, 0)]);

    println!("paper reports: LEGO-KHOH 7.4 mm2 / 112 mW, LEGO-ICOC 1.5 mm2 / 209 mW");
}
