//! Table II: large generative models on LEGO-ICOC-1K (1024 FUs, 576 KB,
//! 32 PPUs, 32 GB/s). Paper: DDPM 92.9 % util / 1903 GOP/s, Stable
//! Diffusion 80.2 % / 1642, LLaMA-7B bs=1 3.1 % / 63, bs=32 42.9 % / 878.

use lego_bench::harness::{evaluate, f, row, section};
use lego_eval::EvalSession;
use lego_sim::HwConfig;
use lego_workloads::zoo;

fn main() {
    let session = EvalSession::new();
    let hw = HwConfig::lego_icoc_1k();

    section("Table II: generative models on LEGO-ICOC-1K (1024 FUs, 32 GB/s)");
    row(&[
        "model".into(),
        "util %".into(),
        "GOP/s".into(),
        "GOPS/W".into(),
    ]);
    for m in [
        zoo::ddpm(),
        zoo::stable_diffusion(),
        zoo::llama7b_decode(1),
        zoo::llama7b_decode(32),
    ] {
        let p = evaluate(&session, &m, &hw).model;
        row(&[
            m.name.clone(),
            f(100.0 * p.utilization, 1),
            f(p.gops, 0),
            f(p.gops_per_watt, 0),
        ]);
    }
    println!("paper reports: DDPM 92.9%/1903/3165, SD 80.2%/1642/2731,");
    println!("               LLaMA-7B bs=1 3.1%/63/105, bs=32 42.9%/878/1461");
}
