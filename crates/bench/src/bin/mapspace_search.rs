//! Enumerated-best vs rewrite-best mapping per zoo model (ROADMAP item 3).
//!
//! For each dense zoo model × hardware menu, the equality-saturation
//! search seeds an e-graph from the mapper's enumerated-best assignment,
//! saturates the dataflow/tiling/fusion rewrite rules, and extracts the
//! minimum-EDP assignment priced through a shared warm [`EvalSession`].
//! The rewrite search can never lose (its coordinate descent starts at
//! the enumerated assignment) and must strictly win somewhere the
//! hardware's dataflow menu is restrictive — on `lego_icoc_1k`, which
//! lacks the OHOW template, MobileNetV2's depthwise layers map badly
//! under enumeration and the rewrite search recovers the loss.
//!
//! The run is deterministic: sorted rule matching, dense insertion-order
//! e-class ids, memoized deterministic pricing — byte-identical across
//! runs (the CI determinism job diffs two invocations).

use lego_bench::harness::{row, section};
use lego_eval::EvalSession;
use lego_explorer::{
    DesignSpace, Evaluator, EvolutionarySearch, Genome, ParetoFrontier, SearchStrategy,
};
use lego_mapspace::MapSearch;
use lego_model::TechModel;
use lego_sim::HwConfig;
use lego_workloads::zoo;

const ES_SEED: u64 = 7;

fn main() {
    let session = EvalSession::new();
    let tech = TechModel::default();
    let hws = [
        ("lego_256", HwConfig::lego_256()),
        ("lego_icoc_1k", HwConfig::lego_icoc_1k()),
    ];

    section("Mapping search: enumerated best vs equality-saturation rewrite best (EDP)");
    row(&[
        "model".into(),
        "hw".into(),
        "enumerated EDP".into(),
        "rewrite EDP".into(),
        "gain".into(),
        "dataflows".into(),
        "rounds".into(),
        "nodes".into(),
        "classes".into(),
    ]);

    let mut wins = 0usize;
    for model in [
        zoo::lenet(),
        zoo::mobilenet_v2(),
        zoo::resnet50(),
        zoo::bert_base(),
    ] {
        for (hw_name, hw) in &hws {
            let out = MapSearch::new(&model, hw.clone(), tech).run(&session);
            assert!(
                out.rewrite_edp <= out.enumerated_edp,
                "rewrite search must never lose to enumeration"
            );
            if out.improved() {
                wins += 1;
            }
            let dataflows = out
                .dataflows
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join("+");
            row(&[
                model.name.clone(),
                (*hw_name).into(),
                format!("{:.6e}", out.enumerated_edp),
                format!("{:.6e}", out.rewrite_edp),
                format!("{:.4}", out.gain()),
                dataflows,
                out.stats.rounds.to_string(),
                out.stats.nodes.to_string(),
                out.stats.classes.to_string(),
            ]);
        }
    }
    assert!(
        wins > 0,
        "the rewrite search must strictly beat enumeration on at least one model"
    );
    println!("\ngain = 1 - rewrite/enumerated; 0.0000 means the enumerated mapping was");
    println!("already optimal within the rewrite space. Wins concentrate where the");
    println!("hardware menu is restrictive (no OHOW on lego_icoc_1k: depthwise layers");
    println!("fall back to im2col under enumeration; the rewrite search re-spatializes");
    println!("them and re-tiles the rest).");

    // The explorer ↔ mapspace loop, extraction → ES direction: warm-start
    // an evolutionary search from the genome the rewrite outcome suggests
    // and show it finds a design at least as good as a cold ES under the
    // same budget.
    section("Warm-starting the evolutionary search from the rewrite outcome");
    row(&[
        "model".into(),
        "suggested genome".into(),
        "cold best EDP".into(),
        "warm best EDP".into(),
    ]);
    let model = zoo::mobilenet_v2();
    let out = MapSearch::new(&model, HwConfig::lego_icoc_1k(), tech)
        .seed_genome(&Genome::lego_256_baseline())
        .run(&session);
    let suggested = out.suggest_genome(&Genome::lego_256_baseline());
    let space = DesignSpace::paper();
    let run_es = |warm: Option<Genome>| {
        let evaluator = Evaluator::new(&model, tech);
        let mut es = EvolutionarySearch {
            seed: ES_SEED,
            mu: 4,
            lambda: 4,
            ..Default::default()
        };
        if let Some(g) = warm {
            es.warm_start(&[g]);
        }
        let mut frontier = ParetoFrontier::new();
        let report = es.run(&space.full(), &evaluator, &mut frontier, 16);
        report.best.expect("non-empty search").objectives.edp()
    };
    let cold = run_es(None);
    let warm = run_es(Some(suggested));
    // The suggested genome joins the warm initial population and the ES
    // is elitist, so the warm best can never be worse than the seed
    // itself.
    let seed_edp = Evaluator::new(&model, tech)
        .eval(&suggested)
        .objectives
        .edp();
    assert!(
        warm <= seed_edp,
        "elitist ES must retain (or beat) its warm-start seed"
    );
    row(&[
        model.name.clone(),
        suggested.to_string(),
        format!("{cold:.6e}"),
        format!("{warm:.6e}"),
    ]);
    println!("\nThe suggested genome folds the extracted dataflow set and modal tile cap");
    println!("into the explorer's design space; seeding the initial population with it");
    println!("gives the ES the rewrite search's head start (enumerate -> saturate ->");
    println!("extract -> warm-start, the full ROADMAP item 3 loop).");
}
