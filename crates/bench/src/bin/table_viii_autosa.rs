//! Table VIII: FF/LUT resources of LEGO vs AutoSA for the same 8×8 designs
//! (GEMM-IJ, Conv2d-OCOH, MTTKRP-IJ). AutoSA's polyhedral representation
//! instantiates control per PE (the paper's §III-D analysis), which is what
//! the per-FU-control structural baseline reproduces.
//! Paper: AutoSA 25.4K/108K/96.0K FF vs LEGO 3.9K/4.9K/4.9K FF.

use lego_baselines::{per_fu_control_cost, shared_control_cost};
use lego_bench::harness::{f, row, section};
use lego_ir::kernels::{self, dataflows};
use lego_model::TechModel;

fn main() {
    let tech = TechModel::default();
    section("Table VIII: FF/LUT vs AutoSA (8x8 arrays)");
    row(&[
        "kernel".into(),
        "AutoSA FF".into(),
        "AutoSA LUT".into(),
        "LEGO FF".into(),
        "LEGO LUT".into(),
        "FF save x".into(),
        "LUT save x".into(),
    ]);

    let gemm = kernels::gemm(64, 64, 64);
    let conv = kernels::conv2d(1, 8, 8, 32, 32, 3, 3, 1);
    let mtt = kernels::mttkrp(32, 32, 8, 8);
    let cases: Vec<(&str, lego_ir::Workload, lego_ir::Dataflow)> = vec![
        ("GEMM-IJ", gemm.clone(), dataflows::gemm_ij(&gemm, 8)),
        (
            "Conv2d-OCOH",
            conv.clone(),
            lego_ir::kernels::dataflows::par2(&conv, "oc", 8, "oh", 8, "Conv2d-OCOH").unwrap(),
        ),
        ("MTTKRP-IJ", mtt.clone(), dataflows::mttkrp_ij(&mtt, 8)),
    ];
    for (name, w, df) in cases {
        let lego = shared_control_cost(&w, std::slice::from_ref(&df), &tech);
        let autosa = per_fu_control_cost(&w, &[df], &tech);
        row(&[
            name.into(),
            f(autosa.fpga.ff / 1e3, 1),
            f(autosa.fpga.lut / 1e3, 1),
            f(lego.fpga.ff / 1e3, 1),
            f(lego.fpga.lut / 1e3, 1),
            f(autosa.fpga.ff / lego.fpga.ff, 1),
            f(autosa.fpga.lut / lego.fpga.lut, 1),
        ]);
    }
    println!("paper reports (K): AutoSA FF 25.4/108/96.0, LUT 23.9/120/92.4;");
    println!("                   LEGO FF 3.9/4.9/4.9, LUT 4.8/4.2/4.7");
}
