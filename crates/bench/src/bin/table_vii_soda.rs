//! Table VII: LEGO (MNICOC-Tiny, 16 FUs) vs the SODA+MLIR+Bambu toolchain
//! at FreePDK 45 nm / 500 MHz on LeNet, MobileNetV2 and ResNet50.
//! Paper: SODA 0.65-0.90 GFLOPS at 2.3-3.3 GFLOPS/W; LEGO 10-15 GFLOPS at
//! 52-77 GFLOPS/W in 0.945 mm².

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_baselines::soda_perf;
use lego_bench::harness::evaluate_with_tech;
use lego_bench::harness::{f, row, section};
use lego_eval::EvalSession;
use lego_frontend::{build_adg, FrontendConfig};
use lego_ir::kernels::{self, dataflows};
use lego_model::{dag_cost, SramModel, TechModel};
use lego_sim::{HwConfig, SpatialMapping};

fn main() {
    let mut t45 = TechModel::default().scaled_to(45.0);
    t45.freq_ghz = 0.5;

    // Generate the 16-FU MNICOC-Tiny and price it at 45 nm.
    let conv = kernels::conv2d(1, 4, 4, 16, 16, 3, 3, 1);
    let adg = build_adg(
        &conv,
        &[
            dataflows::conv_icoc(&conv, 4),
            dataflows::conv_ohow(&conv, 4),
        ],
        &FrontendConfig::default(),
    )
    .expect("valid design");
    let mut dag = lower(&adg, &BackendConfig::default());
    optimize(&mut dag, &OptimizeOptions::default());
    let c = dag_cost(&dag, &t45, 1.0);
    let sram = SramModel {
        area_um2_per_byte: SramModel::default().area_um2_per_byte * (45.0f64 / 28.0).powi(2),
        ..SramModel::default()
    };
    let lego_area = (c.area_um2 + sram.area_um2(64 * 1024, 8)) / 1e6;

    let tiny = HwConfig {
        array: (4, 4),
        clusters: (1, 1),
        buffer_kb: 64,
        dram_gbps: 8.0,
        num_ppus: 4,
        dataflows: vec![
            SpatialMapping::GemmMN,
            SpatialMapping::ConvIcOc,
            SpatialMapping::ConvOhOw,
        ],
        static_mw: c.static_mw + 8.0,
        dynamic_mw: c.dynamic_mw + 40.0,
    };

    let session = EvalSession::new();
    section("Table VII: SODA toolchain vs LEGO-MNICOC-Tiny (45 nm, 500 MHz)");
    row(&[
        "model".into(),
        "SODA GFLOPS".into(),
        "SODA GF/W".into(),
        "SODA mm2".into(),
        "LEGO GFLOPS".into(),
        "LEGO GF/W".into(),
        "LEGO mm2".into(),
    ]);
    for m in [
        lego_workloads::zoo::lenet(),
        lego_workloads::zoo::mobilenet_v2(),
        lego_workloads::zoo::resnet50(),
    ] {
        let (sg, se, sa) = soda_perf(&m);
        let p = evaluate_with_tech(&session, &m, &tiny, &t45).model;
        row(&[
            m.name.clone(),
            f(sg, 2),
            f(se, 2),
            f(sa, 2),
            f(p.gops, 2),
            f(p.gops_per_watt, 1),
            f(lego_area, 3),
        ]);
    }
    println!("paper reports: SODA 0.90/0.87/0.65 GFLOPS at 3.27/2.28/3.20 GFLOPS/W;");
    println!("               LEGO 10.23/14.21/15.03 GFLOPS at 52.3/72.7/76.9 GFLOPS/W");
}
