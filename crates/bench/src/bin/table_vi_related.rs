//! Table VI: improvement factors of LEGO over related generators at equal
//! latency, derived from the structural baseline models: DSAGen's switch
//! fabric, TensorLib's per-FU (STT) control, AutoSA's polyhedral per-PE
//! control, and SODA's HLS pipeline. Paper: 2.4-2.6× vs DSAGen, 2.0-2.6×
//! vs TensorLib, 5.0-6.5× FF/LUT vs AutoSA, 14×/32× vs SODA.

use lego_baselines::{dsagen_cost, per_fu_control_cost, shared_control_cost, soda_perf};
use lego_bench::harness::evaluate_with_tech;
use lego_bench::harness::{f, row, section};
use lego_eval::EvalSession;
use lego_ir::kernels::{self, dataflows};
use lego_model::TechModel;
use lego_sim::{HwConfig, SpatialMapping};

fn main() {
    let tech = TechModel::default();
    let gemm = kernels::gemm(64, 64, 64);
    let df = dataflows::gemm_ij(&gemm, 8);
    let lego = shared_control_cost(&gemm, std::slice::from_ref(&df), &tech);

    section("Table VI: LEGO improvement over related work (GEMM-IJ, 8x8)");
    row(&[
        "vs".into(),
        "metric".into(),
        "factor".into(),
        "paper".into(),
    ]);

    let dsa = dsagen_cost(&gemm, std::slice::from_ref(&df), 64, &tech);
    row(&[
        "DSAGen".into(),
        "area savings".into(),
        f(dsa.area_um2 / lego.area_um2, 1),
        "2.4x".into(),
    ]);
    row(&[
        "DSAGen".into(),
        "power savings".into(),
        f(dsa.total_mw() / lego.total_mw(), 1),
        "2.6x".into(),
    ]);

    let stt = per_fu_control_cost(&gemm, std::slice::from_ref(&df), &tech);
    row(&[
        "TensorLib".into(),
        "area savings".into(),
        f(stt.area_um2 / lego.area_um2, 1),
        "2.0x".into(),
    ]);
    row(&[
        "TensorLib".into(),
        "power savings".into(),
        f(stt.total_mw() / lego.total_mw(), 1),
        "2.6x".into(),
    ]);
    row(&[
        "AutoSA".into(),
        "FF savings".into(),
        f(stt.fpga.ff / lego.fpga.ff, 1),
        "6.5x".into(),
    ]);
    row(&[
        "AutoSA".into(),
        "LUT savings".into(),
        f(stt.fpga.lut / lego.fpga.lut, 1),
        "5.0x".into(),
    ]);

    // SODA on MobileNetV2 with a 16-FU LEGO-MNICOC-Tiny at 45 nm / 500 MHz.
    let mut t45 = tech.scaled_to(45.0);
    t45.freq_ghz = 0.5;
    let tiny = HwConfig {
        array: (4, 4),
        clusters: (1, 1),
        buffer_kb: 64,
        dram_gbps: 8.0,
        num_ppus: 4,
        dataflows: vec![
            SpatialMapping::GemmMN,
            SpatialMapping::ConvIcOc,
            SpatialMapping::ConvOhOw,
        ],
        static_mw: 18.0,
        dynamic_mw: 70.0,
    };
    let m = lego_workloads::zoo::mobilenet_v2();
    let lego_perf = evaluate_with_tech(&EvalSession::new(), &m, &tiny, &t45).model;
    let (soda_gflops, soda_eff, _) = soda_perf(&m);
    row(&[
        "SODA".into(),
        "speedup".into(),
        f(lego_perf.gops / soda_gflops, 1),
        "14x".into(),
    ]);
    row(&[
        "SODA".into(),
        "energy eff".into(),
        f(lego_perf.gops_per_watt / soda_eff, 1),
        "32x".into(),
    ]);
}
