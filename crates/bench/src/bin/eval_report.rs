//! Canonical `EvalRequest` → `EvalReport` codec driver — the determinism
//! gate for the request/response evaluation layer, and the smallest
//! possible multi-host worker: decode a request, price it, encode the
//! report.
//!
//! ```text
//! eval_report [--model M] [--hw lego_256|lego_icoc_1k] [--sparse dense|gate|skip]
//!             [--out REPORT.bin] [--request-out REQUEST.bin] [--in REQUEST.bin]
//! ```
//!
//! With `--in`, the request is decoded from a file instead of built from
//! flags (what a worker fed over a byte transport would do). Everything is
//! deterministic by default: the same request encodes and evaluates to
//! byte-identical files across runs — CI pins this with `cmp`. The run
//! records an observability summary (codec and evaluation spans, cache
//! warmth and residency gauges) and prints it at the end; instrumentation
//! never changes the emitted bytes.
//!
//! `--wallclock` switches the recorder to real timestamps for profiling.
//! `--trace-out PATH` writes a Chrome trace-event JSON file of the run
//! (load it in Perfetto / `chrome://tracing`); `--folded-out PATH` writes
//! folded stacks for flamegraph tools. Either flag enables the bounded
//! trace ring; in deterministic mode the exported trace still has zeroed
//! timestamps and is byte-identical across runs.

use lego_bench::harness::section;
use lego_eval::{CodecError, EvalError, EvalRequest, EvalSession};
use lego_model::{SparseAccel, SparseHw};
use lego_obs::Obs;
use lego_sim::HwConfig;
use lego_workloads::{zoo, Model};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage:
  eval_report [--model M] [--hw lego_256|lego_icoc_1k] [--sparse dense|gate|skip]
              [--out REPORT.bin] [--request-out REQUEST.bin] [--in REQUEST.bin]
              [--wallclock] [--trace-out TRACE.json] [--folded-out STACKS.txt]";

/// Ring capacity for `--trace-out` / `--folded-out` runs: enough for every
/// span of the largest zoo model with plenty of headroom.
const TRACE_CAPACITY: usize = 65536;

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn model_by_name(name: &str) -> Result<Model, EvalError> {
    Ok(match name {
        "lenet" => zoo::lenet(),
        "mobilenet_v2" => zoo::mobilenet_v2(),
        "resnet50" => zoo::resnet50(),
        "bert_base" => zoo::bert_base(),
        "resnet50_2to4" => zoo::resnet50_2to4(),
        "bert_base_pruned90" => zoo::bert_base_pruned90(),
        "gpt2_prefill_causal" => zoo::gpt2_prefill_causal(),
        _ => {
            return Err(EvalError::Unknown {
                what: "model",
                name: name.to_string(),
            })
        }
    })
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, EvalError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(EvalError::Usage(format!("{flag} needs a value\n{USAGE}"))),
    }
}

/// Keeps the file path in a codec failure's message without abandoning the
/// typed error (and its stable status code).
fn file_ctx(path: &str, e: CodecError) -> EvalError {
    match e {
        CodecError::Io(io) => {
            EvalError::Io(std::io::Error::new(io.kind(), format!("{path}: {io}")))
        }
        other => EvalError::Codec(other),
    }
}

fn run() -> Result<(), EvalError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let input = take_flag(&mut args, "--in")?;
    let model = take_flag(&mut args, "--model")?;
    let hw = take_flag(&mut args, "--hw")?;
    let sparse = take_flag(&mut args, "--sparse")?;
    let out = take_flag(&mut args, "--out")?;
    let request_out = take_flag(&mut args, "--request-out")?;
    let trace_out = take_flag(&mut args, "--trace-out")?;
    let folded_out = take_flag(&mut args, "--folded-out")?;
    let wallclock = take_switch(&mut args, "--wallclock");
    if !args.is_empty() {
        return Err(EvalError::Usage(format!(
            "unexpected arguments {args:?}\n{USAGE}"
        )));
    }

    let mut obs = if wallclock {
        Obs::wall_clock()
    } else {
        Obs::deterministic()
    };
    if trace_out.is_some() || folded_out.is_some() {
        obs = obs.traced(TRACE_CAPACITY);
    }
    let request = match input {
        Some(path) => {
            if model.is_some() || hw.is_some() || sparse.is_some() {
                return Err(EvalError::Usage(format!(
                    "--in replaces the request flags\n{USAGE}"
                )));
            }
            obs.time("codec/request_decode", || {
                EvalRequest::read_from(Path::new(&path))
            })
            .map_err(|e| file_ctx(&path, e))?
        }
        None => {
            let model = model_by_name(&model.unwrap_or("resnet50_2to4".into()))?;
            let hw = match hw.as_deref().unwrap_or("lego_256") {
                "lego_256" => HwConfig::lego_256(),
                "lego_icoc_1k" => HwConfig::lego_icoc_1k(),
                other => {
                    return Err(EvalError::Unknown {
                        what: "hw",
                        name: other.to_string(),
                    })
                }
            };
            let accel = match sparse.as_deref().unwrap_or("skip") {
                "dense" => SparseAccel::None,
                "gate" => SparseAccel::Gating,
                "skip" => SparseAccel::Skipping,
                other => {
                    return Err(EvalError::Unknown {
                        what: "sparse feature",
                        name: other.to_string(),
                    })
                }
            };
            EvalRequest::builder(model, hw)
                .sparse(SparseHw::with_accel(accel))
                .build()?
        }
    };

    section(&format!(
        "eval_report: {} on {}x{} ({}), fingerprint {:#018x}",
        request.workload.name,
        request.hw.array.0,
        request.hw.array.1,
        request.sparse.accel,
        request.fingerprint(),
    ));
    if let Some(path) = &request_out {
        obs.time("codec/request_encode", || request.write_to(Path::new(path)))
            .map_err(|e| file_ctx(path, e))?;
        println!("request ({} bytes) -> {path}", request.encode().len());
    }

    let session = EvalSession::new().with_obs(obs.clone());
    let report = session.evaluate(&request);
    println!(
        "{} layers, {} cycles, {:.1} GOP/s, EDP {:.3e}, score {:.3e}",
        report.per_layer.len(),
        report.model.cycles,
        report.model.gops,
        report.cost.edp(),
        report.cost.score,
    );
    println!(
        "cache: {} hits / {} misses ({})",
        report.provenance.cache_hits,
        report.provenance.cache_misses,
        if report.provenance.warm() {
            "warm"
        } else {
            "cold"
        },
    );
    if let Some(path) = &out {
        obs.time("codec/report_encode", || report.write_to(Path::new(path)))
            .map_err(|e| file_ctx(path, e))?;
        println!("report ({} bytes) -> {path}", report.encode().len());
    }

    let gauges = session.cache().gauges();
    section("cache gauges");
    println!(
        "resident: {} entries, {} bytes; hit rate {:.1}% ({} hits / {} misses)",
        gauges.entries,
        gauges.resident_bytes,
        gauges.hit_rate() * 100.0,
        gauges.hits,
        gauges.misses,
    );

    if let Some(snapshot) = obs.trace_snapshot() {
        if let Some(path) = &trace_out {
            std::fs::write(path, snapshot.chrome_trace_json())
                .map_err(|e| file_ctx(path, CodecError::Io(e)))?;
            println!("chrome trace ({} events) -> {path}", snapshot.events.len());
        }
        if let Some(path) = &folded_out {
            std::fs::write(path, snapshot.folded_stacks())
                .map_err(|e| file_ctx(path, CodecError::Io(e)))?;
            println!("folded stacks -> {path}");
        }
        if snapshot.dropped > 0 {
            println!(
                "warning: trace ring overflowed, {} oldest events dropped",
                snapshot.dropped
            );
        }
    }

    section("observability summary");
    print!("{}", obs.summary().render());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("eval_report: {e} [status {}]", e.status());
            ExitCode::FAILURE
        }
    }
}
