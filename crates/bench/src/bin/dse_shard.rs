//! Sharded design-space exploration driver — the worker/coordinator pair
//! of the distributed DSE workflow, in one binary.
//!
//! ```text
//! dse_shard run --shard I/N --out SNAP [--model M] [--space S] [--seed X] [--budget B]
//!              [--warm SNAP]
//!     Explore shard I of N and checkpoint the frontier + eval cache.
//!     `--warm` preloads the evaluation cache from a previous (merged)
//!     snapshot, so layer simulations a peer already ran are answered as
//!     cache hits — results are identical either way, only the work
//!     changes. The warm entries ride along into the checkpoint (cache
//!     merging is a union).
//!
//! dse_shard merge SNAP... [--out SNAP] [--report]
//!     Union-merge shard snapshots (frontier merge + cache absorb).
//!
//! dse_shard verify [--shards N] [--model M] [--space S]
//!     Run N grid shards and the single-process grid in-process and
//!     assert the merged frontier is dominance-equal (exit 1 if not) —
//!     the CI determinism gate. (Grid search is seed-free, so verify
//!     takes no --seed.)
//! ```
//!
//! Everything is deterministic: fixed seeds, canonical snapshot encoding,
//! order-preserving parallel evaluation. Running the same command twice
//! produces byte-identical snapshots and output.

use lego_bench::harness::{row, section};
use lego_eval::EvalError;
use lego_explorer::{
    default_strategies, explore, explore_shard, DesignSpace, ExploreOptions, GridSearch,
    ParetoFrontier, SearchStrategy, Snapshot, SnapshotError,
};
use lego_workloads::{zoo, Model};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_SEED: u64 = 0xDE5E;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        _ => Err(EvalError::Usage(USAGE.to_string())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dse_shard: {e} [status {}]", e.status());
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dse_shard run --shard I/N --out SNAP [--model M] [--space paper|sparse|tiny] [--seed X] [--budget B] [--warm SNAP]
  dse_shard merge SNAP... [--out SNAP] [--report]
  dse_shard verify [--shards N] [--model M] [--space paper|sparse|tiny]";

fn model_by_name(name: &str) -> Result<Model, EvalError> {
    Ok(match name {
        "lenet" => zoo::lenet(),
        "mobilenet_v2" => zoo::mobilenet_v2(),
        "resnet50" => zoo::resnet50(),
        "bert_base" => zoo::bert_base(),
        "resnet50_2to4" => zoo::resnet50_2to4(),
        "bert_base_pruned90" => zoo::bert_base_pruned90(),
        _ => {
            return Err(EvalError::Unknown {
                what: "model",
                name: name.to_string(),
            })
        }
    })
}

fn space_by_name(name: &str) -> Result<DesignSpace, EvalError> {
    Ok(match name {
        "paper" => DesignSpace::paper(),
        "sparse" => DesignSpace::sparse(),
        "tiny" => DesignSpace::tiny(),
        _ => {
            return Err(EvalError::Unknown {
                what: "space",
                name: name.to_string(),
            })
        }
    })
}

/// Keeps the snapshot path in a codec failure's message without
/// abandoning the typed error (and its stable status code).
fn snapshot_ctx(path: &str, e: SnapshotError) -> EvalError {
    match e {
        SnapshotError::Io(io) => {
            EvalError::Io(std::io::Error::new(io.kind(), format!("{path}: {io}")))
        }
        other => other.into(),
    }
}

/// Pulls `--flag value` out of an argument list; the leftovers stay.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, EvalError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(EvalError::Usage(format!("{flag} needs a value\n{USAGE}"))),
    }
}

/// Pulls a bare `--flag` out of an argument list.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_seed(text: Option<String>) -> Result<u64, EvalError> {
    match text {
        None => Ok(DEFAULT_SEED),
        Some(s) => {
            let digits = s.trim_start_matches("0x");
            let radix = if digits.len() < s.len() { 16 } else { 10 };
            u64::from_str_radix(digits, radix)
                .map_err(|_| EvalError::Usage(format!("bad seed {s:?}")))
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), EvalError> {
    let mut args = args.to_vec();
    let shard_spec = take_flag(&mut args, "--shard")?
        .ok_or_else(|| EvalError::Usage(format!("--shard I/N required\n{USAGE}")))?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| EvalError::Usage(format!("--out SNAP required\n{USAGE}")))?;
    let model = model_by_name(&take_flag(&mut args, "--model")?.unwrap_or("mobilenet_v2".into()))?;
    let space = space_by_name(&take_flag(&mut args, "--space")?.unwrap_or("paper".into()))?;
    let seed = parse_seed(take_flag(&mut args, "--seed")?)?;
    let budget = take_flag(&mut args, "--budget")?
        .map(|b| {
            b.parse::<usize>()
                .map_err(|_| EvalError::Usage(format!("bad budget {b:?}")))
        })
        .transpose()?;
    let warm = take_flag(&mut args, "--warm")?;
    if !args.is_empty() {
        return Err(EvalError::Usage(format!(
            "unexpected arguments {args:?}\n{USAGE}"
        )));
    }

    let (index, count) = shard_spec
        .split_once('/')
        .and_then(|(i, n)| Some((i.parse::<u32>().ok()?, n.parse::<u32>().ok()?)))
        .filter(|&(i, n)| n > 0 && i < n)
        .ok_or_else(|| {
            EvalError::Usage(format!("--shard wants I/N with I < N, got {shard_spec:?}"))
        })?;

    let shard = space.shard(index, count);
    let mut opts = ExploreOptions {
        budget_per_strategy: budget.unwrap_or_else(|| shard.size().max(1)),
        ..Default::default()
    };
    if let Some(warm_path) = &warm {
        let warm_snap =
            Snapshot::read_from(Path::new(warm_path)).map_err(|e| snapshot_ctx(warm_path, e))?;
        if warm_snap.model != model.name {
            return Err(EvalError::Usage(format!(
                "warm snapshot is for {:?}, run targets {:?}",
                warm_snap.model, model.name
            )));
        }
        println!(
            "warm start: preloading {} cache entries from {warm_path}",
            warm_snap.cache.len()
        );
        opts.warm_cache = warm_snap.cache;
    }
    section(&format!(
        "dse_shard run: {} shard {index}/{count} ({} of {} genomes; seed {seed:#x})",
        model.name,
        shard.size(),
        space.size(),
    ));
    let run = explore_shard(&model, &shard, &mut default_strategies(seed), &opts);
    let snapshot = run.snapshot(&model.name, seed);
    snapshot
        .write_to(Path::new(&out))
        .map_err(|e| snapshot_ctx(&out, e))?;
    println!(
        "{} genomes evaluated: frontier {} points, cache {} entries ({} hits / {} misses) -> {out}",
        run.evaluated(),
        run.frontier.len(),
        run.cache.len(),
        run.cache_hits,
        run.cache_misses,
    );
    if let Some(best) = run.frontier.best_by_edp() {
        println!(
            "shard-best EDP {:.3e} ({})",
            best.objectives.edp(),
            best.genome
        );
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), EvalError> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out")?;
    let report = take_switch(&mut args, "--report");
    if args.is_empty() {
        return Err(EvalError::Usage(format!(
            "merge needs at least one snapshot\n{USAGE}"
        )));
    }
    let paths: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
    let mut snapshots = Vec::new();
    for p in &paths {
        snapshots
            .push(Snapshot::read_from(p).map_err(|e| snapshot_ctx(&p.display().to_string(), e))?);
    }

    let mut merged = snapshots[0].clone();
    // Per-snapshot contribution in merge order: the first snapshot seeds
    // everything it carries; each later one contributes what `absorb`
    // actually added.
    let mut contributions = vec![(snapshots[0].frontier.len(), snapshots[0].cache.len())];
    let (mut joined, mut absorbed) = (0, 0);
    for s in &snapshots[1..] {
        if s.model != merged.model {
            return Err(EvalError::Usage(format!(
                "snapshot models disagree: {:?} vs {:?}",
                merged.model, s.model
            )));
        }
        let (j, a) = merged.absorb(s);
        contributions.push((j, a));
        joined += j;
        absorbed += a;
    }
    // The merged snapshot stands for the whole space, not one slice.
    merged.shard_index = 0;
    merged.shard_count = 1;

    if report {
        section("dse_shard merge");
        // Which shard frontier points made it into the merged frontier.
        let surviving: std::collections::HashSet<u64> =
            merged.frontier.genome_keys().into_iter().collect();
        row(&[
            "snapshot".into(),
            "shard".into(),
            "evaluated".into(),
            "frontier".into(),
            "survived".into(),
            "cache".into(),
            "contributed".into(),
        ]);
        for ((p, s), (frontier_joined, cache_added)) in
            paths.iter().zip(&snapshots).zip(&contributions)
        {
            let survived = s
                .frontier
                .points()
                .iter()
                .filter(|pt| surviving.contains(&pt.genome.key()))
                .count();
            row(&[
                p.file_name()
                    .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
                format!("{}/{}", s.shard_index, s.shard_count),
                format!("{}", s.evaluated),
                format!("{}/{}", frontier_joined, s.frontier.len()),
                format!("{}", survived),
                format!("{}", s.cache.len()),
                format!("{}", cache_added),
            ]);
        }
        println!(
            "({} genomes evaluated across the partition; \"frontier\" is \
             points joined at merge / points checkpointed)",
            merged.evaluated
        );
        let shard_bytes: usize = snapshots
            .iter()
            .map(|s| lego_eval::estimated_resident_bytes_for(s.cache.len()))
            .sum();
        let merged_bytes = lego_eval::estimated_resident_bytes_for(merged.cache.len());
        println!(
            "cache residency: {} bytes across shards -> {} bytes merged \
             ({} bytes deduplicated)",
            shard_bytes,
            merged_bytes,
            shard_bytes.saturating_sub(merged_bytes),
        );
    }

    println!(
        "merged {} snapshots: frontier {} points (+{joined}), cache {} entries (+{absorbed})",
        paths.len(),
        merged.frontier.len(),
        merged.cache.len(),
    );
    if let Some(best) = merged.frontier.best_by_edp() {
        println!(
            "merged-best EDP {:.3e} ({})",
            best.objectives.edp(),
            best.genome
        );
    }
    if let Some(out) = out {
        merged
            .write_to(Path::new(&out))
            .map_err(|e| snapshot_ctx(&out, e))?;
        println!("wrote merged snapshot -> {out}");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), EvalError> {
    let mut args = args.to_vec();
    let shards: u32 = take_flag(&mut args, "--shards")?.map_or(Ok(4), |n| {
        n.parse()
            .map_err(|_| EvalError::Usage(format!("bad shard count {n:?}")))
    })?;
    let model = model_by_name(&take_flag(&mut args, "--model")?.unwrap_or("mobilenet_v2".into()))?;
    let space = space_by_name(&take_flag(&mut args, "--space")?.unwrap_or("paper".into()))?;
    if !args.is_empty() {
        return Err(EvalError::Usage(format!(
            "unexpected arguments {args:?}\n{USAGE}"
        )));
    }
    // No --seed here: both sides are pure grid search, which is
    // deterministic and seed-free by construction.
    let grid_only = || vec![Box::new(GridSearch) as Box<dyn SearchStrategy>];
    // Grid search truncates at the budget, so the budget must cover the
    // whole space on both sides of the comparison.
    let exhaustive = ExploreOptions {
        budget_per_strategy: space.size(),
        ..Default::default()
    };

    section(&format!(
        "dse_shard verify: {} on {} genomes, {shards} grid shards vs single process",
        model.name,
        space.size(),
    ));
    let single = explore(&model, &space, &mut grid_only(), &exhaustive);
    let mut merged = ParetoFrontier::new();
    let mut covered = 0;
    for i in 0..shards {
        let shard = space.shard(i, shards);
        let run = explore_shard(&model, &shard, &mut grid_only(), &exhaustive);
        covered += run.reports[0].evaluated;
        merged.merge(&run.frontier);
        println!(
            "  shard {i}/{shards}: {} genomes, frontier {}",
            run.reports[0].evaluated,
            run.frontier.len()
        );
    }
    if covered != space.size() {
        return Err(EvalError::Internal(format!(
            "VERIFY FAILED: shards covered {covered} of {} genomes",
            space.size()
        )));
    }
    if !merged.dominance_equal(&single.frontier) {
        return Err(EvalError::Internal(format!(
            "VERIFY FAILED: merged frontier ({} points) is not dominance-equal \
             to the single-process frontier ({} points)",
            merged.len(),
            single.frontier.len()
        )));
    }
    println!(
        "OK: union of {shards} shard frontiers is dominance-equal to the \
         single-process frontier ({} points, best EDP {:.3e})",
        single.frontier.len(),
        single
            .frontier
            .best_by_edp()
            .expect("non-empty")
            .objectives
            .edp(),
    );
    Ok(())
}
