//! Figure 11: end-to-end performance (GOP/s) and energy efficiency
//! (GOPS/W) of Gemmini vs LEGO on seven NN models, 256 MACs / 256 KB /
//! 16 GB/s each. Paper: 3.2× speedup and 2.4× energy savings on average.
//! The instruction-stream column reproduces the §VI-B(e) system-overhead
//! check (< 1 % of DRAM bandwidth).

use lego_baselines::simulate_model_gemmini;
use lego_bench::harness::{evaluate, f, geomean, row, section};
use lego_eval::EvalSession;
use lego_model::TechModel;
use lego_sim::HwConfig;
use lego_workloads::zoo;

fn main() {
    let session = EvalSession::new();
    let tech = TechModel::default();
    let hw = HwConfig::lego_256();

    section("Figure 11: end-to-end Gemmini vs LEGO (256 MACs, 256 KB, 16 GB/s)");
    row(&[
        "model".into(),
        "Gemmini GOP/s".into(),
        "LEGO GOP/s".into(),
        "speedup".into(),
        "Gem GOPS/W".into(),
        "LEGO GOPS/W".into(),
        "eff x".into(),
        "instr GB/s".into(),
    ]);

    let mut speedups = Vec::new();
    let mut effs = Vec::new();
    for m in zoo::figure11_models() {
        let g = simulate_model_gemmini(&m, &tech);
        let l = evaluate(&session, &m, &hw).model;
        let sp = l.gops / g.gops;
        let ef = l.gops_per_watt / g.gops_per_watt;
        speedups.push(sp);
        effs.push(ef);
        row(&[
            m.name.clone(),
            f(g.gops, 0),
            f(l.gops, 0),
            f(sp, 2),
            f(g.gops_per_watt, 0),
            f(l.gops_per_watt, 0),
            f(ef, 2),
            f(l.instr_gbps, 3),
        ]);
    }
    row(&[
        "GEOMEAN".into(),
        "-".into(),
        "-".into(),
        f(geomean(&speedups), 2),
        "-".into(),
        "-".into(),
        f(geomean(&effs), 2),
        "-".into(),
    ]);
    println!("paper reports: 3.2x average speedup, 2.4x average energy savings");
    println!("paper GOP/s   (Gemmini): 118 24 290 131 159 11 143");
    println!("paper GOP/s   (LEGO)   : 241 310 475 430 456 29 441");
}
