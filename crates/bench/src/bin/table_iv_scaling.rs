//! Table IV: runtime cost and performance when scaling the design from 64
//! to 16 384 FUs. Up to 1024 FUs the array itself grows; beyond that, PE
//! clusters scale out over the L2 wormhole NoC. Paper: generation stays
//! under 3 minutes even at 16k FUs and the L2 NoC adds < 10 % area/power.

use std::time::Instant;

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_bench::harness::evaluate;
use lego_bench::harness::{f, row, section};
use lego_eval::EvalSession;
use lego_frontend::{build_adg, FrontendConfig};
use lego_ir::kernels::{self, dataflows};
use lego_model::{dag_cost, SramModel, TechModel};
use lego_sim::{HwConfig, SpatialMapping};

fn main() {
    let session = EvalSession::new();
    let tech = TechModel::default();
    let sram = SramModel::default();
    section("Table IV: scaling from 64 to 16384 FUs");
    row(&[
        "#FUs".into(),
        "array".into(),
        "L2 NoC".into(),
        "gen time s".into(),
        "area mm2".into(),
        "power mW".into(),
        "GOPS/W".into(),
    ]);

    for (fus, p, clusters) in [
        (64i64, 8i64, (1u32, 1u32)),
        (256, 16, (1, 1)),
        (1024, 32, (1, 1)),
        (4096, 32, (2, 2)),
        (16384, 32, (4, 4)),
    ] {
        let start = Instant::now();
        let d = 2 * p;
        let gemm = kernels::gemm(d, d, d);
        let df = dataflows::gemm_ij(&gemm, p);
        let adg = build_adg(&gemm, &[df], &FrontendConfig::default()).expect("valid");
        let mut dag = lower(&adg, &BackendConfig::default());
        optimize(&mut dag, &OptimizeOptions::default());
        let gen_s = start.elapsed().as_secs_f64();

        let n_clusters = i64::from(clusters.0) * i64::from(clusters.1);
        let c = dag_cost(&dag, &tech, 0.9);
        let buf = 64 * 1024 * (fus as u64 / 64).max(1); // buffers scale with FUs
        let mut area = (c.area_um2 * n_clusters as f64 + sram.area_um2(buf, 16)) / 1e6;
        let mut power = c.total_mw() * n_clusters as f64
            + sram.leakage_uw(buf) / 1000.0
            + sram.access_energy_pj(buf, 16 * n_clusters as u64) * tech.freq_ghz;
        if n_clusters > 1 {
            // Wormhole L2: routers + links, < 10% of the array cost.
            let mesh = lego_noc::Mesh::new(clusters.0, clusters.1, 16, 1);
            area += lego_model::l2_router_area_um2(mesh.routers(), &tech) / 1e6;
            power += mesh.routers() as f64 * 16.0 * tech.noc_pj_per_byte_hop * tech.freq_ghz;
        }

        let hw = HwConfig {
            array: (p, p),
            clusters,
            // `buf` is the chip-total pool; HwConfig takes the per-cluster
            // share (each cluster tiles against its own buffer).
            buffer_kb: buf / 1024 / n_clusters as u64,
            dram_gbps: 16.0 * n_clusters as f64,
            num_ppus: 16,
            dataflows: vec![SpatialMapping::GemmMN, SpatialMapping::ConvIcOc],
            static_mw: power * 0.2,
            dynamic_mw: power * 0.8,
        };
        let perf = evaluate(&session, &lego_workloads::zoo::resnet50(), &hw).model;

        row(&[
            fus.to_string(),
            format!("{p}x{p}"),
            format!("{}x{}", clusters.0, clusters.1),
            f(gen_s, 1),
            f(area, 2),
            f(power, 0),
            f(perf.gops_per_watt, 0),
        ]);
    }
    println!("paper reports: generation 13.1s..134.3s; 0.02..4.21 mm2; 29..6987 mW;");
    println!("               energy efficiency roughly flat (~4400-4850 GOPS/W)");
}
