//! Figures 13 and 14: contribution of each back-end pass to the area and
//! power savings, per kernel design. Paper: 35 % area saving on average
//! (≈15 % reduction-tree, ≈15 % broadcast rewiring, ≈5 % pin reuse) and
//! 28 % power saving (plus ≈1.4 % from power gating).

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_bench::harness::{f, geomean, row, section};
use lego_bench::kernel_designs;
use lego_frontend::{build_adg, FrontendConfig};
use lego_model::{dag_cost, TechModel};

fn main() {
    let tech = TechModel::default();
    section("Figures 13/14: per-pass area & power savings vs baseline");
    row(&[
        "design".into(),
        "red.tree A%".into(),
        "rewire A%".into(),
        "pin A%".into(),
        "total A%".into(),
        "total P%".into(),
        "gating P%".into(),
    ]);

    let mut totals_a = Vec::new();
    let mut totals_p = Vec::new();
    for d in kernel_designs(8) {
        let adg =
            build_adg(&d.workload, &d.dataflows, &FrontendConfig::default()).expect("valid design");
        let cfg = BackendConfig::default();
        let cost = |opts: &OptimizeOptions| {
            let mut dag = lower(&adg, &cfg);
            optimize(&mut dag, opts);
            dag_cost(&dag, &tech, 1.0)
        };

        let base = cost(&OptimizeOptions::baseline());
        let red = cost(&OptimizeOptions {
            reduction_tree: true,
            ..OptimizeOptions::baseline()
        });
        let rewire = cost(&OptimizeOptions {
            reduction_tree: true,
            broadcast_rewire: true,
            ..OptimizeOptions::baseline()
        });
        let pin = cost(&OptimizeOptions {
            reduction_tree: true,
            broadcast_rewire: true,
            pin_reuse: true,
            power_gating: false,
        });
        let full = cost(&OptimizeOptions::default());

        let pct = |a: f64, b: f64| 100.0 * (1.0 - b / a);
        let a_red = pct(base.area_um2, red.area_um2);
        let a_rw = pct(red.area_um2, rewire.area_um2);
        let a_pin = pct(rewire.area_um2, pin.area_um2);
        let a_tot = pct(base.area_um2, full.area_um2);
        let p_tot = pct(base.total_mw(), full.total_mw());
        let p_gate = pct(pin.total_mw(), full.total_mw());
        totals_a.push(1.0 - a_tot / 100.0);
        totals_p.push(1.0 - p_tot / 100.0);
        row(&[
            d.name.into(),
            f(a_red, 1),
            f(a_rw, 1),
            f(a_pin, 1),
            f(a_tot, 1),
            f(p_tot, 1),
            f(p_gate, 1),
        ]);
    }
    row(&[
        "GEOMEAN".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f(100.0 * (1.0 - geomean(&totals_a)), 1),
        f(100.0 * (1.0 - geomean(&totals_p)), 1),
        "-".into(),
    ]);
    println!("paper reports: 35% average area saving, 28% average power saving");
}
