//! Sparse-scenario design-space exploration: dense vs gating vs skipping.
//!
//! For each pruned/masked model (ResNet50 @ 2:4 structured weights,
//! BERT @ 90 % unstructured weight sparsity, GPT-2 prefill with a causal
//! attention mask), the explorer's full portfolio searches the paper
//! space three times — once per sparse datapath (dense, gating,
//! skipping) — under the same 10 mm² / 3 W budget as `table_dse`, and
//! the per-datapath EDP winners are compared. The three per-class Pareto
//! frontiers are then merged (every global non-dominated point is
//! non-dominated within its class, so the union-then-refilter *is* the
//! full-space frontier) to report how the combined frontier splits
//! between datapaths.
//!
//! The run is deterministic: fixed seed, shared memoized caches,
//! order-preserving parallel evaluation — byte-identical across runs.

use lego_bench::harness::{f, row, section};
use lego_eval::{EvalRequest, EvalSession};
use lego_explorer::{
    default_strategies, explore, Constraints, DesignSpace, ExploreOptions, Genome, ParetoFrontier,
    SparseAccel,
};
use lego_model::SparseHw;
use lego_workloads::zoo;

const SEED: u64 = 0x5BA5;

fn main() {
    // Same hard feasibility budget as `table_dse`, so dense numbers are
    // directly comparable.
    let constraints = Constraints::none()
        .with_max_area_mm2(10.0)
        .with_max_power_mw(3000.0);

    section(&format!(
        "Sparse DSE: dense vs gating vs skipping datapaths ({} configs per class; \
         grid+random+ES, seed {SEED:#x}; budget 10 mm2 / 3 W)",
        DesignSpace::paper().size()
    ));
    row(&[
        "model".into(),
        "dense EDP".into(),
        "gate EDP".into(),
        "gate gain".into(),
        "skip EDP".into(),
        "skip gain".into(),
        "best skip config".into(),
        "frontier d/g/s".into(),
    ]);

    let mut format_probes: Vec<(lego_workloads::Model, Genome)> = Vec::new();
    for model in zoo::sparse_models() {
        let mut class_best = Vec::new();
        let mut merged = ParetoFrontier::new();
        for accel in SparseAccel::ALL {
            let space = DesignSpace {
                sparse_accels: vec![accel],
                ..DesignSpace::paper()
            };
            let opts = ExploreOptions {
                budget_per_strategy: space.size(),
                constraints,
                ..Default::default()
            };
            let result = explore(&model, &space, &mut default_strategies(SEED), &opts);
            let best = result.best_by_edp().expect("non-empty frontier").clone();
            for p in result.frontier.points() {
                merged.insert(p.clone());
            }
            class_best.push(best);
        }
        let count = |accel: SparseAccel| {
            merged
                .points()
                .iter()
                .filter(|p| p.genome.sparse == accel)
                .count()
        };
        let [dense, gate, skip] = &class_best[..] else {
            unreachable!("one best per datapath class");
        };
        let dense_edp = dense.objectives.edp();
        row(&[
            model.name.clone(),
            format!("{dense_edp:.3e}"),
            format!("{:.3e}", gate.objectives.edp()),
            f(dense_edp / gate.objectives.edp(), 2),
            format!("{:.3e}", skip.objectives.edp()),
            f(dense_edp / skip.objectives.edp(), 2),
            skip.genome.to_string(),
            format!(
                "{}/{}/{}",
                count(SparseAccel::None),
                count(SparseAccel::Gating),
                count(SparseAccel::Skipping)
            ),
        ]);
        // The paper-level claim this table exists to check: on 2:4-pruned
        // ResNet50, a skipping datapath must beat the best dense design.
        if model.name.starts_with("ResNet50") {
            assert!(
                skip.objectives.edp() < dense_edp,
                "skipping must beat dense on ResNet50 @ 2:4"
            );
        }
        format_probes.push((model, skip.genome));
    }
    println!("\ngain > 1.00 means the sparse datapath beat the best dense design on the");
    println!("same model and budget; gating saves only datapath energy, skipping also");
    println!("saves cycles and compressed traffic (minus frontend area/energy overhead).");
    println!("frontier d/g/s = dense/gating/skipping members of the merged Pareto frontier.");

    // Per-layer representation choices of each model's best skipping
    // design, straight from the session's LayerReport (the frontend picks
    // the smallest format it can index into, per operand, per layer).
    section("Per-layer compressed-format selection (best skipping design per model)");
    row(&[
        "model".into(),
        "weights".into(),
        "inputs".into(),
        "layers".into(),
    ]);
    let session = EvalSession::new();
    for (model, genome) in &format_probes {
        let mut builder = EvalRequest::builder(model.clone(), genome.to_hw_config())
            .sparse(SparseHw::with_accel(genome.sparse));
        if let Some(cap) = genome.tile_cap {
            builder = builder.tile_cap(cap);
        }
        let request = builder.build().expect("genomes encode valid requests");
        let report = session.evaluate(&request);
        let mut combos: std::collections::BTreeMap<(&str, &str), i64> = Default::default();
        for l in &report.per_layer {
            *combos
                .entry((l.weight_format.name(), l.input_format.name()))
                .or_default() += l.count;
        }
        for ((w, i), layers) in combos {
            row(&[model.name.clone(), w.into(), i.into(), layers.to_string()]);
        }
    }
    println!("\nlayers = repetition-weighted layer instances streaming that (weights, inputs)");
    println!("format pair; dense layers inside a pruned model keep dense operands, which is");
    println!("why per-layer (not per-chip) selection matters.");
}
