//! Shared helpers and design points for the table/figure harness binaries.
//!
//! Every table and figure of the paper's evaluation (§VI) has a binary in
//! `src/bin/` that regenerates it:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table_fig10_opt_savings` | Figure 10 (area/energy savings per kernel) |
//! | `table_fig11_end2end` | Figure 11 (Gemmini vs LEGO end-to-end) |
//! | `table_fig12_breakdown` | Figure 12 (area/power/latency breakdowns) |
//! | `table_fig13_14_backend_ablation` | Figures 13–14 (per-pass breakdown) |
//! | `table_ii_genai` | Table II (generative models on LEGO-ICOC-1K) |
//! | `table_iii_handwritten` | Table III (Eyeriss / NVDLA comparison) |
//! | `table_iv_scaling` | Table IV (scaling to 16 384 FUs) |
//! | `table_v_fusion` | Table V (dataflow-fusion efficacy) |
//! | `table_vi_related` | Table VI (related-work factors) |
//! | `table_vii_soda` | Table VII (SODA toolchain comparison) |
//! | `table_viii_autosa` | Table VIII (AutoSA FF/LUT comparison) |
//! | `table_dse` | Design-space exploration vs. the hand-picked `lego_256` |
//! | `table_sparse` | Sparse DSE (dense/gating/skipping) + per-layer formats |
//! | `dse_shard` | Distributed DSE worker/coordinator (run/merge/verify) |
//! | `eval_report` | `EvalRequest`→`EvalReport` codec driver (determinism gate) |
//! | `perf_bench` | Canonical perf workloads → `BENCH_eval.json` ([`perf`]) |
//!
//! Every binary that prices a workload on a configuration does so through
//! [`harness::evaluate`] — one `EvalSession` per binary speaking the
//! canonical `EvalRequest`/`EvalReport` API from `lego-eval`.

pub mod designs;
pub mod harness;
pub mod perf;

pub use designs::{kernel_designs, KernelDesign};
