//! Pretty-printing helpers shared by the harness binaries.

/// Prints a row of right-aligned cells under a fixed-width layout.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}
