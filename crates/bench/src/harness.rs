//! Shared harness for the table/figure binaries: pretty-printing plus the
//! one evaluation entry point every binary speaks.
//!
//! Historically each binary hand-wired `HwConfig`, `TechModel`, sparsity,
//! and objective into free-function calls; they now all build an
//! [`EvalRequest`] and price it through one [`EvalSession`] per binary, so
//! repeated model/hardware pairs share the memoized cache and every table
//! exercises the same API a multi-host driver would ship over the wire.

use lego_eval::{EvalReport, EvalRequest, EvalSession};
use lego_model::TechModel;
use lego_sim::HwConfig;
use lego_workloads::Model;

/// Prices `model` on `hw` (default technology) through the shared
/// request/response evaluation layer.
pub fn evaluate(session: &EvalSession, model: &Model, hw: &HwConfig) -> EvalReport {
    let request = EvalRequest::builder(model.clone(), hw.clone())
        .build()
        .expect("table inputs are valid requests");
    session.evaluate(&request)
}

/// [`evaluate`] under an explicit technology model (45 nm tables).
pub fn evaluate_with_tech(
    session: &EvalSession,
    model: &Model,
    hw: &HwConfig,
    tech: &TechModel,
) -> EvalReport {
    let request = EvalRequest::builder(model.clone(), hw.clone())
        .tech(*tech)
        .build()
        .expect("table inputs are valid requests");
    session.evaluate(&request)
}

/// Prints a row of right-aligned cells under a fixed-width layout.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}
