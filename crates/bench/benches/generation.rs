//! Criterion benches backing Table IV's generation-time claim and the
//! per-stage runtime of the front and back ends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_eval::{EvalRequest, EvalSession};
use lego_frontend::{build_adg, FrontendConfig};
use lego_ir::kernels::{self, dataflows};
use lego_sim::HwConfig;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_generation");
    group.sample_size(10);
    for p in [4i64, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p * p), &p, |b, &p| {
            let d = 2 * p;
            let gemm = kernels::gemm(d, d, d);
            b.iter(|| {
                let df = dataflows::gemm_ij(&gemm, p);
                let adg = build_adg(&gemm, &[df], &FrontendConfig::default()).unwrap();
                let mut dag = lower(&adg, &BackendConfig::default());
                optimize(&mut dag, &OptimizeOptions::default());
                dag.nodes.len()
            });
        });
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.sample_size(10);
    let gemm = kernels::gemm(32, 32, 32);
    group.bench_function("adg_gemm_fused_8x8", |b| {
        b.iter(|| {
            let ij = dataflows::gemm_ij(&gemm, 8);
            let kj = dataflows::gemm_kj(&gemm, 8);
            build_adg(&gemm, &[ij, kj], &FrontendConfig::default()).unwrap()
        });
    });
    group.finish();
}

fn bench_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend");
    group.sample_size(10);
    let gemm = kernels::gemm(32, 32, 32);
    let df = dataflows::gemm_kj(&gemm, 8);
    let adg = build_adg(&gemm, &[df], &FrontendConfig::default()).unwrap();
    group.bench_function("optimize_passes_8x8", |b| {
        b.iter(|| {
            let mut dag = lower(&adg, &BackendConfig::default());
            optimize(&mut dag, &OptimizeOptions::default());
            dag.pipeline_register_bits()
        });
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let hw = HwConfig::lego_256();
    let model = lego_workloads::zoo::resnet50();
    let request = EvalRequest::new(model, hw);
    group.bench_function("map_resnet50", |b| {
        // A fresh session per iteration: this benches the simulator, not
        // the memoized cache.
        b.iter(|| EvalSession::new().evaluate(&request).model.cycles);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_frontend,
    bench_backend,
    bench_simulator
);
criterion_main!(benches);
