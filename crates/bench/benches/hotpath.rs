//! Criterion benches for the evaluation hot path — the per-layer pieces
//! `perf_bench --mode wallclock` exercises end to end. Each bench isolates
//! one stage so a regression in the wallclock trajectory (BENCH_eval_wall.json)
//! can be pinned to cache lookups, tiling arithmetic, mapping search, or the
//! report codec without re-profiling the whole harness.

use criterion::{criterion_group, criterion_main, Criterion};
use lego_eval::{layer_key, EvalCache, EvalRequest, EvalSession};
use lego_model::{CostContext, TechModel};
use lego_obs::Obs;
use lego_sim::{best_mapping_ctx, best_mapping_obs, tiled_dram_traffic, HwConfig};
use lego_workloads::zoo;

type CacheEntries = Vec<((u64, u64), lego_sim::LayerPerf)>;

/// A cache populated exactly the way a session would populate it: one
/// entry per distinct (hw, layer-shape) pair of the given model.
fn populated_cache(hw: &HwConfig) -> (EvalCache, CacheEntries) {
    let model = zoo::resnet50();
    let ctx = CostContext::new(hw.clone(), TechModel::default());
    let hw_key = EvalRequest::new(model.clone(), hw.clone()).hw_key();
    let cache = EvalCache::new();
    for layer in &model.layers {
        cache.get_or_compute(hw_key, layer_key(layer), || {
            best_mapping_ctx(layer, &ctx, None)
        });
    }
    let entries = cache.entries();
    (cache, entries)
}

fn bench_eval_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_cache");
    group.sample_size(50);
    let hw = HwConfig::lego_256();
    let (cache, entries) = populated_cache(&hw);
    let keys: Vec<(u64, u64)> = entries.iter().map(|(k, _)| *k).collect();
    group.bench_function("get_hit_resnet50_shapes", |b| {
        b.iter(|| {
            keys.iter()
                .filter(|&&(h, l)| cache.peek(h, l).is_some())
                .count()
        });
    });
    group.bench_function("absorb_resnet50_entries", |b| {
        b.iter(|| {
            let fresh = EvalCache::new();
            fresh.absorb(entries.iter().cloned())
        });
    });
    group.finish();
}

fn bench_tiled_dram_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_dram_traffic");
    group.sample_size(50);
    // A mid-network ResNet bottleneck GEMM against LEGO-256's buffer.
    let buffer = HwConfig::lego_256().buffer_kb as i64 * 1024;
    group.bench_function("resnet_bottleneck_gemm", |b| {
        b.iter(|| tiled_dram_traffic(196, 512, 1024, buffer, None));
    });
    group.bench_function("resnet_bottleneck_gemm_tile_capped", |b| {
        b.iter(|| tiled_dram_traffic(196, 512, 1024, buffer, Some(64)));
    });
    group.finish();
}

fn bench_best_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_mapping");
    group.sample_size(20);
    let model = zoo::resnet50();
    let ctx = CostContext::new(HwConfig::lego_256(), TechModel::default());
    let layer = &model.layers[model.layers.len() / 2];
    let disabled = Obs::disabled();
    group.bench_function("obs_disabled", |b| {
        b.iter(|| best_mapping_obs(layer, &ctx, None, &disabled));
    });
    let wall = Obs::wall_clock();
    group.bench_function("obs_wall_clock", |b| {
        b.iter(|| best_mapping_obs(layer, &ctx, None, &wall));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(50);
    let request = EvalRequest::new(zoo::resnet50(), HwConfig::lego_256());
    let report = EvalSession::new().evaluate(&request);
    let request_bytes = request.encode();
    let report_bytes = report.encode();
    group.bench_function("request_encode", |b| {
        b.iter(|| request.encode().len());
    });
    group.bench_function("request_decode", |b| {
        b.iter(|| EvalRequest::decode(&request_bytes).expect("round-trip"));
    });
    group.bench_function("report_encode", |b| {
        b.iter(|| report.encode().len());
    });
    group.bench_function("report_decode", |b| {
        b.iter(|| lego_eval::EvalReport::decode(&report_bytes).expect("round-trip"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_eval_cache,
    bench_tiled_dram_traffic,
    bench_best_mapping,
    bench_codec
);
criterion_main!(benches);
