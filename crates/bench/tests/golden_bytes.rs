//! Golden byte-identity tests: the artifacts this repo publishes — the DSE
//! tables, the deterministic BENCH trajectory, the eval_report request and
//! report encodings, and a DSE shard snapshot — are pinned to committed
//! golden bytes. Performance work on the hot path (context reuse, cache
//! sharding, allocation elimination) must never move a single byte of any
//! of them; a diff here means a pricing or encoding change, not a speedup.
//!
//! Each test drives the real binary (`CARGO_BIN_EXE_*`), so the goldens
//! cover the full CLI path the CI determinism job exercises run-vs-run —
//! but anchored to a committed reference instead of a sibling run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read golden {}: {e}", path.display()))
}

fn run(bin: &str, args: &[&str]) -> Vec<u8> {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn assert_bytes_eq(actual: &[u8], name: &str) {
    let expected = golden(name);
    assert!(
        actual == expected.as_slice(),
        "{name} drifted from the committed golden ({} vs {} bytes); \
         pricing or encoding changed — this is not a performance regression, \
         it is a semantic one",
        actual.len(),
        expected.len()
    );
}

#[test]
fn table_dse_text_is_byte_identical() {
    let stdout = run(env!("CARGO_BIN_EXE_table_dse"), &[]);
    assert_bytes_eq(&stdout, "table_dse.txt");
}

#[test]
fn table_sparse_text_is_byte_identical() {
    let stdout = run(env!("CARGO_BIN_EXE_table_sparse"), &[]);
    assert_bytes_eq(&stdout, "table_sparse.txt");
}

#[test]
fn deterministic_bench_json_is_byte_identical() {
    let out = tmp_path("bench_det.json");
    run(
        env!("CARGO_BIN_EXE_perf_bench"),
        &["--mode", "deterministic", "--out", out.to_str().unwrap()],
    );
    let actual = std::fs::read(&out).expect("read perf_bench output");
    assert_bytes_eq(&actual, "bench_det.json");
}

#[test]
fn eval_report_request_and_report_bytes_are_byte_identical() {
    let req = tmp_path("eval_request.bin");
    let rep = tmp_path("eval_report.bin");
    run(
        env!("CARGO_BIN_EXE_eval_report"),
        &[
            "--request-out",
            req.to_str().unwrap(),
            "--out",
            rep.to_str().unwrap(),
        ],
    );
    assert_bytes_eq(
        &std::fs::read(&req).expect("read request"),
        "eval_request.bin",
    );
    assert_bytes_eq(
        &std::fs::read(&rep).expect("read report"),
        "eval_report.bin",
    );
}

#[test]
fn dse_shard_snapshot_is_byte_identical() {
    let out = tmp_path("shard0.bin");
    run(
        env!("CARGO_BIN_EXE_dse_shard"),
        &[
            "run",
            "--shard",
            "0/2",
            "--out",
            out.to_str().unwrap(),
            "--model",
            "lenet",
            "--space",
            "tiny",
            "--seed",
            "7",
            "--budget",
            "24",
        ],
    );
    assert_bytes_eq(&std::fs::read(&out).expect("read shard"), "shard0.bin");
}
