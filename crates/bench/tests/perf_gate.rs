//! The bench regression gate, end to end: `perf_bench diff` must exit
//! nonzero when a wall metric regresses past tolerance and zero on a
//! self-diff, and `perf_bench check` must reject structurally malformed
//! documents (wrong units, negative values) — not just missing metrics.
//!
//! The before/after fixtures are synthesized rather than measured so the
//! test is fast and the "regression" is exactly 50%, well past the
//! default 1.25× tolerance and inside a generous 2× one.

use lego_bench::perf;
use lego_obs::bench::{render_bench_json, BenchRow};
use std::path::PathBuf;
use std::process::Command;

/// A plausible wallclock bench document: every required metric, correct
/// units, nonzero walls.
fn baseline_rows() -> Vec<BenchRow> {
    perf::REQUIRED_METRICS
        .iter()
        .map(|&metric| {
            let unit = perf::expected_unit(metric).expect("required metric has a pinned unit");
            let value = match unit {
                "ns" => 1_000_000.0,
                "requests/s" | "evals/s" => 5_000.0,
                _ => 42.0,
            };
            BenchRow::new(metric, value, unit, "synthetic@gate")
        })
        .collect()
}

/// The same document with every wall metric 50% slower.
fn regressed_rows() -> Vec<BenchRow> {
    baseline_rows()
        .into_iter()
        .map(|mut row| {
            if row.unit == "ns" {
                row.value *= 1.5;
            }
            row
        })
        .collect()
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lego_perf_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn perf_bench(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perf_bench"))
        .args(args)
        .output()
        .expect("spawn perf_bench")
}

#[test]
fn diff_fails_on_synthetic_regression_and_passes_on_self_diff() {
    let before = tmp_file("gate_before.json", &render_bench_json(&baseline_rows()));
    let after = tmp_file("gate_after.json", &render_bench_json(&regressed_rows()));
    let (before, after) = (before.to_str().unwrap(), after.to_str().unwrap());

    // 1.5× growth on lower-is-better wall metrics breaks the default
    // 1.25× tolerance…
    let out = perf_bench(&["diff", before, after]);
    assert!(
        !out.status.success(),
        "50% regression must fail the gate:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evaluate_single_wall"), "{stdout}");

    // …passes a generous 2× tolerance (the CI setting)…
    let out = perf_bench(&["diff", before, after, "--tolerance", "2.0"]);
    assert!(
        out.status.success(),
        "1.5x growth is inside a 2x tolerance:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // …and a per-metric override can re-tighten a single series.
    let out = perf_bench(&[
        "diff",
        before,
        after,
        "--tolerance",
        "2.0",
        "--tolerance-for",
        "explore_wall=1.1",
    ]);
    assert!(!out.status.success(), "per-metric override must gate");

    // A self-diff is always clean.
    let out = perf_bench(&["diff", before, before]);
    assert!(
        out.status.success(),
        "self-diff must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn diff_fails_when_a_metric_disappears_or_changes_unit() {
    let before = tmp_file("gate_full.json", &render_bench_json(&baseline_rows()));
    let mut rows = baseline_rows();
    rows.retain(|r| r.metric != "explore_wall");
    rows[0].unit = "us".into();
    let after = tmp_file("gate_mangled.json", &render_bench_json(&rows));

    let out = perf_bench(&[
        "diff",
        before.to_str().unwrap(),
        after.to_str().unwrap(),
        "--tolerance",
        "1000.0",
    ]);
    assert!(
        !out.status.success(),
        "missing metric + unit change must fail regardless of tolerance"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("explore_wall"), "{stdout}");
}

#[test]
fn check_rejects_malformed_rows() {
    // Wrong unit on a known metric: present, finite, positive — the old
    // presence-only check passed this.
    let mut rows = baseline_rows();
    rows.iter_mut()
        .find(|r| r.metric == "evaluate_batch_throughput")
        .unwrap()
        .unit = "ns".into();
    let path = tmp_file("gate_bad_unit.json", &render_bench_json(&rows));
    let out = perf_bench(&["check", path.to_str().unwrap()]);
    assert!(!out.status.success(), "wrong unit must fail check");
    assert!(String::from_utf8_lossy(&out.stderr).contains("evaluate_batch_throughput"));

    // Negative value.
    let mut rows = baseline_rows();
    rows.iter_mut()
        .find(|r| r.metric == "snapshot_bytes")
        .unwrap()
        .value = -1.0;
    let path = tmp_file("gate_negative.json", &render_bench_json(&rows));
    let out = perf_bench(&["check", path.to_str().unwrap()]);
    assert!(!out.status.success(), "negative value must fail check");

    // The clean fixture passes, including --wall.
    let path = tmp_file("gate_clean.json", &render_bench_json(&baseline_rows()));
    let out = perf_bench(&["check", "--wall", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "clean wallclock fixture must pass:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn record_appends_single_line_trajectory_entries() {
    let dir = std::env::temp_dir().join(format!("lego_perf_gate_rec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trajectory.jsonl");
    let _ = std::fs::remove_file(&path);

    for _ in 0..2 {
        let out = perf_bench(&["record", "--out", path.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "record failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let text = std::fs::read_to_string(&path).expect("read trajectory");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "append-only: one line per invocation");
    for line in &lines {
        assert!(line.starts_with("{\"mode\": \"deterministic\""), "{line}");
        assert!(line.contains("\"iters\": 1"), "{line}");
        assert!(line.contains("evaluate_single_wall"), "{line}");
    }
    // Deterministic mode: both entries are byte-identical.
    assert_eq!(lines[0], lines[1]);
}
