//! Layer-level performance/energy evaluation.
//!
//! Every cost a layer pays — FU cycles, DRAM streams, SRAM/DRAM/NoC energy,
//! L2 mesh latency — is charged through the [`CostContext`] built from the
//! [`HwConfig`](crate::HwConfig) under evaluation, so the simulation and the design-space
//! search price hardware through one stack.

use lego_model::{
    ComputeCost, CostContext, L2Traffic, MemoryCost, NocCost, SparseEffects, TechModel,
};
use lego_workloads::{Layer, LayerKind, Model};

pub use lego_model::SpatialMapping;

/// Energy breakdown of one layer execution (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// MAC (datapath) energy.
    pub mac_pj: f64,
    /// On-chip buffer access energy.
    pub sram_pj: f64,
    /// DRAM traffic energy.
    pub dram_pj: f64,
    /// NoC transport energy.
    pub noc_pj: f64,
    /// Static energy over the layer's runtime.
    pub static_pj: f64,
    /// Post-processing unit energy.
    pub ppu_pj: f64,
    /// Sparse frontend + format-decode energy (zero on the dense path).
    pub sparse_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj
            + self.sram_pj
            + self.dram_pj
            + self.noc_pj
            + self.static_pj
            + self.ppu_pj
            + self.sparse_pj
    }
}

/// Result of simulating one layer instance.
///
/// Plain `Copy` data (every field is scalar), so cache hits, report rows,
/// and aggregation inputs are register copies, never heap traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// Execution cycles (compute/memory overlapped, PPU serialized).
    pub cycles: i64,
    /// Spatial utilization of the FU array in [0, 1].
    pub utilization: f64,
    /// MAC operations executed.
    pub macs: i64,
    /// DRAM bytes moved.
    pub dram_bytes: i64,
    /// L1 accesses (reads + writes).
    pub l1_accesses: i64,
    /// Cycles spent in post-processing (already included in `cycles`).
    pub ppu_cycles: i64,
    /// Modeled L2-mesh transfer cycles for multi-cluster designs (head
    /// serialized into `cycles`, stream overlapped against the body);
    /// zero for a single cluster.
    pub noc_cycles: i64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// The mapping that was used.
    pub mapping: SpatialMapping,
}

/// Aggregated whole-model performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPerf {
    /// Total cycles.
    pub cycles: i64,
    /// Total operations (2 × MACs).
    pub ops: i64,
    /// Throughput in GOP/s at the technology frequency.
    pub gops: f64,
    /// Average power in W.
    pub watts: f64,
    /// Energy efficiency in GOPS/W.
    pub gops_per_watt: f64,
    /// MAC-weighted average utilization.
    pub utilization: f64,
    /// Fraction of total latency spent on post-processing.
    pub ppu_fraction: f64,
    /// Instruction-stream bandwidth demand in GB/s (system overhead check).
    pub instr_gbps: f64,
}

/// Ceiling division for positive i64 (the std `div_ceil` on signed
/// integers is unstable).
fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// `dim` work items on `p` lanes: achieved fraction of peak.
fn eff(dim: i64, p: i64) -> f64 {
    if dim <= 0 || p <= 0 {
        return 0.0;
    }
    let waves = div_ceil(dim, p);
    dim as f64 / (waves * p) as f64
}

/// GEMM-view dimensions (m, n, k) of any layer.
fn gemm_view(kind: &LayerKind) -> (i64, i64, i64) {
    match *kind {
        LayerKind::Gemm { m, n, k } => (m, n, k),
        LayerKind::Conv {
            n,
            ic,
            oc,
            oh,
            ow,
            kh,
            kw,
            ..
        } => (n * oh * ow, oc, ic * kh * kw),
        LayerKind::DwConv {
            n,
            c,
            oh,
            ow,
            kh,
            kw,
            ..
        } => (n * oh * ow * c, 1, kh * kw),
        LayerKind::Attention {
            heads,
            seq_q,
            seq_kv,
            dk,
            dv,
        } => {
            // Two chained GEMMs; expose the score GEMM's shape, the PV GEMM
            // has the same aggregate cost.
            (heads * seq_q, seq_kv, dk + dv)
        }
    }
}

/// Spatial utilization of `kind` under `mapping` on a `p0 × p1` array.
fn spatial_utilization(kind: &LayerKind, mapping: SpatialMapping, p0: i64, p1: i64) -> f64 {
    let (m, n, k) = gemm_view(kind);
    match mapping {
        SpatialMapping::GemmMN => eff(m, p0) * eff(n, p1),
        SpatialMapping::GemmKN => eff(k, p0) * eff(n, p1),
        SpatialMapping::ConvIcOc => match *kind {
            LayerKind::Conv { ic, oc, .. } => eff(ic, p0) * eff(oc, p1),
            // Depthwise has one input channel per output channel: the IC
            // axis collapses to a single lane.
            LayerKind::DwConv { c, .. } => eff(1, p0) * eff(c, p1),
            _ => eff(k, p0) * eff(n, p1),
        },
        SpatialMapping::ConvOhOw => match *kind {
            LayerKind::Conv { oh, ow, .. } | LayerKind::DwConv { oh, ow, .. } => {
                eff(oh, p0) * eff(ow, p1)
            }
            // Output-plane parallelism degenerates to M-only for GEMMs.
            _ => eff(m, p0 * p1),
        },
        SpatialMapping::ConvKhOh => match *kind {
            LayerKind::Conv { kh, oh, .. } | LayerKind::DwConv { kh, oh, .. } => {
                eff(kh, p0) * eff(oh, p1)
            }
            _ => eff(m, p1) * eff(1, p0),
        },
    }
}

/// DRAM traffic of a tiled `m×n×k` contraction with a byte budget.
///
/// Square-ish L1 tiles with full-`k` panels: each output tile loads a
/// `t×k` input panel and a `k×t` weight panel, outputs are written once
/// (partials stay on chip). The loop order keeps one side stationary —
/// iterating N-tiles innermost re-reads the weight panels once per M-tile
/// sweep while streaming each input panel once, and vice versa — so the
/// traffic is the cheaper of the two orders.
/// `tile_cap = None` keeps the automatic buffer-limited tile choice;
/// `Some(t)` additionally clamps the tile edge to `t`, which trades on-chip
/// reuse for smaller working sets — the tiling axis of the design-space
/// exploration in `lego-explorer`.
pub fn tiled_dram_traffic(m: i64, n: i64, k: i64, buffer_bytes: i64, tile_cap: Option<i64>) -> i64 {
    let weights = n * k;
    let inputs = m * k;
    let outputs = m * n;
    // Pick the largest square tile fitting the double-buffered budget:
    // t·k (weights) + t·k (inputs) + t·t (outputs) ≤ B/2. The fit
    // condition t² + 2kt ≤ B is monotone in t, so the edge is the positive
    // root √(k² + B) − k; the two exact walks below repair any float
    // rounding against the integer predicate (they run 0–1 steps), which
    // keeps the result bit-identical to the incremental search this
    // replaces — pinned by the hand-count tests.
    let budget = (buffer_bytes / 2).max(64);
    let cap_mn = m.max(n).max(1);
    let root = ((k as f64) * (k as f64) + budget as f64).sqrt() - k as f64;
    let mut t = (root.floor() as i64).clamp(1, cap_mn);
    while (t + 1) * k * 2 + (t + 1) * (t + 1) <= budget && t < cap_mn {
        t += 1;
    }
    while t > 1 && t * k * 2 + t * t > budget {
        t -= 1;
    }
    if let Some(cap) = tile_cap {
        t = t.min(cap.max(1));
    }
    let tm = t.min(m).max(1);
    let tn = t.min(n).max(1);
    let m_sweeps = div_ceil(m, tm);
    let n_sweeps = div_ceil(n, tn);
    // N-innermost: weights re-read once per M-tile, inputs streamed once.
    let n_inner = weights * m_sweeps + inputs;
    // M-innermost: inputs re-read once per N-tile, weights streamed once.
    let m_inner = weights + inputs * n_sweeps;
    n_inner.min(m_inner) + outputs
}

/// [`tiled_dram_traffic`] with per-operand byte scales for compressed
/// operands (`w_scale` weights, `i_scale` inputs, `o_scale` outputs, each
/// in `(0, 1]`).
///
/// Compression shrinks the streams *and* the working set, so the same
/// buffer holds larger tiles and the re-read sweeps get cheaper — the
/// compound win Sparseloop attributes to compressed on-chip residency.
/// Unit scales delegate to [`tiled_dram_traffic`] itself, so the
/// dense-equivalence guarantee (density 1.0, and gating's dense-traffic
/// contract) is structural, not a property of two twin implementations
/// staying in sync.
#[allow(clippy::too_many_arguments)] // a contraction shape plus one scale per operand
pub fn tiled_dram_traffic_sparse(
    m: i64,
    n: i64,
    k: i64,
    buffer_bytes: i64,
    tile_cap: Option<i64>,
    w_scale: f64,
    i_scale: f64,
    o_scale: f64,
) -> i64 {
    if w_scale == 1.0 && i_scale == 1.0 && o_scale == 1.0 {
        return tiled_dram_traffic(m, n, k, buffer_bytes, tile_cap);
    }
    let weights = (n * k) as f64 * w_scale;
    let inputs = (m * k) as f64 * i_scale;
    let outputs = (m * n) as f64 * o_scale;
    let budget = (buffer_bytes / 2).max(64) as f64;
    // Same closed-form tile solve as the dense path, with per-operand
    // scales: o·t² + k(w+i)·t ≤ B. The walks repair float rounding against
    // the exact predicate of the incremental search this replaces, so
    // results stay bit-identical.
    let cap_mn = m.max(n).max(1);
    let operand = k as f64 * (w_scale + i_scale);
    let root = if o_scale > 0.0 {
        ((operand * operand + 4.0 * o_scale * budget).sqrt() - operand) / (2.0 * o_scale)
    } else if operand > 0.0 {
        budget / operand
    } else {
        cap_mn as f64
    };
    let fits = |t: i64| (t * k) as f64 * (w_scale + i_scale) + (t * t) as f64 * o_scale <= budget;
    let mut t = (root.floor() as i64).clamp(1, cap_mn);
    while t < cap_mn && fits(t + 1) {
        t += 1;
    }
    while t > 1 && !fits(t) {
        t -= 1;
    }
    if let Some(cap) = tile_cap {
        t = t.min(cap.max(1));
    }
    let tm = t.min(m).max(1);
    let tn = t.min(n).max(1);
    let m_sweeps = div_ceil(m, tm);
    let n_sweeps = div_ceil(n, tn);
    let n_inner = weights * m_sweeps as f64 + inputs;
    let m_inner = weights + inputs * n_sweeps as f64;
    (n_inner.min(m_inner) + outputs).ceil() as i64
}

/// Halo bytes exchanged between adjacent clusters when `n_clusters` split
/// a convolution's output rows: every boundary shares `kh - 1` input rows.
fn cluster_halo_bytes(kind: &LayerKind, n_clusters: i64) -> i64 {
    if n_clusters <= 1 {
        return 0;
    }
    match *kind {
        LayerKind::Conv {
            n,
            ic,
            ow,
            kh,
            kw,
            stride,
            ..
        } => (n_clusters - 1) * n * ic * (stride * (ow - 1) + kw) * (kh - 1),
        LayerKind::DwConv {
            n,
            c,
            ow,
            kh,
            kw,
            stride,
            ..
        } => (n_clusters - 1) * n * c * (stride * (ow - 1) + kw) * (kh - 1),
        _ => 0,
    }
}

/// Simulates one layer instance under a fixed mapping, charging every cost
/// through the configuration's [`CostContext`].
///
/// When the context's datapath has a sparse acceleration feature *and* the
/// layer carries density annotations, the dense cost components are scaled
/// by the [`SparseEffects`] of that pairing: expected-nonzero MAC counts
/// (skipping), gated datapath energy (gating), compressed DRAM/SRAM
/// traffic, plus frontend/decode overhead energy. When
/// [`CostContext::sparse_effects`] returns `None` — dense hardware or a
/// fully dense layer — every expression below reduces to the exact dense
/// arithmetic, so dense results are byte-identical with sparsity modeling
/// compiled in.
pub fn simulate_layer_ctx(
    layer: &Layer,
    mapping: SpatialMapping,
    ctx: &CostContext,
    tile_cap: Option<i64>,
) -> LayerPerf {
    let hw = &ctx.hw;
    let (p0, p1) = hw.array;
    let n_clusters = hw.num_clusters();
    let macs = layer.macs();
    let util = spatial_utilization(&layer.kind, mapping, p0, p1).max(1e-4);
    let sparse: Option<SparseEffects> = ctx.sparse_effects(&layer.sparsity);

    // Compute cycles: clusters split the M dimension of the layer. A
    // skipping datapath issues only the (imbalance-padded) nonzero MACs.
    let compute_cycles = match &sparse {
        None => ctx.compute_cycles(macs, util),
        Some(e) => ctx.compute_cycles(((macs as f64 * e.compute_scale).ceil() as i64).max(1), util),
    };

    // DRAM traffic (int8 operands, int8 writeback after quantization);
    // sparse operands stream in their compressed formats.
    let (m, n, k) = gemm_view(&layer.kind);
    let buffer_bytes = hw.buffer_kb as i64 * 1024;
    let mut bytes = match &sparse {
        None => tiled_dram_traffic(m, n, k, buffer_bytes, tile_cap),
        Some(e) => tiled_dram_traffic_sparse(
            m,
            n,
            k,
            buffer_bytes,
            tile_cap,
            e.weight_bytes_scale,
            e.input_bytes_scale,
            e.output_bytes_scale,
        ),
    };
    // Convs re-read less input than the im2col view thanks to halo overlap.
    if matches!(
        layer.kind,
        LayerKind::Conv { .. } | LayerKind::DwConv { .. }
    ) {
        let dense_in = layer.input_elems();
        let im2col_in = m * k;
        let correction = im2col_in - dense_in.min(im2col_in);
        bytes -= match &sparse {
            None => correction,
            // The over-counted input bytes were compressed too.
            Some(e) => (correction as f64 * e.input_bytes_scale).ceil() as i64,
        };
    }
    let mem_cycles = ctx.dram_cycles(bytes);

    // L2 mesh feedback: everything that crosses DRAM also crosses the mesh
    // to reach the clusters. Weights are multicast (clusters split M, so
    // every cluster consumes the full weight stream); inputs and outputs
    // are scattered/gathered; convs additionally exchange halo rows between
    // neighbors. The wormhole stream competes with the compute/memory body,
    // and the X-Y head latency to the farthest cluster is serialized.
    let halo_bytes = cluster_halo_bytes(&layer.kind, n_clusters);
    let broadcast_bytes = match &sparse {
        None => (n * k).min(bytes),
        Some(e) => (((n * k) as f64 * e.weight_bytes_scale).ceil() as i64).min(bytes),
    };
    let l2_traffic = L2Traffic {
        scatter_bytes: (bytes - broadcast_bytes).max(0),
        broadcast_bytes,
        halo_bytes,
    };
    let l2 = ctx.l2_latency(&l2_traffic);
    let l2_head = ctx.l2_head_cycles();
    let noc_cycles = l2.cycles as i64;
    let noc_stream = (noc_cycles - l2_head).max(0);

    // PPU: vectorized LUT + reduction, 4 elements per PPU per cycle,
    // pipelined behind the array so it overlaps with compute/memory; only
    // the non-overlapped tail adds latency (paper Figure 12b).
    let ppu_total = div_ceil(layer.nonlinear_elems().max(0), 4 * hw.num_ppus.max(1));
    let body = compute_cycles.max(mem_cycles).max(noc_stream);
    let ppu_cycles = (ppu_total - body * 4 / 5).max(ppu_total / 16);

    // Pipeline fill/drain: array skew, L1 butterfly stages, L2 mesh head.
    let fill = p0 + p1 + 8 + ctx.l1_fill_cycles() + l2_head;
    let cycles = body + ppu_cycles + fill;

    // L1 accesses: operand reads shrink by the mapping's spatial reuse; the
    // stationary operand also amortizes over the innermost temporal loop.
    let (reuse_in, reuse_w) = match mapping {
        SpatialMapping::GemmMN => (p1, p0), // input row reused across N, weight across M
        SpatialMapping::GemmKN => (p1, 1),
        SpatialMapping::ConvIcOc => (p1, 1),
        SpatialMapping::ConvOhOw => (1, p0 * p1), // weights broadcast over the plane
        SpatialMapping::ConvKhOh => (p0, p1),
    };
    let in_reads = macs / reuse_in.max(1);
    let w_reads = macs / reuse_w.max(1);
    let out_writes = layer.output_elems();
    let l1_accesses = match &sparse {
        None => in_reads + w_reads + out_writes,
        // A skipping frontend never fetches operands of skipped MACs, and
        // masked outputs are never written (gating keeps all scales at 1).
        Some(e) => {
            ((in_reads + w_reads) as f64 * e.operand_read_scale).ceil() as i64
                + (out_writes as f64 * e.output_bytes_scale).ceil() as i64
        }
    };

    // Energy roll-up through the cost stack.
    let time_ns = cycles as f64 / ctx.tech.freq_ghz;
    let busy = compute_cycles as f64 / cycles.max(1) as f64;
    let mac_pj = match &sparse {
        None => ctx.mac_energy_pj(macs) + ctx.array_energy_pj(time_ns, busy, util),
        // Only effectual MACs toggle the datapath (gating and skipping).
        Some(e) => {
            ctx.mac_energy_pj(macs) * e.mac_energy_scale + ctx.array_energy_pj(time_ns, busy, util)
        }
    };
    let sram_pj = ctx.sram_energy_pj(l1_accesses);
    let dram_pj = ctx.dram_energy_pj(bytes);
    let noc_pj = ctx.transport_energy_pj(bytes, halo_bytes);
    let static_pj = ctx.static_energy_pj(time_ns);
    let ppu_pj = ppu_total as f64 * hw.num_ppus as f64 * 0.9;
    // What sparsity costs: the frontend examines MAC positions and the
    // decoders walk the compressed operand streams.
    let sparse_pj = sparse.map_or(0.0, |e| e.overhead_pj(macs, n * k, m * k));

    LayerPerf {
        cycles,
        utilization: util * (compute_cycles as f64 / cycles.max(1) as f64),
        macs,
        dram_bytes: bytes,
        l1_accesses,
        ppu_cycles,
        noc_cycles,
        energy: EnergyBreakdown {
            mac_pj,
            sram_pj,
            dram_pj,
            noc_pj,
            static_pj,
            ppu_pj,
            sparse_pj,
        },
        mapping,
    }
}

/// Picks the best supported mapping for a layer (fewest cycles, then least
/// energy) against a prebuilt [`CostContext`] — the paper's mapping-search
/// tool at layer granularity.
///
/// A configuration with an empty dataflow set cannot map anything
/// ([`HwConfig::validate`](crate::HwConfig::validate) rejects it); rather than panic, the layer falls
/// back to the universal im2col `GemmMN` mapping.
pub fn best_mapping_ctx(layer: &Layer, ctx: &CostContext, tile_cap: Option<i64>) -> LayerPerf {
    best_mapping_obs(layer, ctx, tile_cap, &lego_obs::Obs::disabled())
}

/// [`best_mapping_ctx`] with observability: records a `sim/best_mapping`
/// span per call and counts every candidate mapping simulated under
/// `sim.mappings_tried`. Passing [`Obs::disabled`](lego_obs::Obs::disabled)
/// makes this exactly [`best_mapping_ctx`] — instrumentation never changes
/// which mapping wins.
pub fn best_mapping_obs(
    layer: &Layer,
    ctx: &CostContext,
    tile_cap: Option<i64>,
    obs: &lego_obs::Obs,
) -> LayerPerf {
    let _span = obs.span("sim/best_mapping");
    obs.count("sim.mappings_tried", ctx.hw.dataflows.len().max(1) as u64);
    ctx.hw
        .dataflows
        .iter()
        .map(|&m| simulate_layer_ctx(layer, m, ctx, tile_cap))
        .min_by(|a, b| {
            (a.cycles, a.energy.total_pj())
                .partial_cmp(&(b.cycles, b.energy.total_pj()))
                .expect("finite costs")
        })
        .unwrap_or_else(|| simulate_layer_ctx(layer, SpatialMapping::GemmMN, ctx, tile_cap))
}

/// Aggregates per-layer results into whole-model numbers.
pub fn aggregate(model: &Model, perfs: &[(i64, LayerPerf)], tech: &TechModel) -> ModelPerf {
    aggregate_iter(model, perfs.iter().map(|(c, p)| (*c, p)), tech)
}

/// Single-pass [`aggregate`] over borrowed per-layer results.
///
/// Each output keeps its own accumulator, summed in iteration order, so the
/// float results are bit-identical to the multi-pass slice version while the
/// caller avoids materialising a `Vec<(i64, LayerPerf)>` just to aggregate.
pub fn aggregate_iter<'a, I>(model: &Model, perfs: I, tech: &TechModel) -> ModelPerf
where
    I: IntoIterator<Item = (i64, &'a LayerPerf)>,
{
    let mut cycles: i64 = 0;
    let mut ppu: i64 = 0;
    let mut energy_pj: f64 = 0.0;
    let mut util_num: f64 = 0.0;
    let mut util_den: f64 = 0.0;
    let mut instrs: f64 = 0.0;
    for (c, p) in perfs {
        cycles += c * p.cycles;
        ppu += c * p.ppu_cycles;
        energy_pj += c as f64 * p.energy.total_pj();
        util_num += (c * p.macs) as f64 * p.utilization;
        util_den += (c * p.macs) as f64;
        instrs += c as f64 * 24.0;
    }
    let ops = model.total_ops();
    let time_s = cycles as f64 / (tech.freq_ghz * 1e9);
    let watts = energy_pj * 1e-12 / time_s.max(1e-12);
    let gops = ops as f64 / 1e9 / time_s.max(1e-12);
    let util = util_num / util_den.max(1.0);
    // Instruction stream: ~32 B of configuration per tile of work; tiles
    // approximated by layer count × sweeps (≥ 2000 cycles per instruction
    // per the paper's §VI-B system-overhead analysis).
    let instr_gbps = instrs * 32.0 / time_s.max(1e-12) / 1e9;

    ModelPerf {
        cycles,
        ops,
        gops,
        watts,
        gops_per_watt: gops / watts.max(1e-9),
        utilization: util,
        ppu_fraction: ppu as f64 / cycles.max(1) as f64,
        instr_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HwConfig;
    use lego_workloads::zoo;

    fn tech() -> TechModel {
        TechModel::default()
    }

    fn ctx_of(hw: &HwConfig) -> CostContext {
        CostContext::new(hw.clone(), tech())
    }

    fn sim(layer: &Layer, mapping: SpatialMapping, hw: &HwConfig) -> LayerPerf {
        simulate_layer_ctx(layer, mapping, &ctx_of(hw), None)
    }

    fn best(layer: &Layer, hw: &HwConfig) -> LayerPerf {
        best_mapping_ctx(layer, &ctx_of(hw), None)
    }

    fn sim_model(model: &Model, hw: &HwConfig) -> ModelPerf {
        let ctx = ctx_of(hw);
        let perfs: Vec<(i64, LayerPerf)> = model
            .layers
            .iter()
            .map(|l| (l.count, best_mapping_ctx(l, &ctx, None)))
            .collect();
        aggregate(model, &perfs, &tech())
    }

    #[test]
    fn utilization_model_basics() {
        // Perfect fit.
        let k = LayerKind::Gemm {
            m: 64,
            n: 64,
            k: 64,
        };
        assert!((spatial_utilization(&k, SpatialMapping::GemmMN, 16, 16) - 1.0).abs() < 1e-9);
        // Remainder wave: 20 rows on 16 lanes → 20/32.
        let k = LayerKind::Gemm {
            m: 20,
            n: 64,
            k: 64,
        };
        assert!(
            (spatial_utilization(&k, SpatialMapping::GemmMN, 16, 16) - 20.0 / 32.0).abs() < 1e-9
        );
        // Depthwise on ICOC collapses to one lane of 16.
        let dw = LayerKind::DwConv {
            n: 1,
            c: 64,
            oh: 28,
            ow: 28,
            kh: 3,
            kw: 3,
            stride: 1,
        };
        assert!(spatial_utilization(&dw, SpatialMapping::ConvIcOc, 16, 16) <= 1.0 / 16.0 + 1e-9);
        // ...but OHOW keeps it busy.
        assert!(spatial_utilization(&dw, SpatialMapping::ConvOhOw, 16, 16) > 0.7);
    }

    #[test]
    fn decode_gemv_is_memory_bound() {
        let hw = HwConfig::lego_256();
        let l = lego_workloads::Layer::new(
            "ffn",
            LayerKind::Gemm {
                m: 1,
                n: 3072,
                k: 768,
            },
        );
        let p = best(&l, &hw);
        // Weights dominate traffic; utilization collapses.
        assert!(p.dram_bytes >= 3072 * 768);
        assert!(p.utilization < 0.1, "{p:?}");
    }

    #[test]
    fn dataflow_switching_saves_depthwise() {
        let hw_fused = HwConfig::lego_256();
        let mut hw_icoc = HwConfig::lego_256();
        hw_icoc.dataflows = vec![SpatialMapping::GemmMN, SpatialMapping::ConvIcOc];
        let dw = lego_workloads::Layer::new(
            "dw",
            LayerKind::DwConv {
                n: 1,
                c: 144,
                oh: 56,
                ow: 56,
                kh: 3,
                kw: 3,
                stride: 1,
            },
        );
        let fused = best(&dw, &hw_fused);
        let icoc = best(&dw, &hw_icoc);
        assert!(
            icoc.cycles > 3 * fused.cycles,
            "OHOW must rescue depthwise: {} vs {}",
            icoc.cycles,
            fused.cycles
        );
        assert_eq!(fused.mapping, SpatialMapping::ConvOhOw);
    }

    #[test]
    fn empty_dataflow_set_falls_back_instead_of_panicking() {
        let mut hw = HwConfig::lego_256();
        hw.dataflows.clear();
        assert!(hw.validate().is_err());
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 64,
                n: 64,
                k: 64,
            },
        );
        let p = best(&l, &hw);
        assert_eq!(p.mapping, SpatialMapping::GemmMN);
        assert!(p.cycles > 0);
    }

    #[test]
    fn model_aggregate_is_consistent() {
        let hw = HwConfig::lego_256();
        let m = zoo::resnet50();
        let perf = sim_model(&m, &hw);
        assert!(perf.gops > 50.0, "{perf:?}");
        assert!(perf.gops_per_watt > 100.0, "{perf:?}");
        assert!(perf.utilization > 0.3, "{perf:?}");
        assert!(perf.ppu_fraction < 0.25, "{perf:?}");
    }

    #[test]
    fn ppu_overhead_is_small_across_models() {
        let hw = HwConfig::lego_256();
        for m in zoo::figure11_models() {
            let perf = sim_model(&m, &hw);
            assert!(
                perf.ppu_fraction < 0.30,
                "{}: PPU fraction {}",
                m.name,
                perf.ppu_fraction
            );
        }
    }

    #[test]
    fn instruction_overhead_below_one_percent() {
        let hw = HwConfig::lego_256();
        let perf = sim_model(&zoo::resnet50(), &hw);
        assert!(
            perf.instr_gbps < 0.01 * hw.dram_gbps,
            "instr {} GB/s",
            perf.instr_gbps
        );
    }

    #[test]
    fn tiled_traffic_matches_hand_count() {
        // 6×4·4×2 GEMM, tiles capped at 2: tm = tn = 2, so 3 M-sweeps and
        // 2 N-sweeps over full-k panels. Weights (n·k = 8) streamed once
        // with inputs (m·k = 12) re-read per N-sweep: 8 + 12·2 = 32 beats
        // re-reading weights per M-sweep (8·3 + 12 = 36). Outputs (24)
        // written once. Hand count: 32 + 24 = 56.
        assert_eq!(tiled_dram_traffic(6, 4, 2, 128, Some(2)), 56);
        // The mirrored shape swaps the operand roles and loop order, so by
        // symmetry the traffic is identical: weights (12) re-read per
        // M-sweep (×2) with inputs (8) streamed once, plus 24 outputs.
        assert_eq!(tiled_dram_traffic(4, 6, 2, 128, Some(2)), 12 * 2 + 8 + 24);
    }

    #[test]
    fn tiled_traffic_never_rereads_both_operands() {
        // The cheaper loop order keeps one operand stationary: traffic is
        // bounded by one full pass of one operand plus sweeps of the other,
        // never sweeps of both.
        for (m, n, k, cap) in [(64, 8, 16, 4), (8, 64, 16, 4), (128, 128, 32, 8)] {
            let t = tiled_dram_traffic(m, n, k, 1024, Some(cap));
            let tm = cap.min(m);
            let tn = cap.min(n);
            let both = n * k * div_ceil(m, tm) + m * k * div_ceil(n, tn) + m * n;
            assert!(t < both, "({m},{n},{k}): {t} should beat {both}");
        }
    }

    #[test]
    fn tile_cap_only_adds_traffic() {
        let b = 256 * 1024;
        let auto = tiled_dram_traffic(512, 512, 512, b, None);
        for cap in [4, 8, 16, 64, 1 << 20] {
            let capped = tiled_dram_traffic(512, 512, 512, b, Some(cap));
            assert!(capped >= auto, "cap {cap}: {capped} < {auto}");
        }
        // A generous cap is a no-op, so the uncapped path is the None case.
        let hw = HwConfig::lego_256();
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 256,
                n: 256,
                k: 256,
            },
        );
        let a = sim(&l, SpatialMapping::GemmMN, &hw);
        let b = simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx_of(&hw), Some(1 << 20));
        assert_eq!(a, b);
    }

    #[test]
    fn clusters_charge_nonzero_noc_latency() {
        // Same 1024 total FUs: one 32×32 array vs four 16×16 clusters, with
        // DRAM fast enough (64 B/cycle) that the clustered design's 16 B
        // mesh injection port becomes the bottleneck. The clustered design
        // must pay modeled L2 latency, not just energy.
        let mut flat = HwConfig::lego_256();
        flat.array = (32, 32);
        flat.dram_gbps = 64.0;
        let mut tiled = HwConfig::lego_256();
        tiled.array = (16, 16);
        tiled.clusters = (2, 2);
        tiled.dram_gbps = 64.0;
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 512,
                n: 512,
                k: 64,
            },
        );
        let pf = sim(&l, SpatialMapping::GemmMN, &flat);
        let pt = sim(&l, SpatialMapping::GemmMN, &tiled);
        assert_eq!(pf.noc_cycles, 0);
        assert!(pt.noc_cycles > 0, "{pt:?}");
        assert!(
            pt.cycles > pf.cycles,
            "clustered {} vs flat {}",
            pt.cycles,
            pf.cycles
        );
        assert!(pt.energy.noc_pj > pf.energy.noc_pj);
    }

    #[test]
    fn cycles_monotone_in_mesh_hop_distance() {
        // Fixed workload, fixed cluster count: stretching the mesh diagonal
        // (more X-Y hops to the farthest cluster) never speeds a layer up.
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 1024,
                n: 256,
                k: 256,
            },
        );
        let cycles_of = |clusters: (u32, u32)| {
            let mut hw = HwConfig::lego_256();
            hw.clusters = clusters;
            (
                hw.l2_mesh().max_hops(),
                sim(&l, SpatialMapping::GemmMN, &hw).cycles,
            )
        };
        // 8 clusters arranged from compact to strip: hop distance 4 → 7.
        let mut shapes: Vec<(u64, i64)> =
            vec![cycles_of((2, 4)), cycles_of((4, 2)), cycles_of((1, 8))];
        shapes.sort_by_key(|&(hops, _)| hops);
        for w in shapes.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "cycles must be non-decreasing in hop distance: {shapes:?}"
            );
        }
        // The longer diagonal costs strictly more: its serialized X-Y head
        // is longer while every overlapped stream is identical.
        assert!(shapes.first().unwrap().1 < shapes.last().unwrap().1);
    }

    #[test]
    fn conv_clusters_pay_halo_exchange() {
        let conv = LayerKind::Conv {
            n: 1,
            ic: 64,
            oc: 64,
            oh: 56,
            ow: 56,
            kh: 3,
            kw: 3,
            stride: 1,
        };
        assert_eq!(cluster_halo_bytes(&conv, 1), 0);
        let h4 = cluster_halo_bytes(&conv, 4);
        assert_eq!(h4, 3 * 64 * 58 * 2);
        // GEMMs have no halo.
        assert_eq!(
            cluster_halo_bytes(
                &LayerKind::Gemm {
                    m: 64,
                    n: 64,
                    k: 64
                },
                4
            ),
            0
        );
    }

    #[test]
    fn sparse_traffic_with_unit_scales_matches_dense_exactly() {
        for (m, n, k, buf, cap) in [
            (6i64, 4i64, 2i64, 128i64, Some(2)),
            (512, 512, 512, 256 * 1024, None),
            (1, 3072, 768, 256 * 1024, Some(64)),
            (50257, 768, 1, 512 * 1024, None),
        ] {
            assert_eq!(
                tiled_dram_traffic_sparse(m, n, k, buf, cap, 1.0, 1.0, 1.0),
                tiled_dram_traffic(m, n, k, buf, cap),
                "({m},{n},{k})"
            );
        }
    }

    #[test]
    fn compressed_weights_cut_traffic_and_grow_tiles() {
        let (m, n, k, buf) = (512i64, 512i64, 512i64, 64 * 1024i64);
        let dense = tiled_dram_traffic(m, n, k, buf, None);
        // 2:4 weights in bitmask: 0.625× footprint.
        let sparse = tiled_dram_traffic_sparse(m, n, k, buf, None, 0.625, 1.0, 1.0);
        assert!(sparse < dense, "{sparse} !< {dense}");
    }

    #[test]
    fn density_one_is_byte_identical_on_sparse_hardware() {
        // A dense layer on skipping/gating hardware must produce the exact
        // dense LayerPerf (the frontend only costs area).
        let mut ctx = CostContext::new(HwConfig::lego_256(), tech());
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 256,
                n: 256,
                k: 256,
            },
        );
        let dense = simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None);
        for accel in [
            lego_model::SparseAccel::Gating,
            lego_model::SparseAccel::Skipping,
        ] {
            ctx.sparse = lego_model::SparseHw::with_accel(accel);
            assert_eq!(
                simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None),
                dense,
                "{accel:?}"
            );
        }
    }

    #[test]
    fn sparse_layer_on_dense_hardware_is_byte_identical_too() {
        let ctx = CostContext::new(HwConfig::lego_256(), tech());
        let dense_layer = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 256,
                n: 256,
                k: 256,
            },
        );
        let sparse_layer =
            dense_layer
                .clone()
                .with_sparsity(lego_workloads::LayerSparsity::weights(
                    lego_workloads::DensityModel::two_to_four(),
                ));
        assert_eq!(
            simulate_layer_ctx(&dense_layer, SpatialMapping::GemmMN, &ctx, None),
            simulate_layer_ctx(&sparse_layer, SpatialMapping::GemmMN, &ctx, None),
            "dense hardware cannot exploit annotations"
        );
    }

    #[test]
    fn gating_saves_energy_but_not_cycles() {
        let mut ctx = CostContext::new(HwConfig::lego_256(), tech());
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 512,
                n: 512,
                k: 512,
            },
        )
        .with_sparsity(lego_workloads::LayerSparsity::weights(
            lego_workloads::DensityModel::two_to_four(),
        ));
        let dense = simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None);
        ctx.sparse = lego_model::SparseHw::with_accel(lego_model::SparseAccel::Gating);
        let gated = simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None);
        assert_eq!(gated.cycles, dense.cycles, "gating never changes timing");
        assert_eq!(gated.dram_bytes, dense.dram_bytes);
        assert!(gated.energy.mac_pj < dense.energy.mac_pj);
        assert!(gated.energy.sparse_pj > 0.0);
        assert!(gated.energy.total_pj() < dense.energy.total_pj());
    }

    #[test]
    fn skipping_beats_dense_edp_on_2to4_gemm() {
        let mut ctx = CostContext::new(HwConfig::lego_256(), tech());
        let l = lego_workloads::Layer::new(
            "g",
            LayerKind::Gemm {
                m: 512,
                n: 512,
                k: 512,
            },
        )
        .with_sparsity(lego_workloads::LayerSparsity::weights(
            lego_workloads::DensityModel::two_to_four(),
        ));
        let dense = simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None);
        ctx.sparse = lego_model::SparseHw::with_accel(lego_model::SparseAccel::Skipping);
        let skipped = simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None);
        assert!(skipped.cycles < dense.cycles, "skipping cuts cycles");
        assert!(skipped.dram_bytes < dense.dram_bytes, "compressed weights");
        let edp = |p: &LayerPerf| p.cycles as f64 * p.energy.total_pj();
        assert!(
            edp(&skipped) < 0.6 * edp(&dense),
            "2:4 skipping should roughly halve EDP: {} vs {}",
            edp(&skipped),
            edp(&dense)
        );
    }

    #[test]
    fn sparse_costs_are_monotone_in_density() {
        // Lower density ⇒ no more cycles, bytes, or energy on skipping HW.
        let mut ctx = CostContext::new(HwConfig::lego_256(), tech());
        ctx.sparse = lego_model::SparseHw::with_accel(lego_model::SparseAccel::Skipping);
        let perf_at = |permille: u16| {
            let l = lego_workloads::Layer::new(
                "g",
                LayerKind::Gemm {
                    m: 384,
                    n: 384,
                    k: 384,
                },
            )
            .with_sparsity(lego_workloads::LayerSparsity::weights(
                lego_workloads::DensityModel::Uniform { permille },
            ));
            simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None)
        };
        let mut last = perf_at(50);
        for permille in [100, 250, 500, 750, 999] {
            let cur = perf_at(permille);
            assert!(last.cycles <= cur.cycles, "{permille}");
            assert!(last.dram_bytes <= cur.dram_bytes, "{permille}");
            assert!(last.energy.mac_pj <= cur.energy.mac_pj + 1e-9, "{permille}");
            last = cur;
        }
    }

    #[test]
    fn scaling_up_helps_compute_bound_models() {
        let small = HwConfig::lego_256();
        let mut big = HwConfig::lego_icoc_1k();
        big.dataflows = small.dataflows.clone();
        let m = zoo::ddpm();
        let ps = sim_model(&m, &small);
        let pb = sim_model(&m, &big);
        assert!(pb.gops > 2.0 * ps.gops, "{} vs {}", pb.gops, ps.gops);
    }
}
