//! Performance and energy simulator for LEGO designs (paper §VI-A).
//!
//! The paper pairs its generator with a fast performance model for the FU
//! array, memory system and NoC, verified against RTL simulation, and uses
//! it both for evaluation and to drive the mapping search. This crate is
//! that model: analytic cycle counts from spatial utilization and DRAM
//! traffic (double-buffered, so compute and memory overlap), an energy
//! roll-up from access counts through [`lego_model::TechModel`], and a
//! post-processing-unit model for the non-tensor operators (Figure 12b).

pub mod perf;

pub use perf::{
    aggregate, best_mapping, best_mapping_tiled, simulate_layer, simulate_layer_tiled,
    tiled_dram_traffic, EnergyBreakdown, LayerPerf, ModelPerf, SpatialMapping,
};

use lego_noc::Mesh;

/// Hardware configuration under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// FU array extent per cluster (P0 × P1).
    pub array: (i64, i64),
    /// L2 mesh of clusters (1×1 = single array).
    pub clusters: (u32, u32),
    /// On-chip buffer capacity in KB (shared pool).
    pub buffer_kb: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Number of post-processing units (LUT + reduction each).
    pub num_ppus: i64,
    /// Spatial dataflows this design supports (fused configurations).
    pub dataflows: Vec<SpatialMapping>,
    /// Static (leakage + clock) power of the chip in mW.
    pub static_mw: f64,
    /// Peak dynamic power of the FU array + NoC at full activity, in mW.
    pub dynamic_mw: f64,
}

impl HwConfig {
    /// The paper's Gemmini-comparable LEGO configuration: 256 MACs,
    /// 256 KB buffer, 16 GB/s DRAM (§VI-A), fused MN/ICOC/OHOW dataflows.
    pub fn lego_256() -> Self {
        HwConfig {
            array: (16, 16),
            clusters: (1, 1),
            buffer_kb: 256,
            dram_gbps: 16.0,
            num_ppus: 16,
            dataflows: vec![
                SpatialMapping::GemmMN,
                SpatialMapping::ConvIcOc,
                SpatialMapping::ConvOhOw,
            ],
            static_mw: 45.0,
            dynamic_mw: 240.0,
        }
    }

    /// The Table II generative-AI configuration: 1024 FUs, 576 KB,
    /// 32 PPUs, 32 GB/s, single ICOC-style dataflow.
    pub fn lego_icoc_1k() -> Self {
        HwConfig {
            array: (32, 32),
            clusters: (1, 1),
            buffer_kb: 576,
            dram_gbps: 32.0,
            num_ppus: 32,
            dataflows: vec![SpatialMapping::GemmMN, SpatialMapping::ConvIcOc],
            static_mw: 95.0,
            dynamic_mw: 506.0,
        }
    }

    /// Total number of functional units.
    pub fn num_fus(&self) -> i64 {
        self.array.0 * self.array.1 * i64::from(self.clusters.0) * i64::from(self.clusters.1)
    }

    /// The L2 mesh model (one router per cluster).
    pub fn l2_mesh(&self) -> Mesh {
        Mesh::new(self.clusters.0.max(1), self.clusters.1.max(1), 16, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configs() {
        assert_eq!(HwConfig::lego_256().num_fus(), 256);
        assert_eq!(HwConfig::lego_icoc_1k().num_fus(), 1024);
    }

    #[test]
    fn clusters_multiply_fus() {
        let mut hw = HwConfig::lego_256();
        hw.clusters = (2, 3);
        assert_eq!(hw.num_fus(), 256 * 6);
        assert_eq!(hw.l2_mesh().routers(), 6);
    }
}
