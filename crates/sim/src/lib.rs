//! Performance and energy simulator for LEGO designs (paper §VI-A).
//!
//! The paper pairs its generator with a fast performance model for the FU
//! array, memory system and NoC, verified against RTL simulation, and uses
//! it both for evaluation and to drive the mapping search. This crate is
//! that model: analytic cycle counts from spatial utilization and DRAM
//! traffic (double-buffered, so compute and memory overlap), an energy
//! roll-up from access counts, and a post-processing-unit model for the
//! non-tensor operators (Figure 12b).
//!
//! All costs are priced through the unified cost stack in `lego-model`:
//! a [`lego_model::CostContext`] is built once per [`HwConfig`] and
//! consumed by [`simulate_layer_ctx`] / [`best_mapping_ctx`]. Multi-cluster
//! configurations charge modeled L2 wormhole-mesh *latency* (serialized
//! head cycles plus a stream that competes with the compute/memory body),
//! not just transport energy, so the cluster axis is an honest
//! latency/energy/area trade-off.
//!
//! `HwConfig` and `SpatialMapping` live in `lego-model` (the configuration
//! is what the cost stack prices) and are re-exported here for
//! compatibility.

pub mod perf;

pub use lego_model::{
    CostContext, DensityModel, HwConfig, HwConfigError, LayerSparsity, SparseAccel, SparseHw,
    SpatialMapping,
};
pub use perf::{
    aggregate, aggregate_iter, best_mapping_ctx, best_mapping_obs, simulate_layer_ctx,
    tiled_dram_traffic, tiled_dram_traffic_sparse, EnergyBreakdown, LayerPerf, ModelPerf,
};
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configs() {
        assert_eq!(HwConfig::lego_256().num_fus(), 256);
        assert_eq!(HwConfig::lego_icoc_1k().num_fus(), 1024);
    }

    #[test]
    fn clusters_multiply_fus() {
        let mut hw = HwConfig::lego_256();
        hw.clusters = (2, 3);
        assert_eq!(hw.num_fus(), 256 * 6);
        assert_eq!(hw.l2_mesh().routers(), 6);
    }
}
