//! Dataflow mappings: tiling, reordering, parallelization (paper §III-B).

use crate::workload::{IrError, TensorAccess, Workload};
use lego_linalg::{dot, AffineMap, IMat};

/// A dataflow mapping `i = [M_{T→I} M_{S→I}]·[t; s]` plus the control flow
/// vector `c` (paper Definitions 2 and §III-C).
///
/// `t` is the for-loop state index (lexicographic order = execution order,
/// first entry outermost); `s` is the FU coordinate in the spatial array.
///
/// # Examples
///
/// ```
/// use lego_ir::{kernels, DataflowBuilder};
///
/// // The TPU-style systolic GEMM of paper Figure 3: parallel k and j.
/// let gemm = kernels::gemm(8, 4, 4);
/// let df = DataflowBuilder::new(&gemm)
///     .par("k", 2)
///     .par("j", 2)
///     .seq("i", 2)        // t1_i
///     .seq("j", 2)        // t0_j
///     .seq("k", 2)        // t0_k
///     .seq("i", 4)        // t0_i
///     .control(vec![1, 1])
///     .build("gemm-kj-systolic")
///     .unwrap();
/// assert_eq!(df.num_fus(), 4);
/// assert_eq!(df.t_bias(&[1, 1]), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataflow {
    /// Name, e.g. `"GEMM-IJ"`.
    pub name: String,
    /// For-loop sizes `R_T`, outermost first.
    pub temporal_sizes: Vec<i64>,
    /// Parfor-loop sizes `R_S` — the FU array dimensions.
    pub spatial_sizes: Vec<i64>,
    /// `M_{T→I}`: iteration-domain rank × number of temporal loops.
    pub m_t: IMat,
    /// `M_{S→I}`: iteration-domain rank × number of spatial axes.
    pub m_s: IMat,
    /// Control flow vector `c`, one entry per spatial axis.
    pub control: Vec<i64>,
    /// Which iteration dimension each temporal loop advances.
    pub temporal_dims: Vec<usize>,
    /// Which iteration dimension each spatial axis parallelizes.
    pub spatial_dims: Vec<usize>,
}

impl Dataflow {
    /// Number of functional units in the array.
    pub fn num_fus(&self) -> i64 {
        self.spatial_sizes.iter().product()
    }

    /// Number of temporal steps (product of for-loop sizes).
    pub fn total_steps(&self) -> i64 {
        self.temporal_sizes.iter().product()
    }

    /// Number of spatial axes.
    pub fn spatial_rank(&self) -> usize {
        self.spatial_sizes.len()
    }

    /// Evaluates `i = M_T·t + M_S·s`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn iter_index(&self, t: &[i64], s: &[i64]) -> Vec<i64> {
        let mut i = self.m_t.mul_vec(t);
        for (acc, v) in i.iter_mut().zip(self.m_s.mul_vec(s)) {
            *acc += v;
        }
        i
    }

    /// Timestamp bias `t_bias = sᵀ·c` of the FU at coordinate `s`
    /// (paper Equation 4).
    pub fn t_bias(&self, s: &[i64]) -> i64 {
        dot(s, &self.control)
    }

    /// Enumerates all FU coordinates in row-major order.
    pub fn fu_coords(&self) -> Vec<Vec<i64>> {
        let mut coords = vec![vec![]];
        for &p in &self.spatial_sizes {
            let mut next = Vec::with_capacity(coords.len() * p as usize);
            for c in &coords {
                for v in 0..p {
                    let mut c2 = c.clone();
                    c2.push(v);
                    next.push(c2);
                }
            }
            coords = next;
        }
        coords
    }

    /// Linearizes an FU coordinate to a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `s` has the wrong rank.
    pub fn fu_index(&self, s: &[i64]) -> usize {
        lego_linalg::linearize(s, &self.spatial_sizes) as usize
    }

    /// The composed relation `f_{TS→D} = f_{I→D} ∘ f_{TS→I}` for one tensor
    /// access, as an affine map over the stacked `[t; s]` vector.
    pub fn composed_map(&self, access: &TensorAccess) -> AffineMap {
        let m_ts = self.m_t.hstack(&self.m_s);
        access.map.compose(&AffineMap::linear(m_ts))
    }

    /// `M_{I→D}·M_{S→I}` — how spatial displacement moves the tensor index.
    pub fn m_sd(&self, access: &TensorAccess) -> IMat {
        access.map.matrix() * &self.m_s
    }

    /// `M_{I→D}·M_{T→I}` — how temporal displacement moves the tensor index.
    pub fn m_td(&self, access: &TensorAccess) -> IMat {
        access.map.matrix() * &self.m_t
    }

    /// Exhaustively verifies that the mapping is a bijection onto the
    /// workload's iteration domain. Intended for tests and small domains.
    pub fn verify_bijective(&self, workload: &Workload) -> bool {
        let total = workload.domain_size();
        if self.total_steps() * self.num_fus() != total {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        for step in 0..self.total_steps() {
            let t = lego_linalg::delinearize(step, &self.temporal_sizes);
            for s in self.fu_coords() {
                let i = self.iter_index(&t, &s);
                if i.iter()
                    .zip(&workload.bounds)
                    .any(|(v, b)| *v < 0 || v >= b)
                {
                    return false;
                }
                if !seen.insert(i) {
                    return false;
                }
            }
        }
        seen.len() as i64 == total
    }
}

#[derive(Debug, Clone, Copy)]
enum Place {
    Temporal,
    Spatial,
}

/// Builder assembling a [`Dataflow`] from tiling factors.
///
/// Temporal factors are declared outermost-first with [`seq`](Self::seq);
/// spatial axes with [`par`](Self::par). Within one iteration dimension the
/// spatial factor is innermost (parfor loops are the innermost loops, as in
/// the paper's examples), and temporal factors nest in declaration order.
/// [`build`](Self::build) auto-inserts an outer temporal loop for any
/// dimension whose declared factors do not reach its bound.
#[derive(Debug, Clone)]
pub struct DataflowBuilder<'w> {
    workload: &'w Workload,
    factors: Vec<(usize, i64, Place)>,
    control: Option<Vec<i64>>,
}

impl<'w> DataflowBuilder<'w> {
    /// Starts a builder for the given workload.
    pub fn new(workload: &'w Workload) -> Self {
        DataflowBuilder {
            workload,
            factors: Vec::new(),
            control: None,
        }
    }

    /// Adds a spatial (parfor) axis of the given size on a dimension.
    #[must_use]
    pub fn par(mut self, dim: &str, size: i64) -> Self {
        let d = self.workload.dim_index(dim).unwrap_or(usize::MAX);
        self.factors.push((d, size, Place::Spatial));
        self
    }

    /// Adds a temporal (for) loop of the given size; call order is
    /// outermost-first.
    #[must_use]
    pub fn seq(mut self, dim: &str, size: i64) -> Self {
        let d = self.workload.dim_index(dim).unwrap_or(usize::MAX);
        self.factors.push((d, size, Place::Temporal));
        self
    }

    /// Sets the control flow vector (one entry per spatial axis, in `par`
    /// declaration order). Defaults to all zeros (broadcast).
    #[must_use]
    pub fn control(mut self, c: Vec<i64>) -> Self {
        self.control = Some(c);
        self
    }

    /// Builds and validates the dataflow.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownDim`] for a bad dimension name,
    /// [`IrError::FactorMismatch`] if a dimension's factors do not divide
    /// its bound, and [`IrError::ControlArity`] for a mis-sized control
    /// vector.
    pub fn build(self, name: impl Into<String>) -> Result<Dataflow, IrError> {
        let rank = self.workload.rank();
        for &(d, _, _) in &self.factors {
            if d >= rank {
                return Err(IrError::UnknownDim("<unknown>".into()));
            }
        }

        // Auto-complete: any dimension whose declared factors fall short of
        // its bound gets one outer temporal loop with the remainder.
        let mut declared = vec![1i64; rank];
        for &(d, size, _) in &self.factors {
            declared[d] *= size;
        }
        let mut factors = Vec::new();
        for (d, &product) in declared.iter().enumerate() {
            let bound = self.workload.bounds[d];
            if product == 0 || bound % product != 0 {
                return Err(IrError::FactorMismatch {
                    dim: self.workload.dims[d].clone(),
                    product,
                    bound,
                });
            }
            let rem = bound / product;
            if rem > 1 {
                factors.push((d, rem, Place::Temporal));
            }
        }
        factors.extend(self.factors.iter().copied());

        // Per-dimension factor ordering for stride computation: temporal
        // factors in declaration order, then spatial factors (innermost).
        let mut strides = vec![0i64; factors.len()];
        for d in 0..rank {
            let temporal: Vec<usize> = factors
                .iter()
                .enumerate()
                .filter(|(_, &(fd, _, p))| fd == d && matches!(p, Place::Temporal))
                .map(|(idx, _)| idx)
                .collect();
            let spatial: Vec<usize> = factors
                .iter()
                .enumerate()
                .filter(|(_, &(fd, _, p))| fd == d && matches!(p, Place::Spatial))
                .map(|(idx, _)| idx)
                .collect();
            let chain: Vec<usize> = temporal.into_iter().chain(spatial).collect();
            let mut stride = 1i64;
            for &idx in chain.iter().rev() {
                strides[idx] = stride;
                stride *= factors[idx].1;
            }
        }

        let temporal: Vec<usize> = factors
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, p))| matches!(p, Place::Temporal))
            .map(|(idx, _)| idx)
            .collect();
        let spatial: Vec<usize> = factors
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, p))| matches!(p, Place::Spatial))
            .map(|(idx, _)| idx)
            .collect();

        let mut m_t = IMat::zeros(rank, temporal.len());
        for (col, &idx) in temporal.iter().enumerate() {
            m_t[(factors[idx].0, col)] = strides[idx];
        }
        let mut m_s = IMat::zeros(rank, spatial.len());
        for (col, &idx) in spatial.iter().enumerate() {
            m_s[(factors[idx].0, col)] = strides[idx];
        }

        let control = self.control.unwrap_or_else(|| vec![0; spatial.len()]);
        if control.len() != spatial.len() {
            return Err(IrError::ControlArity {
                got: control.len(),
                expected: spatial.len(),
            });
        }

        Ok(Dataflow {
            name: name.into(),
            temporal_sizes: temporal.iter().map(|&i| factors[i].1).collect(),
            spatial_sizes: spatial.iter().map(|&i| factors[i].1).collect(),
            m_t,
            m_s,
            control,
            temporal_dims: temporal.iter().map(|&i| factors[i].0).collect(),
            spatial_dims: spatial.iter().map(|&i| factors[i].0).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn figure3_gemm_matrices() {
        // Paper Figure 3: R_T = [R1_i, R0_j, R0_k, R0_i], R_S = [P_k, P_j].
        let gemm = kernels::gemm(8, 4, 6);
        let df = DataflowBuilder::new(&gemm)
            .par("k", 2)
            .par("j", 2)
            .seq("i", 2)
            .seq("j", 2)
            .seq("k", 3)
            .seq("i", 4)
            .control(vec![1, 1])
            .build("gemm-tpu")
            .unwrap();
        assert_eq!(df.temporal_sizes, vec![2, 2, 3, 4]);
        assert_eq!(df.spatial_sizes, vec![2, 2]);
        // i = t1_i·R0_i + t0_i = 4·t1_i + t0_i
        assert_eq!(df.m_t.row(0), &[4, 0, 0, 1]);
        // j = t0_j·P_j + s_j
        assert_eq!(df.m_t.row(1), &[0, 2, 0, 0]);
        assert_eq!(df.m_s.row(1), &[0, 1]);
        // k = t0_k·P_k + s_k
        assert_eq!(df.m_t.row(2), &[0, 0, 2, 0]);
        assert_eq!(df.m_s.row(2), &[1, 0]);
        assert!(df.verify_bijective(&gemm));
    }

    #[test]
    fn auto_completion_adds_outer_loops() {
        let gemm = kernels::gemm(8, 4, 6);
        let df = DataflowBuilder::new(&gemm)
            .par("i", 2)
            .par("j", 2)
            .build("gemm-ij")
            .unwrap();
        // i: 8/2=4 outer, j: 4/2=2 outer, k: 6 outer.
        assert_eq!(df.temporal_sizes, vec![4, 2, 6]);
        assert!(df.verify_bijective(&gemm));
    }

    #[test]
    fn factor_mismatch_rejected() {
        let gemm = kernels::gemm(8, 4, 6);
        let err = DataflowBuilder::new(&gemm)
            .par("i", 3) // 3 does not divide 8
            .build("bad")
            .unwrap_err();
        assert!(matches!(err, IrError::FactorMismatch { .. }));
    }

    #[test]
    fn unknown_dim_rejected() {
        let gemm = kernels::gemm(8, 4, 6);
        let err = DataflowBuilder::new(&gemm)
            .par("zz", 2)
            .build("bad")
            .unwrap_err();
        assert!(matches!(err, IrError::UnknownDim(_)));
    }

    #[test]
    fn control_arity_checked() {
        let gemm = kernels::gemm(8, 4, 6);
        let err = DataflowBuilder::new(&gemm)
            .par("i", 2)
            .control(vec![1, 1])
            .build("bad")
            .unwrap_err();
        assert!(matches!(err, IrError::ControlArity { .. }));
    }

    #[test]
    fn t_bias_matches_equation4() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = DataflowBuilder::new(&gemm)
            .par("k", 2)
            .par("j", 2)
            .control(vec![1, 1])
            .build("sys")
            .unwrap();
        assert_eq!(df.t_bias(&[0, 0]), 0);
        assert_eq!(df.t_bias(&[1, 0]), 1);
        assert_eq!(df.t_bias(&[1, 1]), 2);
    }

    #[test]
    fn conv_figure4_layout() {
        // ShiDianNao-style: spatial [ow, oh], broadcast control.
        let conv = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
        let df = DataflowBuilder::new(&conv)
            .par("ow", 2)
            .par("oh", 2)
            .build("conv-ohow")
            .unwrap();
        assert_eq!(df.control, vec![0, 0]);
        assert!(df.verify_bijective(&conv));
        // X moves by ±1 in ih when s moves along oh.
        let x = conv.access("X").unwrap();
        let m_sd = df.m_sd(x);
        // Rows of X: [n, ic, ih, iw]; columns: [s_ow, s_oh].
        assert_eq!(m_sd[(2, 1)], 1); // ih tracks oh
        assert_eq!(m_sd[(3, 0)], 1); // iw tracks ow
    }

    #[test]
    fn multi_level_spatial_same_dim() {
        // Both spatial axes taken from the same dimension.
        let gemm = kernels::gemm(8, 2, 2);
        let df = DataflowBuilder::new(&gemm)
            .par("i", 2)
            .par("i", 4)
            .build("gemm-ii")
            .unwrap();
        assert_eq!(df.spatial_sizes, vec![2, 4]);
        assert!(df.verify_bijective(&gemm));
        // i = 4·s0 + s1 (first axis is outer).
        assert_eq!(df.m_s.row(0), &[4, 1]);
    }

    #[test]
    fn composed_map_evaluates_tensor_index() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = DataflowBuilder::new(&gemm)
            .par("j", 2)
            .par("k", 2)
            .build("f")
            .unwrap();
        let y = gemm.access("Y").unwrap();
        let f = df.composed_map(y);
        // [t...; s_j, s_k]: check a couple of points against the definition.
        let t = vec![1, 1, 1];
        let s = vec![1, 0];
        let i = df.iter_index(&t, &s);
        let expect = y.map.apply(&i);
        let ts: Vec<i64> = t.iter().chain(&s).copied().collect();
        assert_eq!(f.apply(&ts), expect);
    }
}
