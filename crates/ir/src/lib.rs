//! LEGO's relation-centric input representation (paper §III).
//!
//! A tensor operation is described by two affine relations plus a control
//! flow vector:
//!
//! * the hardware-agnostic **data mapping** `d = f_{I→D}(i) = M_{I→D}·i + b`
//!   from the computation iteration domain to each tensor's index space
//!   ([`Workload`], Definition 1);
//! * the workload-agnostic **dataflow mapping**
//!   `i = f_{TS→I}(t, s) = [M_{T→I} M_{S→I}]·[t; s]` describing tiling,
//!   reordering, and parallelization ([`Dataflow`], Definition 2);
//! * the **control flow** vector `c` describing how control signals
//!   propagate across the FU array (§III-C), which converts broadcast into
//!   systolic forwarding via the timestamp bias `t_bias = sᵀ·c`.
//!
//! Unlike the polyhedral/STT representations, mapping *from* `[t; s]` *to*
//! `i` keeps everything affine — no division or modulo — which is what makes
//! the front end's reuse analysis a pure integer-linear-system problem
//! (§III-D).
//!
//! [`kernels`] provides ready-made workloads (GEMM, Conv2D, depthwise
//! Conv2D, MTTKRP, attention) and the named dataflows used throughout the
//! paper's evaluation. [`tensor`] supplies dense integer tensors and a
//! reference loop-nest executor used to verify generated hardware.

pub mod dataflow;
pub mod kernels;
pub mod tensor;
pub mod workload;

pub use dataflow::{Dataflow, DataflowBuilder};
pub use tensor::TensorData;
pub use workload::{FuOp, IrError, TensorAccess, TensorRole, Workload};
