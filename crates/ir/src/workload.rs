//! Workload representation: the hardware-agnostic data mappings.

use lego_linalg::AffineMap;
use lego_sparse::DensityModel;

/// Errors raised while building or validating IR objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A workload must have exactly one output access.
    OutputCount(usize),
    /// A data mapping's input arity does not match the iteration domain.
    MapArity {
        /// Offending tensor name.
        tensor: String,
        /// The map's input dimensionality.
        got: usize,
        /// The iteration-domain dimensionality.
        expected: usize,
    },
    /// Iteration bounds must be positive.
    NonPositiveBound(String),
    /// Duplicate tensor or dimension name.
    DuplicateName(String),
    /// The operator arity does not match the number of input tensors.
    OpArity {
        /// Operator's required input count.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// A dataflow factor references an unknown dimension name.
    UnknownDim(String),
    /// The factor sizes of a dimension do not multiply to its bound.
    FactorMismatch {
        /// Dimension name.
        dim: String,
        /// Product of declared factors.
        product: i64,
        /// Required bound.
        bound: i64,
    },
    /// Control vector length must equal the number of spatial axes.
    ControlArity {
        /// Provided length.
        got: usize,
        /// Number of spatial axes.
        expected: usize,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::OutputCount(n) => write!(f, "workload needs exactly one output, found {n}"),
            IrError::MapArity {
                tensor,
                got,
                expected,
            } => write!(
                f,
                "tensor `{tensor}` map takes {got} dims, iteration domain has {expected}"
            ),
            IrError::NonPositiveBound(d) => write!(f, "dimension `{d}` has non-positive bound"),
            IrError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            IrError::OpArity { expected, got } => {
                write!(
                    f,
                    "operator takes {expected} inputs, workload provides {got}"
                )
            }
            IrError::UnknownDim(d) => write!(f, "unknown iteration dimension `{d}`"),
            IrError::FactorMismatch {
                dim,
                product,
                bound,
            } => write!(
                f,
                "factors of `{dim}` multiply to {product}, bound is {bound}"
            ),
            IrError::ControlArity { got, expected } => {
                write!(f, "control vector has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Whether a tensor is read or accumulated by the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorRole {
    /// Read-only operand.
    Input,
    /// Read-modify-write accumulator (the workload's result).
    Output,
}

/// The computation in the loop body, executed by each functional unit.
///
/// The paper's FUs are user-definable (§II); these variants cover every
/// kernel in the evaluation. The arity is the number of *input* operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuOp {
    /// `Y += A · B` — GEMM, Conv2D, attention.
    MulAcc,
    /// `Y += A · B · C` — MTTKRP's three-operand product.
    TripleMulAcc,
    /// `Y += (A · B) << C` — BitFusion-style mixed-precision MAC.
    MulShiftAcc,
    /// `Y = max(Y, A)` — pooling-style reduction.
    MaxAcc,
}

impl FuOp {
    /// Number of input operands the operator consumes.
    pub fn arity(self) -> usize {
        match self {
            FuOp::MulAcc => 2,
            FuOp::TripleMulAcc | FuOp::MulShiftAcc => 3,
            FuOp::MaxAcc => 1,
        }
    }

    /// Evaluates one loop-body step on integer data.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn apply(self, acc: i64, inputs: &[i64]) -> i64 {
        assert_eq!(inputs.len(), self.arity(), "operator arity mismatch");
        match self {
            FuOp::MulAcc => acc + inputs[0] * inputs[1],
            FuOp::TripleMulAcc => acc + inputs[0] * inputs[1] * inputs[2],
            FuOp::MulShiftAcc => acc + ((inputs[0] * inputs[1]) << inputs[2].clamp(0, 32)),
            FuOp::MaxAcc => acc.max(inputs[0]),
        }
    }
}

/// One tensor operand with its affine data mapping `d = M_{I→D}·i + b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorAccess {
    /// Tensor name (unique within the workload).
    pub tensor: String,
    /// Read or accumulate.
    pub role: TensorRole,
    /// Affine map from the iteration domain to this tensor's index space.
    pub map: AffineMap,
    /// Statistical value density of this tensor (dense unless annotated).
    /// Hardware generation and the cost stack may exploit it; the
    /// functional reference executor ignores it — density describes the
    /// data, not the computation.
    pub density: DensityModel,
}

/// A tensor workload: iteration domain, data mappings, and loop body.
///
/// # Examples
///
/// ```
/// let gemm = lego_ir::kernels::gemm(16, 16, 16);
/// assert_eq!(gemm.rank(), 3);
/// assert_eq!(gemm.inputs().count(), 2);
/// assert_eq!(gemm.total_ops(), 2 * 16 * 16 * 16); // MACs count as 2 ops
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable kernel name.
    pub name: String,
    /// Names of the computation iteration dimensions (`⃗i`).
    pub dims: Vec<String>,
    /// Full iteration bound of each dimension.
    pub bounds: Vec<i64>,
    /// All tensor accesses (inputs plus exactly one output).
    pub accesses: Vec<TensorAccess>,
    /// The loop-body operator.
    pub op: FuOp,
}

impl Workload {
    /// Constructs and validates a workload.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] describing the first structural problem found
    /// (wrong output count, arity mismatches, non-positive bounds, duplicate
    /// names).
    pub fn new(
        name: impl Into<String>,
        dims: Vec<(&str, i64)>,
        accesses: Vec<TensorAccess>,
        op: FuOp,
    ) -> Result<Self, IrError> {
        let w = Workload {
            name: name.into(),
            dims: dims.iter().map(|(d, _)| d.to_string()).collect(),
            bounds: dims.iter().map(|&(_, b)| b).collect(),
            accesses,
            op,
        };
        w.validate()?;
        Ok(w)
    }

    fn validate(&self) -> Result<(), IrError> {
        let outputs = self
            .accesses
            .iter()
            .filter(|a| a.role == TensorRole::Output)
            .count();
        if outputs != 1 {
            return Err(IrError::OutputCount(outputs));
        }
        let inputs = self.accesses.len() - 1;
        if inputs != self.op.arity() {
            return Err(IrError::OpArity {
                expected: self.op.arity(),
                got: inputs,
            });
        }
        let rank = self.dims.len();
        for a in &self.accesses {
            if a.map.in_dim() != rank {
                return Err(IrError::MapArity {
                    tensor: a.tensor.clone(),
                    got: a.map.in_dim(),
                    expected: rank,
                });
            }
        }
        for (d, &b) in self.dims.iter().zip(&self.bounds) {
            if b <= 0 {
                return Err(IrError::NonPositiveBound(d.clone()));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for d in &self.dims {
            if !seen.insert(d.as_str()) {
                return Err(IrError::DuplicateName(d.clone()));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for a in &self.accesses {
            if !seen.insert(a.tensor.as_str()) {
                return Err(IrError::DuplicateName(a.tensor.clone()));
            }
        }
        Ok(())
    }

    /// Dimensionality of the computation iteration domain.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Index of the named dimension.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d == name)
    }

    /// The single output access.
    pub fn output(&self) -> &TensorAccess {
        self.accesses
            .iter()
            .find(|a| a.role == TensorRole::Output)
            .expect("validated workload has an output")
    }

    /// Iterates over the input accesses in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = &TensorAccess> {
        self.accesses.iter().filter(|a| a.role == TensorRole::Input)
    }

    /// Looks up an access by tensor name.
    pub fn access(&self, tensor: &str) -> Option<&TensorAccess> {
        self.accesses.iter().find(|a| a.tensor == tensor)
    }

    /// Annotates the named tensor with a statistical value density. A name
    /// that matches no access is ignored (annotations are advisory).
    #[must_use]
    pub fn with_tensor_density(mut self, tensor: &str, density: DensityModel) -> Self {
        if let Some(a) = self.accesses.iter_mut().find(|a| a.tensor == tensor) {
            a.density = density;
        }
        self
    }

    /// The annotated density of the named tensor (dense for unknown names).
    pub fn tensor_density(&self, tensor: &str) -> DensityModel {
        self.access(tensor)
            .map_or(DensityModel::Dense, |a| a.density)
    }

    /// Total number of points in the iteration domain.
    pub fn domain_size(&self) -> i64 {
        self.bounds.iter().product()
    }

    /// Total arithmetic operations (each multiply-accumulate counts as 2).
    pub fn total_ops(&self) -> i64 {
        let per_point = match self.op {
            FuOp::MulAcc => 2,
            FuOp::TripleMulAcc => 3,
            FuOp::MulShiftAcc => 3,
            FuOp::MaxAcc => 1,
        };
        per_point * self.domain_size()
    }

    /// Shape of the named tensor: one more than the maximum index reached
    /// over the iteration domain in each tensor dimension.
    ///
    /// Affine maps attain their extrema at box corners, so only the `2^rank`
    /// corners are evaluated.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not exist in this workload.
    pub fn tensor_shape(&self, tensor: &str) -> Vec<i64> {
        let access = self
            .access(tensor)
            .unwrap_or_else(|| panic!("unknown tensor `{tensor}`"));
        let rank = self.rank();
        let nd = access.map.out_dim();
        let mut max = vec![0i64; nd];
        for corner in 0..(1usize << rank) {
            let point: Vec<i64> = (0..rank)
                .map(|d| {
                    if corner >> d & 1 == 1 {
                        self.bounds[d] - 1
                    } else {
                        0
                    }
                })
                .collect();
            let idx = access.map.apply(&point);
            for (m, v) in max.iter_mut().zip(&idx) {
                *m = (*m).max(*v);
            }
        }
        max.iter().map(|&m| m + 1).collect()
    }

    /// Renders the workload as a conventional loop nest (paper Figure 3a).
    pub fn to_loop_nest(&self) -> String {
        let mut out = String::new();
        for (depth, (d, b)) in self.dims.iter().zip(&self.bounds).enumerate() {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("for {d} in range(0, {b}):\n"));
        }
        let pad = "  ".repeat(self.rank());
        for a in &self.accesses {
            out.push_str(&pad);
            out.push_str(&format!(
                "{} = {}[{}]\n",
                a.tensor.to_lowercase(),
                a.tensor,
                render_index(&a.map, &self.dims)
            ));
        }
        out.push_str(&pad);
        let ins: Vec<String> = self.inputs().map(|a| a.tensor.to_lowercase()).collect();
        let y = self.output().tensor.to_lowercase();
        let body = match self.op {
            FuOp::MulAcc => format!("{y} += {} * {}", ins[0], ins[1]),
            FuOp::TripleMulAcc => format!("{y} += {} * {} * {}", ins[0], ins[1], ins[2]),
            FuOp::MulShiftAcc => format!("{y} += ({} * {}) << {}", ins[0], ins[1], ins[2]),
            FuOp::MaxAcc => format!("{y} = max({y}, {})", ins[0]),
        };
        out.push_str(&body);
        out.push('\n');
        out
    }
}

fn render_index(map: &AffineMap, dims: &[String]) -> String {
    let m = map.matrix();
    let mut parts = Vec::new();
    for r in 0..m.rows() {
        let mut terms = Vec::new();
        for (c, d) in dims.iter().enumerate() {
            match m[(r, c)] {
                0 => {}
                1 => terms.push(d.clone()),
                k => terms.push(format!("{k}*{d}")),
            }
        }
        match map.bias()[r] {
            0 => {}
            k => terms.push(format!("{k}")),
        }
        if terms.is_empty() {
            terms.push("0".to_string());
        }
        parts.push(terms.join("+"));
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use lego_linalg::IMat;

    #[test]
    fn gemm_shapes() {
        let g = kernels::gemm(4, 5, 6);
        assert_eq!(g.tensor_shape("Y"), vec![4, 5]);
        assert_eq!(g.tensor_shape("X"), vec![4, 6]);
        assert_eq!(g.tensor_shape("W"), vec![6, 5]);
    }

    #[test]
    fn conv_shapes_with_stride() {
        // 2D conv: oh=3, ow=3, kh=kw=3, stride 2 → ih = 2*2 + 2 = 7.
        let c = kernels::conv2d(1, 2, 4, 3, 3, 3, 3, 2);
        assert_eq!(c.tensor_shape("X"), vec![1, 2, 7, 7]);
        assert_eq!(c.tensor_shape("W"), vec![4, 2, 3, 3]);
        assert_eq!(c.tensor_shape("Y"), vec![1, 4, 3, 3]);
    }

    #[test]
    fn validation_rejects_bad_workloads() {
        // No output.
        let err = Workload::new(
            "bad",
            vec![("i", 2)],
            vec![TensorAccess {
                tensor: "X".into(),
                role: TensorRole::Input,
                map: AffineMap::identity(1),
                density: DensityModel::Dense,
            }],
            FuOp::MaxAcc,
        )
        .unwrap_err();
        assert_eq!(err, IrError::OutputCount(0));

        // Wrong arity map.
        let err = Workload::new(
            "bad",
            vec![("i", 2)],
            vec![
                TensorAccess {
                    tensor: "Y".into(),
                    role: TensorRole::Output,
                    map: AffineMap::identity(2),
                    density: DensityModel::Dense,
                },
                TensorAccess {
                    tensor: "X".into(),
                    role: TensorRole::Input,
                    map: AffineMap::identity(1),
                    density: DensityModel::Dense,
                },
            ],
            FuOp::MaxAcc,
        )
        .unwrap_err();
        assert!(matches!(err, IrError::MapArity { .. }));

        // Bad bound.
        let err = Workload::new(
            "bad",
            vec![("i", 0)],
            vec![
                TensorAccess {
                    tensor: "Y".into(),
                    role: TensorRole::Output,
                    map: AffineMap::identity(1),
                    density: DensityModel::Dense,
                },
                TensorAccess {
                    tensor: "X".into(),
                    role: TensorRole::Input,
                    map: AffineMap::identity(1),
                    density: DensityModel::Dense,
                },
            ],
            FuOp::MaxAcc,
        )
        .unwrap_err();
        assert_eq!(err, IrError::NonPositiveBound("i".into()));
    }

    #[test]
    fn op_semantics() {
        assert_eq!(FuOp::MulAcc.apply(10, &[3, 4]), 22);
        assert_eq!(FuOp::TripleMulAcc.apply(1, &[2, 3, 4]), 25);
        assert_eq!(FuOp::MulShiftAcc.apply(0, &[3, 2, 1]), 12);
        assert_eq!(FuOp::MaxAcc.apply(5, &[9]), 9);
        assert_eq!(FuOp::MaxAcc.apply(5, &[3]), 5);
    }

    #[test]
    fn loop_nest_rendering_mentions_all_dims() {
        let g = kernels::gemm(2, 3, 4);
        let nest = g.to_loop_nest();
        for d in ["i", "j", "k"] {
            assert!(nest.contains(&format!("for {d} in")), "{nest}");
        }
        assert!(nest.contains("y += x * w"), "{nest}");
    }

    #[test]
    fn total_ops_counts_macs_twice() {
        let g = kernels::gemm(2, 2, 2);
        assert_eq!(g.total_ops(), 16);
    }

    #[test]
    fn dim_lookup() {
        let g = kernels::gemm(2, 2, 2);
        assert_eq!(g.dim_index("k"), Some(2));
        assert_eq!(g.dim_index("zz"), None);
        let m = g.access("W").unwrap().map.matrix();
        assert_eq!(m, &IMat::from_rows(&[vec![0, 0, 1], vec![0, 1, 0]]));
    }
}
