//! The tensor kernels evaluated in the paper (§VI-A) and their named
//! spatial dataflows.
//!
//! GEMM, Conv2D (plus the depthwise variant that dominates MobileNetV2),
//! attention's two matrix products, and MTTKRP (the bottleneck of
//! alternating-least-squares tensor factorization).

use crate::dataflow::{Dataflow, DataflowBuilder};
use crate::workload::{FuOp, TensorAccess, TensorRole, Workload};
use lego_linalg::{AffineMap, IMat};
use lego_sparse::DensityModel;

fn access(tensor: &str, role: TensorRole, map: AffineMap) -> TensorAccess {
    TensorAccess {
        tensor: tensor.to_string(),
        role,
        map,
        density: DensityModel::Dense,
    }
}

/// Selects `rows` out of an identity over `rank` dims.
fn select(rank: usize, rows: &[usize]) -> IMat {
    let mut m = IMat::zeros(rows.len(), rank);
    for (r, &c) in rows.iter().enumerate() {
        m[(r, c)] = 1;
    }
    m
}

/// General matrix multiplication `Y[i,j] += X[i,k] · W[k,j]`.
///
/// # Examples
///
/// ```
/// let g = lego_ir::kernels::gemm(128, 64, 32);
/// assert_eq!(g.dims, vec!["i", "j", "k"]);
/// ```
pub fn gemm(m: i64, n: i64, k: i64) -> Workload {
    Workload::new(
        "GEMM",
        vec![("i", m), ("j", n), ("k", k)],
        vec![
            access(
                "Y",
                TensorRole::Output,
                AffineMap::linear(select(3, &[0, 1])),
            ),
            access(
                "X",
                TensorRole::Input,
                AffineMap::linear(select(3, &[0, 2])),
            ),
            access(
                "W",
                TensorRole::Input,
                AffineMap::linear(select(3, &[2, 1])),
            ),
        ],
        FuOp::MulAcc,
    )
    .expect("gemm construction is well-formed")
}

/// 2D convolution `Y[n,oc,oh,ow] += X[n,ic,s·oh+kh,s·ow+kw] · W[oc,ic,kh,kw]`
/// with stride `s` and zero padding folded into the input extent.
///
/// Iteration dims follow the paper's Figure 4 order:
/// `[n, oc, ic, oh, ow, kh, kw]`.
#[allow(clippy::too_many_arguments)] // a conv shape simply has eight extents
pub fn conv2d(
    n: i64,
    ic: i64,
    oc: i64,
    oh: i64,
    ow: i64,
    kh: i64,
    kw: i64,
    stride: i64,
) -> Workload {
    assert!(stride >= 1, "stride must be >= 1");
    // dims: 0:n 1:oc 2:ic 3:oh 4:ow 5:kh 6:kw
    let y = select(7, &[0, 1, 3, 4]);
    let w = select(7, &[1, 2, 5, 6]);
    let mut x = IMat::zeros(4, 7);
    x[(0, 0)] = 1; // n
    x[(1, 2)] = 1; // ic
    x[(2, 3)] = stride; // ih = stride*oh + kh
    x[(2, 5)] = 1;
    x[(3, 4)] = stride; // iw = stride*ow + kw
    x[(3, 6)] = 1;
    Workload::new(
        "Conv2D",
        vec![
            ("n", n),
            ("oc", oc),
            ("ic", ic),
            ("oh", oh),
            ("ow", ow),
            ("kh", kh),
            ("kw", kw),
        ],
        vec![
            access("Y", TensorRole::Output, AffineMap::linear(y)),
            access("X", TensorRole::Input, AffineMap::linear(x)),
            access("W", TensorRole::Input, AffineMap::linear(w)),
        ],
        FuOp::MulAcc,
    )
    .expect("conv2d construction is well-formed")
}

/// Depthwise 2D convolution `Y[n,c,oh,ow] += X[n,c,s·oh+kh,s·ow+kw] · W[c,kh,kw]`.
///
/// The single channel dimension is shared between input and output — the
/// case where IC-OC-parallel dataflows collapse to 1/P utilization and the
/// paper's dynamically switched OH-OW dataflow wins (§VI-B).
pub fn depthwise_conv2d(
    n: i64,
    c: i64,
    oh: i64,
    ow: i64,
    kh: i64,
    kw: i64,
    stride: i64,
) -> Workload {
    assert!(stride >= 1, "stride must be >= 1");
    // dims: 0:n 1:c 2:oh 3:ow 4:kh 5:kw
    let y = select(6, &[0, 1, 2, 3]);
    let w = select(6, &[1, 4, 5]);
    let mut x = IMat::zeros(4, 6);
    x[(0, 0)] = 1;
    x[(1, 1)] = 1;
    x[(2, 2)] = stride;
    x[(2, 4)] = 1;
    x[(3, 3)] = stride;
    x[(3, 5)] = 1;
    Workload::new(
        "DWConv2D",
        vec![
            ("n", n),
            ("c", c),
            ("oh", oh),
            ("ow", ow),
            ("kh", kh),
            ("kw", kw),
        ],
        vec![
            access("Y", TensorRole::Output, AffineMap::linear(y)),
            access("X", TensorRole::Input, AffineMap::linear(x)),
            access("W", TensorRole::Input, AffineMap::linear(w)),
        ],
        FuOp::MulAcc,
    )
    .expect("depthwise conv2d construction is well-formed")
}

/// Matricized tensor times Khatri-Rao product:
/// `Y[i,j] += A[i,k,l] · B[k,j] · C[l,j]`.
pub fn mttkrp(i: i64, j: i64, k: i64, l: i64) -> Workload {
    // dims: 0:i 1:j 2:k 3:l
    Workload::new(
        "MTTKRP",
        vec![("i", i), ("j", j), ("k", k), ("l", l)],
        vec![
            access(
                "Y",
                TensorRole::Output,
                AffineMap::linear(select(4, &[0, 1])),
            ),
            access(
                "A",
                TensorRole::Input,
                AffineMap::linear(select(4, &[0, 2, 3])),
            ),
            access(
                "B",
                TensorRole::Input,
                AffineMap::linear(select(4, &[2, 1])),
            ),
            access(
                "C",
                TensorRole::Input,
                AffineMap::linear(select(4, &[3, 1])),
            ),
        ],
        FuOp::TripleMulAcc,
    )
    .expect("mttkrp construction is well-formed")
}

/// Attention score computation `S[q,p] += Q[q,d] · K[p,d]` (`Q·Kᵀ`).
pub fn attention_scores(seq_q: i64, seq_kv: i64, dk: i64) -> Workload {
    // dims: 0:q 1:p 2:d
    Workload::new(
        "Attention-QK",
        vec![("q", seq_q), ("p", seq_kv), ("d", dk)],
        vec![
            access(
                "S",
                TensorRole::Output,
                AffineMap::linear(select(3, &[0, 1])),
            ),
            access(
                "Q",
                TensorRole::Input,
                AffineMap::linear(select(3, &[0, 2])),
            ),
            access(
                "K",
                TensorRole::Input,
                AffineMap::linear(select(3, &[1, 2])),
            ),
        ],
        FuOp::MulAcc,
    )
    .expect("attention scores construction is well-formed")
}

/// Attention value aggregation `O[q,d] += P[q,p] · V[p,d]`.
pub fn attention_values(seq_q: i64, seq_kv: i64, dv: i64) -> Workload {
    // dims: 0:q 1:d 2:p
    Workload::new(
        "Attention-PV",
        vec![("q", seq_q), ("d", dv), ("p", seq_kv)],
        vec![
            access(
                "O",
                TensorRole::Output,
                AffineMap::linear(select(3, &[0, 1])),
            ),
            access(
                "P",
                TensorRole::Input,
                AffineMap::linear(select(3, &[0, 2])),
            ),
            access(
                "V",
                TensorRole::Input,
                AffineMap::linear(select(3, &[2, 1])),
            ),
        ],
        FuOp::MulAcc,
    )
    .expect("attention values construction is well-formed")
}

/// Named dataflows used by the paper's evaluation (Figures 10, 13, 14).
///
/// Each helper parallelizes the named dimensions over a `p0 × p1` array and
/// auto-completes the temporal loops.
pub mod dataflows {
    use super::*;
    use crate::workload::IrError;

    /// Generic two-axis parallelization with broadcast control.
    pub fn par2(
        w: &Workload,
        d0: &str,
        p0: i64,
        d1: &str,
        p1: i64,
        name: &str,
    ) -> Result<Dataflow, IrError> {
        DataflowBuilder::new(w).par(d0, p0).par(d1, p1).build(name)
    }

    /// Generic two-axis parallelization with systolic control `c = [1, 1]`.
    pub fn par2_systolic(
        w: &Workload,
        d0: &str,
        p0: i64,
        d1: &str,
        p1: i64,
        name: &str,
    ) -> Result<Dataflow, IrError> {
        DataflowBuilder::new(w)
            .par(d0, p0)
            .par(d1, p1)
            .control(vec![1, 1])
            .build(name)
    }

    /// GEMM with output-stationary I-J parallelism.
    pub fn gemm_ij(w: &Workload, p: i64) -> Dataflow {
        par2(w, "i", p, "j", p, "GEMM-IJ").expect("valid gemm_ij")
    }

    /// GEMM with I-K parallelism (input-stationary flavor).
    pub fn gemm_ik(w: &Workload, p: i64) -> Dataflow {
        par2(w, "i", p, "k", p, "GEMM-IK").expect("valid gemm_ik")
    }

    /// GEMM with the TPU-style K-J systolic parallelism (paper Figure 3).
    pub fn gemm_kj(w: &Workload, p: i64) -> Dataflow {
        par2_systolic(w, "k", p, "j", p, "GEMM-KJ").expect("valid gemm_kj")
    }

    /// Conv2D parallelizing input and output channels (NVDLA-style).
    pub fn conv_icoc(w: &Workload, p: i64) -> Dataflow {
        par2(w, "ic", p, "oc", p, "Conv2d-ICOC").expect("valid conv_icoc")
    }

    /// Conv2D parallelizing the output plane (ShiDianNao-style, Figure 4).
    pub fn conv_ohow(w: &Workload, p: i64) -> Dataflow {
        par2(w, "oh", p, "ow", p, "Conv2d-OHOW").expect("valid conv_ohow")
    }

    /// Conv2D parallelizing kernel and output rows (Eyeriss-style).
    pub fn conv_khoh(w: &Workload, pkh: i64, poh: i64) -> Dataflow {
        par2(w, "kh", pkh, "oh", poh, "Conv2d-KHOH").expect("valid conv_khoh")
    }

    /// MTTKRP parallelizing i and j.
    pub fn mttkrp_ij(w: &Workload, p: i64) -> Dataflow {
        par2(w, "i", p, "j", p, "MTTKRP-IJ").expect("valid mttkrp_ij")
    }

    /// MTTKRP parallelizing k and j.
    pub fn mttkrp_kj(w: &Workload, p: i64) -> Dataflow {
        par2(w, "k", p, "j", p, "MTTKRP-KJ").expect("valid mttkrp_kj")
    }
}

/// Mixed-precision GEMM in the BitFusion style (paper §II's user-defined
/// FU example): `Y[i,j] += (A[i,k] · B[k,j]) << S[k]`, where the per-column
/// shift composes low-precision products into higher-precision results.
pub fn bitfusion_gemm(m: i64, n: i64, k: i64) -> Workload {
    Workload::new(
        "BitFusion-GEMM",
        vec![("i", m), ("j", n), ("k", k)],
        vec![
            access(
                "Y",
                TensorRole::Output,
                AffineMap::linear(select(3, &[0, 1])),
            ),
            access(
                "A",
                TensorRole::Input,
                AffineMap::linear(select(3, &[0, 2])),
            ),
            access(
                "B",
                TensorRole::Input,
                AffineMap::linear(select(3, &[2, 1])),
            ),
            access("S", TensorRole::Input, AffineMap::linear(select(3, &[2]))),
        ],
        FuOp::MulShiftAcc,
    )
    .expect("bitfusion gemm construction is well-formed")
}

/// 2D max pooling `Y[n,c,oh,ow] = max X[n,c,s·oh+kh,s·ow+kw]`.
pub fn max_pool2d(n: i64, c: i64, oh: i64, ow: i64, kh: i64, kw: i64, stride: i64) -> Workload {
    assert!(stride >= 1, "stride must be >= 1");
    // dims: 0:n 1:c 2:oh 3:ow 4:kh 5:kw
    let y = select(6, &[0, 1, 2, 3]);
    let mut x = IMat::zeros(4, 6);
    x[(0, 0)] = 1;
    x[(1, 1)] = 1;
    x[(2, 2)] = stride;
    x[(2, 4)] = 1;
    x[(3, 3)] = stride;
    x[(3, 5)] = 1;
    Workload::new(
        "MaxPool2D",
        vec![
            ("n", n),
            ("c", c),
            ("oh", oh),
            ("ow", ow),
            ("kh", kh),
            ("kw", kw),
        ],
        vec![
            access("Y", TensorRole::Output, AffineMap::linear(y)),
            access("X", TensorRole::Input, AffineMap::linear(x)),
        ],
        FuOp::MaxAcc,
    )
    .expect("max pool construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate() {
        gemm(4, 4, 4);
        conv2d(1, 2, 2, 3, 3, 3, 3, 1);
        depthwise_conv2d(1, 4, 3, 3, 3, 3, 1);
        mttkrp(4, 4, 2, 2);
        attention_scores(8, 8, 4);
        attention_values(8, 8, 4);
    }

    #[test]
    fn named_dataflows_are_bijective() {
        let g = gemm(8, 8, 8);
        assert!(dataflows::gemm_ij(&g, 2).verify_bijective(&g));
        assert!(dataflows::gemm_ik(&g, 2).verify_bijective(&g));
        assert!(dataflows::gemm_kj(&g, 2).verify_bijective(&g));
        let c = conv2d(1, 4, 4, 4, 4, 3, 3, 1);
        assert!(dataflows::conv_icoc(&c, 2).verify_bijective(&c));
        assert!(dataflows::conv_ohow(&c, 2).verify_bijective(&c));
        let m = mttkrp(4, 4, 4, 4);
        assert!(dataflows::mttkrp_ij(&m, 2).verify_bijective(&m));
        assert!(dataflows::mttkrp_kj(&m, 2).verify_bijective(&m));
    }

    #[test]
    fn gemm_matches_paper_figure3_mappings() {
        let g = gemm(4, 4, 4);
        // ⃗y = [[1,0,0],[0,1,0]]·⃗i, ⃗x = [[1,0,0],[0,0,1]]·⃗i, ⃗w = [[0,0,1],[0,1,0]]·⃗i
        let y = g.access("Y").unwrap().map.matrix().clone();
        assert_eq!(y, IMat::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]));
        let x = g.access("X").unwrap().map.matrix().clone();
        assert_eq!(x, IMat::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]]));
        let w = g.access("W").unwrap().map.matrix().clone();
        assert_eq!(w, IMat::from_rows(&[vec![0, 0, 1], vec![0, 1, 0]]));
    }

    #[test]
    fn depthwise_shares_channel_dim() {
        let d = depthwise_conv2d(1, 8, 4, 4, 3, 3, 1);
        let y = d.access("Y").unwrap();
        let w = d.access("W").unwrap();
        // Channel (dim 1) appears in both Y and W maps.
        assert_eq!(y.map.matrix()[(1, 1)], 1);
        assert_eq!(w.map.matrix()[(0, 1)], 1);
    }

    #[test]
    fn mttkrp_has_three_inputs() {
        let m = mttkrp(2, 2, 2, 2);
        assert_eq!(m.inputs().count(), 3);
        assert_eq!(m.op, FuOp::TripleMulAcc);
        assert_eq!(m.total_ops(), 3 * 16);
    }
}
