//! Dense integer tensors and the reference loop-nest executor.
//!
//! Generated hardware is verified by comparing its cycle-accurate output
//! against [`reference_execute`], which runs the workload's loop nest
//! exactly as written (paper Figure 3a) on exact integer data.

use crate::workload::Workload;

/// A dense row-major integer tensor.
///
/// Integer data keeps verification exact: a generated accelerator must
/// reproduce the reference output bit-for-bit.
///
/// # Examples
///
/// ```
/// use lego_ir::TensorData;
///
/// let mut t = TensorData::zeros(&[2, 3]);
/// t.set(&[1, 2], 7);
/// assert_eq!(t.get(&[1, 2]), 7);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorData {
    shape: Vec<i64>,
    data: Vec<i64>,
}

impl TensorData {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive.
    pub fn zeros(shape: &[i64]) -> Self {
        assert!(shape.iter().all(|&d| d > 0), "non-positive tensor extent");
        let len: i64 = shape.iter().product();
        TensorData {
            shape: shape.to_vec(),
            data: vec![0; len as usize],
        }
    }

    /// Creates a tensor filled by a function of the flat element index —
    /// handy for deterministic pseudo-random test data.
    pub fn from_fn(shape: &[i64], f: impl Fn(usize) -> i64) -> Self {
        let mut t = TensorData::zeros(shape);
        for (i, v) in t.data.iter_mut().enumerate() {
            *v = f(i);
        }
        t
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[i64] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[i64]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (x, d) in index.iter().zip(&self.shape) {
            assert!(
                *x >= 0 && x < d,
                "index {index:?} out of bounds {:?}",
                self.shape
            );
            off = off * (*d as usize) + *x as usize;
        }
        off
    }

    /// Reads the element at `index`.
    pub fn get(&self, index: &[i64]) -> i64 {
        self.data[self.offset(index)]
    }

    /// Writes the element at `index`.
    pub fn set(&mut self, index: &[i64], value: i64) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Borrow the flat element storage.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }
}

/// Executes the workload's loop nest on the given inputs (in the workload's
/// input declaration order) and returns the output tensor.
///
/// # Panics
///
/// Panics if the number or shapes of inputs do not match the workload.
///
/// # Examples
///
/// ```
/// use lego_ir::{kernels, tensor::reference_execute, TensorData};
///
/// let g = kernels::gemm(2, 2, 2);
/// let x = TensorData::from_fn(&[2, 2], |i| i as i64);      // [[0,1],[2,3]]
/// let w = TensorData::from_fn(&[2, 2], |i| 1 + i as i64);  // [[1,2],[3,4]]
/// let y = reference_execute(&g, &[&x, &w]);
/// assert_eq!(y.get(&[0, 0]), 0 * 1 + 1 * 3);
/// assert_eq!(y.get(&[1, 1]), 2 * 2 + 3 * 4);
/// ```
pub fn reference_execute(workload: &Workload, inputs: &[&TensorData]) -> TensorData {
    let input_accesses: Vec<_> = workload.inputs().collect();
    assert_eq!(
        inputs.len(),
        input_accesses.len(),
        "wrong number of input tensors"
    );
    for (t, a) in inputs.iter().zip(&input_accesses) {
        assert_eq!(
            t.shape(),
            workload.tensor_shape(&a.tensor),
            "shape mismatch for tensor `{}`",
            a.tensor
        );
    }
    let out_access = workload.output();
    let mut out = TensorData::zeros(&workload.tensor_shape(&out_access.tensor));

    let rank = workload.rank();
    let mut idx = vec![0i64; rank];
    let mut vals = vec![0i64; inputs.len()];
    loop {
        for ((v, t), a) in vals.iter_mut().zip(inputs).zip(&input_accesses) {
            *v = t.get(&a.map.apply(&idx));
        }
        let y_idx = out_access.map.apply(&idx);
        let acc = out.get(&y_idx);
        out.set(&y_idx, workload.op.apply(acc, &vals));

        // Odometer increment, innermost dimension fastest.
        let mut d = rank;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < workload.bounds[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn gemm_reference_matches_manual() {
        let g = kernels::gemm(3, 2, 4);
        let x = TensorData::from_fn(&[3, 4], |i| (i as i64 * 7 + 3) % 11 - 5);
        let w = TensorData::from_fn(&[4, 2], |i| (i as i64 * 5 + 1) % 9 - 4);
        let y = reference_execute(&g, &[&x, &w]);
        for i in 0..3 {
            for j in 0..2 {
                let expect: i64 = (0..4).map(|k| x.get(&[i, k]) * w.get(&[k, j])).sum();
                assert_eq!(y.get(&[i, j]), expect);
            }
        }
    }

    #[test]
    fn conv_reference_matches_manual() {
        let c = kernels::conv2d(1, 2, 2, 3, 3, 2, 2, 1);
        let x = TensorData::from_fn(&[1, 2, 4, 4], |i| (i as i64 % 5) - 2);
        let w = TensorData::from_fn(&[2, 2, 2, 2], |i| (i as i64 % 3) - 1);
        let y = reference_execute(&c, &[&x, &w]);
        for oc in 0..2 {
            for oh in 0..3 {
                for ow in 0..3 {
                    let mut expect = 0i64;
                    for ic in 0..2 {
                        for kh in 0..2 {
                            for kw in 0..2 {
                                expect +=
                                    x.get(&[0, ic, oh + kh, ow + kw]) * w.get(&[oc, ic, kh, kw]);
                            }
                        }
                    }
                    assert_eq!(y.get(&[0, oc, oh, ow]), expect);
                }
            }
        }
    }

    #[test]
    fn mttkrp_reference_matches_manual() {
        let m = kernels::mttkrp(2, 3, 2, 2);
        let a = TensorData::from_fn(&[2, 2, 2], |i| i as i64 - 3);
        let b = TensorData::from_fn(&[2, 3], |i| 2 * i as i64 - 5);
        let c = TensorData::from_fn(&[2, 3], |i| i as i64 % 4);
        let y = reference_execute(&m, &[&a, &b, &c]);
        for i in 0..2 {
            for j in 0..3 {
                let mut expect = 0i64;
                for k in 0..2 {
                    for l in 0..2 {
                        expect += a.get(&[i, k, l]) * b.get(&[k, j]) * c.get(&[l, j]);
                    }
                }
                assert_eq!(y.get(&[i, j]), expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_input_shape_panics() {
        let g = kernels::gemm(2, 2, 2);
        let x = TensorData::zeros(&[3, 3]);
        let w = TensorData::zeros(&[2, 2]);
        reference_execute(&g, &[&x, &w]);
    }

    #[test]
    fn offsets_are_row_major() {
        let t = TensorData::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
    }
}
