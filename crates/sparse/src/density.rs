//! Statistical density models for tensor values.
//!
//! A density model answers one question — what fraction of a tensor's
//! elements is nonzero, and with what structure — without storing any
//! actual values. The cost stack only needs expectations: expected nonzero
//! MAC counts, expected compressed footprints, expected skipped fetches.
//!
//! Densities are stored **exactly** (parts-per-thousand or an N:M ratio)
//! rather than as `f64` so the annotations stay `Hash`/`Eq`: layers carry
//! them, and the explorer's memoized evaluation cache fingerprints layers
//! by value.

/// Statistical density of one tensor's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DensityModel {
    /// Every element is (treated as) nonzero — the dense baseline.
    #[default]
    Dense,
    /// Independent Bernoulli nonzeros at `permille`/1000 density — the
    /// unstructured-pruning and masked-attention model.
    Uniform {
        /// Nonzero probability in exact parts-per-thousand (0..=1000).
        permille: u16,
    },
    /// N:M structured sparsity: exactly `n` nonzeros in every group of `m`
    /// consecutive elements (2:4 is the sparse-tensor-core flavor). The
    /// fixed group structure keeps skipping hardware load-balanced.
    StructuredNM {
        /// Nonzeros per group.
        n: u8,
        /// Group size (`n <= m`, `m > 0`).
        m: u8,
    },
}

impl DensityModel {
    /// Uniform density from a fraction in `[0, 1]`, rounded to the nearest
    /// permille. A fraction that rounds to 1000 ‰ collapses to
    /// [`DensityModel::Dense`] so "fully dense" has one canonical encoding.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not a finite value in `[0, 1]`.
    pub fn uniform(density: f64) -> Self {
        assert!(
            density.is_finite() && (0.0..=1.0).contains(&density),
            "density must be in [0, 1], got {density}"
        );
        let permille = (density * 1000.0).round() as u16;
        if permille >= 1000 {
            DensityModel::Dense
        } else {
            DensityModel::Uniform { permille }
        }
    }

    /// 2:4 structured sparsity (50 % density), the Ampere-class format.
    pub fn two_to_four() -> Self {
        DensityModel::StructuredNM { n: 2, m: 4 }
    }

    /// 4:8 structured sparsity (50 % density, looser groups).
    pub fn four_to_eight() -> Self {
        DensityModel::StructuredNM { n: 4, m: 8 }
    }

    /// Expected fraction of nonzero elements, always in `[0, 1]`.
    pub fn density(&self) -> f64 {
        match *self {
            DensityModel::Dense => 1.0,
            DensityModel::Uniform { permille } => f64::from(permille.min(1000)) / 1000.0,
            DensityModel::StructuredNM { n, m } => {
                let m = m.max(1);
                f64::from(n.min(m)) / f64::from(m)
            }
        }
    }

    /// Whether the model carries no exploitable zeros.
    pub fn is_dense(&self) -> bool {
        self.density() >= 1.0
    }

    /// Whether the nonzero positions follow a fixed N:M group structure
    /// (deterministically schedulable, so skipping pays no load-imbalance
    /// penalty).
    pub fn is_structured(&self) -> bool {
        matches!(self, DensityModel::StructuredNM { .. })
    }

    /// Expected nonzero count among `elems` elements (ceiling, so a
    /// non-empty tensor never rounds to zero nonzeros).
    pub fn nnz(&self, elems: i64) -> i64 {
        if elems <= 0 {
            return 0;
        }
        (elems as f64 * self.density()).ceil() as i64
    }
}

impl std::fmt::Display for DensityModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DensityModel::Dense => write!(f, "dense"),
            DensityModel::Uniform { permille } => {
                write!(f, "d{:.1}%", f64::from(permille) / 10.0)
            }
            DensityModel::StructuredNM { n, m } => write!(f, "{n}:{m}"),
        }
    }
}

/// Per-tensor density annotations of one layer: weights, input
/// activations, and outputs (the output model covers masked attention,
/// where score positions are dropped before they are ever computed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LayerSparsity {
    /// Weight (stationary operand) density.
    pub weights: DensityModel,
    /// Input-activation (streaming operand) density.
    pub inputs: DensityModel,
    /// Output density — positions that are masked away entirely (causal
    /// attention) rather than merely quantizing to zero.
    pub outputs: DensityModel,
}

impl LayerSparsity {
    /// The fully dense annotation (the default on every layer).
    pub fn dense() -> Self {
        LayerSparsity::default()
    }

    /// Annotation with only the weight tensor sparse.
    pub fn weights(model: DensityModel) -> Self {
        LayerSparsity {
            weights: model,
            ..Default::default()
        }
    }

    /// Replaces the input-activation density.
    #[must_use]
    pub fn with_inputs(mut self, model: DensityModel) -> Self {
        self.inputs = model;
        self
    }

    /// Replaces the output density.
    #[must_use]
    pub fn with_outputs(mut self, model: DensityModel) -> Self {
        self.outputs = model;
        self
    }

    /// Whether every tensor is dense (nothing for sparse hardware to
    /// exploit — the cost stack must take the exact dense path).
    pub fn is_dense(&self) -> bool {
        self.weights.is_dense() && self.inputs.is_dense() && self.outputs.is_dense()
    }

    /// Expected fraction of MACs with both operands nonzero **and** an
    /// unmasked output — the independence product of the three densities.
    /// Always in `(0, 1]`.
    pub fn mac_density(&self) -> f64 {
        (self.weights.density() * self.inputs.density() * self.outputs.density()).clamp(0.0, 1.0)
    }

    /// Whether every non-dense tensor follows a fixed N:M structure, so a
    /// skipping frontend can schedule work without load imbalance.
    pub fn is_structured(&self) -> bool {
        [self.weights, self.inputs, self.outputs]
            .iter()
            .all(|d| d.is_dense() || d.is_structured())
    }
}

impl std::fmt::Display for LayerSparsity {
    /// Only the non-dense tensors, e.g. `w=2:4` or `w=d10.0%+o=d50.2%`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_dense() {
            return write!(f, "dense");
        }
        let mut first = true;
        for (tag, d) in [("w", self.weights), ("i", self.inputs), ("o", self.outputs)] {
            if !d.is_dense() {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{tag}={d}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_are_exact_and_bounded() {
        assert_eq!(DensityModel::Dense.density(), 1.0);
        assert_eq!(
            DensityModel::uniform(0.1),
            DensityModel::Uniform { permille: 100 }
        );
        assert_eq!(DensityModel::uniform(1.0), DensityModel::Dense);
        assert_eq!(DensityModel::two_to_four().density(), 0.5);
        assert_eq!(DensityModel::four_to_eight().density(), 0.5);
        for d in [
            DensityModel::Dense,
            DensityModel::uniform(0.0),
            DensityModel::uniform(0.37),
            DensityModel::StructuredNM { n: 1, m: 16 },
        ] {
            assert!((0.0..=1.0).contains(&d.density()), "{d:?}");
        }
    }

    #[test]
    fn nnz_rounds_up_and_handles_edges() {
        assert_eq!(DensityModel::two_to_four().nnz(100), 50);
        assert_eq!(DensityModel::uniform(0.001).nnz(100), 1);
        assert_eq!(DensityModel::Dense.nnz(7), 7);
        assert_eq!(DensityModel::uniform(0.5).nnz(0), 0);
    }

    #[test]
    fn layer_sparsity_products_and_structure() {
        let s = LayerSparsity::weights(DensityModel::two_to_four());
        assert!(!s.is_dense());
        assert!(s.is_structured());
        assert!((s.mac_density() - 0.5).abs() < 1e-12);
        let u = s.with_inputs(DensityModel::uniform(0.5));
        assert!(!u.is_structured());
        assert!((u.mac_density() - 0.25).abs() < 1e-12);
        assert!(LayerSparsity::dense().is_dense());
        assert_eq!(LayerSparsity::dense().mac_density(), 1.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(DensityModel::two_to_four().to_string(), "2:4");
        assert_eq!(DensityModel::uniform(0.1).to_string(), "d10.0%");
        assert_eq!(LayerSparsity::dense().to_string(), "dense");
        let s = LayerSparsity::weights(DensityModel::two_to_four())
            .with_outputs(DensityModel::uniform(0.502));
        assert_eq!(s.to_string(), "w=2:4+o=d50.2%");
    }
}
