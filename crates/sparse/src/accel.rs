//! Sparse acceleration features and their effect on dense costs.
//!
//! Sparseloop distinguishes *representation* (how zeros are stored —
//! [`CompressedFormat`]) from *action
//! optimization* (what the hardware does when it sees one). This module
//! models the two classic action optimizations:
//!
//! * **Gating** — a zero-detect latch in front of each FU holds the
//!   operand registers and clock-gates the multiplier when either operand
//!   is zero. Compute *energy* scales with the nonzero-MAC fraction, but
//!   every cycle and every byte of traffic is still paid: zeros are
//!   fetched, staged, and skipped in place.
//! * **Skipping** — an index-intersection frontend walks compressed
//!   operand streams and dispatches only effectual MACs. Compute cycles,
//!   operand traffic, and buffer accesses all shrink with density; the
//!   price is a bigger per-FU frontend and decode energy on every
//!   compressed byte. Unstructured sparsity additionally pays a
//!   load-imbalance factor — the reason N:M structured formats exist.
//!
//! Both features cost area on the PE datapath even when the data is dense;
//! a layer with density 1.0, however, takes the *exact* dense arithmetic
//! path ([`SparseHw::effects`] returns `None`), which is what keeps every
//! dense result byte-identical with sparse modeling compiled in.

use crate::density::LayerSparsity;
use crate::format::CompressedFormat;

/// The sparse acceleration feature a PE datapath implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparseAccel {
    /// Plain dense datapath: sparsity is ignored entirely.
    #[default]
    None,
    /// Zero-gating: skip compute energy, still pay cycles and traffic.
    Gating,
    /// Skipping: skip compute cycles *and* operand traffic.
    Skipping,
}

impl SparseAccel {
    /// Every feature, in canonical order.
    pub const ALL: [SparseAccel; 3] = [
        SparseAccel::None,
        SparseAccel::Gating,
        SparseAccel::Skipping,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SparseAccel::None => "dense",
            SparseAccel::Gating => "gate",
            SparseAccel::Skipping => "skip",
        }
    }

    /// Area overhead of the sparse frontend per FU, in µm². Anchored to the
    /// ~460 µm² int8 FU of the 28 nm tech model: the gating latch +
    /// zero-detect is ~5 % of an FU, the skipping intersection/dispatch
    /// queue ~13 %.
    pub fn frontend_area_um2_per_fu(self) -> f64 {
        match self {
            SparseAccel::None => 0.0,
            SparseAccel::Gating => 22.0,
            SparseAccel::Skipping => 58.0,
        }
    }

    /// Frontend energy per MAC position it examines, in pJ (zero-detect
    /// compare for gating; metadata intersection + dispatch for skipping).
    /// For reference, one int8 MAC costs ~0.17 pJ in the default tech
    /// model.
    pub fn frontend_pj_per_mac(self) -> f64 {
        match self {
            SparseAccel::None => 0.0,
            SparseAccel::Gating => 0.0006,
            SparseAccel::Skipping => 0.0018,
        }
    }

    /// The compressed formats this cost model lets the frontend consume —
    /// exactly the candidate set [`SparseHw::effects`] selects from.
    /// Gating fetches every operand position (its defining contract is
    /// "skip compute, still pay traffic"), so its streams stay dense;
    /// skipping must index into the stream, which rules out RLE's
    /// sequential decode but admits CSR. RLE remains in the format library
    /// for designs that decompress at the DRAM boundary.
    pub fn supported_formats(self) -> &'static [CompressedFormat] {
        match self {
            SparseAccel::None | SparseAccel::Gating => &[CompressedFormat::Dense],
            SparseAccel::Skipping => &[
                CompressedFormat::Dense,
                CompressedFormat::Bitmask,
                CompressedFormat::Csr,
            ],
        }
    }

    /// Fraction of ideal skip speedup actually achieved. Structured N:M
    /// sparsity is perfectly schedulable; unstructured sparsity leaves
    /// lanes idle waiting for the slowest intersection.
    fn skip_efficiency(structured: bool) -> f64 {
        if structured {
            1.0
        } else {
            0.75
        }
    }
}

impl std::fmt::Display for SparseAccel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The sparse half of a hardware configuration.
///
/// Kept separate from the dense `HwConfig` so existing configurations and
/// presets are untouched; the cost context bundles one of these next to
/// the dense description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SparseHw {
    /// The acceleration feature on the PE datapath.
    pub accel: SparseAccel,
}

impl SparseHw {
    /// A plain dense datapath (the default).
    pub fn dense() -> Self {
        SparseHw::default()
    }

    /// A datapath with the given acceleration feature.
    pub fn with_accel(accel: SparseAccel) -> Self {
        SparseHw { accel }
    }

    /// Whether any sparse feature is present (and hence frontend area is
    /// spent).
    pub fn is_enabled(&self) -> bool {
        self.accel != SparseAccel::None
    }

    /// The multiplicative effects of running a layer with `sparsity` on
    /// this datapath, or `None` when the execution is **provably dense**:
    /// no acceleration feature, or a fully dense layer. Callers must treat
    /// `None` as "take the exact dense arithmetic path" — that invariant
    /// is what keeps dense results byte-identical.
    pub fn effects(&self, sparsity: &LayerSparsity) -> Option<SparseEffects> {
        if !self.is_enabled() || sparsity.is_dense() {
            return None;
        }
        let wd = sparsity.weights.density();
        let id = sparsity.inputs.density();
        let od = sparsity.outputs.density();
        let mac_density = sparsity.mac_density();
        match self.accel {
            SparseAccel::None => None,
            SparseAccel::Gating => Some(SparseEffects {
                compute_scale: 1.0,
                mac_energy_scale: mac_density,
                weight_bytes_scale: 1.0,
                input_bytes_scale: 1.0,
                output_bytes_scale: 1.0,
                operand_read_scale: 1.0,
                weight_format: CompressedFormat::Dense,
                input_format: CompressedFormat::Dense,
                frontend_pj_per_mac: self.accel.frontend_pj_per_mac(),
                frontend_mac_scale: 1.0,
            }),
            SparseAccel::Skipping => {
                let formats = self.accel.supported_formats();
                let pick = |density: f64| {
                    const BLOCK: i64 = 4096;
                    let nnz = (BLOCK as f64 * density).ceil() as i64;
                    CompressedFormat::best_for(BLOCK, nnz, formats)
                };
                let weight_format = pick(wd);
                let input_format = pick(id);
                let eff = SparseAccel::skip_efficiency(sparsity.is_structured());
                // Achieved cycles: ideal nonzero fraction, padded back
                // toward dense by the imbalance the scheduler cannot hide.
                let compute_scale = (mac_density + (1.0 - mac_density) * (1.0 - eff)).min(1.0);
                Some(SparseEffects {
                    compute_scale,
                    mac_energy_scale: mac_density,
                    weight_bytes_scale: weight_format.compression_ratio(wd).min(1.0),
                    input_bytes_scale: input_format.compression_ratio(id).min(1.0),
                    output_bytes_scale: od,
                    operand_read_scale: compute_scale,
                    weight_format,
                    input_format,
                    frontend_pj_per_mac: self.accel.frontend_pj_per_mac(),
                    frontend_mac_scale: compute_scale,
                })
            }
        }
    }
}

impl std::fmt::Display for SparseHw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.accel)
    }
}

/// Multiplicative adjustments a sparse execution applies to the dense cost
/// components. Every `*_scale` is in `(0, 1]`; applying them to the dense
/// quantities yields the expected sparse quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseEffects {
    /// Fraction of dense compute cycles actually issued.
    pub compute_scale: f64,
    /// Fraction of MACs that toggle the datapath (energy).
    pub mac_energy_scale: f64,
    /// Compressed-to-dense ratio of weight DRAM/SRAM footprint.
    pub weight_bytes_scale: f64,
    /// Compressed-to-dense ratio of input-activation footprint.
    pub input_bytes_scale: f64,
    /// Fraction of output positions materialized (masked outputs are
    /// never computed or written).
    pub output_bytes_scale: f64,
    /// Fraction of operand buffer reads issued (skipped fetches).
    pub operand_read_scale: f64,
    /// Chosen weight storage format.
    pub weight_format: CompressedFormat,
    /// Chosen input-activation storage format.
    pub input_format: CompressedFormat,
    /// Frontend energy per examined MAC position, in pJ.
    pub frontend_pj_per_mac: f64,
    /// Fraction of MAC positions the frontend examines (dense positions
    /// for gating, surviving positions for skipping).
    pub frontend_mac_scale: f64,
}

impl SparseEffects {
    /// Frontend + decode energy for a layer that executes `dense_macs` MAC
    /// positions and streams the given dense operand footprints, in pJ.
    pub fn overhead_pj(&self, dense_macs: i64, weight_bytes: i64, input_bytes: i64) -> f64 {
        let frontend = self.frontend_pj_per_mac * dense_macs as f64 * self.frontend_mac_scale;
        let decode = self.weight_format.decode_pj_per_byte()
            * (weight_bytes as f64 * self.weight_bytes_scale)
            + self.input_format.decode_pj_per_byte()
                * (input_bytes as f64 * self.input_bytes_scale);
        frontend + decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityModel;

    fn two_to_four() -> LayerSparsity {
        LayerSparsity::weights(DensityModel::two_to_four())
    }

    #[test]
    fn dense_or_disabled_is_a_provable_noop() {
        assert!(SparseHw::dense().effects(&two_to_four()).is_none());
        assert!(SparseHw::with_accel(SparseAccel::Skipping)
            .effects(&LayerSparsity::dense())
            .is_none());
        assert!(SparseHw::with_accel(SparseAccel::Gating)
            .effects(&LayerSparsity::dense())
            .is_none());
    }

    #[test]
    fn gating_saves_energy_but_not_cycles_or_traffic() {
        let e = SparseHw::with_accel(SparseAccel::Gating)
            .effects(&two_to_four())
            .unwrap();
        assert_eq!(e.compute_scale, 1.0);
        assert_eq!(e.weight_bytes_scale, 1.0);
        assert_eq!(e.input_bytes_scale, 1.0);
        assert!((e.mac_energy_scale - 0.5).abs() < 1e-12);
        assert!(e.frontend_pj_per_mac > 0.0);
        assert_eq!(e.weight_format, CompressedFormat::Dense);
    }

    #[test]
    fn skipping_single_tensor_structured_halves_cycles_and_shrinks_weights() {
        let e = SparseHw::with_accel(SparseAccel::Skipping)
            .effects(&two_to_four())
            .unwrap();
        assert!((e.compute_scale - 0.5).abs() < 1e-12, "2:4 is schedulable");
        assert!((e.mac_energy_scale - 0.5).abs() < 1e-12);
        // Bitmask at 50 % density: 0.5 payload + 1/8 mask.
        assert_eq!(e.weight_format, CompressedFormat::Bitmask);
        assert!((e.weight_bytes_scale - 0.625).abs() < 1e-9);
        // Dense inputs stay dense.
        assert_eq!(e.input_format, CompressedFormat::Dense);
        assert_eq!(e.input_bytes_scale, 1.0);
    }

    #[test]
    fn unstructured_skipping_pays_imbalance() {
        let structured = SparseHw::with_accel(SparseAccel::Skipping)
            .effects(&two_to_four())
            .unwrap();
        let unstructured = SparseHw::with_accel(SparseAccel::Skipping)
            .effects(&LayerSparsity::weights(DensityModel::uniform(0.5)))
            .unwrap();
        assert!(unstructured.compute_scale > structured.compute_scale);
        assert!(unstructured.compute_scale < 1.0);
    }

    #[test]
    fn effects_scales_stay_in_unit_interval() {
        for accel in [SparseAccel::Gating, SparseAccel::Skipping] {
            for permille in [1u16, 100, 250, 500, 750, 999] {
                let sp = LayerSparsity::weights(DensityModel::Uniform { permille })
                    .with_inputs(DensityModel::uniform(0.7));
                let e = SparseHw::with_accel(accel).effects(&sp).unwrap();
                for s in [
                    e.compute_scale,
                    e.mac_energy_scale,
                    e.weight_bytes_scale,
                    e.input_bytes_scale,
                    e.output_bytes_scale,
                    e.operand_read_scale,
                    e.frontend_mac_scale,
                ] {
                    assert!((0.0..=1.0).contains(&s), "{accel:?} {permille} {s}");
                    assert!(s > 0.0);
                }
            }
        }
    }

    #[test]
    fn overhead_energy_is_positive_and_scales_with_work() {
        let e = SparseHw::with_accel(SparseAccel::Skipping)
            .effects(&two_to_four())
            .unwrap();
        let small = e.overhead_pj(1000, 1000, 1000);
        let large = e.overhead_pj(10_000, 10_000, 10_000);
        assert!(small > 0.0);
        assert!((large - 10.0 * small).abs() < 1e-9);
    }
}
