//! Compressed tensor formats: storage overhead and decode energy.
//!
//! Following Sparseloop's representation-format abstraction, a format is
//! priced by two numbers: how many bytes it takes to store `nnz` nonzeros
//! out of `elems` int8 elements (payload + metadata), and how much energy
//! the decoder spends per compressed byte it streams. The *choice* of
//! format is a compiler/hardware decision — [`CompressedFormat::best_for`]
//! picks the smallest representation among the formats a sparse frontend
//! supports, and `Dense` is always available, so compression can only
//! shrink traffic, never inflate it.

/// A storage format for one tensor operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressedFormat {
    /// Uncompressed: one byte per element, no metadata, no decode cost.
    #[default]
    Dense,
    /// Nonzero payload plus a one-bit-per-element occupancy mask. Flat
    /// metadata makes it the moderate-density workhorse (and the natural
    /// mate of N:M structured sparsity, whose mask is group-local).
    Bitmask,
    /// Run-length encoding: one byte of zero-run length per stored nonzero.
    /// Metadata scales with `nnz`, so it wins at low density, but the
    /// sequential decode cannot be indexed into, so a skipping frontend's
    /// intersection unit cannot consume it — it suits DRAM-boundary
    /// decompressors.
    Rle,
    /// Compressed sparse rows: 16-bit column indices per nonzero plus a row
    /// pointer every 1024 elements. The heaviest metadata, but the only
    /// format here that supports the random access a skipping frontend's
    /// intersection unit needs at very low density.
    Csr,
}

/// Ceiling division on non-negative i64.
fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

impl CompressedFormat {
    /// Every format, in canonical order (`Dense` first, so storage ties
    /// resolve toward the simplest representation).
    pub const ALL: [CompressedFormat; 4] = [
        CompressedFormat::Dense,
        CompressedFormat::Bitmask,
        CompressedFormat::Rle,
        CompressedFormat::Csr,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CompressedFormat::Dense => "dense",
            CompressedFormat::Bitmask => "bitmask",
            CompressedFormat::Rle => "rle",
            CompressedFormat::Csr => "csr",
        }
    }

    /// Bytes of metadata needed to locate `nnz` nonzeros among `elems`
    /// int8 elements.
    pub fn metadata_bytes(self, elems: i64, nnz: i64) -> i64 {
        let (elems, nnz) = (elems.max(0), nnz.max(0));
        if elems == 0 {
            return 0;
        }
        match self {
            CompressedFormat::Dense => 0,
            CompressedFormat::Bitmask => div_ceil(elems, 8),
            CompressedFormat::Rle => nnz,
            CompressedFormat::Csr => 2 * nnz + 4 * div_ceil(elems, 1024),
        }
    }

    /// Total storage (payload + metadata) for `nnz` nonzeros among `elems`
    /// int8 elements. `Dense` ignores `nnz` and stores every element.
    pub fn storage_bytes(self, elems: i64, nnz: i64) -> i64 {
        let (elems, nnz) = (elems.max(0), nnz.min(elems).max(0));
        match self {
            CompressedFormat::Dense => elems,
            _ => nnz + self.metadata_bytes(elems, nnz),
        }
    }

    /// Decoder energy per compressed byte streamed, in pJ. Calibrated as a
    /// small fraction of the SRAM access energy the decode rides on: a
    /// bitmask popcount-scan is cheapest, RLE adds a running-sum, CSR adds
    /// an index compare per nonzero.
    pub fn decode_pj_per_byte(self) -> f64 {
        match self {
            CompressedFormat::Dense => 0.0,
            CompressedFormat::Bitmask => 0.03,
            CompressedFormat::Rle => 0.05,
            CompressedFormat::Csr => 0.08,
        }
    }

    /// The smallest-storage format among `candidates` for a tensor of
    /// `elems` elements with `nnz` nonzeros; earlier candidates win ties.
    /// Falls back to `Dense` on an empty candidate list.
    pub fn best_for(elems: i64, nnz: i64, candidates: &[CompressedFormat]) -> CompressedFormat {
        candidates
            .iter()
            .copied()
            .min_by_key(|f| f.storage_bytes(elems, nnz))
            .unwrap_or(CompressedFormat::Dense)
    }

    /// Compressed-to-dense footprint ratio in `(0, 1]` for a density
    /// fraction, evaluated on a canonical 4096-element block (large enough
    /// that the amortized terms settle). Only meaningful for formats
    /// selected through [`CompressedFormat::best_for`], which caps the
    /// ratio at 1 via the `Dense` fallback.
    pub fn compression_ratio(self, density: f64) -> f64 {
        const BLOCK: i64 = 4096;
        let nnz = (BLOCK as f64 * density.clamp(0.0, 1.0)).ceil() as i64;
        self.storage_bytes(BLOCK, nnz) as f64 / BLOCK as f64
    }
}

impl std::fmt::Display for CompressedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CompressedFormat::*;

    #[test]
    fn storage_models_match_hand_counts() {
        // 4096 elements at 50 % density (2:4): bitmask = 2048 payload +
        // 512 mask bytes; RLE = 2048 + 2048 run bytes; CSR = 2048 payload +
        // 4096 index + 16 row-pointer bytes.
        assert_eq!(Dense.storage_bytes(4096, 2048), 4096);
        assert_eq!(Bitmask.storage_bytes(4096, 2048), 2048 + 512);
        assert_eq!(Rle.storage_bytes(4096, 2048), 2048 + 2048);
        assert_eq!(Csr.storage_bytes(4096, 2048), 2048 + 2 * 2048 + 16);
    }

    #[test]
    fn each_format_has_a_winning_regime() {
        // Moderate density: bitmask's flat mask wins.
        assert_eq!(CompressedFormat::best_for(4096, 2048, &ALL_SET), Bitmask);
        // Low density: RLE's per-nnz metadata wins.
        assert_eq!(CompressedFormat::best_for(4096, 64, &ALL_SET), Rle);
        // Dense data: compression cannot help.
        assert_eq!(CompressedFormat::best_for(4096, 4096, &ALL_SET), Dense);
        // Without RLE (a skipping frontend), CSR takes the low-density slot.
        let skipping = [Dense, Bitmask, Csr];
        assert_eq!(CompressedFormat::best_for(4096, 16, &skipping), Csr);
    }

    const ALL_SET: [CompressedFormat; 4] = CompressedFormat::ALL;

    #[test]
    fn best_for_never_exceeds_dense() {
        for elems in [64i64, 1000, 4096, 1 << 20] {
            for nnz in [0i64, 1, elems / 10, elems / 2, elems] {
                let best = CompressedFormat::best_for(elems, nnz, &ALL_SET);
                assert!(
                    best.storage_bytes(elems, nnz) <= elems,
                    "{best:?} inflates {elems}/{nnz}"
                );
            }
        }
    }

    #[test]
    fn compression_ratio_is_monotone_in_density() {
        for fmt in ALL_SET {
            let mut last = 0.0;
            for permille in 0..=1000 {
                let r = fmt.compression_ratio(permille as f64 / 1000.0);
                assert!(r >= last - 1e-12, "{fmt:?} not monotone at {permille}");
                assert!(r > 0.0 || permille == 0);
                last = r;
            }
        }
    }

    #[test]
    fn edge_cases_do_not_underflow() {
        assert_eq!(Bitmask.storage_bytes(0, 0), 0);
        assert_eq!(Csr.storage_bytes(10, -5), Csr.storage_bytes(10, 0));
        assert_eq!(Rle.storage_bytes(10, 100), Rle.storage_bytes(10, 10));
        assert_eq!(CompressedFormat::best_for(128, 64, &[]), Dense);
    }
}
