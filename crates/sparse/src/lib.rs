//! # lego-sparse — sparsity modeling for the LEGO cost stack
//!
//! LEGO's evaluation targets dense tensor workloads, but the dominant
//! growth scenario in foundation-model inference is sparse: pruned
//! weights, N:M structured sparsity, masked attention. This crate opens
//! that workload class analytically, following Sparseloop's split of the
//! problem into three orthogonal layers:
//!
//! 1. **Density models** ([`DensityModel`], [`LayerSparsity`]) — *how many
//!    zeros* a tensor statistically carries, and with what structure.
//!    Workload layers carry a [`LayerSparsity`] annotation per tensor
//!    (weights / inputs / outputs); densities are stored exactly
//!    (permille or N:M) so annotations stay `Hash`/`Eq` for evaluation
//!    caches.
//! 2. **Representation formats** ([`CompressedFormat`]) — *how zeros are
//!    stored*: Dense, Bitmask, RLE, CSR, each priced by storage bytes
//!    (payload + metadata) and decode energy per compressed byte.
//!    Format selection picks the smallest representation the frontend
//!    can consume, with Dense always available, so compression never
//!    inflates traffic.
//! 3. **Acceleration features** ([`SparseAccel`], [`SparseHw`]) — *what
//!    the datapath does about zeros*: **gating** (clock-gate the FU:
//!    save compute energy, still pay cycles and traffic) or **skipping**
//!    (intersect compressed streams: save cycles *and* traffic, pay
//!    frontend area/energy and — for unstructured sparsity — a
//!    load-imbalance factor).
//!
//! The bridge into the cost stack is [`SparseHw::effects`]: given a
//! layer's sparsity annotation, it returns the multiplicative
//! [`SparseEffects`] on the dense cost components (expected-nonzero MAC
//! counts, compressed traffic, skipped fetches, frontend/decode
//! overheads) — or `None` when the execution is provably dense (no
//! acceleration feature, or density 1.0), in which case the consumer must
//! take its exact dense arithmetic path. That `None` contract is what
//! keeps every dense result byte-identical with sparsity modeling
//! compiled in.
//!
//! The crate is deliberately dependency-free: `lego-workloads` annotates
//! its layers with these types, `lego-model` bundles a [`SparseHw`] into
//! its cost context, `lego-sim` applies the effects, and `lego-explorer`
//! searches the acceleration feature as a genome axis (sparse support is
//! an honest area-vs-EDP trade-off).
//!
//! ```
//! use lego_sparse::{DensityModel, LayerSparsity, SparseAccel, SparseHw};
//!
//! // ResNet50 pruned to 2:4 structured weight sparsity…
//! let layer = LayerSparsity::weights(DensityModel::two_to_four());
//! // …on a skipping-enabled datapath:
//! let hw = SparseHw::with_accel(SparseAccel::Skipping);
//! let eff = hw.effects(&layer).expect("sparse work on sparse hardware");
//! assert_eq!(eff.compute_scale, 0.5);          // N:M skips perfectly
//! assert!(eff.weight_bytes_scale < 0.7);       // bitmask-compressed weights
//! // Dense data takes the exact dense path, always:
//! assert!(hw.effects(&LayerSparsity::dense()).is_none());
//! ```

pub mod accel;
pub mod density;
pub mod format;

pub use accel::{SparseAccel, SparseEffects, SparseHw};
pub use density::{DensityModel, LayerSparsity};
pub use format::CompressedFormat;
