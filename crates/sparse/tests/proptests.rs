//! Property tests for the sparsity model and its integration contract:
//!
//! 1. every density model yields a density in `[0, 1]` and an `nnz` in
//!    `[0, elems]`;
//! 2. on sparse hardware, cycles / DRAM traffic / datapath energy are
//!    monotone **nonincreasing as density decreases** (equivalently,
//!    nondecreasing in density);
//! 3. density 1.0 is **byte-identical** to the dense path on random
//!    layers — sparse hardware running dense data produces the exact
//!    dense `LayerPerf`, and unit traffic scales reproduce the dense
//!    traffic function bit-for-bit.

use lego_model::{CostContext, SparseAccel, SparseHw, TechModel};
use lego_sim::{
    simulate_layer_ctx, tiled_dram_traffic, tiled_dram_traffic_sparse, HwConfig, SpatialMapping,
};
use lego_sparse::{CompressedFormat, DensityModel, LayerSparsity};
use lego_workloads::{Layer, LayerKind};
use proptest::prelude::*;

fn accel_of(idx: u8) -> SparseAccel {
    SparseAccel::ALL[idx as usize % SparseAccel::ALL.len()]
}

/// A random GEMM or Conv layer from compact shape parameters.
fn layer_of(kind: u8, a: i64, b: i64, c: i64) -> Layer {
    if kind.is_multiple_of(2) {
        Layer::new("g", LayerKind::Gemm { m: a, n: b, k: c })
    } else {
        Layer::new(
            "c",
            LayerKind::Conv {
                n: 1,
                ic: c.clamp(1, 64),
                oc: b.clamp(1, 128),
                oh: a.clamp(1, 56),
                ow: a.clamp(1, 56),
                kh: 3,
                kw: 3,
                stride: 1,
            },
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn density_is_always_in_unit_interval(
        permille in 0u16..=1200, // deliberately beyond the clamp
        n in 0u8..=20,
        m in 1u8..=16,
        elems in 0i64..100_000,
    ) {
        for model in [
            DensityModel::Dense,
            DensityModel::Uniform { permille },
            DensityModel::StructuredNM { n, m },
        ] {
            let d = model.density();
            prop_assert!((0.0..=1.0).contains(&d), "{model:?}: {d}");
            let nnz = model.nnz(elems);
            prop_assert!(nnz >= 0 && nnz <= elems.max(0), "{model:?}: {nnz}/{elems}");
        }
        // Format storage never goes negative or above dense either.
        for fmt in CompressedFormat::ALL {
            let nnz = DensityModel::Uniform { permille }.nnz(elems);
            prop_assert!(fmt.storage_bytes(elems, nnz) >= 0);
        }
    }

    #[test]
    fn sparse_costs_monotone_nonincreasing_as_density_drops(
        kind in 0u8..=1,
        a in 8i64..96,
        b in 8i64..96,
        c in 8i64..96,
        lo in 1u16..=999,
        hi in 1u16..=999,
        accel_idx in 1u8..=2, // gating or skipping
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut ctx = CostContext::new(HwConfig::lego_256(), TechModel::default());
        ctx.sparse = SparseHw::with_accel(accel_of(accel_idx));
        let perf_at = |permille: u16| {
            let l = layer_of(kind, a, b, c).with_sparsity(LayerSparsity::weights(
                DensityModel::Uniform { permille },
            ));
            simulate_layer_ctx(&l, SpatialMapping::GemmMN, &ctx, None)
        };
        let sparse = perf_at(lo);
        let denser = perf_at(hi);
        prop_assert!(sparse.cycles <= denser.cycles, "{} > {}", sparse.cycles, denser.cycles);
        prop_assert!(sparse.dram_bytes <= denser.dram_bytes);
        prop_assert!(sparse.l1_accesses <= denser.l1_accesses);
        prop_assert!(sparse.energy.mac_pj <= denser.energy.mac_pj + 1e-9);
        // And the sparse execution never exceeds the fully dense one.
        let dense = perf_at(1000);
        prop_assert!(denser.cycles <= dense.cycles);
        prop_assert!(denser.dram_bytes <= dense.dram_bytes);
    }

    #[test]
    fn density_one_is_byte_identical_to_the_dense_path(
        kind in 0u8..=1,
        a in 4i64..128,
        b in 4i64..128,
        c in 4i64..128,
        accel_idx in 0u8..=2,
        mapping_idx in 0usize..=2,
    ) {
        let mapping = [
            SpatialMapping::GemmMN,
            SpatialMapping::ConvIcOc,
            SpatialMapping::ConvOhOw,
        ][mapping_idx];
        let layer = layer_of(kind, a, b, c);
        let dense_ctx = CostContext::new(HwConfig::lego_256(), TechModel::default());
        let mut sparse_ctx = dense_ctx.clone();
        sparse_ctx.sparse = SparseHw::with_accel(accel_of(accel_idx));
        // A fully dense layer (density 1.0 everywhere) on sparse hardware:
        // the exact dense result, field for field.
        prop_assert_eq!(
            simulate_layer_ctx(&layer, mapping, &sparse_ctx, None),
            simulate_layer_ctx(&layer, mapping, &dense_ctx, None)
        );
        // An annotated layer on *dense* hardware is also the dense path.
        let annotated = layer.clone().with_sparsity(
            LayerSparsity::weights(DensityModel::two_to_four())
                .with_inputs(DensityModel::uniform(0.9)),
        );
        prop_assert_eq!(
            simulate_layer_ctx(&annotated, mapping, &dense_ctx, None),
            simulate_layer_ctx(&layer, mapping, &dense_ctx, None)
        );
    }

    #[test]
    fn unit_scales_reproduce_dense_traffic_bit_for_bit(
        m in 1i64..2048,
        n in 1i64..2048,
        k in 1i64..512,
        buffer_kb in 1i64..512,
        cap in 0i64..128,
    ) {
        let buffer = buffer_kb * 1024;
        let tile_cap = if cap == 0 { None } else { Some(cap) };
        prop_assert_eq!(
            tiled_dram_traffic_sparse(m, n, k, buffer, tile_cap, 1.0, 1.0, 1.0),
            tiled_dram_traffic(m, n, k, buffer, tile_cap)
        );
        // Scaled traffic is monotone in each operand scale and never
        // exceeds the dense traffic.
        let dense = tiled_dram_traffic(m, n, k, buffer, tile_cap);
        let scaled = tiled_dram_traffic_sparse(m, n, k, buffer, tile_cap, 0.625, 0.8, 1.0);
        prop_assert!(scaled <= dense, "{} > {}", scaled, dense);
    }
}
