//! Property-based tests for the integer linear algebra kernel.

use lego_linalg::{
    delinearize, hermite_normal_form, linearize, nullspace_basis, solve, AffineMap, IMat,
};
use proptest::prelude::*;

fn small_mat(max_rows: usize, max_cols: usize) -> impl Strategy<Value = IMat> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-6i64..=6, r * c)
            .prop_map(move |data| IMat::from_flat(r, c, data))
    })
}

proptest! {
    #[test]
    fn hnf_defining_property(a in small_mat(4, 5)) {
        let hnf = hermite_normal_form(&a);
        // A·U = H
        prop_assert_eq!(&(&a * &hnf.u), &hnf.h);
        // Echelon: zero right of every pivot, zero columns after the rank.
        for &(r, c) in &hnf.pivots {
            prop_assert!(hnf.h[(r, c)] > 0);
            for j in c + 1..a.cols() {
                prop_assert_eq!(hnf.h[(r, j)], 0);
            }
        }
        for j in hnf.pivots.len()..a.cols() {
            prop_assert!(hnf.h.col(j).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn nullspace_vectors_annihilate(a in small_mat(4, 5)) {
        for v in nullspace_basis(&a) {
            prop_assert!(a.mul_vec(&v).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn solve_recovers_planted_solution(
        a in small_mat(4, 4),
        x in proptest::collection::vec(-5i64..=5, 4),
    ) {
        // Plant a solution: b = A·x always has at least one integer solution.
        let x = &x[..a.cols()];
        let b = a.mul_vec(x);
        let sol = solve(&a, &b).expect("planted system must be solvable");
        prop_assert_eq!(a.mul_vec(&sol.particular), b.clone());
        // Any basis shift stays a solution.
        for v in &sol.basis {
            let shifted: Vec<i64> =
                sol.particular.iter().zip(v).map(|(p, d)| p + d).collect();
            prop_assert_eq!(a.mul_vec(&shifted), b.clone());
        }
    }

    #[test]
    fn solve_none_means_truly_unsolvable_small(
        a in small_mat(2, 2),
        b in proptest::collection::vec(-8i64..=8, 2),
    ) {
        let b = &b[..a.rows()];
        if solve(&a, b).is_none() {
            // Exhaustive check over a box: no integer solution hides there.
            let n = a.cols();
            let bound = 40i64;
            let mut x = vec![-bound; n];
            loop {
                prop_assert_ne!(a.mul_vec(&x), b.to_vec());
                let mut k = 0;
                loop {
                    x[k] += 1;
                    if x[k] <= bound {
                        break;
                    }
                    x[k] = -bound;
                    k += 1;
                    if k == n {
                        return Ok(());
                    }
                }
            }
        }
    }

    #[test]
    fn linearize_bijective(sizes in proptest::collection::vec(1i64..=5, 1..5)) {
        let total: i64 = sizes.iter().product();
        let mut seen = std::collections::HashSet::new();
        for t in 0..total {
            let idx = delinearize(t, &sizes);
            prop_assert!(seen.insert(idx.clone()));
            prop_assert_eq!(linearize(&idx, &sizes), t);
        }
    }

    #[test]
    fn affine_compose_associative(
        a in small_mat(3, 3),
        b in small_mat(3, 3),
        x in proptest::collection::vec(-4i64..=4, 3),
    ) {
        // Restrict to square 3x3 so all compositions are defined.
        let fa = AffineMap::new(
            IMat::from_flat(3, 3, (0..9).map(|i| a[(i / 3 % a.rows(), i % 3 % a.cols())]).collect()),
            vec![1, -2, 3],
        );
        let fb = AffineMap::new(
            IMat::from_flat(3, 3, (0..9).map(|i| b[(i / 3 % b.rows(), i % 3 % b.cols())]).collect()),
            vec![0, 4, -1],
        );
        let lhs = fa.compose(&fb).apply(&x);
        let rhs = fa.apply(&fb.apply(&x));
        prop_assert_eq!(lhs, rhs);
    }
}
