//! Integer linear algebra for the LEGO spatial-accelerator generator.
//!
//! LEGO's relation-centric representation (paper §III) is built entirely on
//! affine transformations over integer vectors: data mappings
//! `d = M_{I→D}·i + b`, dataflow mappings `i = [M_{T→I} M_{S→I}]·[t; s]`, and
//! the interconnection analysis (paper §IV-A) reduces to solving integer
//! linear systems `A·x = 0` and `A·x = b` inside small bounded boxes.
//!
//! This crate provides:
//!
//! * [`IMat`] — a dense integer matrix with exact `i64` arithmetic,
//! * [`hnf`] — column-style Hermite normal form, integer nullspace bases and
//!   exact integer solving of `A·x = b`,
//! * [`AffineMap`] — an affine transformation `x ↦ M·x + b` with composition,
//! * small vector helpers ([`dot`], [`lex_cmp`], [`linearize`]) used across
//!   the workspace.
//!
//! # Examples
//!
//! ```
//! use lego_linalg::{IMat, AffineMap};
//!
//! // The GEMM output mapping y = [i, j] from iteration index [i, j, k].
//! let m = IMat::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]);
//! let map = AffineMap::linear(m);
//! assert_eq!(map.apply(&[3, 4, 5]), vec![3, 4]);
//! ```

pub mod affine;
pub mod hnf;
pub mod mat;

pub use affine::AffineMap;
pub use hnf::{hermite_normal_form, nullspace_basis, solve, Hnf, IntSolution};
pub use mat::IMat;

/// Dot product of two equal-length integer vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(lego_linalg::dot(&[1, 2], &[3, 4]), 11);
/// ```
pub fn dot(a: &[i64], b: &[i64]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Lexicographic comparison of two equal-length integer vectors.
///
/// Used to orient delay interconnections from past to future
/// (paper §IV-A: data must always be shared forward in time).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    assert_eq!(a.len(), b.len(), "lex_cmp: length mismatch");
    a.cmp(b)
}

/// Flattens a multi-dimensional loop index into a scalar timestamp
/// following the paper's Equation 3:
/// `t = ((t0·R1 + t1)·R2 + t2)·…` where `sizes = [R0, R1, …]`.
///
/// The first dimension is the outermost loop.
///
/// # Panics
///
/// Panics if `index` and `sizes` have different lengths.
///
/// # Examples
///
/// ```
/// // A 2-level nest of sizes [3, 4]: index [1, 2] is cycle 1*4 + 2 = 6.
/// assert_eq!(lego_linalg::linearize(&[1, 2], &[3, 4]), 6);
/// ```
pub fn linearize(index: &[i64], sizes: &[i64]) -> i64 {
    assert_eq!(index.len(), sizes.len(), "linearize: length mismatch");
    let mut t = 0i64;
    for (x, r) in index.iter().zip(sizes) {
        t = t * r + x;
    }
    t
}

/// Inverse of [`linearize`]: splits a scalar timestamp back into a
/// multi-dimensional loop index for the given loop sizes.
///
/// # Panics
///
/// Panics if any size is non-positive.
pub fn delinearize(mut t: i64, sizes: &[i64]) -> Vec<i64> {
    let mut out = vec![0i64; sizes.len()];
    for (slot, &r) in out.iter_mut().zip(sizes).rev() {
        assert!(r > 0, "delinearize: non-positive loop size");
        *slot = t.rem_euclid(r);
        t = t.div_euclid(r);
    }
    out
}

/// Greatest common divisor of two integers by absolute value
/// (`gcd(0, 0) = 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// GCD folded over a slice; returns 0 for an empty slice or all-zero input.
pub fn gcd_all(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |acc, &x| gcd(acc, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_products() {
        assert_eq!(dot(&[], &[]), 0);
        assert_eq!(dot(&[1, -2, 3], &[4, 5, 6]), 4 - 10 + 18);
    }

    #[test]
    fn lex_ordering_orients_time() {
        use std::cmp::Ordering;
        assert_eq!(lex_cmp(&[0, 0, 1], &[0, 1, 0]), Ordering::Less);
        assert_eq!(lex_cmp(&[1, 0], &[1, 0]), Ordering::Equal);
        assert_eq!(lex_cmp(&[2, 0], &[1, 9]), Ordering::Greater);
    }

    #[test]
    fn linearize_matches_paper_equation3() {
        // t = ((t0*R1 + t1)*R2 + t2)
        let sizes = [2, 3, 4];
        #[allow(clippy::identity_op)] // spell out the row-major formula
        let expect = (1 * 3 + 2) * 4 + 3;
        assert_eq!(linearize(&[1, 2, 3], &sizes), expect);
        assert_eq!(linearize(&[0, 0, 0], &sizes), 0);
    }

    #[test]
    fn delinearize_roundtrip() {
        let sizes = [3, 5, 2, 7];
        let total: i64 = sizes.iter().product();
        for t in 0..total {
            let idx = delinearize(t, &sizes);
            assert_eq!(linearize(&idx, &sizes), t);
            for (x, r) in idx.iter().zip(&sizes) {
                assert!(*x >= 0 && x < r);
            }
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd_all(&[4, 6, 8]), 2);
        assert_eq!(gcd_all(&[]), 0);
        assert_eq!(gcd_all(&[0, 0]), 0);
        assert_eq!(gcd_all(&[0, 5]), 5);
    }
}
