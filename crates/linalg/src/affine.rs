//! Affine transformations `x ↦ M·x + b` over integer vectors.

use crate::mat::IMat;

/// An affine map `f(x) = M·x + b`.
///
/// This is the elementary building block of LEGO's relation-centric
/// representation (paper §III): tensor data mappings `f_{I→D}`, dataflow
/// mappings `f_{TS→I}` and their compositions `f_{TS→D}` are all affine.
///
/// # Examples
///
/// ```
/// use lego_linalg::{AffineMap, IMat};
///
/// // Conv2D input height: ih = oh + kh - 1.
/// let m = IMat::from_rows(&[vec![1, 1]]);
/// let f = AffineMap::new(m, vec![-1]);
/// assert_eq!(f.apply(&[5, 2]), vec![6]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineMap {
    matrix: IMat,
    bias: Vec<i64>,
}

impl AffineMap {
    /// Creates an affine map from a matrix and a bias vector.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != matrix.rows()`.
    pub fn new(matrix: IMat, bias: Vec<i64>) -> Self {
        assert_eq!(
            bias.len(),
            matrix.rows(),
            "affine map: bias length mismatch"
        );
        AffineMap { matrix, bias }
    }

    /// Creates a purely linear map (zero bias).
    pub fn linear(matrix: IMat) -> Self {
        let bias = vec![0; matrix.rows()];
        AffineMap { matrix, bias }
    }

    /// The identity map on `n`-dimensional vectors.
    pub fn identity(n: usize) -> Self {
        AffineMap::linear(IMat::identity(n))
    }

    /// The linear part `M`.
    pub fn matrix(&self) -> &IMat {
        &self.matrix
    }

    /// The bias `b`.
    pub fn bias(&self) -> &[i64] {
        &self.bias
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Evaluates the map at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply(&self, x: &[i64]) -> Vec<i64> {
        let mut y = self.matrix.mul_vec(x);
        for (yi, bi) in y.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
        y
    }

    /// Composition `self ∘ inner`: first applies `inner`, then `self`.
    ///
    /// # Panics
    ///
    /// Panics if `inner.out_dim() != self.in_dim()`.
    pub fn compose(&self, inner: &AffineMap) -> AffineMap {
        assert_eq!(
            inner.out_dim(),
            self.in_dim(),
            "compose: dimension mismatch"
        );
        let matrix = &self.matrix * &inner.matrix;
        let bias = self.apply(&inner.bias);
        AffineMap { matrix, bias }
    }

    /// Applies only the linear part `M·x` (drops the bias).
    ///
    /// Reuse analysis works on index *differences*, where the bias cancels:
    /// `f(x + Δ) − f(x) = M·Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply_linear(&self, x: &[i64]) -> Vec<i64> {
        self.matrix.mul_vec(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_identity() {
        let id = AffineMap::identity(3);
        assert_eq!(id.apply(&[7, -2, 0]), vec![7, -2, 0]);
        assert_eq!(id.in_dim(), 3);
        assert_eq!(id.out_dim(), 3);
    }

    #[test]
    fn compose_matches_sequential_application() {
        // inner: R^2 -> R^3, outer: R^3 -> R^1.
        let inner = AffineMap::new(
            IMat::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]),
            vec![1, 2, 3],
        );
        let outer = AffineMap::new(IMat::from_rows(&[vec![1, -1, 2]]), vec![10]);
        let comp = outer.compose(&inner);
        for x in [[0, 0], [1, 2], [-3, 5]] {
            assert_eq!(comp.apply(&x), outer.apply(&inner.apply(&x)));
        }
    }

    #[test]
    fn differences_drop_bias() {
        let f = AffineMap::new(IMat::from_rows(&[vec![2, 3]]), vec![41]);
        let a = [5, 7];
        let d = [1, -1];
        let moved = [a[0] + d[0], a[1] + d[1]];
        let diff: Vec<i64> = f
            .apply(&moved)
            .iter()
            .zip(f.apply(&a))
            .map(|(u, v)| u - v)
            .collect();
        assert_eq!(diff, f.apply_linear(&d));
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn bad_bias_panics() {
        let _ = AffineMap::new(IMat::identity(2), vec![0]);
    }
}
