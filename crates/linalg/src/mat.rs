//! Dense integer matrices with exact `i64` arithmetic.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense row-major integer matrix.
///
/// All LEGO relation matrices are tiny (a handful of rows/columns), so a
/// simple dense representation with exact 64-bit integer arithmetic is both
/// the fastest and the most robust choice. Arithmetic panics on overflow in
/// debug builds; the magnitudes involved (loop sizes, strides) stay far below
/// `i64::MAX` in practice.
///
/// # Examples
///
/// ```
/// use lego_linalg::IMat;
///
/// let a = IMat::from_rows(&[vec![1, 2], vec![3, 4]]);
/// let i = IMat::identity(2);
/// assert_eq!(&a * &i, a);
/// assert_eq!(a.mul_vec(&[1, 1]), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        IMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix with the given shape from a flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_flat: size mismatch");
        IMat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<i64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Horizontally concatenates `self` with `other` (`[self | other]`).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.rows, other.rows, "hstack: row count mismatch");
        let mut m = IMat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            m.data[r * m.cols..r * m.cols + self.cols].copy_from_slice(self.row(r));
            m.data[r * m.cols + self.cols..(r + 1) * m.cols].copy_from_slice(other.row(r));
        }
        m
    }

    /// Vertically concatenates `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.cols, "vstack: column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        IMat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Extracts the sub-matrix of the given column range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn columns(&self, range: std::ops::Range<usize>) -> IMat {
        assert!(range.end <= self.cols, "columns: range out of bounds");
        let mut m = IMat::zeros(self.rows, range.len());
        for r in 0..self.rows {
            for (j, c) in range.clone().enumerate() {
                m[(r, j)] = self[(r, c)];
            }
        }
        m
    }

    /// `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0)
    }

    /// Iterates over all entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.data.iter().copied()
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;

    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &IMat {
    type Output = IMat;

    fn mul(self, rhs: &IMat) -> IMat {
        assert_eq!(self.cols, rhs.rows, "matrix product: dimension mismatch");
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl Add for &IMat {
    type Output = IMat;

    fn add(self, rhs: &IMat) -> IMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        IMat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &IMat {
    type Output = IMat;

    fn sub(self, rhs: &IMat) -> IMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        IMat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Neg for &IMat {
    type Output = IMat;

    fn neg(self) -> IMat {
        IMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| -x).collect(),
        }
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = IMat::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.col(1), vec![2, 5]);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = IMat::from_rows(&[vec![2, -1], vec![7, 0]]);
        assert_eq!(&a * &IMat::identity(2), a);
        assert_eq!(&IMat::identity(2) * &a, a);
    }

    #[test]
    fn matrix_product() {
        let a = IMat::from_rows(&[vec![1, 2], vec![3, 4]]);
        let b = IMat::from_rows(&[vec![0, 1], vec![1, 0]]);
        let ab = &a * &b;
        assert_eq!(ab, IMat::from_rows(&[vec![2, 1], vec![4, 3]]));
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let a = IMat::from_rows(&[vec![1, 0, 2], vec![0, 3, -1]]);
        assert_eq!(a.mul_vec(&[1, 1, 1]), vec![3, 2]);
    }

    #[test]
    fn transpose_involution() {
        let a = IMat::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn stacking() {
        let a = IMat::from_rows(&[vec![1], vec![2]]);
        let b = IMat::from_rows(&[vec![3], vec![4]]);
        assert_eq!(a.hstack(&b), IMat::from_rows(&[vec![1, 3], vec![2, 4]]));
        assert_eq!(
            a.vstack(&b),
            IMat::from_rows(&[vec![1], vec![2], vec![3], vec![4]])
        );
    }

    #[test]
    fn column_slicing() {
        let a = IMat::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.columns(1..3), IMat::from_rows(&[vec![2, 3], vec![5, 6]]));
    }

    #[test]
    fn arithmetic_ops() {
        let a = IMat::from_rows(&[vec![1, 2]]);
        let b = IMat::from_rows(&[vec![10, 20]]);
        assert_eq!(&a + &b, IMat::from_rows(&[vec![11, 22]]));
        assert_eq!(&b - &a, IMat::from_rows(&[vec![9, 18]]));
        assert_eq!(-&a, IMat::from_rows(&[vec![-1, -2]]));
        assert!((&a - &a).is_zero());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_shape_mismatch_panics() {
        let a = IMat::zeros(2, 3);
        let b = IMat::zeros(2, 3);
        let _ = &a * &b;
    }
}
