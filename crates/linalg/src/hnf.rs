//! Column-style Hermite normal form, integer nullspaces, and exact solving.
//!
//! LEGO's interconnection analysis (paper §IV-A, Equations 6–7) asks for all
//! integer solutions of systems like `M_{I→D}·M_{S→I}·Δs = 0` and
//! `M_{I→D}·(M_{T→I}·Δt + M_{S→I}·Δs) = 0`. The solution sets are lattices;
//! we describe them with a particular solution plus an integer basis of the
//! kernel, both obtained from a column-style Hermite normal form `H = A·U`
//! with `U` unimodular.
//!
//! Internal arithmetic uses `i128` so intermediate pivoting cannot overflow
//! for the small matrices LEGO manipulates.

use crate::mat::IMat;

/// Result of a column-style Hermite normal form computation: `h = a · u`
/// with `u` unimodular, `h` in column echelon form.
#[derive(Debug, Clone)]
pub struct Hnf {
    /// The echelon-form matrix `H`.
    pub h: IMat,
    /// The unimodular transform `U` with `A·U = H`.
    pub u: IMat,
    /// `(row, col)` positions of the pivots of `H`, in increasing row order.
    pub pivots: Vec<(usize, usize)>,
}

/// Integer solution set of `A·x = b`: all solutions are
/// `particular + Σ kᵢ·basis[i]` for integers `kᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntSolution {
    /// One integer solution.
    pub particular: Vec<i64>,
    /// Integer basis of the kernel of `A`.
    pub basis: Vec<Vec<i64>>,
}

fn to_i128(m: &IMat) -> Vec<Vec<i128>> {
    (0..m.rows())
        .map(|r| m.row(r).iter().map(|&x| x as i128).collect())
        .collect()
}

fn to_imat(m: &[Vec<i128>]) -> IMat {
    let rows: Vec<Vec<i64>> = m
        .iter()
        .map(|row| {
            row.iter()
                .map(|&x| i64::try_from(x).expect("HNF entry exceeds i64 range"))
                .collect()
        })
        .collect();
    IMat::from_rows(&rows)
}

/// Computes the column-style Hermite normal form `H = A·U`.
///
/// `H` is in column echelon form: each pivot row has exactly one nonzero
/// entry among the columns at or to the right of its pivot column, pivots
/// are positive, and entries to the left of a pivot are reduced modulo the
/// pivot. Columns of `U` corresponding to zero columns of `H` form an
/// integer basis of the kernel of `A`.
///
/// # Examples
///
/// ```
/// use lego_linalg::{hermite_normal_form, IMat};
///
/// let a = IMat::from_rows(&[vec![2, 4, 4]]);
/// let hnf = hermite_normal_form(&a);
/// assert_eq!(&a * &hnf.u, hnf.h);
/// assert_eq!(hnf.pivots.len(), 1);
/// ```
pub fn hermite_normal_form(a: &IMat) -> Hnf {
    let rows = a.rows();
    let cols = a.cols();
    let mut h = to_i128(a);
    // U starts as the identity; we mirror every column operation onto it.
    let mut u: Vec<Vec<i128>> = (0..cols)
        .map(|r| (0..cols).map(|c| i128::from(r == c)).collect())
        .collect();
    let mut pivots = Vec::new();
    let mut c = 0usize;

    let swap_cols = |h: &mut Vec<Vec<i128>>, u: &mut Vec<Vec<i128>>, i: usize, j: usize| {
        if i != j {
            for row in h.iter_mut() {
                row.swap(i, j);
            }
            for row in u.iter_mut() {
                row.swap(i, j);
            }
        }
    };
    // col[j] -= q * col[i]
    let axpy_cols =
        |h: &mut Vec<Vec<i128>>, u: &mut Vec<Vec<i128>>, j: usize, q: i128, i: usize| {
            for row in h.iter_mut() {
                let v = row[i];
                row[j] -= q * v;
            }
            for row in u.iter_mut() {
                let v = row[i];
                row[j] -= q * v;
            }
        };
    let negate_col = |h: &mut Vec<Vec<i128>>, u: &mut Vec<Vec<i128>>, i: usize| {
        for row in h.iter_mut() {
            row[i] = -row[i];
        }
        for row in u.iter_mut() {
            row[i] = -row[i];
        }
    };

    for r in 0..rows {
        if c >= cols {
            break;
        }
        // Eliminate row r across columns c.. using gcd-style column ops.
        loop {
            // Find the column with the smallest nonzero |H[r][j]| for j >= c.
            let best = (c..cols)
                .filter(|&j| h[r][j] != 0)
                .min_by_key(|&j| h[r][j].unsigned_abs());
            let Some(jmin) = best else { break };
            swap_cols(&mut h, &mut u, c, jmin);
            let mut done = true;
            for j in c + 1..cols {
                if h[r][j] != 0 {
                    let q = h[r][j].div_euclid(h[r][c]);
                    axpy_cols(&mut h, &mut u, j, q, c);
                    if h[r][j] != 0 {
                        done = false;
                    }
                }
            }
            if done {
                break;
            }
        }
        if h[r][c] != 0 {
            if h[r][c] < 0 {
                negate_col(&mut h, &mut u, c);
            }
            // Reduce entries to the left of the pivot (canonical HNF).
            for j in 0..c {
                if h[r][j] != 0 {
                    let q = h[r][j].div_euclid(h[r][c]);
                    axpy_cols(&mut h, &mut u, j, q, c);
                }
            }
            pivots.push((r, c));
            c += 1;
        }
    }

    Hnf {
        h: to_imat(&h),
        u: to_imat(&u),
        pivots,
    }
}

/// Returns an integer basis of the kernel (nullspace) of `A`.
///
/// Every integer vector `x` with `A·x = 0` is an integer combination of the
/// returned vectors, and the vectors are linearly independent.
///
/// # Examples
///
/// ```
/// use lego_linalg::{nullspace_basis, IMat};
///
/// // x + y = 0 has kernel spanned by (1, -1).
/// let a = IMat::from_rows(&[vec![1, 1]]);
/// let basis = nullspace_basis(&a);
/// assert_eq!(basis.len(), 1);
/// assert_eq!(a.mul_vec(&basis[0]), vec![0]);
/// ```
pub fn nullspace_basis(a: &IMat) -> Vec<Vec<i64>> {
    let hnf = hermite_normal_form(a);
    let rank = hnf.pivots.len();
    (rank..a.cols()).map(|j| hnf.u.col(j)).collect()
}

/// Solves `A·x = b` over the integers.
///
/// Returns `None` when no integer solution exists (either the system is
/// inconsistent over the rationals or the solution is fractional).
/// Otherwise returns a particular solution and a kernel basis describing
/// the full solution lattice.
///
/// # Examples
///
/// ```
/// use lego_linalg::{solve, IMat};
///
/// let a = IMat::from_rows(&[vec![2, 0], vec![0, 3]]);
/// let sol = solve(&a, &[4, 9]).unwrap();
/// assert_eq!(sol.particular, vec![2, 3]);
/// assert!(sol.basis.is_empty());
/// assert!(solve(&a, &[1, 0]).is_none()); // 2x = 1 has no integer solution
/// ```
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
pub fn solve(a: &IMat, b: &[i64]) -> Option<IntSolution> {
    assert_eq!(b.len(), a.rows(), "solve: rhs length mismatch");
    let hnf = hermite_normal_form(a);
    let h = to_i128(&hnf.h);
    let rank = hnf.pivots.len();
    let mut y = vec![0i128; a.cols()];
    let mut residual: Vec<i128> = b.iter().map(|&x| x as i128).collect();

    // Forward substitution over the pivots: pivot rows are increasing, and in
    // each pivot row every column right of the pivot is zero, so solving in
    // pivot order is well-defined.
    for &(r, c) in &hnf.pivots {
        // residual currently holds b - H·y for the y set so far.
        let num = residual[r];
        let den = h[r][c];
        if num % den != 0 {
            return None; // fractional solution
        }
        let yc = num / den;
        y[c] = yc;
        if yc != 0 {
            for (row, res) in residual.iter_mut().enumerate() {
                *res -= h[row][c] * yc;
            }
        }
    }
    if residual.iter().any(|&x| x != 0) {
        return None; // inconsistent system
    }

    // x = U·y
    let u = to_i128(&hnf.u);
    let particular: Vec<i64> = (0..a.cols())
        .map(|r| {
            let v: i128 = (0..a.cols()).map(|c| u[r][c] * y[c]).sum();
            i64::try_from(v).expect("solution exceeds i64 range")
        })
        .collect();
    let basis = (rank..a.cols()).map(|j| hnf.u.col(j)).collect();
    debug_assert_eq!(a.mul_vec(&particular), b.to_vec());
    Some(IntSolution { particular, basis })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_hnf(a: &IMat) {
        let hnf = hermite_normal_form(a);
        // Defining property: A·U = H.
        assert_eq!(&(a * &hnf.u), &hnf.h);
        // U unimodular: |det U| = 1, checked via integer Bareiss on small U.
        assert_eq!(det(&hnf.u).abs(), 1, "U not unimodular for {a:?}");
        // Echelon structure: each pivot row has zeros right of its pivot.
        for &(r, c) in &hnf.pivots {
            assert!(hnf.h[(r, c)] > 0);
            for j in c + 1..a.cols() {
                assert_eq!(hnf.h[(r, j)], 0, "nonzero right of pivot in {a:?}");
            }
        }
        // Columns past the last pivot are zero.
        for j in hnf.pivots.len()..a.cols() {
            assert!(hnf.h.col(j).iter().all(|&x| x == 0));
        }
    }

    /// Exact determinant by fraction-free Gaussian elimination (test helper).
    fn det(m: &IMat) -> i64 {
        assert_eq!(m.rows(), m.cols());
        let n = m.rows();
        let mut a: Vec<Vec<i128>> = (0..n)
            .map(|r| m.row(r).iter().map(|&x| x as i128).collect())
            .collect();
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n {
            if a[k][k] == 0 {
                let Some(p) = (k + 1..n).find(|&p| a[p][k] != 0) else {
                    return 0;
                };
                a.swap(k, p);
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) / prev;
                }
                a[i][k] = 0;
            }
            prev = a[k][k];
        }
        i64::try_from(sign * a[n - 1][n - 1]).unwrap()
    }

    #[test]
    fn hnf_simple_cases() {
        check_hnf(&IMat::from_rows(&[vec![2, 4, 4]]));
        check_hnf(&IMat::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]));
        check_hnf(&IMat::from_rows(&[vec![3, 6], vec![4, 8]]));
        check_hnf(&IMat::zeros(2, 3));
        check_hnf(&IMat::identity(4));
    }

    #[test]
    fn nullspace_of_gemm_x_mapping() {
        // GEMM tensor X reads index [i, k] from iteration [i, j, k]:
        // kernel must be spanned by the j direction.
        let m = IMat::from_rows(&[vec![1, 0, 0], vec![0, 0, 1]]);
        let basis = nullspace_basis(&m);
        assert_eq!(basis.len(), 1);
        let v = &basis[0];
        assert_eq!(m.mul_vec(v), vec![0, 0]);
        assert_ne!(v[1], 0, "kernel must move along j");
        assert_eq!(v[0], 0);
        assert_eq!(v[2], 0);
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let a = IMat::from_rows(&[vec![1, 2], vec![3, 4]]);
        let sol = solve(&a, &[5, 11]).unwrap();
        assert_eq!(a.mul_vec(&sol.particular), vec![5, 11]);
        assert!(sol.basis.is_empty());

        // Singular but consistent: x + y = 2 (doubled row).
        let a2 = IMat::from_rows(&[vec![1, 1], vec![2, 2]]);
        let sol2 = solve(&a2, &[2, 4]).unwrap();
        assert_eq!(a2.mul_vec(&sol2.particular), vec![2, 4]);
        assert_eq!(sol2.basis.len(), 1);

        // Inconsistent.
        assert!(solve(&a2, &[2, 5]).is_none());
        // Fractional: 2x = 3.
        assert!(solve(&IMat::from_rows(&[vec![2]]), &[3]).is_none());
    }

    #[test]
    fn solve_underdetermined_lattice() {
        // x + 2y + 3z = 6 has a 2-d solution lattice.
        let a = IMat::from_rows(&[vec![1, 2, 3]]);
        let sol = solve(&a, &[6]).unwrap();
        assert_eq!(sol.basis.len(), 2);
        for basis_vec in &sol.basis {
            assert_eq!(a.mul_vec(basis_vec), vec![0]);
        }
        // Shifting by any basis combination stays a solution.
        let shifted: Vec<i64> = sol
            .particular
            .iter()
            .zip(&sol.basis[0])
            .zip(&sol.basis[1])
            .map(|((p, b0), b1)| p + 2 * b0 - 3 * b1)
            .collect();
        assert_eq!(a.mul_vec(&shifted), vec![6]);
    }

    #[test]
    fn zero_matrix_kernel_is_everything() {
        let a = IMat::zeros(2, 3);
        let basis = nullspace_basis(&a);
        assert_eq!(basis.len(), 3);
        let sol = solve(&a, &[0, 0]).unwrap();
        assert_eq!(sol.particular, vec![0, 0, 0]);
        assert!(solve(&a, &[1, 0]).is_none());
    }
}
