//! `lego-mapspace` — equality-saturation mapping search over
//! dataflow/tiling rewrites.
//!
//! The mapper and explorer *enumerate*: the mapper sweeps the hardware's
//! dataflow menu per layer, the explorer sweeps genomes. Whole families of
//! mappings — spatializations outside the menu, per-shape tile caps,
//! regrouped fusion chains — are never visited. This crate searches that
//! space by rewriting instead of enumerating:
//!
//! 1. **Seed.** Each distinct layer shape's enumerated-best nest becomes a
//!    mapping term (spatial pair + temporal loops with the enumerated tile
//!    cap) in a hash-consed [`EGraph`]; per-layer nests compose into a
//!    model-level [`ENode::Seq`] chain.
//! 2. **Saturate.** The rewrite-rule set ([`rewrite`]) — loop interchange,
//!    tile split/merge, spatial↔temporal swap, fusion regrouping — runs to
//!    a fixpoint under a node budget, unioning every reachable equivalent
//!    nest into the seed's e-class.
//! 3. **Extract.** Every lowerable candidate in each shape's class
//!    ([`extract::lowerings`]) is priced through a warm
//!    [`EvalSession`] (one whole-model evaluation
//!    per distinct `(mapping, tile cap)` point, all sharing the session's
//!    [`EvalCache`](lego_eval::EvalCache)), and a coordinate descent over
//!    per-shape choices — initialized at the enumerated assignment, so the
//!    result can never be worse — minimizes whole-model EDP.
//!
//! The search is byte-deterministic: e-class ids are minted in insertion
//! order, every iteration surface is sorted, and pricing reuses the
//! deterministic evaluation stack. [`RewriteOutcome::suggest_genome`]
//! closes the loop back to the explorer by warm-starting the ES from the
//! extracted dataflow set and tile cap.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod egraph;
pub mod extract;
pub mod rewrite;
pub mod term;

pub use egraph::{EGraph, UnionFind};
pub use extract::{lowerings, Candidate, Pricer};
pub use rewrite::{saturate, RewriteConfig, SaturationStats};
pub use term::{layer_axes, lower_spatial, seed_spatial_pair, Axis, ENode, Id};

use lego_eval::{layer_key, EvalRequestRef, EvalSession, Objective};
use lego_explorer::{DataflowSet, Genome};
use lego_model::{HwConfig, SparseHw, SpatialMapping, TechModel};
use lego_obs::Obs;
use lego_sim::{aggregate_iter, LayerPerf, ModelPerf};
use lego_workloads::Model;
use std::sync::Arc;

/// Knobs for one [`MapSearch`] run.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Saturation node budget (growth stops at this many e-nodes).
    pub node_budget: usize,
    /// Saturation round cap.
    pub max_rounds: usize,
    /// Tile edges the split rule may introduce.
    pub tile_ladder: Vec<i64>,
    /// Cap on distinct partial lowerings kept per e-class.
    pub max_class_lowerings: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            node_budget: 6144,
            max_rounds: 8,
            tile_ladder: vec![32, 64, 128, 256],
            max_class_lowerings: 64,
        }
    }
}

/// The mapping chosen for one distinct layer shape.
#[derive(Debug, Clone)]
pub struct LayerChoice {
    /// Name of the first layer with this shape.
    pub name: Arc<str>,
    /// Total repetitions of this shape across the model.
    pub count: i64,
    /// The extracted spatial mapping.
    pub mapping: SpatialMapping,
    /// The extracted L1 tile cap (`None` = uncapped).
    pub tile_cap: Option<i64>,
    /// Per-instance performance under the choice.
    pub perf: LayerPerf,
}

/// What one rewrite search found.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// Model name searched.
    pub model: String,
    /// Per-shape choices, in first-occurrence order.
    pub layers: Vec<LayerChoice>,
    /// Whole-model performance under the extracted assignment.
    pub perf: ModelPerf,
    /// EDP (cycles × pJ) of the extracted assignment.
    pub rewrite_edp: f64,
    /// EDP of the enumerated baseline (the mapper's per-layer best over
    /// the hardware's dataflow menu at the seed tile cap).
    pub enumerated_edp: f64,
    /// Saturation statistics.
    pub stats: SaturationStats,
    /// Distinct mappings the extracted assignment uses, sorted.
    pub dataflows: Vec<SpatialMapping>,
}

impl RewriteOutcome {
    /// Whether the rewrite search strictly beat the enumerated baseline.
    pub fn improved(&self) -> bool {
        self.rewrite_edp < self.enumerated_edp
    }

    /// Fractional EDP improvement over the enumerated baseline (0 when
    /// the search only matched it).
    pub fn gain(&self) -> f64 {
        if self.enumerated_edp <= 0.0 {
            return 0.0;
        }
        1.0 - self.rewrite_edp / self.enumerated_edp
    }

    /// Warm-starts an explorer genome from the extraction: the genome's
    /// dataflow menu becomes the mappings the assignment actually uses
    /// and its tile cap the assignment's (count-weighted) modal cap.
    /// Everything else is carried over from `base`.
    pub fn suggest_genome(&self, base: &Genome) -> Genome {
        let mut g = *base;
        if !self.dataflows.is_empty() {
            g.dataflows = DataflowSet::new(&self.dataflows);
        }
        // Count-weighted modal tile cap; ties resolve to the smaller cap
        // (None sorts first), deterministically.
        let mut caps: Vec<(Option<i64>, i64)> = Vec::new();
        for l in &self.layers {
            match caps.iter_mut().find(|(c, _)| *c == l.tile_cap) {
                Some((_, w)) => *w += l.count,
                None => caps.push((l.tile_cap, l.count)),
            }
        }
        caps.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if let Some(&(cap, _)) = caps.first() {
            g.tile_cap = cap;
        }
        g
    }

    /// Deterministic fixed-width report: one row per shape choice plus
    /// the enumerated-vs-rewrite EDP summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("mapspace {}\n", self.model));
        out.push_str(&format!(
            "{:<28} {:>6} {:>8} {:>6} {:>14}\n",
            "layer", "count", "mapping", "tile", "cycles"
        ));
        for l in &self.layers {
            let tile = l.tile_cap.map_or("-".to_string(), |t| t.to_string());
            out.push_str(&format!(
                "{:<28} {:>6} {:>8} {:>6} {:>14}\n",
                l.name,
                l.count,
                l.mapping.name(),
                tile,
                l.perf.cycles
            ));
        }
        out.push_str(&format!(
            "enumerated_edp {:.6e}  rewrite_edp {:.6e}  gain {:.4}  rounds {}  nodes {}  classes {}\n",
            self.enumerated_edp,
            self.rewrite_edp,
            self.gain(),
            self.stats.rounds,
            self.stats.nodes,
            self.stats.classes,
        ));
        out
    }
}

/// The equality-saturation mapping search over one model and hardware
/// configuration.
#[derive(Debug, Clone)]
pub struct MapSearch<'a> {
    model: &'a Model,
    hw: HwConfig,
    tech: TechModel,
    tile_cap: Option<i64>,
    config: SearchConfig,
    obs: Obs,
}

impl<'a> MapSearch<'a> {
    /// A search over `model` on `hw` under `tech`, seeded from the
    /// mapper's enumerated-best assignment with no tile cap.
    pub fn new(model: &'a Model, hw: HwConfig, tech: TechModel) -> Self {
        MapSearch {
            model,
            hw,
            tech,
            tile_cap: None,
            config: SearchConfig::default(),
            obs: Obs::disabled(),
        }
    }

    /// Seeds the search from an explorer genome: the genome's hardware
    /// config replaces `hw` and its tile cap seeds the baseline nests —
    /// the explorer → e-graph direction of the warm-start loop.
    #[must_use]
    pub fn seed_genome(mut self, genome: &Genome) -> Self {
        self.hw = genome.to_hw_config();
        self.tile_cap = genome.tile_cap;
        self
    }

    /// Replaces the seed tile cap (the enumerated baseline's cap).
    #[must_use]
    pub fn with_tile_cap(mut self, tile_cap: Option<i64>) -> Self {
        self.tile_cap = tile_cap;
        self
    }

    /// Replaces the search knobs.
    #[must_use]
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an observability handle (spans `mapspace/search`,
    /// `mapspace/saturate`, `mapspace/extract`; counters `mapspace.*`).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs seed → saturate → extract → select against `session`,
    /// returning the priced outcome. Deterministic for a fixed
    /// (model, hardware, tech, config); the session's cache only changes
    /// how fast the answer arrives, never what it is.
    pub fn run(&self, session: &EvalSession) -> RewriteOutcome {
        let _span = self.obs.span("mapspace/search");

        // Distinct layer shapes, first-occurrence order.
        let mut shape_keys: Vec<u64> = Vec::new();
        let mut shape_first: Vec<usize> = Vec::new(); // shape → first layer index
        let mut shape_count: Vec<i64> = Vec::new();
        let mut layer_shape: Vec<usize> = Vec::with_capacity(self.model.layers.len());
        for (i, layer) in self.model.layers.iter().enumerate() {
            let key = layer_key(layer);
            let s = match shape_keys.iter().position(|&k| k == key) {
                Some(s) => s,
                None => {
                    shape_keys.push(key);
                    shape_first.push(i);
                    shape_count.push(0);
                    shape_keys.len() - 1
                }
            };
            shape_count[s] += layer.count;
            layer_shape.push(s);
        }

        // Enumerated baseline: the mapper's per-layer best over the
        // hardware's own dataflow menu at the seed tile cap.
        let layer_keys: Vec<u64> = self.model.layers.iter().map(layer_key).collect();
        let baseline = session.evaluate_view(EvalRequestRef {
            workload: self.model,
            hw: &self.hw,
            sparse: SparseHw::dense(),
            tech: self.tech,
            objective: Objective::EDP,
            tile_cap: self.tile_cap,
            hw_key: None,
            layer_keys: Some(&layer_keys),
        });
        let enumerated_edp = baseline.cost.objectives.edp();

        // Seed one nest per distinct shape from its enumerated mapping,
        // then chain them into a model-level fusion term.
        let mut eg = EGraph::new();
        let seed_tile: u16 = match self.tile_cap {
            Some(t) if t > 0 && t <= i64::from(u16::MAX) => t as u16,
            _ => 0,
        };
        let mut roots: Vec<Id> = Vec::with_capacity(shape_keys.len());
        for (s, &first) in shape_first.iter().enumerate() {
            let kind = &self.model.layers[first].kind;
            let seed_mapping = baseline.per_layer[first].perf.mapping;
            let (sa, sb) = seed_spatial_pair(kind, seed_mapping);
            let mut id = eg.add(ENode::Access { shape: s as u32 });
            for &axis in layer_axes(kind).iter().rev() {
                if axis == sa || axis == sb {
                    continue;
                }
                id = eg.add(ENode::Temporal {
                    axis,
                    tile: seed_tile,
                    body: id,
                });
            }
            id = eg.add(ENode::Spatial { axis: sb, body: id });
            id = eg.add(ENode::Spatial { axis: sa, body: id });
            roots.push(id);
        }
        // The model-level fusion chain is seeded for the regrouping rule
        // to work on; extraction walks the per-shape roots directly.
        let mut chain = *roots.last().expect("model has at least one layer");
        for &root in roots.iter().rev().skip(1) {
            chain = eg.add(ENode::Seq { a: root, b: chain });
        }
        let _model_term = chain;

        let rw = RewriteConfig {
            node_budget: self.config.node_budget,
            max_rounds: self.config.max_rounds,
            tile_ladder: self.config.tile_ladder.clone(),
        };
        let stats = saturate(&mut eg, &rw, &self.obs);

        // Extract the lowerable candidate set of every shape's class.
        let extract_span = self.obs.span("mapspace/extract");
        let hits_before = session.cache().hits();
        let mut candidates: Vec<Vec<Candidate>> = Vec::with_capacity(roots.len());
        for (s, &root) in roots.iter().enumerate() {
            let (mut cands, truncated) = lowerings(&eg, root, self.config.max_class_lowerings);
            if truncated > 0 {
                self.obs.count("mapspace.lowerings_truncated", truncated);
            }
            // The enumerated seed choice is always a candidate, so the
            // descent below starts exactly at the baseline assignment.
            let seed = Candidate {
                mapping: baseline.per_layer[shape_first[s]].perf.mapping,
                tile_cap: self.tile_cap,
            };
            if !cands.contains(&seed) {
                cands.push(seed);
                cands.sort_unstable();
            }
            self.obs
                .count("mapspace.extract_candidates", cands.len() as u64);
            candidates.push(cands);
        }

        // Price every distinct candidate point and run a coordinate
        // descent over per-shape choices, minimizing whole-model EDP.
        let mut pricer = Pricer::new(session, self.model, &self.hw, self.tech);
        let mut choice: Vec<Candidate> = (0..roots.len())
            .map(|s| Candidate {
                mapping: baseline.per_layer[shape_first[s]].perf.mapping,
                tile_cap: self.tile_cap,
            })
            .collect();
        let edp_of = |pricer: &mut Pricer<'_>,
                      choice: &[Candidate],
                      obs: &Obs,
                      model: &Model,
                      layer_shape: &[usize]|
         -> f64 {
            let mut cycles: i64 = 0;
            let mut energy_pj: f64 = 0.0;
            for (i, layer) in model.layers.iter().enumerate() {
                let perf = pricer.price(choice[layer_shape[i]], obs)[i];
                cycles += layer.count * perf.cycles;
                energy_pj += layer.count as f64 * perf.energy.total_pj();
            }
            cycles as f64 * energy_pj
        };
        let mut best_edp = edp_of(&mut pricer, &choice, &self.obs, self.model, &layer_shape);
        for _pass in 0..8 {
            let mut changed = false;
            for s in 0..choice.len() {
                for &cand in &candidates[s] {
                    if cand == choice[s] {
                        continue;
                    }
                    let prev = choice[s];
                    choice[s] = cand;
                    let edp = edp_of(&mut pricer, &choice, &self.obs, self.model, &layer_shape);
                    if edp < best_edp {
                        best_edp = edp;
                        changed = true;
                    } else {
                        choice[s] = prev;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.obs.count(
            "mapspace.extract_cache_hits",
            session.cache().hits() - hits_before,
        );
        drop(extract_span);

        // Assemble the outcome under the final assignment.
        let per_layer: Vec<LayerPerf> = self
            .model
            .layers
            .iter()
            .enumerate()
            .map(|(i, _)| pricer.price(choice[layer_shape[i]], &self.obs)[i])
            .collect();
        let perf = aggregate_iter(
            self.model,
            self.model
                .layers
                .iter()
                .zip(per_layer.iter())
                .map(|(l, p)| (l.count, p)),
            &self.tech,
        );
        let layers: Vec<LayerChoice> = (0..roots.len())
            .map(|s| {
                let first = shape_first[s];
                LayerChoice {
                    name: self.model.layers[first].name.clone(),
                    count: shape_count[s],
                    mapping: choice[s].mapping,
                    tile_cap: choice[s].tile_cap,
                    perf: per_layer[first],
                }
            })
            .collect();
        let mut dataflows: Vec<SpatialMapping> = layers.iter().map(|l| l.mapping).collect();
        dataflows.sort_unstable_by_key(|m| *m as u8);
        dataflows.dedup();

        RewriteOutcome {
            model: self.model.name.clone(),
            layers,
            perf,
            rewrite_edp: best_edp,
            enumerated_edp,
            stats,
            dataflows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_workloads::zoo;

    #[test]
    fn rewrite_never_loses_to_enumeration() {
        let session = EvalSession::new();
        for hw in [HwConfig::lego_256(), HwConfig::lego_icoc_1k()] {
            let model = zoo::lenet();
            let out = MapSearch::new(&model, hw, TechModel::default()).run(&session);
            assert!(
                out.rewrite_edp <= out.enumerated_edp,
                "descent starts at the enumerated assignment"
            );
            assert!(out.stats.rounds > 0);
            assert!(!out.layers.is_empty());
        }
    }

    #[test]
    fn beats_enumeration_where_the_menu_is_restricted() {
        // `lego_icoc_1k` has no OHOW template in its menu; depthwise
        // convolutions map badly onto what remains, so the rewrite
        // search (which reaches all five templates) must win.
        let session = EvalSession::new();
        let model = zoo::mobilenet_v2();
        let out =
            MapSearch::new(&model, HwConfig::lego_icoc_1k(), TechModel::default()).run(&session);
        assert!(out.improved(), "gain {:.4}", out.gain());
    }

    #[test]
    fn outcome_replays_byte_identically_even_on_a_warm_session() {
        let session = EvalSession::new();
        let model = zoo::mobilenet_v2();
        let run = || {
            MapSearch::new(&model, HwConfig::lego_icoc_1k(), TechModel::default())
                .run(&session)
                .render()
        };
        let cold = run();
        let warm = run();
        assert_eq!(cold, warm);
    }

    #[test]
    fn suggest_genome_carries_the_extracted_dataflows() {
        let session = EvalSession::new();
        let model = zoo::mobilenet_v2();
        let out =
            MapSearch::new(&model, HwConfig::lego_icoc_1k(), TechModel::default()).run(&session);
        let base = Genome::lego_256_baseline();
        let suggested = out.suggest_genome(&base);
        for m in &out.dataflows {
            assert!(suggested.dataflows.contains(*m));
        }
    }
}
