//! Cost extraction: lowering saturated e-classes to priced mappings.
//!
//! Extraction happens in two stages. [`lowerings`] walks one shape's
//! e-class bottom-up and enumerates every *lowerable* nest it contains —
//! a nest whose spatial axis pair the simulator has a hardware template
//! for ([`lower_spatial`]) — as a [`Candidate`] (template + tile cap).
//! [`Pricer`] then prices candidates through a warm [`EvalSession`]: each
//! distinct `(mapping, tile_cap)` point costs one whole-model evaluation
//! under a hardware variant whose dataflow menu is pinned to exactly that
//! mapping, which reuses the shared [`EvalCache`](lego_eval::EvalCache)
//! and is byte-deterministic. Because the menu only steers *mapping
//! selection* (never area, peak power, or per-layer simulation), the
//! forced variant prices each layer exactly as the original hardware
//! would under that mapping.

use crate::egraph::EGraph;
use crate::term::{lower_spatial, Axis, ENode, Id};
use lego_eval::{EvalRequestRef, EvalSession, Objective};
use lego_model::{HwConfig, SparseHw, SpatialMapping, TechModel};
use lego_obs::Obs;
use lego_sim::LayerPerf;
use lego_workloads::Model;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<lego_eval::FnvHasher>>;

/// One lowerable mapping choice extracted from an e-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Candidate {
    /// The hardware template the nest's spatial pair lowers to.
    pub mapping: SpatialMapping,
    /// L1 tile-edge cap: the tightest tile annotation in the nest
    /// (`None` = every temporal loop is a full sweep).
    pub tile_cap: Option<i64>,
}

/// A partial lowering of the nest below some class: which axes are bound
/// spatially so far, and the tightest tile annotation seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    spatial: [Option<Axis>; 2],
    tile: Option<i64>,
}

impl State {
    const LEAF: State = State {
        spatial: [None, None],
        tile: None,
    };

    fn bind(self, axis: Axis) -> Option<State> {
        match self.spatial {
            [None, None] => Some(State {
                spatial: [Some(axis), None],
                ..self
            }),
            [Some(a), None] if a != axis => Some(State {
                spatial: [Some(a), Some(axis)],
                ..self
            }),
            // Three spatial bindings (or a duplicate) never lower.
            _ => None,
        }
    }

    fn cap(self, tile: u16) -> State {
        if tile == 0 {
            return self;
        }
        let t = i64::from(tile);
        State {
            tile: Some(self.tile.map_or(t, |prev| prev.min(t))),
            ..self
        }
    }
}

/// Enumerates the lowerable candidates of `root`'s class, capped at
/// `max` distinct partial states per class. Returns the sorted candidate
/// set and how many states were dropped to the cap (0 = exhaustive).
pub fn lowerings(eg: &EGraph, root: Id, max: usize) -> (Vec<Candidate>, u64) {
    let mut memo: FnvMap<u32, Option<Vec<State>>> = FnvMap::default();
    let mut truncated = 0u64;
    let states = class_states(eg, eg.find(root), max, &mut memo, &mut truncated);
    let mut out: Vec<Candidate> = states
        .iter()
        .filter_map(|s| match s.spatial {
            [Some(a), Some(b)] => lower_spatial(a, b).map(|mapping| Candidate {
                mapping,
                tile_cap: s.tile,
            }),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    (out, truncated)
}

fn class_states(
    eg: &EGraph,
    class: Id,
    max: usize,
    memo: &mut FnvMap<u32, Option<Vec<State>>>,
    truncated: &mut u64,
) -> Vec<State> {
    let class = eg.find(class);
    match memo.get(&class.0) {
        // In-progress marker: a cyclic path contributes no finite nest.
        Some(None) => return Vec::new(),
        Some(Some(states)) => return states.clone(),
        None => {}
    }
    memo.insert(class.0, None);
    let mut states: Vec<State> = Vec::new();
    for node in eg.nodes_of(class) {
        match *node {
            ENode::Access { .. } => states.push(State::LEAF),
            ENode::Temporal { tile, body, .. } => {
                for s in class_states(eg, body, max, memo, truncated) {
                    states.push(s.cap(tile));
                }
            }
            ENode::Spatial { axis, body } => {
                for s in class_states(eg, body, max, memo, truncated) {
                    if let Some(bound) = s.bind(axis) {
                        states.push(bound);
                    }
                }
            }
            // Fusion groups are model-level terms, not layer nests.
            ENode::Seq { .. } => {}
        }
    }
    states.sort_unstable();
    states.dedup();
    if states.len() > max {
        *truncated += (states.len() - max) as u64;
        states.truncate(max);
    }
    memo.insert(class.0, Some(states.clone()));
    states
}

/// Prices `(mapping, tile_cap)` points through a warm [`EvalSession`] by
/// pinning the hardware's dataflow menu to one mapping per evaluation.
pub struct Pricer<'a> {
    session: &'a EvalSession,
    model: &'a Model,
    hw: &'a HwConfig,
    tech: TechModel,
    layer_keys: Vec<u64>,
    /// `(mapping, tile_cap)` → per-layer performance, memoized.
    priced: FnvMap<(SpatialMapping, Option<i64>), Vec<LayerPerf>>,
    evals: u64,
}

impl<'a> Pricer<'a> {
    /// A pricer for `model` on `hw` under `tech`.
    pub fn new(
        session: &'a EvalSession,
        model: &'a Model,
        hw: &'a HwConfig,
        tech: TechModel,
    ) -> Self {
        Pricer {
            session,
            model,
            hw,
            tech,
            layer_keys: model.layers.iter().map(lego_eval::layer_key).collect(),
            priced: FnvMap::default(),
            evals: 0,
        }
    }

    /// Whole-model evaluations issued (cache-hit or not).
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Per-layer performance of every layer priced under `candidate`,
    /// index-aligned with `model.layers`.
    pub fn price(&mut self, candidate: Candidate, obs: &Obs) -> &[LayerPerf] {
        let key = (candidate.mapping, candidate.tile_cap);
        if !self.priced.contains_key(&key) {
            let variant = HwConfig {
                dataflows: vec![candidate.mapping],
                ..self.hw.clone()
            };
            let report = self.session.evaluate_view(EvalRequestRef {
                workload: self.model,
                hw: &variant,
                sparse: SparseHw::dense(),
                tech: self.tech,
                objective: Objective::EDP,
                tile_cap: candidate.tile_cap,
                hw_key: None,
                layer_keys: Some(&self.layer_keys),
            });
            self.evals += 1;
            obs.count("mapspace.extract_evals", 1);
            self.priced
                .insert(key, report.per_layer.iter().map(|l| l.perf).collect());
        }
        &self.priced[&key]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::{saturate, RewriteConfig};

    fn seed_conv_nest(eg: &mut EGraph, tile: u16) -> Id {
        let leaf = eg.add(ENode::Access { shape: 0 });
        let mut id = leaf;
        for axis in [Axis::Kh, Axis::Ow, Axis::Oh] {
            id = eg.add(ENode::Temporal {
                axis,
                tile,
                body: id,
            });
        }
        for axis in [Axis::Oc, Axis::Ic] {
            id = eg.add(ENode::Spatial { axis, body: id });
        }
        id
    }

    #[test]
    fn seed_nest_lowers_to_its_seed_mapping() {
        let mut eg = EGraph::new();
        let root = seed_conv_nest(&mut eg, 64);
        let (cands, truncated) = lowerings(&eg, root, 64);
        assert_eq!(truncated, 0);
        assert_eq!(
            cands,
            vec![Candidate {
                mapping: SpatialMapping::ConvIcOc,
                tile_cap: Some(64),
            }]
        );
    }

    #[test]
    fn saturation_reaches_every_conv_template() {
        let mut eg = EGraph::new();
        let root = seed_conv_nest(&mut eg, 0);
        saturate(&mut eg, &RewriteConfig::default(), &Obs::disabled());
        let (cands, _) = lowerings(&eg, root, 4096);
        let mappings: Vec<SpatialMapping> = {
            let mut m: Vec<_> = cands.iter().map(|c| c.mapping).collect();
            m.sort_unstable_by_key(|m| *m as u8);
            m.dedup();
            m
        };
        for want in lego_eval::ALL_MAPPINGS {
            assert!(mappings.contains(&want), "missing {want:?} in {mappings:?}");
        }
        // The tile ladder is reachable too.
        for cap in [None, Some(32), Some(64), Some(128), Some(256)] {
            assert!(
                cands.iter().any(|c| c.tile_cap == cap),
                "missing cap {cap:?}"
            );
        }
    }
}
