//! The mapping-term language the e-graph rewrites: loop nests with
//! tile/order/spatial-vs-temporal annotations over a layer's tensor
//! accesses.
//!
//! A layer's iteration space is named by its native [`Axis`] set (the GEMM
//! view's `M/N/K` for matrix layers, the convolution loop axes for conv
//! layers). A mapping term is a nest of [`ENode::Spatial`] and
//! [`ENode::Temporal`] loops around the layer's [`ENode::Access`] leaf;
//! whole models compose per-layer nests with [`ENode::Seq`] fusion groups.
//! Exactly the spatializations the simulator has a hardware template for
//! lower to a [`SpatialMapping`] ([`lower_spatial`]); everything else is a
//! legal term the rewriter may visit but the extractor cannot price.

use lego_model::SpatialMapping;
use lego_workloads::LayerKind;

/// One loop axis of a layer's iteration space.
///
/// `M`/`N`/`K` are the GEMM-view axes (im2col for convolutions);
/// `Oh/Ow/Ic/Oc/Kh` are the native convolution axes. The derived order is
/// the canonical order used for deterministic pair normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axis {
    /// GEMM rows (output pixels under im2col).
    M,
    /// GEMM columns (output channels under im2col).
    N,
    /// GEMM reduction.
    K,
    /// Convolution output rows.
    Oh,
    /// Convolution output columns.
    Ow,
    /// Convolution input channels.
    Ic,
    /// Convolution output channels.
    Oc,
    /// Convolution kernel rows.
    Kh,
}

impl Axis {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Axis::M => "m",
            Axis::N => "n",
            Axis::K => "k",
            Axis::Oh => "oh",
            Axis::Ow => "ow",
            Axis::Ic => "ic",
            Axis::Oc => "oc",
            Axis::Kh => "kh",
        }
    }
}

/// The native loop axes of a layer kind, innermost-last, in the canonical
/// seed order.
pub fn layer_axes(kind: &LayerKind) -> &'static [Axis] {
    match kind {
        LayerKind::Gemm { .. } | LayerKind::Attention { .. } => &[Axis::M, Axis::N, Axis::K],
        LayerKind::Conv { .. } | LayerKind::DwConv { .. } => {
            &[Axis::Oh, Axis::Ow, Axis::Ic, Axis::Oc, Axis::Kh]
        }
    }
}

/// The hardware template that spatializes the unordered axis pair
/// `{a, b}`, or `None` when the simulator has no template for it.
///
/// Convolution layers can spatialize either their native axes or the
/// im2col view's: binding an output-pixel axis and the output channels is
/// exactly the `GemmMN` im2col mapping, and binding a reduction axis with
/// the output channels is `GemmKN`.
pub fn lower_spatial(a: Axis, b: Axis) -> Option<SpatialMapping> {
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    match (x, y) {
        (Axis::M, Axis::N) => Some(SpatialMapping::GemmMN),
        (Axis::N, Axis::K) => Some(SpatialMapping::GemmKN),
        (Axis::Oh, Axis::Ow) => Some(SpatialMapping::ConvOhOw),
        (Axis::Ic, Axis::Oc) => Some(SpatialMapping::ConvIcOc),
        (Axis::Oh, Axis::Kh) => Some(SpatialMapping::ConvKhOh),
        // im2col: output pixels × output channels.
        (Axis::Oh, Axis::Oc) | (Axis::Ow, Axis::Oc) => Some(SpatialMapping::GemmMN),
        // im2col: reduction × output channels.
        (Axis::Oc, Axis::Kh) => Some(SpatialMapping::GemmKN),
        _ => None,
    }
}

/// The canonical spatial axis pair that seeds a nest lowering to
/// `mapping`, drawn from the layer's native axes.
pub fn seed_spatial_pair(kind: &LayerKind, mapping: SpatialMapping) -> (Axis, Axis) {
    let conv = matches!(kind, LayerKind::Conv { .. } | LayerKind::DwConv { .. });
    match (mapping, conv) {
        (SpatialMapping::GemmMN, false) => (Axis::M, Axis::N),
        (SpatialMapping::GemmKN, false) => (Axis::N, Axis::K),
        (SpatialMapping::GemmMN, true) => (Axis::Oh, Axis::Oc),
        (SpatialMapping::GemmKN, true) => (Axis::Oc, Axis::Kh),
        (SpatialMapping::ConvOhOw, _) => (Axis::Oh, Axis::Ow),
        (SpatialMapping::ConvIcOc, _) => (Axis::Ic, Axis::Oc),
        (SpatialMapping::ConvKhOh, _) => (Axis::Oh, Axis::Kh),
    }
}

/// An e-class id: a dense, deterministic numeric id minted in insertion
/// order by [`EGraph::add`](crate::EGraph::add).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub u32);

impl std::fmt::Display for Id {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One mapping-term node. Children are e-class [`Id`]s, so a node denotes
/// every term reachable by picking representatives for its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ENode {
    /// The tensor-access compute statement of one distinct layer shape
    /// (the leaf every loop nest closes over).
    Access {
        /// Index into the search's distinct-shape table.
        shape: u32,
    },
    /// A temporal loop over `axis` with an L1 tile-edge annotation
    /// (`0` = untiled full sweep) around `body`.
    Temporal {
        /// The iterated axis.
        axis: Axis,
        /// Tile edge cap (`0` = uncapped).
        tile: u16,
        /// The nest under this loop.
        body: Id,
    },
    /// A spatial loop binding `axis` to one dimension of the PE array.
    Spatial {
        /// The spatialized axis.
        axis: Axis,
        /// The nest under this loop.
        body: Id,
    },
    /// Sequential composition of two fusion groups (model level).
    Seq {
        /// First group.
        a: Id,
        /// Second group.
        b: Id,
    },
}

impl ENode {
    /// Applies `f` to every child class id, returning the rewritten node.
    pub fn map_children(self, mut f: impl FnMut(Id) -> Id) -> ENode {
        match self {
            ENode::Access { shape } => ENode::Access { shape },
            ENode::Temporal { axis, tile, body } => ENode::Temporal {
                axis,
                tile,
                body: f(body),
            },
            ENode::Spatial { axis, body } => ENode::Spatial {
                axis,
                body: f(body),
            },
            ENode::Seq { a, b } => ENode::Seq { a: f(a), b: f(b) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_template_has_a_seed_pair_that_lowers_back() {
        use lego_eval::ALL_MAPPINGS;
        let gemm = LayerKind::Gemm { m: 8, n: 8, k: 8 };
        let conv = LayerKind::Conv {
            n: 1,
            ic: 8,
            oc: 8,
            oh: 8,
            ow: 8,
            kh: 3,
            kw: 3,
            stride: 1,
        };
        for m in ALL_MAPPINGS {
            let (a, b) = seed_spatial_pair(&conv, m);
            assert_eq!(lower_spatial(a, b), Some(m), "{m:?} on conv");
            assert!(layer_axes(&conv).contains(&a) && layer_axes(&conv).contains(&b));
        }
        for m in [SpatialMapping::GemmMN, SpatialMapping::GemmKN] {
            let (a, b) = seed_spatial_pair(&gemm, m);
            assert_eq!(lower_spatial(a, b), Some(m), "{m:?} on gemm");
            assert!(layer_axes(&gemm).contains(&a) && layer_axes(&gemm).contains(&b));
        }
    }

    #[test]
    fn lowering_is_symmetric_in_the_pair() {
        for &a in layer_axes(&LayerKind::Conv {
            n: 1,
            ic: 1,
            oc: 1,
            oh: 1,
            ow: 1,
            kh: 1,
            kw: 1,
            stride: 1,
        }) {
            for &b in &[
                Axis::M,
                Axis::N,
                Axis::K,
                Axis::Oh,
                Axis::Ow,
                Axis::Ic,
                Axis::Oc,
                Axis::Kh,
            ] {
                assert_eq!(lower_spatial(a, b), lower_spatial(b, a));
            }
        }
    }
}
