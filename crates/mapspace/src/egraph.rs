//! A hash-consed e-graph over [`ENode`] mapping terms.
//!
//! Three deterministic ingredients, in the classic egg shape:
//!
//! * a [`UnionFind`] with path compression whose tie-breaks always keep
//!   the **smaller** numeric id as the class representative, so the
//!   partition *and* the representative choice replay identically;
//! * a hash-consing memo (FNV-keyed, so iteration order is a pure
//!   function of insertion order, never of a per-process hash seed) that
//!   makes re-adding a structurally equal node return the class it is
//!   already in;
//! * congruence closure on [`rebuild`](EGraph::rebuild): after unions,
//!   nodes whose children became equal are re-canonicalized and their
//!   classes merged to a fixpoint.
//!
//! Every public operation is deterministic: class ids are minted densely
//! in insertion order and all iteration is over sorted snapshots.

use crate::term::{ENode, Id};
use lego_eval::FnvHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Union-find with path compression and union by rank; ties keep the
/// smaller id as root, so representatives are deterministic.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// An empty forest.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Mints the next set, returning its id.
    pub fn make_set(&mut self) -> Id {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        Id(id)
    }

    /// Number of ids ever minted (not the number of distinct sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no set was ever minted.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `id`'s set, compressing the path walked.
    pub fn find(&mut self, id: Id) -> Id {
        let mut root = id.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = id.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        Id(root)
    }

    /// The representative of `id`'s set without mutating the forest
    /// (no path compression; use [`find`](UnionFind::find) on hot paths).
    pub fn probe(&self, id: Id) -> Id {
        let mut root = id.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        Id(root)
    }

    /// Unites the two sets; returns the surviving representative and
    /// whether the sets were distinct before the call.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return (ra, false);
        }
        let (hi, lo) = match self.rank[ra.0 as usize].cmp(&self.rank[rb.0 as usize]) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            // Equal rank: the smaller id wins, deterministically.
            std::cmp::Ordering::Equal => {
                let (hi, lo) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
                self.rank[hi.0 as usize] += 1;
                (hi, lo)
            }
        };
        self.parent[lo.0 as usize] = hi.0;
        (hi, true)
    }

    /// Whether the two ids are in the same set.
    pub fn same(&mut self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The hash-consed e-graph.
#[derive(Debug, Clone, Default)]
pub struct EGraph {
    uf: UnionFind,
    /// Canonicalized node → the class containing it.
    memo: FnvMap<ENode, Id>,
    /// Canonical class id → the class's canonicalized nodes, sorted.
    classes: FnvMap<u32, Vec<ENode>>,
    /// Total distinct nodes resident (the saturation budget's currency).
    n_nodes: usize,
    /// Times `add` returned an existing class instead of minting one.
    dedup_hits: u64,
    /// Unions that actually merged two distinct classes.
    unions: u64,
}

impl EGraph {
    /// An empty e-graph.
    pub fn new() -> Self {
        EGraph::default()
    }

    /// Distinct resident nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Distinct e-classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Times [`add`](EGraph::add) found its node already interned.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Class merges that united two previously distinct classes.
    pub fn union_count(&self) -> u64 {
        self.unions
    }

    /// The canonical representative of `id`'s class.
    pub fn find(&self, id: Id) -> Id {
        self.uf.probe(id)
    }

    fn canonicalize(&mut self, node: ENode) -> ENode {
        let uf = &mut self.uf;
        node.map_children(|c| uf.find(c))
    }

    /// Interns `node`, returning its class: hash-consing means a
    /// structurally equal node (up to class equivalence of children)
    /// returns the existing class without growing the graph.
    pub fn add(&mut self, node: ENode) -> Id {
        let node = self.canonicalize(node);
        if let Some(&id) = self.memo.get(&node) {
            self.dedup_hits += 1;
            return self.uf.find(id);
        }
        let id = self.uf.make_set();
        self.memo.insert(node, id);
        self.classes.insert(id.0, vec![node]);
        self.n_nodes += 1;
        id
    }

    /// Asserts `a ≡ b`, merging their classes. Returns `true` when the
    /// classes were distinct. Callers must [`rebuild`](EGraph::rebuild)
    /// before relying on congruence again.
    pub fn union(&mut self, a: Id, b: Id) -> bool {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return false;
        }
        let (root, _) = self.uf.union(ra, rb);
        self.unions += 1;
        // Fold the absorbed class's node list into the survivor's.
        let loser = if root == ra { rb } else { ra };
        let lost_nodes = self.classes.remove(&loser.0).unwrap_or_default();
        let survivor = self.classes.entry(root.0).or_default();
        survivor.extend(lost_nodes);
        survivor.sort_unstable();
        survivor.dedup();
        true
    }

    /// Restores the congruence invariant: re-canonicalizes every node and
    /// merges classes that now share one, to a fixpoint. Returns the
    /// number of congruence-induced unions.
    pub fn rebuild(&mut self) -> u64 {
        let mut induced = 0;
        loop {
            // Sorted snapshot so the union order — and therefore the
            // surviving representatives — replay identically.
            let mut entries: Vec<(ENode, Id)> = self.memo.iter().map(|(n, &id)| (*n, id)).collect();
            entries.sort_unstable();
            let mut next: FnvMap<ENode, Id> = FnvMap::default();
            let mut pending: Vec<(Id, Id)> = Vec::new();
            for (node, id) in entries {
                let canon = {
                    let uf = &mut self.uf;
                    node.map_children(|c| uf.find(c))
                };
                let class = self.uf.find(id);
                match next.get(&canon) {
                    Some(&existing) => {
                        if self.uf.probe(existing) != class {
                            pending.push((existing, class));
                        }
                    }
                    None => {
                        next.insert(canon, class);
                    }
                }
            }
            if pending.is_empty() && next.len() == self.memo.len() {
                self.memo = next;
                self.refresh_class_lists();
                return induced;
            }
            self.memo = next;
            self.n_nodes = self.memo.len();
            for (a, b) in pending {
                if self.union(a, b) {
                    induced += 1;
                }
            }
        }
    }

    fn refresh_class_lists(&mut self) {
        let mut classes: FnvMap<u32, Vec<ENode>> = FnvMap::default();
        let mut entries: Vec<(ENode, Id)> = self.memo.iter().map(|(n, &id)| (*n, id)).collect();
        entries.sort_unstable();
        for (node, id) in entries {
            classes.entry(self.uf.probe(id).0).or_default().push(node);
        }
        self.classes = classes;
    }

    /// Sorted snapshot of every class and its nodes — the deterministic
    /// iteration surface rewrite rules and extraction walk.
    pub fn class_snapshot(&self) -> Vec<(Id, Vec<ENode>)> {
        let mut all: Vec<(Id, Vec<ENode>)> = self
            .classes
            .iter()
            .map(|(&id, nodes)| (Id(id), nodes.clone()))
            .collect();
        all.sort_unstable_by_key(|(id, _)| id.0);
        all
    }

    /// The sorted nodes of `id`'s class.
    pub fn nodes_of(&self, id: Id) -> &[ENode] {
        self.classes
            .get(&self.uf.probe(id).0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Axis;

    #[test]
    fn hash_consing_returns_the_same_id() {
        let mut eg = EGraph::new();
        let leaf = eg.add(ENode::Access { shape: 0 });
        let a = eg.add(ENode::Temporal {
            axis: Axis::M,
            tile: 0,
            body: leaf,
        });
        let b = eg.add(ENode::Temporal {
            axis: Axis::M,
            tile: 0,
            body: leaf,
        });
        assert_eq!(a, b);
        assert_eq!(eg.node_count(), 2);
        assert_eq!(eg.dedup_hits(), 1);
    }

    #[test]
    fn union_find_is_idempotent_and_deterministic() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..8).map(|_| uf.make_set()).collect();
        assert!(uf.union(ids[0], ids[5]).1);
        assert!(!uf.union(ids[0], ids[5]).1);
        assert!(uf.union(ids[5], ids[2]).1);
        // Smaller id survives equal-rank ties.
        assert_eq!(uf.find(ids[5]), Id(0));
        assert_eq!(uf.find(ids[2]), Id(0));
        assert_eq!(uf.find(ids[7]), ids[7]);
        assert!(uf.same(ids[0], ids[2]));
    }

    #[test]
    fn congruence_closure_merges_parents_of_merged_children() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Access { shape: 0 });
        let y = eg.add(ENode::Access { shape: 1 });
        let fx = eg.add(ENode::Temporal {
            axis: Axis::N,
            tile: 0,
            body: x,
        });
        let fy = eg.add(ENode::Temporal {
            axis: Axis::N,
            tile: 0,
            body: y,
        });
        assert_ne!(eg.find(fx), eg.find(fy));
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(fx), eg.find(fy), "f(x) ≡ f(y) once x ≡ y");
        // The two congruent nodes collapsed into one resident node.
        assert_eq!(eg.node_count(), 3);
    }

    #[test]
    fn rebuild_is_a_fixpoint() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Access { shape: 0 });
        let y = eg.add(ENode::Access { shape: 1 });
        let mut prev = x;
        for axis in [Axis::M, Axis::N, Axis::K] {
            prev = eg.add(ENode::Temporal {
                axis,
                tile: 0,
                body: prev,
            });
        }
        let mut prev_y = y;
        for axis in [Axis::M, Axis::N, Axis::K] {
            prev_y = eg.add(ENode::Temporal {
                axis,
                tile: 0,
                body: prev_y,
            });
        }
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(
            eg.find(prev),
            eg.find(prev_y),
            "towers collapse level by level"
        );
        assert_eq!(eg.rebuild(), 0, "second rebuild has nothing to do");
    }
}
