//! The rewrite-rule set and the saturation loop.
//!
//! Four rule families, all semantic equalities over a layer's iteration
//! space (they never change *what* is computed, only how the loops are
//! arranged — which is exactly what lets the e-graph union them and the
//! extractor pick the cheapest arrangement):
//!
//! 1. **Loop interchange** — adjacent temporal loops commute:
//!    `for a { for b { … } } ≡ for b { for a { … } }`.
//! 2. **Tile split / merge** — an untiled temporal sweep equals the same
//!    sweep split into tiles of any ladder edge, and vice versa:
//!    `for a { … } ≡ for a.tile(T) { … }`.
//! 3. **Spatial ↔ temporal swap** — which axes are bound to the PE array
//!    is a mapping choice, not a semantic one; a spatial loop may trade
//!    places with a temporal loop beneath it.
//! 4. **Fusion regrouping** — sequential composition reassociates:
//!    `(a; b); c ≡ a; (b; c)`.
//!
//! [`saturate`] applies all families to a fixpoint under a node budget,
//! recording rounds/nodes/classes/unions through `lego-obs`.

use crate::egraph::EGraph;
use crate::term::{ENode, Id};
use lego_obs::Obs;

/// Knobs for [`saturate`].
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Stop growing once the graph holds this many nodes.
    pub node_budget: usize,
    /// Upper bound on saturation rounds (a safety net; small mapping
    /// spaces saturate in 3–5 rounds).
    pub max_rounds: usize,
    /// Tile edges the split rule may introduce (each must fit `u16`).
    pub tile_ladder: Vec<i64>,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            node_budget: 6144,
            max_rounds: 8,
            tile_ladder: vec![32, 64, 128, 256],
        }
    }
}

/// What one saturation run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Rounds executed before the fixpoint (or a stop condition).
    pub rounds: u64,
    /// Resident distinct nodes after saturation.
    pub nodes: u64,
    /// Distinct e-classes after saturation.
    pub classes: u64,
    /// Class merges performed (rule unions + congruence-induced).
    pub unions: u64,
    /// Structurally equal nodes deduplicated by hash-consing.
    pub dedup_hits: u64,
    /// Whether growth stopped because the node budget was reached.
    pub budget_hit: bool,
    /// Whether a true fixpoint was reached (no new facts in a round).
    pub saturated: bool,
}

/// Applies the rule set to saturation under `config.node_budget`,
/// returning the run's statistics. Deterministic: rules match over
/// sorted class snapshots, and all unions apply in match order.
pub fn saturate(eg: &mut EGraph, config: &RewriteConfig, obs: &Obs) -> SaturationStats {
    let _span = obs.span("mapspace/saturate");
    let mut stats = SaturationStats::default();
    for _ in 0..config.max_rounds {
        stats.rounds += 1;
        obs.count("mapspace.rounds", 1);
        let before_nodes = eg.node_count();
        let before_unions = eg.union_count();
        let snapshot = eg.class_snapshot();
        let mut pending: Vec<(Id, Id)> = Vec::new();
        'matching: for (class, nodes) in &snapshot {
            for node in nodes {
                if eg.node_count() >= config.node_budget {
                    stats.budget_hit = true;
                    break 'matching;
                }
                match *node {
                    ENode::Temporal { axis, tile, body } => {
                        // Tile split: introduce each ladder edge.
                        if tile == 0 {
                            for &edge in &config.tile_ladder {
                                let split = eg.add(ENode::Temporal {
                                    axis,
                                    tile: edge as u16,
                                    body,
                                });
                                pending.push((*class, split));
                            }
                        } else {
                            // Tile merge: fuse the tiles back into one sweep.
                            let merged = eg.add(ENode::Temporal {
                                axis,
                                tile: 0,
                                body,
                            });
                            pending.push((*class, merged));
                        }
                        // Loop interchange with the temporal loop below.
                        for inner in snapshot_nodes(&snapshot, eg.find(body)) {
                            if let ENode::Temporal {
                                axis: b_axis,
                                tile: b_tile,
                                body: inner_body,
                            } = inner
                            {
                                if b_axis == axis {
                                    continue;
                                }
                                let new_inner = eg.add(ENode::Temporal {
                                    axis,
                                    tile,
                                    body: inner_body,
                                });
                                let swapped = eg.add(ENode::Temporal {
                                    axis: b_axis,
                                    tile: b_tile,
                                    body: new_inner,
                                });
                                pending.push((*class, swapped));
                            }
                        }
                    }
                    ENode::Spatial { axis, body } => {
                        for inner in snapshot_nodes(&snapshot, eg.find(body)) {
                            match inner {
                                // Spatial ↔ temporal swap one level down.
                                ENode::Temporal {
                                    axis: t_axis,
                                    body: t_body,
                                    ..
                                } if t_axis != axis => {
                                    let demoted = eg.add(ENode::Temporal {
                                        axis,
                                        tile: 0,
                                        body: t_body,
                                    });
                                    let swapped = eg.add(ENode::Spatial {
                                        axis: t_axis,
                                        body: demoted,
                                    });
                                    pending.push((*class, swapped));
                                }
                                // Swap across the inner spatial loop, so the
                                // *outer* spatial axis can change too.
                                ENode::Spatial {
                                    axis: s_axis,
                                    body: s_body,
                                } => {
                                    for inner2 in snapshot_nodes(&snapshot, eg.find(s_body)) {
                                        if let ENode::Temporal {
                                            axis: t_axis,
                                            body: t_body,
                                            ..
                                        } = inner2
                                        {
                                            if t_axis == axis || t_axis == s_axis {
                                                continue;
                                            }
                                            let demoted = eg.add(ENode::Temporal {
                                                axis,
                                                tile: 0,
                                                body: t_body,
                                            });
                                            let mid = eg.add(ENode::Spatial {
                                                axis: s_axis,
                                                body: demoted,
                                            });
                                            let swapped = eg.add(ENode::Spatial {
                                                axis: t_axis,
                                                body: mid,
                                            });
                                            pending.push((*class, swapped));
                                        }
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                    ENode::Seq { a, b } => {
                        // (x; y); b ≡ x; (y; b)
                        for inner in snapshot_nodes(&snapshot, eg.find(a)) {
                            if let ENode::Seq { a: x, b: y } = inner {
                                let tail = eg.add(ENode::Seq { a: y, b });
                                let rot = eg.add(ENode::Seq { a: x, b: tail });
                                pending.push((*class, rot));
                            }
                        }
                        // a; (x; y) ≡ (a; x); y
                        for inner in snapshot_nodes(&snapshot, eg.find(b)) {
                            if let ENode::Seq { a: x, b: y } = inner {
                                let head = eg.add(ENode::Seq { a, b: x });
                                let rot = eg.add(ENode::Seq { a: head, b: y });
                                pending.push((*class, rot));
                            }
                        }
                    }
                    ENode::Access { .. } => {}
                }
            }
        }
        for (a, b) in pending {
            eg.union(a, b);
        }
        eg.rebuild();
        let grew = eg.node_count() != before_nodes || eg.union_count() != before_unions;
        if !grew {
            stats.saturated = true;
            break;
        }
        if stats.budget_hit {
            break;
        }
    }
    stats.nodes = eg.node_count() as u64;
    stats.classes = eg.class_count() as u64;
    stats.unions = eg.union_count();
    stats.dedup_hits = eg.dedup_hits();
    obs.count("mapspace.nodes", stats.nodes);
    obs.count("mapspace.classes", stats.classes);
    obs.count("mapspace.unions", stats.unions);
    obs.count("mapspace.dedup_hits", stats.dedup_hits);
    stats
}

/// The nodes of `class` in the round's snapshot (empty when the class was
/// minted after the snapshot was taken).
fn snapshot_nodes(snapshot: &[(Id, Vec<ENode>)], class: Id) -> Vec<ENode> {
    match snapshot.binary_search_by_key(&class.0, |(id, _)| id.0) {
        Ok(i) => snapshot[i].1.clone(),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Axis;

    fn nest(eg: &mut EGraph, spatial: &[Axis], temporal: &[Axis]) -> Id {
        let mut id = eg.add(ENode::Access { shape: 0 });
        for &axis in temporal.iter().rev() {
            id = eg.add(ENode::Temporal {
                axis,
                tile: 0,
                body: id,
            });
        }
        for &axis in spatial.iter().rev() {
            id = eg.add(ENode::Spatial { axis, body: id });
        }
        id
    }

    #[test]
    fn interchange_merges_permuted_nests() {
        let mut eg = EGraph::new();
        let a = nest(&mut eg, &[], &[Axis::M, Axis::N, Axis::K]);
        let b = nest(&mut eg, &[], &[Axis::K, Axis::N, Axis::M]);
        assert_ne!(eg.find(a), eg.find(b));
        let stats = saturate(&mut eg, &RewriteConfig::default(), &Obs::disabled());
        assert!(stats.saturated);
        assert_eq!(eg.find(a), eg.find(b), "all permutations are one class");
    }

    #[test]
    fn swap_reaches_every_spatial_pair() {
        let mut eg = EGraph::new();
        let mn = nest(&mut eg, &[Axis::M, Axis::N], &[Axis::K]);
        let kn = nest(&mut eg, &[Axis::K, Axis::N], &[Axis::M]);
        let mk = nest(&mut eg, &[Axis::M, Axis::K], &[Axis::N]);
        saturate(&mut eg, &RewriteConfig::default(), &Obs::disabled());
        assert_eq!(eg.find(mn), eg.find(kn));
        assert_eq!(eg.find(mn), eg.find(mk));
    }

    #[test]
    fn seq_regrouping_merges_associations() {
        let mut eg = EGraph::new();
        let l: Vec<Id> = (0..3).map(|i| eg.add(ENode::Access { shape: i })).collect();
        let ab = eg.add(ENode::Seq { a: l[0], b: l[1] });
        let left = eg.add(ENode::Seq { a: ab, b: l[2] });
        let bc = eg.add(ENode::Seq { a: l[1], b: l[2] });
        let right = eg.add(ENode::Seq { a: l[0], b: bc });
        saturate(&mut eg, &RewriteConfig::default(), &Obs::disabled());
        assert_eq!(eg.find(left), eg.find(right));
    }

    #[test]
    fn budget_caps_growth() {
        let mut eg = EGraph::new();
        nest(
            &mut eg,
            &[Axis::Ic, Axis::Oc],
            &[Axis::Oh, Axis::Ow, Axis::Kh],
        );
        let tight = RewriteConfig {
            node_budget: 12,
            ..Default::default()
        };
        let stats = saturate(&mut eg, &tight, &Obs::disabled());
        assert!(stats.budget_hit);
        // The budget is a growth cap, not a hard ceiling: one matching
        // sweep may overshoot by the rewrites already queued.
        assert!(eg.node_count() < 64, "{}", eg.node_count());
    }

    #[test]
    fn saturation_replays_byte_identically() {
        let run = || {
            let mut eg = EGraph::new();
            let a = nest(
                &mut eg,
                &[Axis::Ic, Axis::Oc],
                &[Axis::Oh, Axis::Ow, Axis::Kh],
            );
            let b = nest(&mut eg, &[Axis::M, Axis::N], &[Axis::K]);
            let root = eg.add(ENode::Seq { a, b });
            let stats = saturate(&mut eg, &RewriteConfig::default(), &Obs::disabled());
            (
                format!("{stats:?}"),
                format!("{:?}", eg.class_snapshot()),
                eg.find(root),
            )
        };
        assert_eq!(run(), run());
    }
}
