//! Property tests for the `lego-mapspace` e-graph invariants
//! (satellite 3): union-find find/union laws under arbitrary op
//! sequences, hash-consing identity, congruence-closure fixpoint,
//! byte-identical saturation replay, and rewrite soundness — every
//! extracted candidate lowers to a real hardware template and prices to
//! a finite EDP no worse than enumeration.

use lego_eval::EvalSession;
use lego_mapspace::{
    layer_axes, lower_spatial, lowerings, saturate, Axis, EGraph, ENode, MapSearch, RewriteConfig,
    SearchConfig, UnionFind,
};
use lego_model::HwConfig;
use lego_model::TechModel;
use lego_obs::Obs;
use lego_workloads::zoo;
use proptest::prelude::*;
use proptest::{collection, sample};

const CONV_AXES: [Axis; 5] = [Axis::Oh, Axis::Ow, Axis::Ic, Axis::Oc, Axis::Kh];

/// One loop wrapped around the nest under construction: which axis,
/// whether it binds spatially, and (for temporal loops) the tile edge.
#[derive(Debug, Clone, Copy)]
struct Wrap {
    axis: Axis,
    spatial: bool,
    tile: u16,
}

fn wrap_strategy() -> impl Strategy<Value = Wrap> {
    (
        sample::select(CONV_AXES.to_vec()),
        sample::select(vec![false, true]),
        sample::select(vec![0u16, 32, 64, 128, 256]),
    )
        .prop_map(|(axis, spatial, tile)| Wrap {
            axis,
            spatial,
            tile,
        })
}

/// Builds a nest from the wrap sequence, innermost (the access leaf)
/// outward, returning the root class.
fn build_nest(eg: &mut EGraph, shape: u32, wraps: &[Wrap]) -> lego_mapspace::Id {
    let mut body = eg.add(ENode::Access { shape });
    for w in wraps {
        body = if w.spatial {
            eg.add(ENode::Spatial { axis: w.axis, body })
        } else {
            eg.add(ENode::Temporal {
                axis: w.axis,
                tile: w.tile,
                body,
            })
        };
    }
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Union-find laws under arbitrary make_set/union sequences:
    // find is idempotent, union is commutative in effect, re-unioning
    // an already-merged pair reports no change, and every member of a
    // merged pair resolves to the same representative.
    #[test]
    fn union_find_laws_hold_under_arbitrary_merges(
        n in 1usize..32,
        pairs in collection::vec((0usize..32, 0usize..32), 0usize..48),
    ) {
        let mut uf = UnionFind::new();
        let ids: Vec<_> = (0..n).map(|_| uf.make_set()).collect();
        prop_assert_eq!(uf.len(), n);
        for &(a, b) in &pairs {
            let (a, b) = (ids[a % n], ids[b % n]);
            let (root, merged) = uf.union(a, b);
            prop_assert_eq!(uf.find(a), root);
            prop_assert_eq!(uf.find(b), root);
            // Idempotence: a second union of the same pair is a no-op
            // with the same representative.
            let (root2, merged2) = uf.union(a, b);
            prop_assert_eq!(root2, root);
            prop_assert!(!merged2);
            let _ = merged;
            // find is idempotent and agrees with the non-mutating probe
            // after path compression.
            let r = uf.find(a);
            prop_assert_eq!(uf.find(r), r);
            prop_assert_eq!(uf.probe(a), r);
            prop_assert!(uf.same(a, b));
        }
    }

    // Hash-consing: re-adding any node of the graph returns its
    // existing class id and counts a dedup hit instead of minting a
    // new id.
    #[test]
    fn hash_consing_returns_the_same_id(
        wraps in collection::vec(wrap_strategy(), 0usize..10),
    ) {
        let mut eg = EGraph::new();
        let root = build_nest(&mut eg, 0, &wraps);
        let nodes_before = eg.node_count();
        let hits_before = eg.dedup_hits();
        let replay = build_nest(&mut eg, 0, &wraps);
        prop_assert_eq!(eg.find(replay), eg.find(root));
        prop_assert_eq!(eg.node_count(), nodes_before, "no new nodes on replay");
        prop_assert_eq!(
            eg.dedup_hits(),
            hits_before + wraps.len() as u64 + 1,
            "every re-added node is a dedup hit"
        );
    }

    // Congruence closure: after arbitrary unions, rebuild reaches a
    // fixpoint — running it again finds nothing new — and identical
    // replays produce byte-identical class snapshots.
    #[test]
    fn rebuild_reaches_a_deterministic_fixpoint(
        wrap_sets in collection::vec(collection::vec(wrap_strategy(), 0usize..6), 1usize..5),
        unions in collection::vec((0usize..8, 0usize..8), 0usize..6),
    ) {
        let run = || {
            let mut eg = EGraph::new();
            let roots: Vec<_> = wrap_sets
                .iter()
                .enumerate()
                .map(|(i, ws)| build_nest(&mut eg, i as u32, ws))
                .collect();
            for &(a, b) in &unions {
                eg.union(roots[a % roots.len()], roots[b % roots.len()]);
            }
            eg.rebuild();
            eg
        };
        let mut eg = run();
        let snapshot = eg.class_snapshot();
        prop_assert_eq!(eg.rebuild(), 0, "rebuild must be a fixpoint");
        prop_assert_eq!(eg.class_snapshot(), snapshot.clone(), "rebuild at fixpoint is a no-op");
        let eg2 = run();
        prop_assert_eq!(eg2.class_snapshot(), snapshot, "identical replays converge identically");
    }

    // Saturation is deterministic: two runs over the same seed nest
    // produce byte-identical stats and class snapshots, and never
    // exceed the node budget by more than one matching round's growth.
    #[test]
    fn saturation_replays_byte_identically(
        wraps in collection::vec(wrap_strategy(), 1usize..6),
        budget in 64usize..512,
    ) {
        let config = RewriteConfig {
            node_budget: budget,
            ..RewriteConfig::default()
        };
        let run = || {
            let mut eg = EGraph::new();
            build_nest(&mut eg, 0, &wraps);
            let stats = saturate(&mut eg, &config, &Obs::disabled());
            (stats, eg.class_snapshot())
        };
        let (stats_a, snap_a) = run();
        let (stats_b, snap_b) = run();
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(snap_a, snap_b);
    }

    // Rewrite soundness at the term level: every candidate extracted
    // from a saturated nest names a template the simulator really has
    // for some axis pair, and its tile cap (if any) is a positive edge
    // drawn from the nest's annotations or the split ladder.
    #[test]
    fn extracted_candidates_are_lowerable(
        wraps in collection::vec(wrap_strategy(), 1usize..6),
    ) {
        let mut eg = EGraph::new();
        let root = build_nest(&mut eg, 0, &wraps);
        saturate(&mut eg, &RewriteConfig::default(), &Obs::disabled());
        let (candidates, _truncated) = lowerings(&eg, root, 64);
        for c in &candidates {
            let pair_exists = CONV_AXES.iter().enumerate().any(|(i, &a)| {
                CONV_AXES[i + 1..]
                    .iter()
                    .any(|&b| lower_spatial(a, b) == Some(c.mapping))
            });
            prop_assert!(pair_exists, "{:?} has no conv axis pair", c.mapping);
            if let Some(t) = c.tile_cap {
                prop_assert!(t > 0, "tile caps are positive edges");
                let ladder = RewriteConfig::default().tile_ladder;
                let seeded = wraps.iter().any(|w| i64::from(w.tile) == t);
                prop_assert!(
                    seeded || ladder.contains(&t),
                    "cap {t} must come from the nest or the split ladder"
                );
            }
        }
        // Sanity on the harness itself: the conv axes cover every
        // native template, so a fully-saturated nest has candidates.
        prop_assert!(layer_axes(&lego_workloads::LayerKind::Conv {
            n: 1, ic: 8, oc: 8, oh: 8, ow: 8, kh: 3, kw: 3, stride: 1,
        }).iter().all(|a| CONV_AXES.contains(a)));
    }
}

proptest! {
    // End-to-end pricing is slow per case, so keep the case count low;
    // the cheap structural properties above carry the volume.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Rewrite soundness end to end: whatever the budget, lowering cap,
    // and tile cap, the extracted assignment prices to a finite
    // positive EDP that never loses to enumeration, and the whole
    // outcome replays byte-identically on a fresh session.
    #[test]
    fn search_is_sound_and_deterministic_for_any_config(
        node_budget in 512usize..4096,
        max_class_lowerings in 4usize..64,
        tile_cap in sample::select(vec![None, Some(32i64), Some(64), Some(128)]),
    ) {
        let model = zoo::lenet();
        let config = SearchConfig {
            node_budget,
            max_class_lowerings,
            ..SearchConfig::default()
        };
        let run = || {
            let session = EvalSession::new();
            MapSearch::new(&model, HwConfig::lego_256(), TechModel::default())
                .with_tile_cap(tile_cap)
                .with_config(config.clone())
                .run(&session)
        };
        let out = run();
        prop_assert!(out.rewrite_edp.is_finite() && out.rewrite_edp > 0.0);
        prop_assert!(out.rewrite_edp <= out.enumerated_edp, "never lose to enumeration");
        for l in &out.layers {
            prop_assert!(HwConfig::lego_256().dataflows.contains(&l.mapping));
            prop_assert!(l.perf.cycles > 0);
        }
        prop_assert_eq!(run().render(), out.render(), "byte-identical replay");
    }
}
