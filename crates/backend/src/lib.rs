//! LEGO back end (paper §V): lowers the FU-level ADG to a primitive-level
//! Detailed Architecture Graph (DAG) and optimizes it.
//!
//! The DAG's nodes are hardware primitives (multipliers, adders, muxes,
//! FIFOs, counters, affine address generators, memory ports); its edges
//! carry bit-widths, per-dataflow activity, and pipeline registers. The
//! transformation passes are:
//!
//! * **bit-width inference** — forward value-range propagation ([`passes::infer_bitwidths`]);
//! * **delay matching** — the LP of §V-A, solved exactly through its
//!   min-cost-flow dual ([`passes::match_delays`]);
//! * **reduction tree extraction** — §V-C, collapsing accumulation chains
//!   into balanced reducers ([`passes::extract_reduction_trees`]);
//! * **broadcast pin rewiring** — §V-B's three-stage heuristic
//!   ([`passes::rewire_broadcasts`]);
//! * **pin reusing** — §V-C's 0-1 program over reducer pins
//!   ([`passes::reuse_pins`]);
//! * **power gating** — §V-D, clock-enables on conditionally-unused paths
//!   ([`passes::apply_power_gating`]).
//!
//! [`lower`] performs naive codegen (the paper's "delay matching only"
//! baseline once matched); [`optimize`] runs the full pipeline and returns
//! per-pass statistics that the evaluation harness turns into Figures 13/14.

pub mod codegen;
pub mod dag;
pub mod passes;

pub use codegen::lower;
pub use dag::{Dag, DagEdge, DagNode, NodeId, Prim};
pub use passes::{optimize, OptimizeReport, PassStats};

/// Bit-width and structural configuration for lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// Width of tensor operand words entering the FU array (paper evaluates
    /// 8-bit MACs).
    pub input_width: u32,
    /// Accumulator width (partial-sum precision cap).
    pub acc_width: u32,
    /// Address/control signal width.
    pub addr_width: u32,
    /// Replicate the control unit per FU instead of sharing one and
    /// forwarding along the control-flow vector. LEGO keeps this `false`;
    /// setting it models AutoSA/TensorLib-style per-FU control for the
    /// related-work comparisons (Tables VI and VIII).
    pub per_fu_control: bool,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            input_width: 8,
            acc_width: 32,
            addr_width: 16,
            per_fu_control: false,
        }
    }
}

/// Which optimization passes to run (ablation switch for Figures 13/14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Extract balanced reduction trees from adder chains.
    pub reduction_tree: bool,
    /// Rewire broadcast pins through MST forwarding.
    pub broadcast_rewire: bool,
    /// Remap reducer pins across dataflows.
    pub pin_reuse: bool,
    /// Add clock-enable gating on conditionally-unused connections.
    pub power_gating: bool,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            reduction_tree: true,
            broadcast_rewire: true,
            pin_reuse: true,
            power_gating: true,
        }
    }
}

impl OptimizeOptions {
    /// The paper's mandatory baseline: delay matching only.
    pub fn baseline() -> Self {
        OptimizeOptions {
            reduction_tree: false,
            broadcast_rewire: false,
            pin_reuse: false,
            power_gating: false,
        }
    }
}
