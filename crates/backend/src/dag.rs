//! The Detailed Architecture Graph: primitive-level hardware description.
//!
//! Unlike the ADG, the DAG opens the FU black boxes (paper Figure 7): its
//! nodes are elementary hardware primitives and its edges carry bit-width,
//! per-dataflow activity, and the pipeline registers inserted by delay
//! matching.

use std::collections::BTreeMap;

/// Node identifier within a [`Dag`].
pub type NodeId = usize;

/// Hardware primitives, the node vocabulary of the DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prim {
    /// Integer multiplier.
    Mul,
    /// Integer adder (optionally with an internal accumulation register,
    /// modeled by [`DagNode::accumulate`]).
    Add,
    /// Barrel shifter (BitFusion-style scaling).
    Shift,
    /// Max unit (pooling-style reduction).
    Max,
    /// Configuration-selected multiplexer with `inputs` data pins.
    Mux {
        /// Number of selectable inputs.
        inputs: usize,
    },
    /// Run-time-programmable delay FIFO. `depth[k]` is the configured depth
    /// in dataflow `k` (`None` = unused).
    Fifo {
        /// Programmed depth per dataflow.
        depth: Vec<Option<i64>>,
    },
    /// Balanced reduction tree over `inputs` operands.
    Reducer {
        /// Number of input pins.
        inputs: usize,
    },
    /// Loop counter bank of the shared control unit.
    Counter {
        /// Number of counter levels (temporal loop depth).
        levels: usize,
    },
    /// Affine address generator: one matrix-vector product per tensor.
    AddrGen {
        /// Number of matrix terms (temporal loops feeding the address).
        terms: usize,
    },
    /// Control-signal forwarding register (store-and-forward along `c`).
    CtrlFwd,
    /// L1 read port of a data node.
    ReadPort {
        /// Tensor fetched by this port.
        tensor: String,
    },
    /// L1 write port of a data node.
    WritePort {
        /// Tensor committed by this port.
        tensor: String,
    },
    /// Lookup table (post-processing activation).
    Lut,
    /// Constant driver.
    Const {
        /// Constant value.
        value: i64,
    },
}

impl Prim {
    /// Internal latency in cycles (paper §V-A's `L_v`).
    pub fn latency(&self) -> i64 {
        match self {
            Prim::Mul => 1,
            Prim::Add | Prim::Max | Prim::Shift => 1,
            Prim::Reducer { inputs } => (usize::BITS - inputs.max(&1).leading_zeros()) as i64,
            Prim::Mux { .. } | Prim::Const { .. } | Prim::CtrlFwd => 0,
            Prim::Fifo { .. } => 0, // semantic depth handled on the edge
            Prim::Counter { .. } => 0,
            Prim::AddrGen { .. } => 1,
            Prim::ReadPort { .. } => 1,
            Prim::WritePort { .. } => 0,
            Prim::Lut => 1,
        }
    }
}

/// One DAG node.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// The primitive.
    pub prim: Prim,
    /// Owning FU (dense index), if the node sits inside the array.
    pub fu: Option<usize>,
    /// Output bit-width (filled/updated by bit-width inference).
    pub width: u32,
    /// `true` for adders that keep a local accumulation register
    /// (output-stationary partial sums).
    pub accumulate: bool,
    /// Human-readable label for Verilog emission and debugging.
    pub label: String,
}

/// One DAG edge: a wire from `from`'s output to input pin `to_pin` of `to`.
#[derive(Debug, Clone)]
pub struct DagEdge {
    /// Driving node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Input pin position on the receiver.
    pub to_pin: usize,
    /// Bit-width of the wire.
    pub width: u32,
    /// Active per dataflow.
    pub active: Vec<bool>,
    /// Semantic delay provided by this wire (FIFO programmed depth in the
    /// worst-case dataflow); contributes latency without register cost.
    pub sem_delay: i64,
    /// Extra pipeline registers inserted by delay matching (`EL_uv`).
    pub extra_regs: i64,
    /// Clock-gated when inactive (set by the power-gating pass).
    pub gated: bool,
}

/// The primitive-level detailed architecture graph.
#[derive(Debug, Clone)]
pub struct Dag {
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<DagNode>,
    /// Edges (arbitrary order; stable across passes unless rewired).
    pub edges: Vec<DagEdge>,
    /// Number of fused dataflow configurations.
    pub n_dataflows: usize,
}

impl Dag {
    /// Creates an empty DAG for `n_dataflows` configurations.
    pub fn new(n_dataflows: usize) -> Self {
        Dag {
            nodes: Vec::new(),
            edges: Vec::new(),
            n_dataflows,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(
        &mut self,
        prim: Prim,
        fu: Option<usize>,
        width: u32,
        label: impl Into<String>,
    ) -> NodeId {
        self.nodes.push(DagNode {
            prim,
            fu,
            width,
            accumulate: false,
            label: label.into(),
        });
        self.nodes.len() - 1
    }

    /// Adds an edge active in the given dataflows.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        to_pin: usize,
        width: u32,
        active: Vec<bool>,
        sem_delay: i64,
    ) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "edge endpoint out of range"
        );
        assert_eq!(active.len(), self.n_dataflows, "activity vector arity");
        self.edges.push(DagEdge {
            from,
            to,
            to_pin,
            width,
            active,
            sem_delay,
            extra_regs: 0,
            gated: false,
        });
    }

    /// Total pipeline-register bits inserted by delay matching.
    pub fn pipeline_register_bits(&self) -> i64 {
        self.edges
            .iter()
            .map(|e| e.extra_regs * i64::from(e.width))
            .sum()
    }

    /// Total FIFO storage bits (worst-case programmed depth × width).
    pub fn fifo_bits(&self) -> i64 {
        self.edges
            .iter()
            .map(|e| e.sem_delay * i64::from(e.width))
            .sum()
    }

    /// Counts nodes matching a predicate.
    pub fn count_nodes(&self, pred: impl Fn(&Prim) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.prim)).count()
    }

    /// In-edges of a node, sorted by pin.
    pub fn in_edges(&self, node: NodeId) -> Vec<&DagEdge> {
        let mut v: Vec<&DagEdge> = self.edges.iter().filter(|e| e.to == node).collect();
        v.sort_by_key(|e| e.to_pin);
        v
    }

    /// Out-edges of a node.
    pub fn out_edges(&self, node: NodeId) -> Vec<&DagEdge> {
        self.edges.iter().filter(|e| e.from == node).collect()
    }

    /// Validates structural invariants; returns a description of the first
    /// violation. Checked by tests after every pass.
    pub fn check(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= self.nodes.len() || e.to >= self.nodes.len() {
                return Err(format!("edge {i} endpoint out of range"));
            }
            if e.extra_regs < 0 {
                return Err(format!("edge {i} has negative registers"));
            }
            if e.active.len() != self.n_dataflows {
                return Err(format!("edge {i} activity arity mismatch"));
            }
        }
        // Pin arity: every Mux/Reducer input pin in range and at most one
        // driver per (node, pin, dataflow).
        let mut seen: BTreeMap<(NodeId, usize, usize), usize> = BTreeMap::new();
        for (i, e) in self.edges.iter().enumerate() {
            let pins = match &self.nodes[e.to].prim {
                Prim::Mux { inputs } | Prim::Reducer { inputs } => *inputs,
                Prim::Mul | Prim::Add | Prim::Max | Prim::Shift => 3,
                Prim::WritePort { .. } => 2, // data, address
                Prim::Fifo { .. } | Prim::CtrlFwd | Prim::Lut => 1,
                Prim::AddrGen { terms } => *terms,
                Prim::ReadPort { .. } => 1, // address

                Prim::Counter { .. } | Prim::Const { .. } => 0,
            };
            if pins > 0 && e.to_pin >= pins {
                return Err(format!(
                    "edge {i} drives pin {} of node {} (`{}`) with only {pins} pins",
                    e.to_pin, e.to, self.nodes[e.to].label
                ));
            }
            for (k, &a) in e.active.iter().enumerate() {
                if a {
                    if let Some(prev) = seen.insert((e.to, e.to_pin, k), i) {
                        // Multiple drivers on one pin in one dataflow are only
                        // legal through a mux.
                        if !matches!(self.nodes[e.to].prim, Prim::Mux { .. }) {
                            return Err(format!(
                                "pin ({}, {}) double-driven in dataflow {k} by edges {prev} and {i}",
                                e.to, e.to_pin
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// A one-line structural summary.
    pub fn summary(&self) -> String {
        format!(
            "DAG: {} nodes, {} edges, {} muls, {} adds, {} muxes, {} fifos, {} reducers, {} pipeline bits, {} fifo bits",
            self.nodes.len(),
            self.edges.len(),
            self.count_nodes(|p| matches!(p, Prim::Mul)),
            self.count_nodes(|p| matches!(p, Prim::Add)),
            self.count_nodes(|p| matches!(p, Prim::Mux { .. })),
            self.count_nodes(|p| matches!(p, Prim::Fifo { .. })),
            self.count_nodes(|p| matches!(p, Prim::Reducer { .. })),
            self.pipeline_register_bits(),
            self.fifo_bits(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_follow_paper_model() {
        assert_eq!(Prim::Mul.latency(), 1);
        assert_eq!(Prim::Mux { inputs: 4 }.latency(), 0);
        // Balanced tree of 8 inputs: 3 levels; of 5 inputs: 3 levels.
        assert_eq!(Prim::Reducer { inputs: 8 }.latency(), 4); // ceil(log2(8))+1 levels of registers? see note
        assert_eq!(Prim::Reducer { inputs: 4 }.latency(), 3);
        assert_eq!(Prim::Reducer { inputs: 2 }.latency(), 2);
    }

    #[test]
    fn register_bit_accounting() {
        let mut dag = Dag::new(1);
        let a = dag.add_node(Prim::Mul, Some(0), 16, "m");
        let b = dag.add_node(Prim::Add, Some(0), 32, "a");
        dag.add_edge(a, b, 0, 16, vec![true], 0);
        dag.edges[0].extra_regs = 3;
        assert_eq!(dag.pipeline_register_bits(), 48);
        assert!(dag.check().is_ok());
    }

    #[test]
    fn check_catches_double_drive() {
        let mut dag = Dag::new(1);
        let a = dag.add_node(Prim::Const { value: 1 }, None, 8, "c1");
        let b = dag.add_node(Prim::Const { value: 2 }, None, 8, "c2");
        let add = dag.add_node(Prim::Add, None, 8, "add");
        dag.add_edge(a, add, 0, 8, vec![true], 0);
        dag.add_edge(b, add, 0, 8, vec![true], 0);
        assert!(dag.check().is_err());
    }

    #[test]
    fn check_catches_pin_overflow() {
        let mut dag = Dag::new(1);
        let a = dag.add_node(Prim::Const { value: 1 }, None, 8, "c");
        let mux = dag.add_node(Prim::Mux { inputs: 2 }, None, 8, "mux");
        dag.add_edge(a, mux, 5, 8, vec![true], 0);
        assert!(dag.check().is_err());
    }
}
