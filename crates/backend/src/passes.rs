//! DAG transformation passes (paper §V-A through §V-D).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::dag::{Dag, DagEdge, NodeId, Prim};
use crate::OptimizeOptions;
use lego_lp::{optimize_pin_remap, solve_delay_matching, DelayEdge, DelayError};

/// Structural cost snapshot taken between passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Pipeline-register bits inserted by delay matching.
    pub register_bits: i64,
    /// FIFO storage bits (programmed worst-case depth × width).
    pub fifo_bits: i64,
    /// Number of adder nodes (chains count each stage).
    pub adders: usize,
    /// Total reducer input pins.
    pub reducer_inputs: usize,
    /// Number of mux nodes.
    pub muxes: usize,
    /// Edges with clock gating.
    pub gated_edges: usize,
    /// Total node count.
    pub nodes: usize,
}

impl PassStats {
    /// Captures the current cost structure of a DAG.
    pub fn capture(dag: &Dag) -> Self {
        PassStats {
            register_bits: dag.pipeline_register_bits(),
            fifo_bits: dag.fifo_bits(),
            adders: dag.count_nodes(|p| matches!(p, Prim::Add)),
            reducer_inputs: dag
                .nodes
                .iter()
                .filter_map(|n| match n.prim {
                    Prim::Reducer { inputs } => Some(inputs),
                    _ => None,
                })
                .sum(),
            muxes: dag.count_nodes(|p| matches!(p, Prim::Mux { .. })),
            gated_edges: dag.edges.iter().filter(|e| e.gated).count(),
            nodes: dag.nodes.len(),
        }
    }
}

/// Per-pass cost trajectory returned by [`optimize`].
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// After mandatory delay matching only (the paper's baseline).
    pub baseline: PassStats,
    /// After reduction tree extraction (+ re-matching), if enabled.
    pub after_reduction: Option<PassStats>,
    /// After broadcast rewiring (+ re-matching), if enabled.
    pub after_rewire: Option<PassStats>,
    /// After pin reusing (+ re-matching), if enabled.
    pub after_pin_reuse: Option<PassStats>,
    /// Final state (including power gating).
    pub final_stats: PassStats,
}

/// Runs the full optimization pipeline in the paper's order and reports the
/// cost after each stage.
///
/// # Panics
///
/// Panics if the DAG fails its structural check after any pass (this would
/// be a bug in the pass, not in user input).
pub fn optimize(dag: &mut Dag, opts: &OptimizeOptions) -> OptimizeReport {
    infer_bitwidths(dag);
    match_delays(dag).expect("generated DAG must be schedulable");
    let baseline = PassStats::capture(dag);

    let after_reduction = opts.reduction_tree.then(|| {
        extract_reduction_trees(dag);
        infer_bitwidths(dag);
        match_delays(dag).expect("reduction extraction preserves schedulability");
        debug_assert_eq!(dag.check(), Ok(()));
        PassStats::capture(dag)
    });

    let after_rewire = opts.broadcast_rewire.then(|| {
        rewire_broadcasts(dag);
        debug_assert_eq!(dag.check(), Ok(()));
        PassStats::capture(dag)
    });

    let after_pin_reuse = opts.pin_reuse.then(|| {
        reuse_pins(dag);
        infer_bitwidths(dag);
        match_delays(dag).expect("pin reuse preserves schedulability");
        debug_assert_eq!(dag.check(), Ok(()));
        PassStats::capture(dag)
    });

    if opts.power_gating {
        apply_power_gating(dag);
    }
    let final_stats = PassStats::capture(dag);

    OptimizeReport {
        baseline,
        after_reduction,
        after_rewire,
        after_pin_reuse,
        final_stats,
    }
}

// ---------------------------------------------------------------------
// Bit-width inference (§V-D).
// ---------------------------------------------------------------------

/// Forward value-range propagation: recomputes node output widths from
/// their input widths and updates edge widths to match their drivers.
///
/// Runs to a fixpoint (widths are monotone and clamped, so this always
/// terminates); handles the zero-latency mux cycles of fused designs.
pub fn infer_bitwidths(dag: &mut Dag) {
    const MAX_ITERS: usize = 64;
    const CLAMP: u32 = 48;
    for _ in 0..MAX_ITERS {
        let mut changed = false;
        for id in 0..dag.nodes.len() {
            let in_widths: Vec<u32> = dag
                .edges
                .iter()
                .filter(|e| e.to == id)
                .map(|e| dag.nodes[e.from].width)
                .collect();
            let max_in = in_widths.iter().copied().max().unwrap_or(0);
            let new = match &dag.nodes[id].prim {
                Prim::Mul => in_widths.iter().take(2).sum::<u32>().clamp(1, CLAMP),
                Prim::Add | Prim::Max => (max_in + 1).clamp(1, CLAMP),
                Prim::Shift => (max_in + 4).clamp(1, CLAMP),
                Prim::Reducer { inputs } => {
                    let grow = usize::BITS - inputs.max(&1).leading_zeros();
                    (max_in + grow).clamp(1, CLAMP)
                }
                Prim::Mux { .. } | Prim::Fifo { .. } => {
                    max_in.max(dag.nodes[id].width.min(CLAMP)).max(1)
                }
                // Fixed-width primitives keep their declared width.
                _ => dag.nodes[id].width,
            };
            if new != dag.nodes[id].width {
                dag.nodes[id].width = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for i in 0..dag.edges.len() {
        let w = dag.nodes[dag.edges[i].from].width;
        dag.edges[i].width = w;
    }
}

// ---------------------------------------------------------------------
// Delay matching (§V-A).
// ---------------------------------------------------------------------

/// Solves the delay-matching LP and writes `extra_regs` onto the edges.
///
/// Edges with a positive semantic delay are runtime-programmable FIFOs: the
/// skew between their endpoints folds into the programmed depth, so they
/// impose no register constraint — one of the reasons LEGO's data paths are
/// lighter than template-generated ones. If the remaining constraint graph
/// is cyclic (possible only for multi-dataflow fusions whose configurations
/// wire opposite directions), the LP is solved per dataflow on its active
/// subgraph and the per-edge maximum is kept.
///
/// # Errors
///
/// Propagates [`DelayError`] when even a single dataflow's subgraph is
/// cyclic, which indicates a malformed DAG.
pub fn match_delays(dag: &mut Dag) -> Result<i64, DelayError> {
    fn build(dag: &Dag, filter: &dyn Fn(&DagEdge) -> bool) -> (Vec<DelayEdge>, Vec<usize>) {
        let mut edges = Vec::new();
        let mut ids = Vec::new();
        for (i, e) in dag.edges.iter().enumerate() {
            if e.sem_delay > 0 || !filter(e) {
                continue;
            }
            edges.push(DelayEdge {
                from: e.from,
                to: e.to,
                width: i64::from(e.width),
                latency: dag.nodes[e.to].prim.latency(),
            });
            ids.push(i);
        }
        (edges, ids)
    }

    let n = dag.nodes.len();
    let (all_edges, ids) = build(dag, &|_| true);
    match solve_delay_matching(n, &all_edges) {
        Ok(sol) => {
            for e in dag.edges.iter_mut() {
                e.extra_regs = 0;
            }
            for (i, &id) in ids.iter().enumerate() {
                dag.edges[id].extra_regs = sol.extra_latency[i];
            }
            Ok(dag.pipeline_register_bits())
        }
        Err(DelayError::Cyclic) => {
            // Per-dataflow fallback.
            for e in dag.edges.iter_mut() {
                e.extra_regs = 0;
            }
            for k in 0..dag.n_dataflows {
                let (edges, ids) = build(dag, &|e: &DagEdge| e.active[k]);
                let sol = solve_delay_matching(n, &edges)?;
                for (i, &id) in ids.iter().enumerate() {
                    dag.edges[id].extra_regs = dag.edges[id].extra_regs.max(sol.extra_latency[i]);
                }
            }
            Ok(dag.pipeline_register_bits())
        }
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Reduction tree extraction (§V-C).
// ---------------------------------------------------------------------

/// Collapses chains of directly-connected adders into balanced reduction
/// trees. The naive codegen's "long adder chain" makes delay matching pad
/// every chain entry to a different depth; a balanced tree aligns all
/// leaves, which is where the register savings come from.
pub fn extract_reduction_trees(dag: &mut Dag) {
    // consumer count per node over direct (non-FIFO) edges.
    let mut consumers = vec![0usize; dag.nodes.len()];
    for e in &dag.edges {
        consumers[e.from] += 1;
    }

    // A chain link: an Add feeding another Add through a zero-delay edge,
    // the upstream Add consumed only by the downstream one, and the
    // downstream Add fed by exactly one such upstream (merge points of
    // several chains stay put and become reducer leaves of each chain).
    let is_add = |dag: &Dag, id: NodeId| matches!(dag.nodes[id].prim, Prim::Add);
    let mut add_preds = vec![0usize; dag.nodes.len()];
    for e in &dag.edges {
        if e.sem_delay == 0 && is_add(dag, e.from) && is_add(dag, e.to) && consumers[e.from] == 1 {
            add_preds[e.to] += 1;
        }
    }
    let mut chain_next: HashMap<NodeId, NodeId> = HashMap::new();
    let mut has_prev: HashSet<NodeId> = HashSet::new();
    for e in &dag.edges {
        if e.sem_delay == 0
            && is_add(dag, e.from)
            && is_add(dag, e.to)
            && consumers[e.from] == 1
            && add_preds[e.to] == 1
        {
            chain_next.insert(e.from, e.to);
            has_prev.insert(e.to);
        }
    }

    // Walk maximal chains from their heads.
    let heads: Vec<NodeId> = chain_next
        .keys()
        .copied()
        .filter(|id| !has_prev.contains(id))
        .collect();

    let mut dead: HashSet<NodeId> = HashSet::new();
    for head in heads {
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(&next) = chain_next.get(&cur) {
            chain.push(next);
            cur = next;
        }
        if chain.len() < 2 {
            continue;
        }
        let tail = *chain.last().expect("non-empty chain");
        let chain_set: HashSet<NodeId> = chain.iter().copied().collect();

        // Leaves: every edge into a chain member that is not the chain link.
        let leaf_edges: Vec<usize> = dag
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| chain_set.contains(&e.to) && !chain_set.contains(&e.from))
            .map(|(i, _)| i)
            .collect();

        let fu = dag.nodes[tail].fu;
        let acc = chain.iter().any(|&id| dag.nodes[id].accumulate);
        let width = dag.nodes[tail].width;
        let reducer = dag.add_node(
            Prim::Reducer {
                inputs: leaf_edges.len(),
            },
            fu,
            width,
            format!("red_{}", dag.nodes[tail].label),
        );
        dag.nodes[reducer].accumulate = acc;

        for (pin, &ei) in leaf_edges.iter().enumerate() {
            dag.edges[ei].to = reducer;
            dag.edges[ei].to_pin = pin;
        }
        // Output edges of the tail move to the reducer.
        for e in dag.edges.iter_mut() {
            if chain_set.contains(&e.from) && !chain_set.contains(&e.to) && e.to != reducer {
                e.from = reducer;
            }
        }
        dead.extend(chain);
    }

    compact(dag, &dead);
}

/// Removes dead nodes (and their residual edges), remapping ids.
fn compact(dag: &mut Dag, dead: &HashSet<NodeId>) {
    if dead.is_empty() {
        return;
    }
    let mut remap = vec![usize::MAX; dag.nodes.len()];
    let mut nodes = Vec::with_capacity(dag.nodes.len() - dead.len());
    for (id, node) in dag.nodes.drain(..).enumerate() {
        if !dead.contains(&id) {
            remap[id] = nodes.len();
            nodes.push(node);
        }
    }
    dag.nodes = nodes;
    dag.edges
        .retain(|e| !dead.contains(&e.from) && !dead.contains(&e.to));
    for e in dag.edges.iter_mut() {
        e.from = remap[e.from];
        e.to = remap[e.to];
    }
}

// ---------------------------------------------------------------------
// Broadcast pin rewiring (§V-B, Figure 8).
// ---------------------------------------------------------------------

/// Three-stage broadcast rewiring: (1) delay matching with an optimistic
/// cost that charges a broadcast source only its deepest branch, (2) an
/// undirected MST per broadcast source over direct-vs-forwarded edges,
/// (3) a final exact re-matching; the rewiring is kept only if it reduces
/// register bits.
pub fn rewire_broadcasts(dag: &mut Dag) {
    let before = dag.pipeline_register_bits();
    let saved = dag.clone();

    // Stage 1: optimistic matching — divide the width of broadcast branches
    // by the fan-out so the LP prefers placing registers before the split.
    let mut fanout = vec![0usize; dag.nodes.len()];
    for e in &dag.edges {
        if e.sem_delay == 0 {
            fanout[e.from] += 1;
        }
    }
    {
        let mut widths: Vec<u32> = dag.edges.iter().map(|e| e.width).collect();
        for (i, e) in dag.edges.iter().enumerate() {
            if e.sem_delay == 0 && fanout[e.from] >= 3 {
                widths[i] = (e.width / fanout[e.from] as u32).max(1);
            }
        }
        let originals: Vec<u32> = dag.edges.iter().map(|e| e.width).collect();
        for (e, w) in dag.edges.iter_mut().zip(&widths) {
            e.width = *w;
        }
        let _ = match_delays(dag);
        for (e, w) in dag.edges.iter_mut().zip(&originals) {
            e.width = *w;
        }
    }

    // Stage 2: MST rewiring per broadcast source with register-demanding
    // branches.
    let sources: Vec<NodeId> = (0..dag.nodes.len())
        .filter(|&s| {
            let branches: Vec<&DagEdge> = dag
                .edges
                .iter()
                .filter(|e| e.from == s && e.sem_delay == 0)
                .collect();
            branches.len() >= 3 && branches.iter().filter(|e| e.extra_regs > 0).count() >= 2
        })
        .collect();

    for s in sources {
        let branch_ids: Vec<usize> = dag
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == s && e.sem_delay == 0)
            .map(|(i, _)| i)
            .collect();
        let lat: Vec<i64> = branch_ids
            .iter()
            .map(|&i| dag.edges[i].extra_regs)
            .collect();

        // Rewiring graph: node 0 = source, 1.. = branches. Direct edges cost
        // the branch latency; forwarding edges between branches cost the
        // latency difference.
        let mut g = lego_graph::DiGraph::new(branch_ids.len() + 1);
        for (bi, &l) in lat.iter().enumerate() {
            g.add_edge(0, bi + 1, l.max(1));
        }
        for a in 0..branch_ids.len() {
            for b in a + 1..branch_ids.len() {
                g.add_edge(a + 1, b + 1, (lat[a] - lat[b]).abs().max(0) + 1);
            }
        }
        let mst = lego_graph::undirected_mst(&g);

        // Build forwarding taps: a zero-latency pass-through node per branch
        // that forwards the (delayed) source value onward.
        let mut tap: Vec<Option<NodeId>> = vec![None; branch_ids.len()];
        let ensure_tap = |dag: &mut Dag, tap: &mut Vec<Option<NodeId>>, bi: usize| -> NodeId {
            if let Some(t) = tap[bi] {
                return t;
            }
            let e = dag.edges[branch_ids[bi]].clone();
            let t = dag.add_node(
                Prim::CtrlFwd,
                dag.nodes[e.to].fu,
                e.width,
                format!("tap_{}", dag.nodes[e.from].label),
            );
            // Reroute the original branch through the tap.
            let act = e.active.clone();
            dag.edges[branch_ids[bi]].from = t;
            dag.add_edge(e.from, t, 0, e.width, act, 0);
            tap[bi] = Some(t);
            t
        };

        // Order forwarding edges so parents are wired before children.
        let mut adj: Vec<(usize, usize)> = Vec::new();
        for id in mst {
            let e = g.edge(id);
            if e.from != 0 && e.to != 0 {
                adj.push((e.from - 1, e.to - 1));
            }
        }
        // BFS from branches that keep their direct connection.
        let direct: HashSet<usize> = {
            let mut d = HashSet::new();
            let forwarded: HashSet<usize> = adj.iter().flat_map(|&(a, b)| [a, b]).collect();
            for bi in 0..branch_ids.len() {
                if !forwarded.contains(&bi) {
                    d.insert(bi);
                }
            }
            // Each forwarding component still needs one direct anchor: the
            // branch with minimal latency in the component.
            d
        };
        let _ = direct;
        let mut wired: HashSet<usize> = (0..branch_ids.len()).collect::<HashSet<_>>();
        // Determine orientation: anchor = smaller latency side.
        let mut pending = adj;
        pending.sort_by_key(|&(a, b)| lat[a].min(lat[b]));
        for (a, b) in pending {
            let (src, dst) = if lat[a] <= lat[b] { (a, b) } else { (b, a) };
            if !wired.contains(&dst) {
                continue;
            }
            let t = ensure_tap(dag, &mut tap, src);
            let dst_edge = branch_ids[dst];
            // Re-drive the destination branch from the tap instead of the
            // source (sharing the registers up to the tap).
            if dag.edges[dst_edge].from == s {
                dag.edges[dst_edge].from = t;
            }
            wired.insert(dst);
        }
    }

    // Stage 3: exact re-matching; revert when not profitable.
    let _ = match_delays(dag);
    if dag.pipeline_register_bits() > before || dag.check().is_err() {
        *dag = saved;
        let _ = match_delays(dag);
    }
}

// ---------------------------------------------------------------------
// Pin reusing (§V-C, Figure 9).
// ---------------------------------------------------------------------

/// Shrinks reducers whose pins are never all live simultaneously: liveness
/// per dataflow feeds the 0-1 remapping program; remapped pins that collide
/// across dataflows get a mux (cheap next to an adder).
pub fn reuse_pins(dag: &mut Dag) {
    let reducers: Vec<NodeId> = (0..dag.nodes.len())
        .filter(|&id| matches!(dag.nodes[id].prim, Prim::Reducer { .. }))
        .collect();

    for r in reducers {
        let Prim::Reducer { inputs } = dag.nodes[r].prim else {
            continue;
        };
        let n_df = dag.n_dataflows;
        // Liveness: pin is live in dataflow k if any active edge drives it.
        let mut live: Vec<Vec<usize>> = vec![Vec::new(); n_df];
        for e in dag.edges.iter().filter(|e| e.to == r) {
            for (k, &a) in e.active.iter().enumerate() {
                if a && !live[k].contains(&e.to_pin) {
                    live[k].push(e.to_pin);
                }
            }
        }
        for pins in live.iter_mut() {
            pins.sort_unstable();
        }
        let q = live.iter().map(Vec::len).max().unwrap_or(0);
        if q == 0 || q >= inputs {
            continue;
        }
        let remap = optimize_pin_remap(&live);

        // Physical pin → (original pin, dataflows) groups.
        let mut phys: BTreeMap<usize, BTreeMap<usize, Vec<usize>>> = BTreeMap::new();
        for (k, pairs) in remap.mapping.iter().enumerate() {
            for &(orig, p) in pairs {
                phys.entry(p).or_default().entry(orig).or_default().push(k);
            }
        }

        dag.nodes[r].prim = Prim::Reducer { inputs: q };
        // Collect the driving edges per original pin.
        let edge_ids: Vec<usize> = dag
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == r)
            .map(|(i, _)| i)
            .collect();
        let mut by_orig: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in edge_ids {
            by_orig.entry(dag.edges[i].to_pin).or_default().push(i);
        }

        for (p, origs) in phys {
            if origs.len() == 1 {
                let (&orig, _) = origs.iter().next().expect("non-empty");
                for &ei in by_orig.get(&orig).map(Vec::as_slice).unwrap_or(&[]) {
                    dag.edges[ei].to_pin = p;
                }
            } else {
                // Several original pins share a physical pin: mux them.
                let width = dag.nodes[r].width;
                let mux = dag.add_node(
                    Prim::Mux {
                        inputs: origs.len(),
                    },
                    dag.nodes[r].fu,
                    width,
                    format!("pinmux_{}_{p}", dag.nodes[r].label),
                );
                for (slot, (orig, dfs)) in origs.iter().enumerate() {
                    for &ei in by_orig.get(orig).map(Vec::as_slice).unwrap_or(&[]) {
                        dag.edges[ei].to = mux;
                        dag.edges[ei].to_pin = slot;
                        // Restrict activity to the dataflows this mapping
                        // serves.
                        let act = dag.edges[ei].active.clone();
                        dag.edges[ei].active = act
                            .iter()
                            .enumerate()
                            .map(|(k, &a)| a && dfs.contains(&k))
                            .collect();
                    }
                }
                let act = (0..dag.n_dataflows)
                    .map(|k| origs.values().any(|dfs| dfs.contains(&k)))
                    .collect();
                dag.add_edge(mux, r, p, width, act, 0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Power gating (§V-D).
// ---------------------------------------------------------------------

/// Marks every connection that is idle in at least one dataflow as
/// clock-gated: the power model then drops its toggle power in the
/// configurations that do not use it.
pub fn apply_power_gating(dag: &mut Dag) {
    for e in dag.edges.iter_mut() {
        if e.active.iter().any(|&a| !a) {
            e.gated = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower, BackendConfig, OptimizeOptions};
    use lego_frontend::{build_adg, FrontendConfig};
    use lego_ir::kernels::{self, dataflows};

    fn dag_for(w: &lego_ir::Workload, dfs: &[lego_ir::Dataflow]) -> Dag {
        let adg = build_adg(w, dfs, &FrontendConfig::default()).unwrap();
        lower(&adg, &BackendConfig::default())
    }

    #[test]
    fn figure8_broadcast_example() {
        // Reproduce paper Figure 8: a 10-bit source broadcast to four logic
        // blocks with latencies 4,3,2,1 feeding a reducer with 8-bit inputs.
        let mut dag = Dag::new(1);
        let src = dag.add_node(Prim::Const { value: 0 }, None, 10, "src");
        let red = dag.add_node(Prim::Reducer { inputs: 4 }, None, 8, "red");
        for (i, l) in [4i64, 3, 2, 1].into_iter().enumerate() {
            // Logic block of latency l: chain of l adders (latency 1 each).
            let mut prev = src;
            let mut w = 10;
            for stage in 0..l {
                let n = dag.add_node(Prim::Add, None, 8, format!("lb{i}_{stage}"));
                dag.add_edge(prev, n, 0, w, vec![true], 0);
                prev = n;
                w = 8;
            }
            dag.add_edge(prev, red, i, 8, vec![true], 0);
        }
        // NOTE: widths here are pinned by construction; skip inference.
        match_delays(&mut dag).unwrap();
        let naive = dag.pipeline_register_bits();
        // Naive matching pads the three short branches at 8 bits on the
        // reducer side or 10 bits on the source side; Figure 8(a) reports
        // 48 bits for the reducer-side padding, and the LP can do no better
        // than min(48, padding the broadcast at 10 bits = 60) = 48... but
        // the exact optimum rebalances inside the blocks; we only require
        // the rewiring to improve on whatever the plain LP found.
        rewire_broadcasts(&mut dag);
        let rewired = dag.pipeline_register_bits();
        assert!(rewired <= naive, "rewired {rewired} vs naive {naive}");
        assert!(rewired < 48, "sharing must beat per-branch padding");
        dag.check().unwrap();
    }

    #[test]
    fn reduction_extraction_shrinks_registers() {
        // GEMM-KJ with broadcast control: Y is reduced along k through a
        // combinational adder chain → extraction must cut register bits.
        let gemm = kernels::gemm(16, 4, 4);
        let df = lego_ir::kernels::dataflows::par2(&gemm, "k", 4, "j", 4, "GEMM-KJ-bcast").unwrap();
        let mut dag = dag_for(&gemm, &[df]);
        infer_bitwidths(&mut dag);
        match_delays(&mut dag).unwrap();
        let before = dag.pipeline_register_bits();
        let adders_before = dag.count_nodes(|p| matches!(p, Prim::Add));
        extract_reduction_trees(&mut dag);
        infer_bitwidths(&mut dag);
        match_delays(&mut dag).unwrap();
        dag.check().unwrap();
        let after = dag.pipeline_register_bits();
        assert!(
            dag.count_nodes(|p| matches!(p, Prim::Reducer { .. })) > 0,
            "chains extracted"
        );
        assert!(
            dag.count_nodes(|p| matches!(p, Prim::Add)) < adders_before,
            "adder count drops"
        );
        assert!(after < before, "register bits {after} !< {before}");
    }

    #[test]
    fn pin_reuse_shrinks_fused_reducers() {
        let mut dag = Dag::new(3);
        // A reducer with 3 pins, only 2 live per dataflow (Figure 9).
        let red = dag.add_node(Prim::Reducer { inputs: 3 }, None, 16, "red");
        let srcs: Vec<NodeId> = (0..3)
            .map(|i| dag.add_node(Prim::Const { value: i }, None, 16, format!("s{i}")))
            .collect();
        let live = [
            [true, true, false],
            [true, false, true],
            [false, true, true],
        ];
        for (pin, &s) in srcs.iter().enumerate() {
            let act: Vec<bool> = (0..3).map(|k| live[k][pin]).collect();
            dag.add_edge(s, red, pin, 16, act, 0);
        }
        reuse_pins(&mut dag);
        dag.check().unwrap();
        let Prim::Reducer { inputs } = dag.nodes[red].prim else {
            panic!()
        };
        assert_eq!(inputs, 2, "max two live pins");
        // At least one mux appears for the shared physical pin.
        assert!(dag.count_nodes(|p| matches!(p, Prim::Mux { .. })) >= 1);
    }

    #[test]
    fn power_gating_marks_partially_active_edges() {
        let gemm = kernels::gemm(8, 8, 8);
        let ij = dataflows::gemm_ij(&gemm, 2);
        let kj = dataflows::gemm_kj(&gemm, 2);
        let mut dag = dag_for(&gemm, &[ij, kj]);
        apply_power_gating(&mut dag);
        assert!(
            dag.edges.iter().any(|e| e.gated),
            "fused design has idle paths"
        );
        // A single-dataflow design has nothing to gate.
        let gemm2 = kernels::gemm(4, 4, 4);
        let mut solo = dag_for(&gemm2, &[dataflows::gemm_ij(&gemm2, 2)]);
        apply_power_gating(&mut solo);
        assert_eq!(solo.edges.iter().filter(|e| e.gated).count(), 0);
    }

    #[test]
    fn full_pipeline_monotonically_improves() {
        for (w, dfs) in [
            (
                kernels::gemm(16, 4, 4),
                vec![dataflows::par2(&kernels::gemm(16, 4, 4), "k", 4, "j", 4, "KJ").unwrap()],
            ),
            (
                kernels::gemm(8, 8, 8),
                vec![
                    dataflows::gemm_ij(&kernels::gemm(8, 8, 8), 2),
                    dataflows::gemm_kj(&kernels::gemm(8, 8, 8), 2),
                ],
            ),
        ] {
            let mut dag = dag_for(&w, &dfs);
            let report = optimize(&mut dag, &OptimizeOptions::default());
            dag.check().unwrap();
            assert!(
                report.final_stats.register_bits <= report.baseline.register_bits,
                "optimization must not add registers: {report:?}"
            );
        }
    }

    #[test]
    fn baseline_options_skip_everything() {
        let gemm = kernels::gemm(4, 4, 4);
        let mut dag = dag_for(&gemm, &[dataflows::gemm_ij(&gemm, 2)]);
        let report = optimize(&mut dag, &OptimizeOptions::baseline());
        assert!(report.after_reduction.is_none());
        assert!(report.after_rewire.is_none());
        assert!(report.after_pin_reuse.is_none());
        assert_eq!(report.final_stats.gated_edges, 0);
    }

    #[test]
    fn bitwidth_inference_grows_through_multipliers() {
        let gemm = kernels::gemm(4, 4, 4);
        let mut dag = dag_for(&gemm, &[dataflows::gemm_ij(&gemm, 2)]);
        infer_bitwidths(&mut dag);
        for (id, n) in dag.nodes.iter().enumerate() {
            if matches!(n.prim, Prim::Mul) {
                assert_eq!(n.width, 16, "8x8 multiply produces 16 bits");
                let _ = id;
            }
        }
    }

    #[test]
    fn delay_matching_ignores_fifo_edges() {
        let mut dag = Dag::new(1);
        let a = dag.add_node(Prim::Const { value: 0 }, None, 8, "a");
        let f = dag.add_node(
            Prim::Fifo {
                depth: vec![Some(5)],
            },
            None,
            8,
            "f",
        );
        let b = dag.add_node(Prim::Add, None, 8, "b");
        dag.add_edge(a, f, 0, 8, vec![true], 5);
        dag.add_edge(f, b, 0, 8, vec![true], 0);
        dag.add_edge(a, b, 1, 8, vec![true], 0);
        match_delays(&mut dag).unwrap();
        // The FIFO edge absorbs its own skew: no registers on it.
        assert_eq!(dag.edges[0].extra_regs, 0);
    }
}
