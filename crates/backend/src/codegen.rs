//! ADG → DAG lowering (the paper's translation/codegen pass, §V).
//!
//! Naive codegen reproduces the paper's starting point deliberately:
//! reductions become *long adder chains*, zero-depth distribution becomes a
//! *star* from the producing driver (the broadcast pins of Figure 8), every
//! multi-source pin gets a mux, and FIFOs carry their per-dataflow
//! programmed depths. The optimization passes then earn their savings from
//! exactly these structures, as in the paper.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::dag::{Dag, NodeId, Prim};
use crate::BackendConfig;
use lego_frontend::{Adg, TensorPlan};
use lego_ir::{FuOp, TensorRole};

/// Lowers an ADG into the primitive-level DAG.
///
/// The result is unoptimized: run [`crate::passes::optimize`] (or
/// [`crate::passes::match_delays`] alone for the paper's mandatory
/// baseline) before costing or emission.
///
/// # Examples
///
/// ```
/// use lego_backend::{lower, BackendConfig};
/// use lego_frontend::{build_adg, FrontendConfig};
/// use lego_ir::kernels::{self, dataflows};
///
/// let gemm = kernels::gemm(8, 4, 4);
/// let df = dataflows::gemm_kj(&gemm, 2);
/// let adg = build_adg(&gemm, &[df], &FrontendConfig::default()).unwrap();
/// let dag = lower(&adg, &BackendConfig::default());
/// assert_eq!(dag.count_nodes(|p| matches!(p, lego_backend::Prim::Mul)), 4);
/// dag.check().unwrap();
/// ```
pub fn lower(adg: &Adg, config: &BackendConfig) -> Dag {
    let n_df = adg.dataflows.len();
    let mut dag = Dag::new(n_df);
    let all = vec![true; n_df];

    // ------------------------------------------------------------------
    // Control: shared counters + one address generator per tensor, with a
    // store-and-forward register chain when any dataflow is systolic
    // (paper §III-C/D); or the per-FU replica used by the related-work
    // structural baselines.
    // ------------------------------------------------------------------
    let max_levels = adg
        .dataflows
        .iter()
        .map(|d| d.temporal_sizes.len())
        .max()
        .unwrap_or(1);
    let systolic = adg
        .dataflows
        .iter()
        .any(|d| d.control.iter().any(|&c| c != 0));

    // Address source node per (tensor, fu) — shared mode points every FU at
    // the same generator (possibly through the forwarding chain).
    let mut addr_at: HashMap<(String, usize), NodeId> = HashMap::new();

    if config.per_fu_control {
        // Polyhedral/STT-style generation (paper §III-D): the timestamp is
        // global, so every PE re-derives indices with its own counters and
        // address generators, and PE boundaries carry HLS handshake FIFOs.
        for fu in 0..adg.num_fus {
            let ctr = dag.add_node(
                Prim::Counter { levels: max_levels },
                Some(fu),
                config.addr_width,
                format!("ctr_fu{fu}"),
            );
            for plan in &adg.tensors {
                let ag = dag.add_node(
                    Prim::AddrGen { terms: max_levels },
                    Some(fu),
                    config.addr_width,
                    format!("ag_{}_fu{fu}", plan.tensor),
                );
                dag.add_edge(
                    ctr,
                    ag,
                    0,
                    config.addr_width * max_levels as u32,
                    all.clone(),
                    0,
                );
                let hs = dag.add_node(
                    Prim::Fifo {
                        depth: vec![Some(2); n_df],
                    },
                    Some(fu),
                    config.addr_width,
                    format!("hs_{}_fu{fu}", plan.tensor),
                );
                dag.add_edge(ag, hs, 0, config.addr_width, all.clone(), 2);
                addr_at.insert((plan.tensor.clone(), fu), hs);
            }
        }
    } else {
        let ctr = dag.add_node(
            Prim::Counter { levels: max_levels },
            None,
            config.addr_width,
            "ctr",
        );
        for plan in &adg.tensors {
            let ag = dag.add_node(
                Prim::AddrGen { terms: max_levels },
                None,
                config.addr_width,
                format!("ag_{}", plan.tensor),
            );
            dag.add_edge(
                ctr,
                ag,
                0,
                config.addr_width * max_levels as u32,
                all.clone(),
                0,
            );
            let mut tap = ag;
            if systolic {
                // One forwarding register per FU hop; ports tap the chain at
                // their FU position instead of each owning an address unit.
                for fu in 0..adg.num_fus {
                    let fwd = dag.add_node(
                        Prim::CtrlFwd,
                        Some(fu),
                        config.addr_width,
                        format!("ctl_{}_{fu}", plan.tensor),
                    );
                    dag.add_edge(tap, fwd, 0, config.addr_width, all.clone(), 0);
                    addr_at.insert((plan.tensor.clone(), fu), fwd);
                    tap = fwd;
                }
            } else {
                for fu in 0..adg.num_fus {
                    addr_at.insert((plan.tensor.clone(), fu), ag);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Input operand delivery per tensor.
    // ------------------------------------------------------------------
    let mut pin: HashMap<(String, usize), NodeId> = HashMap::new();
    for plan in &adg.tensors {
        if plan.role != TensorRole::Input {
            continue;
        }
        lower_input_delivery(&mut dag, adg, plan, config, &addr_at, &mut pin);
    }

    // ------------------------------------------------------------------
    // Compute per FU.
    // ------------------------------------------------------------------
    let inputs: Vec<&str> = adg.workload.inputs().map(|a| a.tensor.as_str()).collect();
    let mut product: Vec<NodeId> = Vec::with_capacity(adg.num_fus);
    for fu in 0..adg.num_fus {
        let operand = |_dag: &mut Dag, name: &str| -> NodeId {
            *pin.get(&(name.to_string(), fu))
                .unwrap_or_else(|| panic!("operand {name} undelivered at FU {fu}"))
        };
        let out = match adg.workload.op {
            FuOp::MulAcc => {
                let a = operand(&mut dag, inputs[0]);
                let b = operand(&mut dag, inputs[1]);
                let m = dag.add_node(
                    Prim::Mul,
                    Some(fu),
                    config.input_width * 2,
                    format!("mul_fu{fu}"),
                );
                dag.add_edge(a, m, 0, config.input_width, all.clone(), 0);
                dag.add_edge(b, m, 1, config.input_width, all.clone(), 0);
                m
            }
            FuOp::TripleMulAcc => {
                let a = operand(&mut dag, inputs[0]);
                let b = operand(&mut dag, inputs[1]);
                let c = operand(&mut dag, inputs[2]);
                let m1 = dag.add_node(
                    Prim::Mul,
                    Some(fu),
                    config.input_width * 2,
                    format!("mul1_fu{fu}"),
                );
                dag.add_edge(a, m1, 0, config.input_width, all.clone(), 0);
                dag.add_edge(b, m1, 1, config.input_width, all.clone(), 0);
                let m2 = dag.add_node(
                    Prim::Mul,
                    Some(fu),
                    config.input_width * 3,
                    format!("mul2_fu{fu}"),
                );
                dag.add_edge(m1, m2, 0, config.input_width * 2, all.clone(), 0);
                dag.add_edge(c, m2, 1, config.input_width, all.clone(), 0);
                m2
            }
            FuOp::MulShiftAcc => {
                let a = operand(&mut dag, inputs[0]);
                let b = operand(&mut dag, inputs[1]);
                let c = operand(&mut dag, inputs[2]);
                let m = dag.add_node(
                    Prim::Mul,
                    Some(fu),
                    config.input_width * 2,
                    format!("mul_fu{fu}"),
                );
                dag.add_edge(a, m, 0, config.input_width, all.clone(), 0);
                dag.add_edge(b, m, 1, config.input_width, all.clone(), 0);
                let sh = dag.add_node(
                    Prim::Shift,
                    Some(fu),
                    config.acc_width,
                    format!("shift_fu{fu}"),
                );
                dag.add_edge(m, sh, 0, config.input_width * 2, all.clone(), 0);
                dag.add_edge(c, sh, 1, config.input_width, all.clone(), 0);
                sh
            }
            FuOp::MaxAcc => {
                let a = operand(&mut dag, inputs[0]);
                let mx = dag.add_node(
                    Prim::Max,
                    Some(fu),
                    config.input_width,
                    format!("max_fu{fu}"),
                );
                dag.add_edge(a, mx, 0, config.input_width, all.clone(), 0);
                mx
            }
        };
        product.push(out);
    }

    // ------------------------------------------------------------------
    // Output accumulation and commit: adder chains along the ADG's partial
    // sum edges, local accumulators where the output is stationary.
    // ------------------------------------------------------------------
    let out_plan = adg
        .tensors
        .iter()
        .find(|t| t.role == TensorRole::Output)
        .expect("workload has an output");
    lower_output(&mut dag, adg, out_plan, config, &addr_at, &product);

    dag
}

/// Builds the delivery network for one input tensor: read ports at data
/// nodes, FIFOs on delayed edges, star wiring for zero-depth distribution,
/// muxes where several sources feed one FU.
fn lower_input_delivery(
    dag: &mut Dag,
    adg: &Adg,
    plan: &TensorPlan,
    config: &BackendConfig,
    addr_at: &HashMap<(String, usize), NodeId>,
    pin: &mut HashMap<(String, usize), NodeId>,
) {
    let n_df = adg.dataflows.len();
    let tensor = plan.tensor.clone();

    // Drivers per FU: (node, activity) — filled in delivery order.
    let mut drivers: BTreeMap<usize, Vec<(NodeId, Vec<bool>)>> = BTreeMap::new();

    for dn in &plan.data_nodes {
        let port = dag.add_node(
            Prim::ReadPort {
                tensor: tensor.clone(),
            },
            Some(dn.fu),
            config.input_width,
            format!("rd_{tensor}_fu{}", dn.fu),
        );
        let addr = addr_at[&(tensor.clone(), dn.fu)];
        let mut act = vec![false; n_df];
        for &k in &dn.active_in {
            act[k] = true;
        }
        dag.add_edge(addr, port, 0, config.addr_width, act.clone(), 0);
        drivers.entry(dn.fu).or_default().push((port, act));
    }

    // Deliver along edges in BFS order from data nodes so upstream pins
    // exist before downstream consumers.
    let mut resolved: HashMap<usize, NodeId> = HashMap::new();
    let mut pending: Vec<&lego_frontend::FuEdge> = adg.edges_for(&tensor).collect();
    let mut queue: VecDeque<usize> = drivers.keys().copied().collect();
    let mut guard = 0usize;
    while !queue.is_empty() || !pending.is_empty() {
        guard += 1;
        assert!(
            guard <= 4 * (adg.num_fus + pending.len() + 1),
            "delivery for {tensor} did not converge"
        );
        let fu = match queue.pop_front() {
            Some(fu) => fu,
            None => break,
        };
        if resolved.contains_key(&fu) {
            continue;
        }
        // Resolve this FU's pin from its accumulated drivers.
        let Some(srcs) = drivers.get(&fu) else {
            // Not ready yet; skip (will be re-queued by its feeding edge).
            continue;
        };
        let node = if srcs.len() == 1 {
            srcs[0].0
        } else {
            let mux = dag.add_node(
                Prim::Mux { inputs: srcs.len() },
                Some(fu),
                config.input_width,
                format!("mux_{tensor}_fu{fu}"),
            );
            for (i, (src, act)) in srcs.iter().enumerate() {
                dag.add_edge(*src, mux, i, config.input_width, act.clone(), 0);
            }
            mux
        };
        resolved.insert(fu, node);
        pin.insert((tensor.clone(), fu), node);

        // Push downstream deliveries whose source is now resolved.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].from == fu {
                let e = pending.remove(i);
                let act: Vec<bool> = (0..n_df).map(|k| e.active_in(k)).collect();
                let max_depth = e.max_depth();
                let drv = if max_depth > 0 {
                    let fifo = dag.add_node(
                        Prim::Fifo {
                            depth: e.depth_per_df.clone(),
                        },
                        Some(e.to),
                        config.input_width,
                        format!("fifo_{tensor}_{}to{}", e.from, e.to),
                    );
                    dag.add_edge(node, fifo, 0, config.input_width, act.clone(), max_depth);
                    fifo
                } else {
                    // Zero-depth: star wire from the resolved driver.
                    node
                };
                drivers.entry(e.to).or_default().push((drv, act));
                queue.push_back(e.to);
            } else {
                i += 1;
            }
        }
        // An FU with several incoming edges resolves once all arrived; the
        // queue may hold it multiple times, which is harmless.
    }

    // Any FU not reached has no delivery in any dataflow — that would be a
    // front-end bug; fail loudly.
    for fu in 0..adg.num_fus {
        assert!(
            resolved.contains_key(&fu),
            "tensor {tensor} undelivered at FU {fu}"
        );
    }
}

/// Builds the partial-sum network: per-FU adders (chained per the ADG's
/// output edges, forming the naive "long adder chain"), local accumulators
/// for stationary outputs, FIFOs on delayed partial-sum hops, and write
/// ports at committing FUs.
fn lower_output(
    dag: &mut Dag,
    adg: &Adg,
    plan: &TensorPlan,
    config: &BackendConfig,
    addr_at: &HashMap<(String, usize), NodeId>,
    product: &[NodeId],
) {
    let n_df = adg.dataflows.len();
    let tensor = plan.tensor.clone();
    let stationary_any = plan.stationary_in.iter().any(|&s| s);

    // Incoming partial-sum sources per FU (from ADG output edges).
    let mut incoming: BTreeMap<usize, Vec<(usize, Vec<bool>, i64)>> = BTreeMap::new();
    for e in adg.edges_for(&tensor) {
        let act: Vec<bool> = (0..n_df).map(|k| e.active_in(k)).collect();
        incoming
            .entry(e.to)
            .or_default()
            .push((e.from, act, e.max_depth()));
    }

    // The accumulated output of each FU: local product + incoming partials,
    // realized as a chain of binary adders (naive codegen).
    let mut acc_out: Vec<Option<NodeId>> = vec![None; adg.num_fus];
    // Topological order over the partial-sum forest (leaves first).
    let order = {
        let mut indeg = vec![0usize; adg.num_fus];
        for srcs in incoming.values() {
            indeg[*srcs.first().map(|(_, _, _)| &0).unwrap_or(&0)] += 0; // no-op, clarity
        }
        let mut fanin = vec![0usize; adg.num_fus];
        for (to, srcs) in &incoming {
            fanin[*to] += srcs.len();
        }
        let mut q: VecDeque<usize> = (0..adg.num_fus).filter(|&f| fanin[f] == 0).collect();
        let mut order = Vec::new();
        let mut consumed = vec![0usize; adg.num_fus];
        while let Some(f) = q.pop_front() {
            order.push(f);
            for e in adg.edges_for(&tensor).filter(|e| e.from == f) {
                consumed[e.to] += 1;
                if consumed[e.to] == incoming[&e.to].len() {
                    q.push_back(e.to);
                }
            }
        }
        assert_eq!(order.len(), adg.num_fus, "cyclic partial-sum network");
        order
    };

    let all = vec![true; n_df];
    for fu in order {
        let mut acc = dag.add_node(Prim::Add, Some(fu), config.acc_width, format!("acc_fu{fu}"));
        dag.nodes[acc].accumulate = stationary_any;
        dag.add_edge(product[fu], acc, 0, config.input_width * 2, all.clone(), 0);
        // Chain in incoming partials one binary adder at a time.
        let mut chain_head = acc;
        let mut pin_idx = 1usize;
        if let Some(srcs) = incoming.get(&fu) {
            for (idx, (from, act, depth)) in srcs.iter().enumerate() {
                let src_node = acc_out[*from].expect("topological order");
                let src = if *depth > 0 {
                    let e = adg
                        .edges_for(&tensor)
                        .find(|e| e.from == *from && e.to == fu)
                        .expect("edge exists");
                    let fifo = dag.add_node(
                        Prim::Fifo {
                            depth: e.depth_per_df.clone(),
                        },
                        Some(fu),
                        config.acc_width,
                        format!("fifo_{tensor}_{from}to{fu}"),
                    );
                    dag.add_edge(src_node, fifo, 0, config.acc_width, act.clone(), *depth);
                    fifo
                } else {
                    src_node
                };
                if idx == 0 {
                    dag.add_edge(src, chain_head, pin_idx, config.acc_width, act.clone(), 0);
                    pin_idx += 1;
                } else {
                    // Extend the adder chain.
                    let next = dag.add_node(
                        Prim::Add,
                        Some(fu),
                        config.acc_width,
                        format!("acc_fu{fu}_{idx}"),
                    );
                    dag.add_edge(chain_head, next, 0, config.acc_width, all.clone(), 0);
                    dag.add_edge(src, next, 1, config.acc_width, act.clone(), 0);
                    chain_head = next;
                }
            }
        }
        let _ = pin_idx;
        acc = chain_head;
        acc_out[fu] = Some(acc);
    }

    for dn in &plan.data_nodes {
        let port = dag.add_node(
            Prim::WritePort {
                tensor: tensor.clone(),
            },
            Some(dn.fu),
            config.acc_width,
            format!("wr_{tensor}_fu{}", dn.fu),
        );
        let mut act = vec![false; n_df];
        for &k in &dn.active_in {
            act[k] = true;
        }
        dag.add_edge(
            acc_out[dn.fu].expect("committing FU accumulates"),
            port,
            0,
            config.acc_width,
            act.clone(),
            0,
        );
        let addr = addr_at[&(tensor.clone(), dn.fu)];
        dag.add_edge(addr, port, 1, config.addr_width, act, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_frontend::{build_adg, FrontendConfig};
    use lego_ir::kernels::{self, dataflows};

    fn dag_for(w: &lego_ir::Workload, dfs: &[lego_ir::Dataflow], cfg: &BackendConfig) -> Dag {
        let adg = build_adg(w, dfs, &FrontendConfig::default()).unwrap();
        let dag = lower(&adg, cfg);
        dag.check().expect("valid DAG");
        dag
    }

    #[test]
    fn systolic_gemm_structure() {
        let gemm = kernels::gemm(8, 4, 4);
        let dag = dag_for(
            &gemm,
            &[dataflows::gemm_kj(&gemm, 2)],
            &BackendConfig::default(),
        );
        // 4 FUs: 4 muls, 4+ adds (reduction chain), FIFOs on X forward and
        // Y forward edges, one shared counter, 3 address generators.
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::Mul)), 4);
        assert!(dag.count_nodes(|p| matches!(p, Prim::Add)) >= 4);
        assert!(dag.count_nodes(|p| matches!(p, Prim::Fifo { .. })) >= 4);
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::Counter { .. })), 1);
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::AddrGen { .. })), 3);
        // Systolic: control forwarded along the array per tensor.
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::CtrlFwd)), 3 * 4);
    }

    #[test]
    fn broadcast_gemm_has_no_ctrl_chain() {
        let gemm = kernels::gemm(4, 4, 4);
        let dag = dag_for(
            &gemm,
            &[dataflows::gemm_ij(&gemm, 2)],
            &BackendConfig::default(),
        );
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::CtrlFwd)), 0);
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::Counter { .. })), 1);
    }

    #[test]
    fn per_fu_control_replicates_generators() {
        let gemm = kernels::gemm(4, 4, 4);
        let cfg = BackendConfig {
            per_fu_control: true,
            ..Default::default()
        };
        let dag = dag_for(&gemm, &[dataflows::gemm_ij(&gemm, 2)], &cfg);
        // AutoSA/TensorLib-style: counters and address generators per FU.
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::Counter { .. })), 4);
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::AddrGen { .. })), 12);
    }

    #[test]
    fn fused_design_inserts_muxes() {
        let gemm = kernels::gemm(8, 8, 8);
        let ij = dataflows::gemm_ij(&gemm, 2);
        let kj = dataflows::gemm_kj(&gemm, 2);
        let solo = dag_for(&gemm, std::slice::from_ref(&ij), &BackendConfig::default());
        let fused = dag_for(&gemm, &[ij, kj], &BackendConfig::default());
        assert!(
            fused.count_nodes(|p| matches!(p, Prim::Mux { .. }))
                > solo.count_nodes(|p| matches!(p, Prim::Mux { .. })),
            "fusion must add muxes: {} vs {}",
            fused.summary(),
            solo.summary()
        );
    }

    #[test]
    fn mttkrp_uses_two_multipliers_per_fu() {
        let m = kernels::mttkrp(4, 4, 4, 4);
        let dag = dag_for(
            &m,
            &[dataflows::mttkrp_ij(&m, 2)],
            &BackendConfig::default(),
        );
        assert_eq!(dag.count_nodes(|p| matches!(p, Prim::Mul)), 8);
    }

    #[test]
    fn every_fu_product_feeds_an_adder() {
        let conv = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
        let dag = dag_for(
            &conv,
            &[dataflows::conv_ohow(&conv, 2)],
            &BackendConfig::default(),
        );
        for (id, n) in dag.nodes.iter().enumerate() {
            if matches!(n.prim, Prim::Mul) {
                assert!(
                    dag.out_edges(id).iter().any(|e| matches!(
                        dag.nodes[e.to].prim,
                        Prim::Add | Prim::Mul | Prim::Shift
                    )),
                    "dangling multiplier {id}"
                );
            }
        }
    }

    #[test]
    fn stationary_output_sets_accumulate() {
        let gemm = kernels::gemm(4, 4, 4);
        let dag = dag_for(
            &gemm,
            &[dataflows::gemm_ij(&gemm, 2)],
            &BackendConfig::default(),
        );
        assert!(dag
            .nodes
            .iter()
            .any(|n| matches!(n.prim, Prim::Add) && n.accumulate));
    }
}
