//! Linear-programming algorithms for the LEGO back end.
//!
//! The paper (§V) formulates three optimization problems over the detailed
//! architecture graph (DAG):
//!
//! 1. **Delay matching** (§V-A): insert the minimum total register *bits* so
//!    that all paths into every component carry the same latency. This is the
//!    LP `min Σ W_uv·EL_uv` with `EL_uv = D_v − D_u − L_uv ≥ 0`. The paper
//!    uses HiGHS; we exploit that the constraint matrix is a network matrix —
//!    the LP is the dual of a min-cost flow — and solve it exactly with
//!    [`solve_delay_matching`].
//! 2. **Broadcast pin rewiring** (§V-B): re-runs the same LP with an
//!    optimistic cost for broadcast pins (implemented in `lego-backend`,
//!    using the hooks here).
//! 3. **Pin reusing** (§V-C): a 0-1 integer program mapping original reducer
//!    pins to a smaller set of physical pins across dataflow configurations,
//!    solved by [`optimize_pin_remap`] (exact branch-and-bound with a
//!    Hungarian-assignment greedy fallback).
//!
//! A dense two-phase [`simplex`] solver is included for small general LPs
//! and as an independent oracle for the specialized solvers.

pub mod assign;
pub mod delay;
pub mod mcmf;
pub mod simplex;

pub use assign::{hungarian, optimize_pin_remap, PinRemap};
pub use delay::{solve_delay_matching, DelayAssignment, DelayEdge, DelayError};
pub use mcmf::MinCostFlow;
pub use simplex::{solve_lp, Constraint, LpProblem, LpResult, Relation};
