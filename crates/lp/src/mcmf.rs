//! Min-cost max-flow with node potentials.
//!
//! Successive-shortest-path implementation: one Bellman-Ford pass to
//! initialize potentials (the networks built by [`crate::delay`] contain
//! negative arc costs but never negative cycles), then Dijkstra with reduced
//! costs per augmentation. The final node potentials are exactly the dual
//! variables of the flow LP, which is what delay matching consumes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    cap: i64,
    cost: i64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// A min-cost max-flow network over dense node indices.
///
/// # Examples
///
/// ```
/// use lego_lp::MinCostFlow;
///
/// let mut net = MinCostFlow::new(3);
/// let a = net.add_arc(0, 1, 10, 1);
/// let _ = net.add_arc(1, 2, 10, 1);
/// let (flow, cost) = net.run(0, 2);
/// assert_eq!((flow, cost), (10, 20));
/// assert_eq!(net.flow_on(a), 10);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<usize>>,
    arcs: Vec<Arc>,
    /// Original capacity per public arc id, used to report flow.
    caps: Vec<i64>,
    potentials: Vec<i64>,
}

impl MinCostFlow {
    /// Creates an empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
            arcs: Vec::new(),
            caps: Vec::new(),
            potentials: vec![0; n],
        }
    }

    /// Adds a directed arc and returns its public id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> usize {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "arc endpoint out of range"
        );
        assert!(cap >= 0, "negative capacity");
        let fwd = self.arcs.len();
        self.arcs.push(Arc {
            to,
            cap,
            cost,
            rev: fwd + 1,
        });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
            rev: fwd,
        });
        self.graph[from].push(fwd);
        self.graph[to].push(fwd + 1);
        self.caps.push(cap);
        fwd / 2
    }

    /// Flow currently routed through the arc with the given public id.
    pub fn flow_on(&self, arc_id: usize) -> i64 {
        self.caps[arc_id] - self.arcs[arc_id * 2].cap
    }

    /// Node potentials (shortest-path duals) after [`Self::run`].
    pub fn potentials(&self) -> &[i64] {
        &self.potentials
    }

    /// Computes a min-cost max-flow from `s` to `t`.
    ///
    /// Returns `(total_flow, total_cost)`. Arc costs may be negative as long
    /// as the network has no negative-cost directed cycle (true for all
    /// networks LEGO builds, which are DAG-shaped plus source/sink arcs).
    pub fn run(&mut self, s: usize, t: usize) -> (i64, i64) {
        let n = self.graph.len();
        self.bellman_ford_init(s);
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;

        loop {
            // Dijkstra over reduced costs.
            let mut dist = vec![INF; n];
            let mut prev_arc = vec![usize::MAX; n];
            let mut heap = BinaryHeap::new();
            dist[s] = 0;
            heap.push(Reverse((0i64, s)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v] {
                    continue;
                }
                for &ai in &self.graph[v] {
                    let arc = self.arcs[ai];
                    if arc.cap <= 0 {
                        continue;
                    }
                    let rc = arc.cost + self.potentials[v] - self.potentials[arc.to];
                    debug_assert!(rc >= 0, "negative reduced cost: potentials invalid");
                    let nd = d + rc;
                    if nd < dist[arc.to] {
                        dist[arc.to] = nd;
                        prev_arc[arc.to] = ai;
                        heap.push(Reverse((nd, arc.to)));
                    }
                }
            }
            if dist[t] >= INF {
                break;
            }
            // Update potentials; unreached nodes keep validity via clamping.
            for v in 0..n {
                self.potentials[v] += dist[v].min(dist[t]);
            }
            // Augment along the shortest path by its bottleneck.
            let mut bottleneck = INF;
            let mut v = t;
            while v != s {
                let ai = prev_arc[v];
                bottleneck = bottleneck.min(self.arcs[ai].cap);
                v = self.arcs[self.arcs[ai].rev].to;
            }
            let mut v = t;
            while v != s {
                let ai = prev_arc[v];
                self.arcs[ai].cap -= bottleneck;
                let rev = self.arcs[ai].rev;
                self.arcs[rev].cap += bottleneck;
                total_cost += bottleneck * self.arcs[ai].cost;
                v = self.arcs[rev].to;
            }
            total_flow += bottleneck;
        }
        (total_flow, total_cost)
    }

    /// Initializes potentials with Bellman-Ford distances from `s` so the
    /// first Dijkstra sees non-negative reduced costs.
    fn bellman_ford_init(&mut self, s: usize) {
        let n = self.graph.len();
        let mut dist = vec![INF; n];
        dist[s] = 0;
        // SPFA-style relaxation.
        let mut in_queue = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        in_queue[s] = true;
        let mut relaxations = 0usize;
        let budget = n.saturating_mul(self.arcs.len()).max(64);
        while let Some(v) = queue.pop_front() {
            in_queue[v] = false;
            for &ai in &self.graph[v] {
                let arc = self.arcs[ai];
                if arc.cap <= 0 || dist[v] >= INF {
                    continue;
                }
                let nd = dist[v] + arc.cost;
                if nd < dist[arc.to] {
                    dist[arc.to] = nd;
                    relaxations += 1;
                    assert!(
                        relaxations <= budget,
                        "negative cycle detected in flow network"
                    );
                    if !in_queue[arc.to] {
                        in_queue[arc.to] = true;
                        queue.push_back(arc.to);
                    }
                }
            }
        }
        for (pot, &d) in self.potentials.iter_mut().zip(&dist).take(n) {
            // Unreachable nodes get potential 0; they are never on a path.
            *pot = if d >= INF { 0 } else { d };
        }
        // Clamp so reduced costs stay provably non-negative for arcs leaving
        // reachable nodes into unreachable ones (cap > 0 can't occur there:
        // if an arc with capacity existed, the head would be reachable).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut net = MinCostFlow::new(4);
        net.add_arc(0, 1, 5, 1);
        net.add_arc(1, 3, 5, 1);
        net.add_arc(0, 2, 5, 2);
        net.add_arc(2, 3, 5, 2);
        let (flow, cost) = net.run(0, 3);
        assert_eq!(flow, 10);
        assert_eq!(cost, 5 * 2 + 5 * 4);
    }

    #[test]
    fn prefers_cheap_route_first() {
        let mut net = MinCostFlow::new(3);
        let cheap = net.add_arc(0, 1, 3, 0);
        let pricey = net.add_arc(0, 1, 3, 10);
        net.add_arc(1, 2, 4, 0);
        let (flow, cost) = net.run(0, 2);
        assert_eq!(flow, 4);
        assert_eq!(cost, 10);
        assert_eq!(net.flow_on(cheap), 3);
        assert_eq!(net.flow_on(pricey), 1);
    }

    #[test]
    fn negative_costs_handled() {
        // DAG with a negative arc: still no negative cycle.
        let mut net = MinCostFlow::new(4);
        net.add_arc(0, 1, 2, 4);
        net.add_arc(0, 2, 2, 1);
        net.add_arc(2, 1, 2, -3);
        net.add_arc(1, 3, 4, 0);
        let (flow, cost) = net.run(0, 3);
        assert_eq!(flow, 4);
        // 2 units via 0→2→1 (cost -2 each), 2 units via 0→1 (cost 4 each).
        assert_eq!(cost, 2 * (1 - 3) + 2 * 4);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Classic case where a later augmentation must undo earlier flow.
        let mut net = MinCostFlow::new(4);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(0, 2, 1, 5);
        net.add_arc(1, 2, 1, -4);
        net.add_arc(1, 3, 1, 5);
        net.add_arc(2, 3, 1, 1);
        let (flow, cost) = net.run(0, 3);
        assert_eq!(flow, 2);
        // Optimal: 0→1→2→3 (1-4+1=-2) and 0→2... cap(2→3)=1. So
        // 0→1→2→3 = -2 and 0→2 is blocked at 2→3; use 0→1? cap used.
        // Best pair: 0→1→2→3 (-2) + rerouted 0→2→(residual 2→1)→1→3:
        // 5 + 4 + 5 = 14; total 12. Alternative 0→1→3 (6) + 0→2→3 (6) = 12.
        assert_eq!(cost, 12);
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = MinCostFlow::new(3);
        net.add_arc(0, 1, 1, 1);
        let (flow, cost) = net.run(0, 2);
        assert_eq!((flow, cost), (0, 0));
    }

    #[test]
    fn potentials_satisfy_reduced_cost_optimality() {
        let mut net = MinCostFlow::new(5);
        let arcs = [
            (0usize, 1usize, 3i64, 2i64),
            (0, 2, 2, 4),
            (1, 2, 2, 1),
            (1, 3, 2, 7),
            (2, 3, 4, 2),
            (3, 4, 5, 0),
        ];
        let mut ids = Vec::new();
        for &(u, v, c, w) in &arcs {
            ids.push((net.add_arc(u, v, c, w), u, v, c, w));
        }
        net.run(0, 4);
        let pi = net.potentials().to_vec();
        for &(id, u, v, _c, w) in &ids {
            let f = net.flow_on(id);
            let rc = w + pi[u] - pi[v];
            // Arcs with leftover capacity must have non-negative reduced cost;
            // arcs carrying flow must have non-positive reduced cost.
            if f < _c {
                assert!(rc >= 0, "arc {u}->{v} violates optimality");
            }
            if f > 0 {
                assert!(rc <= 0, "arc {u}->{v} with flow has positive reduced cost");
            }
        }
    }
}
