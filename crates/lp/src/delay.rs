//! Exact delay matching (paper §V-A).
//!
//! Every component in the DAG must see all of its inputs at the same cycle,
//! so pipeline registers are inserted on edges. Minimizing the inserted
//! register bits is the LP
//!
//! ```text
//! min Σ W_uv · EL_uv      s.t.  EL_uv = D_v − D_u − L_uv ≥ 0
//! ```
//!
//! where `W` is the edge bit-width and `L` the required latency of the edge
//! (the head component's internal latency). The constraint matrix is a
//! network matrix, so the LP dual is a min-cost transshipment on the same
//! graph: find arc flows `y ≥ 0` with node balance `Σ_in y − Σ_out y = a_w`
//! (`a_w` = in-width minus out-width) maximizing `Σ L·y`. We solve that with
//! [`MinCostFlow`] and read the primal `D` off the optimal node potentials —
//! an exact integral optimum, no external LP solver required.

use crate::mcmf::MinCostFlow;

/// One DAG edge participating in delay matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayEdge {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Bit-width of the signal — the per-cycle register cost.
    pub width: i64,
    /// Latency this edge must provide at minimum (the head's internal
    /// latency plus any latency already attached to the wire).
    pub latency: i64,
}

/// Result of delay matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayAssignment {
    /// Arrival cycle `D_v` of each node's output, normalized to min 0.
    pub node_delay: Vec<i64>,
    /// Extra pipeline registers `EL_uv` per edge, in input order.
    pub extra_latency: Vec<i64>,
    /// Total inserted register bits `Σ W·EL` (the LP objective).
    pub register_cost: i64,
}

/// Errors from [`solve_delay_matching`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayError {
    /// The graph contains a directed cycle; delays cannot be matched.
    Cyclic,
    /// An edge references a node `>= n`.
    NodeOutOfRange,
    /// An edge has a negative width.
    NegativeWidth,
}

impl std::fmt::Display for DelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelayError::Cyclic => write!(f, "delay matching requires an acyclic graph"),
            DelayError::NodeOutOfRange => write!(f, "edge endpoint out of range"),
            DelayError::NegativeWidth => write!(f, "edge width must be non-negative"),
        }
    }
}

impl std::error::Error for DelayError {}

/// Solves the delay-matching LP exactly.
///
/// Returns per-node arrival times and per-edge inserted register counts that
/// minimize total register bits. Nodes not touched by any edge get delay 0.
///
/// # Errors
///
/// Returns [`DelayError::Cyclic`] if the edges form a directed cycle,
/// [`DelayError::NodeOutOfRange`] / [`DelayError::NegativeWidth`] on
/// malformed input.
///
/// Note that *independent* sources are freely schedulable: the controller
/// can simply start one read port later, so only *reconvergent* paths force
/// real registers (exactly the paper's semantics, where the timestamp is
/// local to each component).
///
/// # Examples
///
/// ```
/// use lego_lp::{solve_delay_matching, DelayEdge};
///
/// // One source feeding the same sink over a 1-cycle and a 3-cycle path:
/// // the short path needs 2 extra registers of 8 bits.
/// let edges = [
///     DelayEdge { from: 0, to: 1, width: 8, latency: 1 },
///     DelayEdge { from: 0, to: 1, width: 16, latency: 3 },
/// ];
/// let sol = solve_delay_matching(2, &edges).unwrap();
/// assert_eq!(sol.register_cost, 8 * 2);
/// ```
pub fn solve_delay_matching(n: usize, edges: &[DelayEdge]) -> Result<DelayAssignment, DelayError> {
    for e in edges {
        if e.from >= n || e.to >= n {
            return Err(DelayError::NodeOutOfRange);
        }
        if e.width < 0 {
            return Err(DelayError::NegativeWidth);
        }
    }
    if !is_dag(n, edges) {
        return Err(DelayError::Cyclic);
    }

    // Node balance a_w = Σ_in W − Σ_out W.
    let mut a = vec![0i64; n];
    for e in edges {
        a[e.to] += e.width;
        a[e.from] -= e.width;
    }
    let total_supply: i64 = a.iter().filter(|&&x| x < 0).map(|&x| -x).sum();

    let s = n;
    let t = n + 1;
    let mut net = MinCostFlow::new(n + 2);
    for e in edges {
        // The feasible point y = W routes at most total_supply extra units
        // through any single arc, so this capacity is effectively infinite.
        net.add_arc(e.from, e.to, e.width + total_supply, -e.latency);
    }
    for (w, &bal) in a.iter().enumerate() {
        if bal < 0 {
            net.add_arc(s, w, -bal, 0);
        } else if bal > 0 {
            net.add_arc(w, t, bal, 0);
        }
    }
    let (flow, _cost) = net.run(s, t);
    debug_assert_eq!(flow, total_supply, "transshipment must saturate");

    // Primal solution from the dual potentials: D_w = −π_w.
    let pi = net.potentials();
    let mut node_delay: Vec<i64> = (0..n).map(|w| -pi[w]).collect();
    // Isolated nodes keep delay 0 after normalization; normalize over nodes
    // that participate in at least one edge.
    let mut touched = vec![false; n];
    for e in edges {
        touched[e.from] = true;
        touched[e.to] = true;
    }
    if let Some(min) = node_delay
        .iter()
        .zip(&touched)
        .filter(|(_, &t)| t)
        .map(|(&d, _)| d)
        .min()
    {
        for (d, &t) in node_delay.iter_mut().zip(&touched) {
            if t {
                *d -= min;
            } else {
                *d = 0;
            }
        }
    }

    let mut register_cost = 0i64;
    let extra_latency: Vec<i64> = edges
        .iter()
        .map(|e| {
            let el = node_delay[e.to] - node_delay[e.from] - e.latency;
            debug_assert!(el >= 0, "delay matching produced negative slack");
            register_cost += el * e.width;
            el
        })
        .collect();

    Ok(DelayAssignment {
        node_delay,
        extra_latency,
        register_cost,
    })
}

fn is_dag(n: usize, edges: &[DelayEdge]) -> bool {
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        indeg[e.to] += 1;
        out[e.from].push(e.to);
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop_front() {
        seen += 1;
        for &w in &out[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push_back(w);
            }
        }
    }
    seen == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{solve_lp, Constraint, LpProblem, LpResult, Relation};

    /// Solves the same LP with the dense simplex as an oracle.
    fn simplex_oracle(n: usize, edges: &[DelayEdge]) -> f64 {
        // Variables: D_0..D_{n-1} >= 0 (differences make the bound harmless).
        let objective: Vec<f64> = {
            let mut c = vec![0.0; n];
            for e in edges {
                c[e.to] += e.width as f64;
                c[e.from] -= e.width as f64;
            }
            c
        };
        let constraints = edges
            .iter()
            .map(|e| {
                let mut coeffs = vec![0.0; n];
                coeffs[e.to] += 1.0;
                coeffs[e.from] -= 1.0;
                Constraint {
                    coeffs,
                    rel: Relation::Ge,
                    rhs: e.latency as f64,
                }
            })
            .collect();
        let p = LpProblem {
            objective,
            minimize: true,
            constraints,
        };
        match solve_lp(&p) {
            LpResult::Optimal { objective, .. } => {
                let base: f64 = edges.iter().map(|e| (e.width * e.latency) as f64).sum();
                objective - base
            }
            other => panic!("oracle failed: {other:?}"),
        }
    }

    #[test]
    fn independent_sources_are_rescheduled_for_free() {
        // Two distinct sources joining at node 2: the controller can start
        // source 0 two cycles late, so no registers are needed.
        let edges = [
            DelayEdge {
                from: 0,
                to: 2,
                width: 8,
                latency: 1,
            },
            DelayEdge {
                from: 1,
                to: 2,
                width: 16,
                latency: 3,
            },
        ];
        let sol = solve_delay_matching(3, &edges).unwrap();
        assert_eq!(sol.register_cost, 0);
        assert_eq!(sol.node_delay[2] - sol.node_delay[0], 1);
        assert_eq!(sol.node_delay[2] - sol.node_delay[1], 3);
    }

    #[test]
    fn reconvergent_paths_force_registers() {
        // The same source reaching one sink over unequal paths: registers
        // must balance, and the LP pads the cheaper (8-bit) edge.
        let edges = [
            DelayEdge {
                from: 0,
                to: 1,
                width: 8,
                latency: 1,
            },
            DelayEdge {
                from: 0,
                to: 1,
                width: 16,
                latency: 3,
            },
        ];
        let sol = solve_delay_matching(2, &edges).unwrap();
        assert_eq!(sol.register_cost, 16);
        assert_eq!(sol.extra_latency, vec![2, 0]);
    }

    #[test]
    fn shared_source_prefers_light_edge_registers() {
        // Source 0 fans out to 1 (L=1) and 2 (L=3), both feed 3 (L=1, L=1).
        let edges = [
            DelayEdge {
                from: 0,
                to: 1,
                width: 8,
                latency: 1,
            },
            DelayEdge {
                from: 0,
                to: 2,
                width: 8,
                latency: 3,
            },
            DelayEdge {
                from: 1,
                to: 3,
                width: 32,
                latency: 1,
            },
            DelayEdge {
                from: 2,
                to: 3,
                width: 32,
                latency: 1,
            },
        ];
        let sol = solve_delay_matching(4, &edges).unwrap();
        // Equalize by padding the 8-bit 0→1 edge, not a 32-bit edge.
        assert_eq!(sol.register_cost, 2 * 8);
        assert_eq!(sol.extra_latency, vec![2, 0, 0, 0]);
    }

    #[test]
    fn already_matched_costs_nothing() {
        let edges = [
            DelayEdge {
                from: 0,
                to: 1,
                width: 8,
                latency: 2,
            },
            DelayEdge {
                from: 1,
                to: 2,
                width: 8,
                latency: 1,
            },
        ];
        let sol = solve_delay_matching(3, &edges).unwrap();
        assert_eq!(sol.register_cost, 0);
        assert_eq!(sol.node_delay, vec![0, 2, 3]);
    }

    #[test]
    fn cycle_rejected() {
        let edges = [
            DelayEdge {
                from: 0,
                to: 1,
                width: 1,
                latency: 1,
            },
            DelayEdge {
                from: 1,
                to: 0,
                width: 1,
                latency: 1,
            },
        ];
        assert_eq!(solve_delay_matching(2, &edges), Err(DelayError::Cyclic));
    }

    #[test]
    fn bad_inputs_rejected() {
        let e = DelayEdge {
            from: 0,
            to: 5,
            width: 1,
            latency: 0,
        };
        assert_eq!(
            solve_delay_matching(2, &[e]),
            Err(DelayError::NodeOutOfRange)
        );
        let e = DelayEdge {
            from: 0,
            to: 1,
            width: -1,
            latency: 0,
        };
        assert_eq!(
            solve_delay_matching(2, &[e]),
            Err(DelayError::NegativeWidth)
        );
    }

    #[test]
    fn isolated_nodes_untouched() {
        let edges = [DelayEdge {
            from: 1,
            to: 3,
            width: 4,
            latency: 2,
        }];
        let sol = solve_delay_matching(5, &edges).unwrap();
        assert_eq!(sol.node_delay[0], 0);
        assert_eq!(sol.node_delay[2], 0);
        assert_eq!(sol.node_delay[4], 0);
        assert_eq!(sol.register_cost, 0);
    }

    #[test]
    fn matches_simplex_on_random_dags() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..200 {
            let n = rng.gen_range(2..=7);
            let m = rng.gen_range(1..=12);
            let mut edges = Vec::new();
            for _ in 0..m {
                // Ensure acyclicity: edges only go up in node index.
                let from = rng.gen_range(0..n - 1);
                let to = rng.gen_range(from + 1..n);
                edges.push(DelayEdge {
                    from,
                    to,
                    width: rng.gen_range(1..=8),
                    latency: rng.gen_range(0..=4),
                });
            }
            let sol = solve_delay_matching(n, &edges).unwrap();
            for (e, &el) in edges.iter().zip(&sol.extra_latency) {
                assert!(el >= 0);
                assert_eq!(
                    sol.node_delay[e.to] - sol.node_delay[e.from],
                    e.latency + el
                );
            }
            let oracle = simplex_oracle(n, &edges);
            assert!(
                (sol.register_cost as f64 - oracle).abs() < 1e-6,
                "trial {trial}: network {} vs simplex {oracle}",
                sol.register_cost
            );
        }
    }
}
