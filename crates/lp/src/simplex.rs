//! Dense two-phase primal simplex over `f64`.
//!
//! Designed for the small LP instances that appear in tests and ablations;
//! the production delay-matching path uses the specialized network solver in
//! [`crate::delay`], which this module cross-validates.

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

/// One linear constraint `coeffs · x REL rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per variable.
    pub coeffs: Vec<f64>,
    /// Constraint relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients, one per variable.
    pub objective: Vec<f64>,
    /// `true` to minimize, `false` to maximize.
    pub minimize: bool,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Outcome of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution was found.
    Optimal {
        /// Optimal variable assignment.
        x: Vec<f64>,
        /// Objective value at `x` (in the problem's own sense).
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves a linear program with the two-phase primal simplex method.
///
/// Variables are implicitly constrained to `x ≥ 0`. Bland's rule is used for
/// pivot selection, so the method cannot cycle.
///
/// # Examples
///
/// ```
/// use lego_lp::{solve_lp, Constraint, LpProblem, LpResult, Relation};
///
/// // max x + y s.t. x + 2y <= 4, 3x + y <= 6
/// let p = LpProblem {
///     objective: vec![1.0, 1.0],
///     minimize: false,
///     constraints: vec![
///         Constraint { coeffs: vec![1.0, 2.0], rel: Relation::Le, rhs: 4.0 },
///         Constraint { coeffs: vec![3.0, 1.0], rel: Relation::Le, rhs: 6.0 },
///     ],
/// };
/// match solve_lp(&p) {
///     LpResult::Optimal { objective, .. } => assert!((objective - 2.8).abs() < 1e-6),
///     other => panic!("expected optimum, got {other:?}"),
/// }
/// ```
///
/// # Panics
///
/// Panics if a constraint's coefficient count differs from the objective's.
pub fn solve_lp(p: &LpProblem) -> LpResult {
    let n = p.objective.len();
    for c in &p.constraints {
        assert_eq!(c.coeffs.len(), n, "constraint arity mismatch");
    }
    let m = p.constraints.len();

    // Normalize rows to non-negative rhs and count auxiliary columns.
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = p
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                let coeffs: Vec<f64> = c.coeffs.iter().map(|v| -v).collect();
                let rel = match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (coeffs, rel, -c.rhs)
            } else {
                (c.coeffs.clone(), c.rel, c.rhs)
            }
        })
        .collect();

    let n_slack = rows
        .iter()
        .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, r, _)| matches!(r, Relation::Eq | Relation::Ge))
        .count();
    let total = n + n_slack + n_art;

    // Tableau: m rows × (total + 1) columns, last column is the rhs.
    let mut tab = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + n_slack;
    let mut artificials = Vec::new();

    for (i, (coeffs, rel, rhs)) in rows.drain(..).enumerate() {
        tab[i][..n].copy_from_slice(&coeffs);
        tab[i][total] = rhs;
        match rel {
            Relation::Le => {
                tab[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                tab[i][slack_idx] = -1.0;
                slack_idx += 1;
                tab[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                tab[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificial variables.
    if !artificials.is_empty() {
        let mut cost = vec![0.0f64; total + 1];
        for &a in &artificials {
            cost[a] = 1.0;
        }
        // Price out the basic artificials.
        let mut z = vec![0.0f64; total + 1];
        for (i, &b) in basis.iter().enumerate() {
            if cost[b] != 0.0 {
                for j in 0..=total {
                    z[j] += cost[b] * tab[i][j];
                }
            }
        }
        let mut reduced: Vec<f64> = (0..total).map(|j| cost[j] - z[j]).collect();
        let mut obj = z[total];
        if !iterate(&mut tab, &mut basis, &mut reduced, &mut obj, total) {
            // Phase 1 objective is bounded below by 0, so this cannot happen.
            unreachable!("phase 1 simplex reported unbounded");
        }
        if obj > 1e-7 {
            return LpResult::Infeasible;
        }
        // Drive any remaining artificial out of the basis if possible.
        for i in 0..m {
            if artificials.contains(&basis[i]) {
                if let Some(j) = (0..n + n_slack).find(|&j| tab[i][j].abs() > EPS) {
                    pivot(&mut tab, &mut basis, i, j, total);
                } else {
                    // Redundant row; leave the artificial at value 0.
                }
            }
        }
    }

    // Phase 2: optimize the real objective (internally: minimize).
    let sign = if p.minimize { 1.0 } else { -1.0 };
    let mut cost = vec![0.0f64; total + 1];
    for (c, &obj) in cost.iter_mut().zip(&p.objective).take(n) {
        *c = sign * obj;
    }
    for &a in &artificials {
        cost[a] = 1e12; // keep artificials pinned at zero
    }
    let mut z = vec![0.0f64; total + 1];
    for (i, &b) in basis.iter().enumerate() {
        if cost[b] != 0.0 {
            for j in 0..=total {
                z[j] += cost[b] * tab[i][j];
            }
        }
    }
    let mut reduced: Vec<f64> = (0..total).map(|j| cost[j] - z[j]).collect();
    let mut obj = z[total];
    if !iterate(&mut tab, &mut basis, &mut reduced, &mut obj, total) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = tab[i][total];
        }
    }
    let objective: f64 = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpResult::Optimal { x, objective }
}

/// Runs simplex iterations with Bland's rule. Returns `false` on unbounded.
fn iterate(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    reduced: &mut [f64],
    obj: &mut f64,
    total: usize,
) -> bool {
    loop {
        // Bland's rule: smallest index with negative reduced cost.
        let Some(enter) = (0..total).find(|&j| reduced[j] < -EPS) else {
            return true;
        };
        // Ratio test, again breaking ties by smallest basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, row) in tab.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[total] / row[enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded
        };
        let delta = reduced[enter] * best;
        pivot_with_reduced(tab, basis, reduced, leave, enter, total);
        *obj += delta;
    }
}

fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let piv = tab[row][col];
    for v in tab[row].iter_mut() {
        *v /= piv;
    }
    let pivot_row = tab[row].clone();
    for (i, r) in tab.iter_mut().enumerate() {
        if i != row && r[col].abs() > EPS {
            let f = r[col];
            for (v, &pv) in r.iter_mut().zip(&pivot_row).take(total + 1) {
                *v -= f * pv;
            }
        }
    }
    basis[row] = col;
}

fn pivot_with_reduced(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    reduced: &mut [f64],
    row: usize,
    col: usize,
    total: usize,
) {
    pivot(tab, basis, row, col, total);
    let f = reduced[col];
    if f.abs() > EPS {
        for (j, r) in reduced.iter_mut().enumerate() {
            *r -= f * tab[row][j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(p: &LpProblem) -> (Vec<f64>, f64) {
        match solve_lp(p) {
            LpResult::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → 36 at (2, 6).
        let p = LpProblem {
            objective: vec![3.0, 5.0],
            minimize: false,
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Relation::Le,
                    rhs: 4.0,
                },
                Constraint {
                    coeffs: vec![0.0, 2.0],
                    rel: Relation::Le,
                    rhs: 12.0,
                },
                Constraint {
                    coeffs: vec![3.0, 2.0],
                    rel: Relation::Le,
                    rhs: 18.0,
                },
            ],
        };
        let (x, obj) = optimal(&p);
        assert!((obj - 36.0).abs() < 1e-6);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → 9 at (4 - 0, ...): x=4,y=0 gives 8.
        let p = LpProblem {
            objective: vec![2.0, 3.0],
            minimize: true,
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 1.0],
                    rel: Relation::Ge,
                    rhs: 4.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Relation::Ge,
                    rhs: 1.0,
                },
            ],
        };
        let (x, obj) = optimal(&p);
        assert!((obj - 8.0).abs() < 1e-6, "got {obj} at {x:?}");
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x <= 2 → x=0, y=3, obj=3.
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0, 2.0],
                    rel: Relation::Eq,
                    rhs: 6.0,
                },
                Constraint {
                    coeffs: vec![1.0, 0.0],
                    rel: Relation::Le,
                    rhs: 2.0,
                },
            ],
        };
        let (x, obj) = optimal(&p);
        assert!((obj - 3.0).abs() < 1e-6, "got {obj} at {x:?}");
        assert!((x[0] + 2.0 * x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let p = LpProblem {
            objective: vec![1.0],
            minimize: true,
            constraints: vec![
                Constraint {
                    coeffs: vec![1.0],
                    rel: Relation::Ge,
                    rhs: 5.0,
                },
                Constraint {
                    coeffs: vec![1.0],
                    rel: Relation::Le,
                    rhs: 2.0,
                },
            ],
        };
        assert_eq!(solve_lp(&p), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let p = LpProblem {
            objective: vec![1.0],
            minimize: false,
            constraints: vec![Constraint {
                coeffs: vec![1.0],
                rel: Relation::Ge,
                rhs: 1.0,
            }],
        };
        assert_eq!(solve_lp(&p), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2 with x,y >= 0: minimize y → y >= x + 2 → y = 2 at x = 0.
        let p = LpProblem {
            objective: vec![0.0, 1.0],
            minimize: true,
            constraints: vec![Constraint {
                coeffs: vec![1.0, -1.0],
                rel: Relation::Le,
                rhs: -2.0,
            }],
        };
        let (x, obj) = optimal(&p);
        assert!((obj - 2.0).abs() < 1e-6, "got {obj} at {x:?}");
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classic degenerate LP; Bland's rule must terminate.
        let p = LpProblem {
            objective: vec![0.75, -150.0, 0.02, -6.0],
            minimize: false,
            constraints: vec![
                Constraint {
                    coeffs: vec![0.25, -60.0, -0.04, 9.0],
                    rel: Relation::Le,
                    rhs: 0.0,
                },
                Constraint {
                    coeffs: vec![0.5, -90.0, -0.02, 3.0],
                    rel: Relation::Le,
                    rhs: 0.0,
                },
                Constraint {
                    coeffs: vec![0.0, 0.0, 1.0, 0.0],
                    rel: Relation::Le,
                    rhs: 1.0,
                },
            ],
        };
        let (_, obj) = optimal(&p);
        assert!(
            (obj - 0.05).abs() < 1e-6,
            "Beale's example optimum is 1/20, got {obj}"
        );
    }
}
