//! Assignment problems: Hungarian algorithm and reducer pin remapping.
//!
//! Pin reusing (paper §V-C, Figure 9) maps the original input pins of an
//! extracted reducer onto `max_k |A(k)|` physical pins, where `A(k)` is the
//! set of pins live in dataflow `k`. Each *distinct* (original pin, physical
//! pin) pair that is ever used costs one mux input, so the objective is to
//! reuse the same pair across dataflows wherever possible — the paper's 0-1
//! integer program. We solve small instances exactly by branch-and-bound and
//! fall back to a Hungarian-assignment greedy for larger ones.

/// Solves the square/rectangular assignment problem (minimization).
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`; requires
/// `rows <= cols`. Returns `(total_cost, assignment)` where
/// `assignment[i]` is the column matched to row `i`.
///
/// # Panics
///
/// Panics if `cost` is empty, ragged, or has more rows than columns.
///
/// # Examples
///
/// ```
/// let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
/// let (total, asg) = lego_lp::hungarian(&cost);
/// assert_eq!(total, 5);
/// assert_eq!(asg, vec![1, 0, 2]);
/// ```
pub fn hungarian(cost: &[Vec<i64>]) -> (i64, Vec<usize>) {
    let n = cost.len();
    assert!(n > 0, "hungarian: empty cost matrix");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "hungarian: ragged matrix"
    );
    assert!(n <= m, "hungarian: more rows than columns");

    const INF: i64 = i64::MAX / 4;
    // 1-indexed potentials-based O(n^2·m) implementation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; m + 1];
    let mut p = vec![0usize; m + 1]; // column -> row match (0 = free)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    (total, assignment)
}

/// Result of reducer pin remapping across dataflow configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinRemap {
    /// Number of physical pins the reducer keeps (`max_k |A(k)|`).
    pub physical_pins: usize,
    /// Per dataflow: `(original_pin, physical_pin)` pairs for live pins.
    pub mapping: Vec<Vec<(usize, usize)>>,
    /// Number of distinct `(original, physical)` pairs over all dataflows —
    /// the total mux-input count after remapping.
    pub distinct_pairs: usize,
}

/// Computes a pin remapping minimizing distinct (original, physical) pairs.
///
/// `active[k]` lists the original pins live in dataflow `k`. Instances with
/// a small search space are solved exactly by branch-and-bound; larger ones
/// use a Hungarian-assignment greedy that processes dataflows from most to
/// least populated, preferring already-used pairs.
///
/// # Examples
///
/// ```
/// // Figure 9: pins {A,B}, {A,C}, {B,C} over 3 dataflows fit in 2 physical
/// // pins; an optimal remap uses 4 distinct pairs or fewer than the 6 naive.
/// let remap = lego_lp::optimize_pin_remap(&[vec![0, 1], vec![0, 2], vec![1, 2]]);
/// assert_eq!(remap.physical_pins, 2);
/// assert!(remap.distinct_pairs <= 4);
/// ```
pub fn optimize_pin_remap(active: &[Vec<usize>]) -> PinRemap {
    let q = active.iter().map(Vec::len).max().unwrap_or(0);
    if q == 0 {
        return PinRemap {
            physical_pins: 0,
            mapping: vec![Vec::new(); active.len()],
            distinct_pairs: 0,
        };
    }
    let max_pin = active.iter().flatten().copied().max().unwrap_or(0);
    let pair_bits = (max_pin + 1) * q;

    // Order dataflows by descending live-pin count: the fullest dataflow
    // pins down the physical layout, the rest reuse it.
    let mut order: Vec<usize> = (0..active.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(active[k].len()));

    let exact_feasible = pair_bits <= 64 && q <= 5 && active.len() <= 6;
    let (pairs_used, mut mapping) = if exact_feasible {
        exact_search(active, &order, q)
    } else {
        greedy_search(active, &order, q)
    };

    for m in mapping.iter_mut() {
        m.sort_unstable();
    }
    PinRemap {
        physical_pins: q,
        mapping,
        distinct_pairs: pairs_used,
    }
}

/// Greedy: per dataflow, a Hungarian assignment that costs 0 for pairs seen
/// before and 1 for new pairs.
fn greedy_search(
    active: &[Vec<usize>],
    order: &[usize],
    q: usize,
) -> (usize, Vec<Vec<(usize, usize)>>) {
    let mut used = std::collections::HashSet::<(usize, usize)>::new();
    let mut mapping = vec![Vec::new(); active.len()];
    for &k in order {
        let pins = &active[k];
        if pins.is_empty() {
            continue;
        }
        let cost: Vec<Vec<i64>> = pins
            .iter()
            .map(|&p| (0..q).map(|j| i64::from(!used.contains(&(p, j)))).collect())
            .collect();
        let (_, asg) = hungarian(&cost);
        for (idx, &p) in pins.iter().enumerate() {
            used.insert((p, asg[idx]));
            mapping[k].push((p, asg[idx]));
        }
    }
    (used.len(), mapping)
}

/// Exact branch-and-bound over per-dataflow injective mappings, state = the
/// bitmask of (pin, physical) pairs already used.
fn exact_search(
    active: &[Vec<usize>],
    order: &[usize],
    q: usize,
) -> (usize, Vec<Vec<(usize, usize)>>) {
    struct Ctx<'a> {
        active: &'a [Vec<usize>],
        order: &'a [usize],
        q: usize,
        best: usize,
        best_mapping: Vec<Vec<(usize, usize)>>,
        current: Vec<Vec<(usize, usize)>>,
    }

    fn pair_bit(pin: usize, phys: usize, q: usize) -> u64 {
        1u64 << (pin * q + phys)
    }

    fn dfs(ctx: &mut Ctx, level: usize, used_mask: u64) {
        let cost_so_far = used_mask.count_ones() as usize;
        if cost_so_far >= ctx.best {
            return;
        }
        if level == ctx.order.len() {
            ctx.best = cost_so_far;
            ctx.best_mapping = ctx.current.clone();
            return;
        }
        let k = ctx.order[level];
        let pins = ctx.active[k].clone();
        // Enumerate injective assignments pins -> physical slots.
        fn assign(
            ctx: &mut Ctx,
            k: usize,
            pins: &[usize],
            idx: usize,
            taken: u32,
            used_mask: u64,
            level: usize,
        ) {
            if used_mask.count_ones() as usize >= ctx.best {
                return;
            }
            if idx == pins.len() {
                dfs(ctx, level + 1, used_mask);
                return;
            }
            let pin = pins[idx];
            // Prefer slots that reuse an existing pair (explored first).
            let mut slots: Vec<usize> = (0..ctx.q).filter(|&j| taken & (1 << j) == 0).collect();
            slots.sort_by_key(|&j| used_mask & pair_bit(pin, j, ctx.q) == 0);
            for j in slots {
                ctx.current[k].push((pin, j));
                assign(
                    ctx,
                    k,
                    pins,
                    idx + 1,
                    taken | (1 << j),
                    used_mask | pair_bit(pin, j, ctx.q),
                    level,
                );
                ctx.current[k].pop();
            }
        }
        assign(ctx, k, &pins, 0, 0, used_mask, level);
    }

    // Seed with the greedy result so pruning starts tight.
    let (greedy_cost, greedy_mapping) = greedy_search(active, order, q);
    let mut ctx = Ctx {
        active,
        order,
        q,
        best: greedy_cost + 1,
        best_mapping: greedy_mapping,
        current: vec![Vec::new(); active.len()],
    };
    dfs(&mut ctx, 0, 0);
    (ctx.best.min(greedy_cost), ctx.best_mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hungarian_identity() {
        let cost = vec![vec![0, 9], vec![9, 0]];
        let (total, asg) = hungarian(&cost);
        assert_eq!(total, 0);
        assert_eq!(asg, vec![0, 1]);
    }

    #[test]
    fn hungarian_rectangular() {
        let cost = vec![vec![5, 1, 9]];
        let (total, asg) = hungarian(&cost);
        assert_eq!(total, 1);
        assert_eq!(asg, vec![1]);
    }

    #[test]
    fn hungarian_matches_brute_force() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let n = rng.gen_range(1..=4);
            let m = rng.gen_range(n..=5);
            let cost: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0..20)).collect())
                .collect();
            let (total, asg) = hungarian(&cost);
            // Validity: injective.
            let mut seen = std::collections::HashSet::new();
            for &j in &asg {
                assert!(seen.insert(j));
            }
            // Optimality by brute force over permutations.
            let mut cols: Vec<usize> = (0..m).collect();
            let mut best = i64::MAX;
            permute(&mut cols, 0, n, &mut |perm| {
                let c: i64 = (0..n).map(|i| cost[i][perm[i]]).sum();
                best = best.min(c);
            });
            assert_eq!(total, best);
        }
    }

    fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(&cols[..n]);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }

    fn validate_remap(active: &[Vec<usize>], remap: &PinRemap) {
        assert_eq!(
            remap.physical_pins,
            active.iter().map(Vec::len).max().unwrap_or(0)
        );
        let mut pairs = std::collections::HashSet::new();
        for (k, pins) in active.iter().enumerate() {
            let mapped: std::collections::HashMap<usize, usize> =
                remap.mapping[k].iter().copied().collect();
            assert_eq!(mapped.len(), pins.len(), "dataflow {k}: wrong count");
            let mut phys = std::collections::HashSet::new();
            for &p in pins {
                let j = *mapped
                    .get(&p)
                    .unwrap_or_else(|| panic!("pin {p} unmapped in {k}"));
                assert!(j < remap.physical_pins);
                assert!(phys.insert(j), "dataflow {k}: physical pin reused");
                pairs.insert((p, j));
            }
        }
        assert_eq!(pairs.len(), remap.distinct_pairs);
    }

    #[test]
    fn figure9_example() {
        // Three dataflows over pins {A,B,C} = {0,1,2}, two live at a time.
        let active = vec![vec![0, 1], vec![0, 2], vec![1, 2]];
        let remap = optimize_pin_remap(&active);
        validate_remap(&active, &remap);
        assert_eq!(remap.physical_pins, 2);
        // Paper Figure 9 reaches "# remapped pins = 2"-style sharing; the
        // distinct-pair optimum for this instance is 4 (6 naive).
        assert_eq!(remap.distinct_pairs, 4);
    }

    #[test]
    fn single_dataflow_uses_each_pin_once() {
        let active = vec![vec![3, 5, 7]];
        let remap = optimize_pin_remap(&active);
        validate_remap(&active, &remap);
        assert_eq!(remap.physical_pins, 3);
        assert_eq!(remap.distinct_pairs, 3);
    }

    #[test]
    fn identical_dataflows_share_everything() {
        let active = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2]];
        let remap = optimize_pin_remap(&active);
        validate_remap(&active, &remap);
        assert_eq!(remap.distinct_pairs, 3);
    }

    #[test]
    fn empty_input() {
        let remap = optimize_pin_remap(&[]);
        assert_eq!(remap.physical_pins, 0);
        assert_eq!(remap.distinct_pairs, 0);
        let remap = optimize_pin_remap(&[vec![]]);
        assert_eq!(remap.physical_pins, 0);
    }

    #[test]
    fn greedy_never_worse_than_naive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let k = rng.gen_range(1..=4);
            let total_pins: usize = rng.gen_range(1..=8);
            let active: Vec<Vec<usize>> = (0..k)
                .map(|_| {
                    let cnt = rng.gen_range(1..=total_pins.min(4));
                    let mut pins: Vec<usize> = (0..total_pins).collect();
                    for i in 0..cnt {
                        let j = rng.gen_range(i..total_pins);
                        pins.swap(i, j);
                    }
                    let mut chosen = pins[..cnt].to_vec();
                    chosen.sort_unstable();
                    chosen
                })
                .collect();
            let remap = optimize_pin_remap(&active);
            validate_remap(&active, &remap);
            let naive: usize = active.iter().map(Vec::len).sum();
            assert!(remap.distinct_pairs <= naive);
        }
    }
}
