//! A small directed multigraph with integer edge weights.

/// Node identifier (dense index into the graph's node set).
pub type NodeId = usize;

/// Edge identifier (dense index into the graph's edge list).
pub type EdgeId = usize;

/// A borrowed view of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Edge identifier.
    pub id: EdgeId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Weight (FIFO depth, latency, or any cost the caller chooses).
    pub weight: i64,
}

/// A directed multigraph over dense node indices `0..n`.
///
/// Parallel edges and self-loops are allowed; algorithms that cannot handle
/// them filter them out explicitly.
///
/// # Examples
///
/// ```
/// use lego_graph::DiGraph;
///
/// let mut g = DiGraph::new(2);
/// let e = g.add_edge(0, 1, 7);
/// assert_eq!(g.edge(e).weight, 7);
/// assert_eq!(g.out_edges(0).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    n: usize,
    edges: Vec<EdgeRef>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.n += 1;
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.n - 1
    }

    /// Adds a directed edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: i64) -> EdgeId {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push(EdgeRef {
            id,
            from,
            to,
            weight,
        });
        self.out[from].push(id);
        self.inc[to].push(id);
        id
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> EdgeRef {
        self.edges[id]
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over the out-edges of `v`.
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out[v].iter().map(move |&id| self.edges[id])
    }

    /// Iterates over the in-edges of `v`.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.inc[v].iter().map(move |&id| self.edges[id])
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v].len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_bookkeeping() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 2);
        g.add_edge(2, 1, 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.in_degree(0), 0);
        let targets: Vec<_> = g.out_edges(0).map(|e| e.to).collect();
        assert_eq!(targets, vec![1, 2]);
    }

    #[test]
    fn parallel_edges_and_loops_allowed() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 1, 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.in_degree(1), 3);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = DiGraph::new(0);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 5);
        assert_eq!(g.node_count(), 2);
    }
}
