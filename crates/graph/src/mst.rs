//! Undirected minimum spanning forest (Kruskal).
//!
//! Used by the back end's broadcast pin rewiring (paper §V-B): for each
//! broadcast source, direct edges to every destination and forwarding edges
//! between spatially adjacent destinations compete; the MST picks the
//! cheapest mix of broadcast and forwarding.

use crate::digraph::{DiGraph, EdgeId};
use crate::unionfind::UnionFind;

/// Computes a minimum spanning forest of `g` viewed as an undirected graph.
///
/// Returns the selected edge ids. If the graph is connected, the result is a
/// spanning tree with `node_count() - 1` edges; otherwise one tree per
/// component. Self-loops are never selected.
///
/// # Examples
///
/// ```
/// use lego_graph::{undirected_mst, DiGraph};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 4);
/// g.add_edge(1, 2, 1);
/// g.add_edge(0, 2, 2);
/// let mst = undirected_mst(&g);
/// let cost: i64 = mst.iter().map(|&id| g.edge(id).weight).sum();
/// assert_eq!(cost, 3);
/// ```
pub fn undirected_mst(g: &DiGraph) -> Vec<EdgeId> {
    let mut ids: Vec<EdgeId> = g.edges().filter(|e| e.from != e.to).map(|e| e.id).collect();
    ids.sort_by_key(|&id| (g.edge(id).weight, id));
    let mut uf = UnionFind::new(g.node_count());
    let mut chosen = Vec::new();
    for id in ids {
        let e = g.edge(id);
        if uf.union(e.from, e.to) {
            chosen.push(id);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_tree_of_connected_graph() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(0, 3, 10);
        g.add_edge(0, 2, 10);
        let mst = undirected_mst(&g);
        assert_eq!(mst.len(), 3);
        let cost: i64 = mst.iter().map(|&id| g.edge(id).weight).sum();
        assert_eq!(cost, 6);
    }

    #[test]
    fn forest_for_disconnected_graph() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let mst = undirected_mst(&g);
        assert_eq!(mst.len(), 2);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0, 0);
        g.add_edge(0, 1, 5);
        let mst = undirected_mst(&g);
        assert_eq!(mst.len(), 1);
        assert_eq!(g.edge(mst[0]).weight, 5);
    }

    #[test]
    fn matches_brute_force_cost_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let n = rng.gen_range(2..=6);
            let mut g = DiGraph::new(n);
            // Random connected graph: a random spanning path plus extras.
            for v in 1..n {
                g.add_edge(v - 1, v, rng.gen_range(1..=9));
            }
            for _ in 0..rng.gen_range(0..6) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                g.add_edge(a, b, rng.gen_range(1..=9));
            }
            let mst = undirected_mst(&g);
            assert_eq!(mst.len(), n - 1);
            let cost: i64 = mst.iter().map(|&id| g.edge(id).weight).sum();
            // Oracle: Prim's algorithm.
            let mut in_tree = vec![false; n];
            in_tree[0] = true;
            let mut oracle = 0i64;
            for _ in 1..n {
                let mut best: Option<(i64, usize)> = None;
                for e in g.edges() {
                    if e.from == e.to {
                        continue;
                    }
                    for (a, b) in [(e.from, e.to), (e.to, e.from)] {
                        if in_tree[a] && !in_tree[b] && best.is_none_or(|(w, _)| e.weight < w) {
                            best = Some((e.weight, b));
                        }
                    }
                }
                let (w, v) = best.expect("graph is connected");
                oracle += w;
                in_tree[v] = true;
            }
            assert_eq!(cost, oracle);
        }
    }
}
