//! Minimum spanning arborescence (directed MST) — Chu-Liu/Edmonds.
//!
//! The LEGO front end models every feasible FU interconnection as a directed
//! edge weighted by its delay-FIFO depth, then extracts the cheapest set of
//! connections that still gives each FU exactly one valid data source: a
//! minimum spanning arborescence rooted at a virtual memory node
//! (paper §IV-B, citing Tarjan's formulation of Chu-Liu/Edmonds).

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Result of a minimum spanning arborescence computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arborescence {
    /// Total weight of the selected edges.
    pub cost: i64,
    /// Selected edge ids (exactly one incoming edge per non-root node).
    pub edges: Vec<EdgeId>,
}

#[derive(Clone, Copy)]
struct Ed {
    from: usize,
    to: usize,
    w: i64,
    parent_idx: usize,
}

/// Computes a minimum spanning arborescence of `g` rooted at `root`.
///
/// Returns `None` if some node is unreachable from the root. Self-loops are
/// ignored; parallel edges are allowed.
///
/// # Examples
///
/// ```
/// use lego_graph::{min_spanning_arborescence, DiGraph};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 5);
/// g.add_edge(0, 2, 1);
/// g.add_edge(2, 1, 1);
/// let arb = min_spanning_arborescence(&g, 0).unwrap();
/// assert_eq!(arb.cost, 2); // 0→2 (1) then 2→1 (1) beats 0→1 (5)
/// ```
pub fn min_spanning_arborescence(g: &DiGraph, root: NodeId) -> Option<Arborescence> {
    let edges: Vec<Ed> = g
        .edges()
        .map(|e| Ed {
            from: e.from,
            to: e.to,
            w: e.weight,
            parent_idx: e.id,
        })
        .collect();
    let chosen = mst_rec(g.node_count(), &edges, root)?;
    let edge_ids: Vec<EdgeId> = chosen.iter().map(|&i| edges[i].parent_idx).collect();
    let cost = edge_ids.iter().map(|&id| g.edge(id).weight).sum();
    Some(Arborescence {
        cost,
        edges: edge_ids,
    })
}

/// Recursive Chu-Liu/Edmonds. Returns indices into `edges` forming a minimum
/// arborescence over nodes `0..n` rooted at `root`.
fn mst_rec(n: usize, edges: &[Ed], root: usize) -> Option<Vec<usize>> {
    if n <= 1 {
        return Some(Vec::new());
    }
    // 1. Cheapest incoming edge per non-root node.
    let mut best: Vec<Option<usize>> = vec![None; n];
    for (i, e) in edges.iter().enumerate() {
        if e.to == root || e.from == e.to {
            continue;
        }
        if best[e.to].is_none_or(|b| e.w < edges[b].w) {
            best[e.to] = Some(i);
        }
    }
    if (0..n).any(|v| v != root && best[v].is_none()) {
        return None;
    }

    // 2. Look for a cycle among the chosen parent pointers.
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = on current path, 2 = done
    state[root] = 2;
    let mut cycle: Option<Vec<usize>> = None;
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut v = start;
        while state[v] == 0 {
            state[v] = 1;
            path.push(v);
            v = edges[best[v].expect("non-root has best edge")].from;
        }
        if state[v] == 1 {
            let pos = path.iter().position(|&x| x == v).expect("v on path");
            cycle = Some(path[pos..].to_vec());
        }
        for &u in &path {
            state[u] = 2;
        }
        if cycle.is_some() {
            break;
        }
    }

    let Some(cyc) = cycle else {
        // Acyclic: the greedy choice is the optimum.
        return Some(
            (0..n)
                .filter(|&v| v != root)
                .map(|v| best[v].expect("non-root has best edge"))
                .collect(),
        );
    };

    // 3. Contract the cycle into a super node.
    let mut in_cycle = vec![false; n];
    for &v in &cyc {
        in_cycle[v] = true;
    }
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for (v, slot) in comp.iter_mut().enumerate() {
        if !in_cycle[v] {
            *slot = next;
            next += 1;
        }
    }
    let super_id = next;
    next += 1;
    for &v in &cyc {
        comp[v] = super_id;
    }

    let mut new_edges = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let (cu, cv) = (comp[e.from], comp[e.to]);
        if cu == cv {
            continue;
        }
        // Edges entering the cycle are re-weighted by the cycle edge they
        // would displace (the classic Chu-Liu reduction).
        let w = if cv == super_id {
            e.w - edges[best[e.to].expect("cycle node has best edge")].w
        } else {
            e.w
        };
        new_edges.push(Ed {
            from: cu,
            to: cv,
            w,
            parent_idx: i,
        });
    }

    let sub = mst_rec(next, &new_edges, comp[root])?;
    let mut result: Vec<usize> = sub.iter().map(|&j| new_edges[j].parent_idx).collect();

    // 4. Expand: keep all cycle edges except the one displaced by the single
    // chosen edge that enters the contracted node.
    let enter = result
        .iter()
        .copied()
        .find(|&i| in_cycle[edges[i].to])
        .expect("arborescence must enter the contracted cycle");
    let v_star = edges[enter].to;
    for &v in &cyc {
        if v != v_star {
            result.push(best[v].expect("cycle node has best edge"));
        }
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive minimum arborescence for small graphs (test oracle).
    fn brute_force(g: &DiGraph, root: NodeId) -> Option<i64> {
        let n = g.node_count();
        let mut per_node: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for e in g.edges() {
            if e.to != root && e.from != e.to {
                per_node[e.to].push(e.id);
            }
        }
        let non_root: Vec<usize> = (0..n).filter(|&v| v != root).collect();
        if non_root.iter().any(|&v| per_node[v].is_empty()) {
            return None;
        }
        let mut best: Option<i64> = None;
        let mut pick = vec![0usize; non_root.len()];
        loop {
            // Check this combination forms an arborescence (all reach root).
            let mut parent = vec![usize::MAX; n];
            let mut cost = 0i64;
            for (slot, &v) in non_root.iter().enumerate() {
                let e = g.edge(per_node[v][pick[slot]]);
                parent[v] = e.from;
                cost += e.weight;
            }
            let ok = non_root.iter().all(|&v| {
                let mut cur = v;
                let mut steps = 0;
                while cur != root && steps <= n {
                    cur = parent[cur];
                    steps += 1;
                }
                cur == root
            });
            if ok {
                best = Some(best.map_or(cost, |b: i64| b.min(cost)));
            }
            // Next combination.
            let mut k = 0;
            loop {
                if k == pick.len() {
                    return best;
                }
                pick[k] += 1;
                if pick[k] < per_node[non_root[k]].len() {
                    break;
                }
                pick[k] = 0;
                k += 1;
            }
        }
    }

    fn validate(g: &DiGraph, root: NodeId, arb: &Arborescence) {
        let n = g.node_count();
        // One incoming edge per non-root node.
        let mut indeg = vec![0usize; n];
        let mut parent = vec![usize::MAX; n];
        for &id in &arb.edges {
            let e = g.edge(id);
            indeg[e.to] += 1;
            parent[e.to] = e.from;
        }
        assert_eq!(indeg[root], 0);
        for (v, &deg) in indeg.iter().enumerate() {
            if v != root {
                assert_eq!(deg, 1, "node {v} in-degree");
            }
        }
        // Everything reaches the root.
        for v in 0..n {
            let mut cur = v;
            let mut steps = 0;
            while cur != root {
                cur = parent[cur];
                steps += 1;
                assert!(steps <= n, "cycle detected");
            }
        }
    }

    #[test]
    fn chain_beats_direct() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 1, 1);
        let arb = min_spanning_arborescence(&g, 0).unwrap();
        validate(&g, 0, &arb);
        assert_eq!(arb.cost, 2);
    }

    #[test]
    fn cycle_contraction_case() {
        // Classic case that forces a contraction: 1 and 2 prefer each other.
        let mut g = DiGraph::new(3);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 1, 1);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 2, 12);
        let arb = min_spanning_arborescence(&g, 0).unwrap();
        validate(&g, 0, &arb);
        assert_eq!(arb.cost, 11); // 0→1 (10) + 1→2 (1)
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        assert!(min_spanning_arborescence(&g, 0).is_none());
    }

    #[test]
    fn single_node_is_trivial() {
        let g = DiGraph::new(1);
        let arb = min_spanning_arborescence(&g, 0).unwrap();
        assert_eq!(arb.cost, 0);
        assert!(arb.edges.is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xd1_5ea5e);
        for trial in 0..300 {
            let n = rng.gen_range(2..=5);
            let m = rng.gen_range(1..=9);
            let mut g = DiGraph::new(n);
            for _ in 0..m {
                let from = rng.gen_range(0..n);
                let to = rng.gen_range(0..n);
                let w = rng.gen_range(0..=8);
                g.add_edge(from, to, w);
            }
            let root = rng.gen_range(0..n);
            let expected = brute_force(&g, root);
            let actual = min_spanning_arborescence(&g, root);
            match (expected, actual) {
                (None, None) => {}
                (Some(c), Some(arb)) => {
                    validate(&g, root, &arb);
                    assert_eq!(arb.cost, c, "trial {trial}: wrong cost");
                }
                (e, a) => panic!(
                    "trial {trial}: feasibility mismatch {e:?} vs {:?}",
                    a.map(|x| x.cost)
                ),
            }
        }
    }
}
