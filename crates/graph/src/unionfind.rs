//! Union-find (disjoint set union) with path compression and union by rank.

/// Disjoint-set structure over dense indices `0..n`.
///
/// Used by the front end to partition FUs into *chains* — the sets of
/// functional units that can share data through direct interconnections for
/// a given spatial dataflow (paper §IV-C, Figure 5).
///
/// # Examples
///
/// ```
/// use lego_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Finds the canonical representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Groups all elements by set, returning the members of each set.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root = std::collections::BTreeMap::<usize, Vec<usize>>::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 4);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn groups_partition_everything() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 4);
        uf.union(1, 3);
        let groups = uf.groups();
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(groups.len(), 3);
    }
}
