//! Graph algorithms for LEGO's interconnection planning.
//!
//! The front end prunes the over-complete set of FU interconnections with a
//! *directed* minimum spanning tree — a minimum spanning arborescence — using
//! the Chu-Liu/Edmonds algorithm (the paper cites Tarjan's formulation,
//! §IV-B). The back end's broadcast rewiring (paper §V-B) uses an undirected
//! MST per broadcast source. This crate supplies those algorithms plus the
//! small supporting structures (union-find, topological sort, BFS orders).

pub mod arborescence;
pub mod digraph;
pub mod mst;
pub mod unionfind;

pub use arborescence::{min_spanning_arborescence, Arborescence};
pub use digraph::{DiGraph, EdgeId, EdgeRef, NodeId};
pub use mst::undirected_mst;
pub use unionfind::UnionFind;

/// Topologically sorts the nodes of a directed graph.
///
/// Returns `None` if the graph contains a directed cycle.
///
/// # Examples
///
/// ```
/// use lego_graph::{toposort, DiGraph};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 1);
/// g.add_edge(1, 2, 1);
/// let order = toposort(&g).unwrap();
/// assert_eq!(order, vec![0, 1, 2]);
/// ```
pub fn toposort(g: &DiGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for e in g.edges() {
        indeg[e.to] += 1;
    }
    let mut queue: std::collections::VecDeque<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for e in g.out_edges(v) {
            indeg[e.to] -= 1;
            if indeg[e.to] == 0 {
                queue.push_back(e.to);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Breadth-first order of nodes reachable from `start`.
///
/// # Examples
///
/// ```
/// use lego_graph::{bfs_order, DiGraph};
///
/// let mut g = DiGraph::new(4);
/// g.add_edge(0, 1, 1);
/// g.add_edge(0, 2, 1);
/// g.add_edge(2, 3, 1);
/// assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3]);
/// ```
pub fn bfs_order(g: &DiGraph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for e in g.out_edges(v) {
            if !seen[e.to] {
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toposort_detects_cycles() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        assert!(toposort(&g).is_none());
    }

    #[test]
    fn toposort_respects_edges() {
        let mut g = DiGraph::new(5);
        g.add_edge(3, 1, 1);
        g.add_edge(1, 4, 1);
        g.add_edge(0, 4, 1);
        g.add_edge(2, 3, 1);
        let order = toposort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(
                pos[e.from] < pos[e.to],
                "edge {}->{} violated",
                e.from,
                e.to
            );
        }
    }

    #[test]
    fn bfs_visits_reachable_only() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let order = bfs_order(&g, 0);
        assert_eq!(order, vec![0, 1]);
    }
}
