//! Versioned binary codec for [`EvalRequest`] / [`EvalReport`].
//!
//! Same discipline as the explorer's `Snapshot` codec: a fixed magic +
//! version header (plus a kind byte separating requests from reports),
//! little-endian fixed-width integers, `f64` as IEEE-754 bits, one tag
//! byte per enum/`Option`, and length-prefixed counts. Encoding is a pure
//! function of the value, so `encode → decode → encode` is byte-identical
//! — which is what lets a multi-host driver ship requests over any byte
//! transport, and lets CI pin a report file with `cmp`. Decoding validates
//! everything it reads and returns a [`CodecError`] — never panics — on
//! truncated or corrupt input.

use crate::objective::{BaseObjective, Objective, Objectives};
use crate::session::{CostSummary, EvalReport, EvalRequest, LayerReport, Provenance};
use lego_model::{CompressedFormat, MacroArea, SparseAccel, SparseHw, SpatialMapping, TechModel};
use lego_sim::{EnergyBreakdown, HwConfig, LayerPerf, ModelPerf};
use lego_workloads::{DensityModel, Layer, LayerKind, LayerSparsity, Model, Nonlinear};
use std::fmt;

/// File magic: identifies a LEGO evaluation codec payload.
const MAGIC: &[u8; 8] = b"LEGOEVAL";
/// Current codec version. Version 2 added the per-request cache-warmth
/// counters (`cache_hits`/`cache_misses`) to [`Provenance`]; version 3
/// added the session-minted `request_id`.
pub const VERSION: u8 = 3;
/// Kind byte for an encoded [`EvalRequest`].
const KIND_REQUEST: u8 = 1;
/// Kind byte for an encoded [`EvalReport`].
const KIND_REPORT: u8 = 2;

/// Every spatial dataflow the simulator knows, in canonical wire order.
pub const ALL_MAPPINGS: [SpatialMapping; 5] = [
    SpatialMapping::GemmMN,
    SpatialMapping::GemmKN,
    SpatialMapping::ConvIcOc,
    SpatialMapping::ConvOhOw,
    SpatialMapping::ConvKhOh,
];

/// Why a payload failed to decode (or to reach disk).
#[derive(Debug)]
pub enum CodecError {
    /// Input ended before the field starting at byte `at` was complete.
    Truncated {
        /// Offset of the incomplete field.
        at: usize,
        /// Bytes the field still needed.
        needed: usize,
    },
    /// The payload does not start with the evaluation-codec magic.
    BadMagic,
    /// The codec version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The kind byte does not match what the caller asked to decode.
    WrongKind {
        /// The kind the decoder expected.
        expected: u8,
        /// The kind byte found in the payload.
        found: u8,
    },
    /// An enum/option tag byte held an undefined value.
    InvalidTag {
        /// Which field was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// Well-formed data followed by garbage.
    TrailingBytes(usize),
    /// A framed payload's checksum did not match its bytes.
    ChecksumMismatch,
    /// A frame header announced a payload larger than the receiver's
    /// configured limit.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The receiver's limit.
        max: usize,
    },
    /// Reading or writing the payload file failed.
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { at, needed } => {
                write!(
                    f,
                    "payload truncated: needed {needed} more bytes at offset {at}"
                )
            }
            CodecError::BadMagic => write!(f, "not a LEGO evaluation payload (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported codec version {v} (this build reads {VERSION})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "payload kind {found:#04x}, expected {expected:#04x}")
            }
            CodecError::InvalidTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
            CodecError::InvalidUtf8 => write!(f, "payload string is not valid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the payload"),
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            CodecError::Io(e) => write!(f, "payload I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        CodecError::Io(e)
    }
}

/// Little-endian byte writer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.i64(x);
            }
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let at = self.pos;
        let end = at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                self.pos = end;
                Ok(&self.buf[at..end])
            }
            None => Err(CodecError::Truncated {
                at,
                needed: n - (self.buf.len() - at),
            }),
        }
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
    fn opt_i64(&mut self) -> Result<Option<i64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            tag => Err(CodecError::InvalidTag {
                what: "i64 option",
                tag,
            }),
        }
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            tag => Err(CodecError::InvalidTag {
                what: "f64 option",
                tag,
            }),
        }
    }
    fn done(&self) -> Result<(), CodecError> {
        match self.buf.len() - self.pos {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }
}

fn header(e: &mut Enc, kind: u8) {
    e.bytes(MAGIC);
    e.u8(VERSION);
    e.u8(kind);
}

fn check_header(d: &mut Dec<'_>, kind: u8) -> Result<(), CodecError> {
    if d.bytes(MAGIC.len())? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = d.u8()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let found = d.u8()?;
    if found != kind {
        return Err(CodecError::WrongKind {
            expected: kind,
            found,
        });
    }
    Ok(())
}

fn tag_of<T: PartialEq + Copy>(all: &[T], value: T, what: &'static str) -> u8 {
    all.iter()
        .position(|v| *v == value)
        .unwrap_or_else(|| panic!("unknown {what} variant"))
        .try_into()
        .expect("small tag")
}

fn from_tag<T: Copy>(all: &[T], tag: u8, what: &'static str) -> Result<T, CodecError> {
    all.get(tag as usize)
        .copied()
        .ok_or(CodecError::InvalidTag { what, tag })
}

fn encode_density(e: &mut Enc, d: DensityModel) {
    match d {
        DensityModel::Dense => e.u8(0),
        DensityModel::Uniform { permille } => {
            e.u8(1);
            e.u16(permille);
        }
        DensityModel::StructuredNM { n, m } => {
            e.u8(2);
            e.u8(n);
            e.u8(m);
        }
    }
}

fn decode_density(d: &mut Dec<'_>) -> Result<DensityModel, CodecError> {
    match d.u8()? {
        0 => Ok(DensityModel::Dense),
        1 => Ok(DensityModel::Uniform { permille: d.u16()? }),
        2 => Ok(DensityModel::StructuredNM {
            n: d.u8()?,
            m: d.u8()?,
        }),
        tag => Err(CodecError::InvalidTag {
            what: "density model",
            tag,
        }),
    }
}

fn encode_layer(e: &mut Enc, l: &Layer) {
    e.str(&l.name);
    match l.kind {
        LayerKind::Gemm { m, n, k } => {
            e.u8(0);
            e.i64(m);
            e.i64(n);
            e.i64(k);
        }
        LayerKind::Conv {
            n,
            ic,
            oc,
            oh,
            ow,
            kh,
            kw,
            stride,
        } => {
            e.u8(1);
            for v in [n, ic, oc, oh, ow, kh, kw, stride] {
                e.i64(v);
            }
        }
        LayerKind::DwConv {
            n,
            c,
            oh,
            ow,
            kh,
            kw,
            stride,
        } => {
            e.u8(2);
            for v in [n, c, oh, ow, kh, kw, stride] {
                e.i64(v);
            }
        }
        LayerKind::Attention {
            heads,
            seq_q,
            seq_kv,
            dk,
            dv,
        } => {
            e.u8(3);
            for v in [heads, seq_q, seq_kv, dk, dv] {
                e.i64(v);
            }
        }
    }
    e.i64(l.count);
    e.u32(l.nonlinear.len() as u32);
    for &(kind, elems) in &l.nonlinear {
        e.u8(match kind {
            Nonlinear::Activation => 0,
            Nonlinear::Softmax => 1,
            Nonlinear::Normalization => 2,
        });
        e.i64(elems);
    }
    encode_density(e, l.sparsity.weights);
    encode_density(e, l.sparsity.inputs);
    encode_density(e, l.sparsity.outputs);
}

fn decode_layer(d: &mut Dec<'_>) -> Result<Layer, CodecError> {
    let name = d.str()?;
    let kind = match d.u8()? {
        0 => LayerKind::Gemm {
            m: d.i64()?,
            n: d.i64()?,
            k: d.i64()?,
        },
        1 => LayerKind::Conv {
            n: d.i64()?,
            ic: d.i64()?,
            oc: d.i64()?,
            oh: d.i64()?,
            ow: d.i64()?,
            kh: d.i64()?,
            kw: d.i64()?,
            stride: d.i64()?,
        },
        2 => LayerKind::DwConv {
            n: d.i64()?,
            c: d.i64()?,
            oh: d.i64()?,
            ow: d.i64()?,
            kh: d.i64()?,
            kw: d.i64()?,
            stride: d.i64()?,
        },
        3 => LayerKind::Attention {
            heads: d.i64()?,
            seq_q: d.i64()?,
            seq_kv: d.i64()?,
            dk: d.i64()?,
            dv: d.i64()?,
        },
        tag => {
            return Err(CodecError::InvalidTag {
                what: "layer kind",
                tag,
            })
        }
    };
    let count = d.i64()?;
    let n_nonlinear = d.u32()?;
    // Never trust a wire length for allocation: corrupt input could
    // name a multi-gigabyte count. Grow as elements actually decode.
    let mut nonlinear = Vec::new();
    for _ in 0..n_nonlinear {
        let kind = match d.u8()? {
            0 => Nonlinear::Activation,
            1 => Nonlinear::Softmax,
            2 => Nonlinear::Normalization,
            tag => {
                return Err(CodecError::InvalidTag {
                    what: "nonlinear kind",
                    tag,
                })
            }
        };
        nonlinear.push((kind, d.i64()?));
    }
    let sparsity = LayerSparsity {
        weights: decode_density(d)?,
        inputs: decode_density(d)?,
        outputs: decode_density(d)?,
    };
    let mut layer = Layer::new(name, kind).repeat(count).with_sparsity(sparsity);
    layer.nonlinear = nonlinear;
    Ok(layer)
}

fn encode_hw(e: &mut Enc, hw: &HwConfig) {
    e.i64(hw.array.0);
    e.i64(hw.array.1);
    e.u32(hw.clusters.0);
    e.u32(hw.clusters.1);
    e.u64(hw.buffer_kb);
    e.f64(hw.dram_gbps);
    e.i64(hw.num_ppus);
    e.u32(hw.dataflows.len() as u32);
    for &m in &hw.dataflows {
        e.u8(tag_of(&ALL_MAPPINGS, m, "spatial mapping"));
    }
    e.f64(hw.static_mw);
    e.f64(hw.dynamic_mw);
}

fn decode_hw(d: &mut Dec<'_>) -> Result<HwConfig, CodecError> {
    let array = (d.i64()?, d.i64()?);
    let clusters = (d.u32()?, d.u32()?);
    let buffer_kb = d.u64()?;
    let dram_gbps = d.f64()?;
    let num_ppus = d.i64()?;
    let n_dataflows = d.u32()?;
    let mut dataflows = Vec::new();
    for _ in 0..n_dataflows {
        let tag = d.u8()?;
        dataflows.push(from_tag(&ALL_MAPPINGS, tag, "spatial mapping")?);
    }
    Ok(HwConfig {
        array,
        clusters,
        buffer_kb,
        dram_gbps,
        num_ppus,
        dataflows,
        static_mw: d.f64()?,
        dynamic_mw: d.f64()?,
    })
}

/// The authoritative [`TechModel`] field list, in wire order — shared by
/// the codec and the session's cache-key fingerprinting so a future field
/// cannot be serialized but silently missed in cache keys (or vice
/// versa).
pub(crate) fn tech_fields(t: &TechModel) -> [f64; 11] {
    [
        t.ff_area_um2,
        t.lut_area_um2,
        t.mult_area_um2_per_bit2,
        t.mux_area_um2_per_bit,
        t.ff_energy_pj,
        t.add_energy_pj_per_bit,
        t.mult_energy_pj_per_bit2,
        t.static_uw_per_um2,
        t.dram_pj_per_byte,
        t.noc_pj_per_byte_hop,
        t.freq_ghz,
    ]
}

fn encode_tech(e: &mut Enc, t: &TechModel) {
    for v in tech_fields(t) {
        e.f64(v);
    }
}

fn decode_tech(d: &mut Dec<'_>) -> Result<TechModel, CodecError> {
    Ok(TechModel {
        ff_area_um2: d.f64()?,
        lut_area_um2: d.f64()?,
        mult_area_um2_per_bit2: d.f64()?,
        mux_area_um2_per_bit: d.f64()?,
        ff_energy_pj: d.f64()?,
        add_energy_pj_per_bit: d.f64()?,
        mult_energy_pj_per_bit2: d.f64()?,
        static_uw_per_um2: d.f64()?,
        dram_pj_per_byte: d.f64()?,
        noc_pj_per_byte_hop: d.f64()?,
        freq_ghz: d.f64()?,
    })
}

fn encode_objective(e: &mut Enc, o: &Objective) {
    let base_tag = |b: BaseObjective| match b {
        BaseObjective::Edp => 0u8,
        BaseObjective::Edap => 1,
        BaseObjective::Latency => 2,
        BaseObjective::Energy => 3,
    };
    match *o {
        Objective::Base(base) => {
            e.u8(0);
            e.u8(base_tag(base));
        }
        Objective::Penalized {
            base,
            area_budget,
            power_budget,
            weight,
        } => {
            e.u8(1);
            e.u8(base_tag(base));
            e.opt_f64(area_budget);
            e.opt_f64(power_budget);
            e.f64(weight);
        }
        Objective::Lexicographic => e.u8(2),
    }
}

fn decode_base_objective(d: &mut Dec<'_>) -> Result<BaseObjective, CodecError> {
    match d.u8()? {
        0 => Ok(BaseObjective::Edp),
        1 => Ok(BaseObjective::Edap),
        2 => Ok(BaseObjective::Latency),
        3 => Ok(BaseObjective::Energy),
        tag => Err(CodecError::InvalidTag {
            what: "base objective",
            tag,
        }),
    }
}

fn decode_objective(d: &mut Dec<'_>) -> Result<Objective, CodecError> {
    match d.u8()? {
        0 => Ok(Objective::Base(decode_base_objective(d)?)),
        1 => Ok(Objective::Penalized {
            base: decode_base_objective(d)?,
            area_budget: d.opt_f64()?,
            power_budget: d.opt_f64()?,
            weight: d.f64()?,
        }),
        2 => Ok(Objective::Lexicographic),
        tag => Err(CodecError::InvalidTag {
            what: "objective",
            tag,
        }),
    }
}

fn encode_layer_perf(e: &mut Enc, p: &LayerPerf) {
    e.i64(p.cycles);
    e.f64(p.utilization);
    e.i64(p.macs);
    e.i64(p.dram_bytes);
    e.i64(p.l1_accesses);
    e.i64(p.ppu_cycles);
    e.i64(p.noc_cycles);
    e.f64(p.energy.mac_pj);
    e.f64(p.energy.sram_pj);
    e.f64(p.energy.dram_pj);
    e.f64(p.energy.noc_pj);
    e.f64(p.energy.static_pj);
    e.f64(p.energy.ppu_pj);
    e.f64(p.energy.sparse_pj);
    e.u8(tag_of(&ALL_MAPPINGS, p.mapping, "spatial mapping"));
}

fn decode_layer_perf(d: &mut Dec<'_>) -> Result<LayerPerf, CodecError> {
    let cycles = d.i64()?;
    let utilization = d.f64()?;
    let macs = d.i64()?;
    let dram_bytes = d.i64()?;
    let l1_accesses = d.i64()?;
    let ppu_cycles = d.i64()?;
    let noc_cycles = d.i64()?;
    let energy = EnergyBreakdown {
        mac_pj: d.f64()?,
        sram_pj: d.f64()?,
        dram_pj: d.f64()?,
        noc_pj: d.f64()?,
        static_pj: d.f64()?,
        ppu_pj: d.f64()?,
        sparse_pj: d.f64()?,
    };
    let tag = d.u8()?;
    let mapping = from_tag(&ALL_MAPPINGS, tag, "spatial mapping")?;
    Ok(LayerPerf {
        cycles,
        utilization,
        macs,
        dram_bytes,
        l1_accesses,
        ppu_cycles,
        noc_cycles,
        energy,
        mapping,
    })
}

impl EvalRequest {
    /// Encodes the request to its canonical byte representation
    /// (`encode → decode → encode` is byte-identical).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        header(&mut e, KIND_REQUEST);
        e.str(&self.workload.name);
        e.u32(self.workload.layers.len() as u32);
        for layer in &self.workload.layers {
            encode_layer(&mut e, layer);
        }
        encode_hw(&mut e, &self.hw);
        e.u8(tag_of(
            &SparseAccel::ALL,
            self.sparse.accel,
            "sparse feature",
        ));
        encode_tech(&mut e, &self.tech);
        encode_objective(&mut e, &self.objective);
        e.opt_i64(self.tile_cap);
        e.buf
    }

    /// Decodes a request, validating magic, version, kind, every enum tag,
    /// and that the input ends exactly where the data does.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first problem found;
    /// truncated or corrupt input never panics.
    pub fn decode(bytes: &[u8]) -> Result<EvalRequest, CodecError> {
        let mut d = Dec { buf: bytes, pos: 0 };
        check_header(&mut d, KIND_REQUEST)?;
        let name = d.str()?;
        let n_layers = d.u32()?;
        let mut layers = Vec::new();
        for _ in 0..n_layers {
            layers.push(decode_layer(&mut d)?);
        }
        let workload = Model { name, layers };
        let hw = decode_hw(&mut d)?;
        let accel_tag = d.u8()?;
        let sparse =
            SparseHw::with_accel(from_tag(&SparseAccel::ALL, accel_tag, "sparse feature")?);
        let tech = decode_tech(&mut d)?;
        let objective = decode_objective(&mut d)?;
        let tile_cap = d.opt_i64()?;
        d.done()?;
        let request = EvalRequest::new(workload, hw)
            .with_sparse(sparse)
            .with_tech(tech)
            .with_objective(objective)
            .with_tile_cap(tile_cap);
        Ok(request)
    }

    /// Writes the encoded request to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), CodecError> {
        std::fs::write(path, self.encode()).map_err(CodecError::Io)
    }

    /// Reads and decodes a request from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Io`] if the file cannot be read, or the codec
    /// error if its contents are invalid.
    pub fn read_from(path: &std::path::Path) -> Result<EvalRequest, CodecError> {
        EvalRequest::decode(&std::fs::read(path).map_err(CodecError::Io)?)
    }
}

impl EvalReport {
    /// Encodes the report to its canonical byte representation
    /// (`encode → decode → encode` is byte-identical).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        header(&mut e, KIND_REPORT);
        e.u32(self.per_layer.len() as u32);
        for l in &self.per_layer {
            e.str(&l.name);
            e.i64(l.count);
            encode_layer_perf(&mut e, &l.perf);
            e.u8(tag_of(
                &CompressedFormat::ALL,
                l.weight_format,
                "compressed format",
            ));
            e.u8(tag_of(
                &CompressedFormat::ALL,
                l.input_format,
                "compressed format",
            ));
        }
        e.i64(self.model.cycles);
        e.i64(self.model.ops);
        e.f64(self.model.gops);
        e.f64(self.model.watts);
        e.f64(self.model.gops_per_watt);
        e.f64(self.model.utilization);
        e.f64(self.model.ppu_fraction);
        e.f64(self.model.instr_gbps);
        e.f64(self.cost.objectives.latency_cycles);
        e.f64(self.cost.objectives.energy_pj);
        e.f64(self.cost.objectives.area_um2);
        e.f64(self.cost.area.array_um2);
        e.f64(self.cost.area.sram_um2);
        e.f64(self.cost.area.noc_um2);
        e.f64(self.cost.area.ppu_um2);
        e.f64(self.cost.peak_power_mw);
        encode_objective(&mut e, &self.cost.objective);
        e.f64(self.cost.score);
        e.str(&self.provenance.version);
        e.u8(self.provenance.codec_version);
        e.u64(self.provenance.request_fingerprint);
        e.u64(self.provenance.hw_key);
        e.u64(self.provenance.cache_hits);
        e.u64(self.provenance.cache_misses);
        e.u64(self.provenance.request_id);
        e.buf
    }

    /// Decodes a report, validating magic, version, kind, every enum tag,
    /// and that the input ends exactly where the data does.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first problem found;
    /// truncated or corrupt input never panics.
    pub fn decode(bytes: &[u8]) -> Result<EvalReport, CodecError> {
        let mut d = Dec { buf: bytes, pos: 0 };
        check_header(&mut d, KIND_REPORT)?;
        let n_layers = d.u32()?;
        let mut per_layer = Vec::new();
        for _ in 0..n_layers {
            let name = d.str()?;
            let count = d.i64()?;
            let perf = decode_layer_perf(&mut d)?;
            let w_tag = d.u8()?;
            let weight_format = from_tag(&CompressedFormat::ALL, w_tag, "compressed format")?;
            let i_tag = d.u8()?;
            let input_format = from_tag(&CompressedFormat::ALL, i_tag, "compressed format")?;
            per_layer.push(LayerReport {
                name: name.into(),
                count,
                perf,
                weight_format,
                input_format,
            });
        }
        let model = ModelPerf {
            cycles: d.i64()?,
            ops: d.i64()?,
            gops: d.f64()?,
            watts: d.f64()?,
            gops_per_watt: d.f64()?,
            utilization: d.f64()?,
            ppu_fraction: d.f64()?,
            instr_gbps: d.f64()?,
        };
        let objectives = Objectives {
            latency_cycles: d.f64()?,
            energy_pj: d.f64()?,
            area_um2: d.f64()?,
        };
        let area = MacroArea {
            array_um2: d.f64()?,
            sram_um2: d.f64()?,
            noc_um2: d.f64()?,
            ppu_um2: d.f64()?,
        };
        let peak_power_mw = d.f64()?;
        let objective = decode_objective(&mut d)?;
        let score = d.f64()?;
        let (version, codec_version) = (d.str()?, d.u8()?);
        let provenance = Provenance {
            version,
            codec_version,
            request_fingerprint: d.u64()?,
            hw_key: d.u64()?,
            cache_hits: d.u64()?,
            cache_misses: d.u64()?,
            request_id: d.u64()?,
        };
        d.done()?;
        Ok(EvalReport {
            per_layer,
            model,
            cost: CostSummary {
                objectives,
                area,
                peak_power_mw,
                objective,
                score,
            },
            provenance,
        })
    }

    /// Writes the encoded report to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), CodecError> {
        std::fs::write(path, self.encode()).map_err(CodecError::Io)
    }

    /// Reads and decodes a report from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Io`] if the file cannot be read, or the codec
    /// error if its contents are invalid.
    pub fn read_from(path: &std::path::Path) -> Result<EvalReport, CodecError> {
        EvalReport::decode(&std::fs::read(path).map_err(CodecError::Io)?)
    }
}
