//! Objective vectors and the scalarizations a request is scored under.
//!
//! These types moved down from `lego-explorer` when the evaluation layer
//! became its own crate: an [`EvalRequest`](crate::EvalRequest) names the
//! [`Objective`] it wants scored, the
//! [`CostSummary`](crate::CostSummary) echoes the score back, and the
//! explorer's search strategies minimize the same scalar — so a request
//! shipped to a remote worker and a local search agree on what "best"
//! means by construction.

/// The three objectives every candidate is scored on. Lower is better for
/// all of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// End-to-end model latency in cycles.
    pub latency_cycles: f64,
    /// End-to-end model energy in pJ.
    pub energy_pj: f64,
    /// Accelerator area in µm².
    pub area_um2: f64,
}

impl Objectives {
    /// Pareto dominance: no worse on every objective, strictly better on at
    /// least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.latency_cycles <= other.latency_cycles
            && self.energy_pj <= other.energy_pj
            && self.area_um2 <= other.area_um2;
        let better = self.latency_cycles < other.latency_cycles
            || self.energy_pj < other.energy_pj
            || self.area_um2 < other.area_um2;
        no_worse && better
    }

    /// Energy-delay product (cycles · pJ). The clock frequency is a
    /// constant of the technology model across the whole space, so this is
    /// a monotone transform of J·s and ranks identically.
    pub fn edp(&self) -> f64 {
        self.latency_cycles * self.energy_pj
    }

    /// Energy-delay-area product (cycles · pJ · µm²).
    pub fn edap(&self) -> f64 {
        self.edp() * self.area_um2
    }
}

/// A scalarization without penalties — the base of [`Objective`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BaseObjective {
    /// Energy-delay product (the default search fitness).
    #[default]
    Edp,
    /// Energy-delay-area product.
    Edap,
    /// Latency alone.
    Latency,
    /// Energy alone.
    Energy,
}

impl BaseObjective {
    /// The scalar score (lower is better).
    pub fn score(&self, o: &Objectives) -> f64 {
        match self {
            BaseObjective::Edp => o.edp(),
            BaseObjective::Edap => o.edap(),
            BaseObjective::Latency => o.latency_cycles,
            BaseObjective::Energy => o.energy_pj,
        }
    }
}

/// The scalarization a search minimizes (lower is better).
///
/// [`Objective::Penalized`] adds **soft** area/power budgets: a design
/// over budget is not disqualified (hard feasibility filtering is the
/// explorer's `Constraints`) but its score inflates in proportion to the
/// relative overshoot, steering a search toward the budget boundary
/// instead of walling it off. The two compose naturally — a hard outer
/// budget with a softer inner target is the SparseMap-style constrained
/// scalarization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// A plain base scalarization.
    Base(BaseObjective),
    /// `base` multiplied by `1 + weight · Σ relative-overshoot` over the
    /// soft budgets.
    Penalized {
        /// The underlying scalarization.
        base: BaseObjective,
        /// Soft area budget in µm² (`None` = no area penalty).
        area_budget: Option<f64>,
        /// Soft peak-power budget in mW (`None` = no power penalty).
        power_budget: Option<f64>,
        /// Penalty strength: score multiplier per 100 % overshoot.
        weight: f64,
    },
    /// Latency, then energy, then area: candidates compare on latency
    /// first and fall through to the next objective only on exact ties.
    /// Rank with [`Objective::key`]; the scalar [`Objective::score`] of a
    /// lexicographic objective is its leading component (latency), which
    /// is what a scalar-only consumer should see.
    Lexicographic,
}

impl Default for Objective {
    fn default() -> Self {
        Objective::EDP
    }
}

impl Objective {
    /// Plain energy-delay product (the historical default fitness).
    pub const EDP: Objective = Objective::Base(BaseObjective::Edp);

    /// Convenience constructor with budgets in engineering units
    /// (mm² / W) rather than the µm² / mW the score works in.
    pub fn penalized_edp(area_mm2: Option<f64>, power_w: Option<f64>, weight: f64) -> Self {
        Objective::Penalized {
            base: BaseObjective::Edp,
            area_budget: area_mm2.map(|a| a * 1e6),
            power_budget: power_w.map(|p| p * 1e3),
            weight,
        }
    }

    /// The scalar score of an evaluated design (lower is better).
    /// Penalties need the design's peak power, not just its objective
    /// vector.
    pub fn score(&self, objectives: &Objectives, peak_power_mw: f64) -> f64 {
        match *self {
            Objective::Base(base) => base.score(objectives),
            Objective::Lexicographic => objectives.latency_cycles,
            Objective::Penalized {
                base,
                area_budget,
                power_budget,
                weight,
            } => {
                let overshoot = |value: f64, budget: Option<f64>| match budget {
                    Some(cap) if cap > 0.0 => ((value - cap) / cap).max(0.0),
                    _ => 0.0,
                };
                let penalty = overshoot(objectives.area_um2, area_budget)
                    + overshoot(peak_power_mw, power_budget);
                base.score(objectives) * (1.0 + weight.max(0.0) * penalty)
            }
        }
    }

    /// The full ranking key (lower is better, compared element-wise
    /// left to right — `[f64; 3]`'s `PartialOrd` is exactly that).
    ///
    /// Scalar objectives put their score in the leading slot and zero the
    /// tie-breakers, so ranking by key ranks identically to ranking by
    /// [`score`](Objective::score) for them; the lexicographic objective
    /// fills all three slots with latency, energy, and area.
    pub fn key(&self, objectives: &Objectives, peak_power_mw: f64) -> [f64; 3] {
        match *self {
            Objective::Lexicographic => [
                objectives.latency_cycles,
                objectives.energy_pj,
                objectives.area_um2,
            ],
            _ => [self.score(objectives, peak_power_mw), 0.0, 0.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(lat: f64, en: f64, area: f64) -> Objectives {
        Objectives {
            latency_cycles: lat,
            energy_pj: en,
            area_um2: area,
        }
    }

    #[test]
    fn dominance_is_strict_and_partial() {
        let a = o(1.0, 1.0, 1.0);
        let b = o(2.0, 2.0, 2.0);
        let c = o(0.5, 3.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Equal objectives dominate in neither direction.
        assert!(!a.dominates(&a));
        // Trade-offs are incomparable.
        assert!(!a.dominates(&c) && !c.dominates(&a));
    }

    #[test]
    fn scalarizations_rank_as_expected() {
        let small = o(10.0, 1.0, 100.0); // edp 10, edap 1000
        let big = o(1.0, 8.0, 1.0); // edp 8, edap 8
        assert!(BaseObjective::Edp.score(&big) < BaseObjective::Edp.score(&small));
        assert!(BaseObjective::Edap.score(&big) < BaseObjective::Edap.score(&small));
        assert!(BaseObjective::Latency.score(&big) < BaseObjective::Latency.score(&small));
        assert!(BaseObjective::Energy.score(&small) < BaseObjective::Energy.score(&big));
    }

    #[test]
    fn penalized_objective_matches_base_inside_budget() {
        let p = o(10.0, 2.0, 1.5e6);
        let base = Objective::EDP;
        let soft = Objective::penalized_edp(Some(2.0), Some(1.0), 4.0);
        // Inside both budgets (1.5 mm², 0 mW): no penalty.
        assert!((soft.score(&p, 0.0) - base.score(&p, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn penalized_objective_scales_with_overshoot() {
        let over = o(10.0, 2.0, 3.0e6); // 3 mm² vs a 2 mm² soft cap
        let power = 1500.0; // 1.5 W vs a 1 W soft cap
        let soft = Objective::penalized_edp(Some(2.0), Some(1.0), 4.0);
        // Overshoots: area 50 %, power 50 % → ×(1 + 4·1.0).
        let expect = over.edp() * 5.0;
        assert!((soft.score(&over, power) - expect).abs() < 1e-9 * expect);
        // A stronger weight penalizes harder; weight 0 is the base again.
        let hard = Objective::penalized_edp(Some(2.0), Some(1.0), 10.0);
        assert!(hard.score(&over, power) > soft.score(&over, power));
        let zero = Objective::penalized_edp(Some(2.0), Some(1.0), 0.0);
        assert!((zero.score(&over, power) - over.edp()).abs() < 1e-12);
    }

    #[test]
    fn lexicographic_breaks_latency_ties_on_energy_then_area() {
        let lex = Objective::Lexicographic;
        let slow = o(20.0, 1.0, 1.0);
        let fast_hot = o(10.0, 9.0, 1.0);
        let fast_cool = o(10.0, 2.0, 5.0);
        let fast_cool_small = o(10.0, 2.0, 3.0);
        // Latency decides first …
        assert!(lex.key(&fast_hot, 0.0) < lex.key(&slow, 0.0));
        // … energy breaks latency ties …
        assert!(lex.key(&fast_cool, 0.0) < lex.key(&fast_hot, 0.0));
        // … and area breaks (latency, energy) ties.
        assert!(lex.key(&fast_cool_small, 0.0) < lex.key(&fast_cool, 0.0));
        // The scalar view of a lexicographic objective is its leading
        // component.
        assert_eq!(lex.score(&fast_hot, 0.0), 10.0);
    }

    #[test]
    fn scalar_objectives_rank_identically_by_key_and_score() {
        let a = o(10.0, 2.0, 1.0);
        let b = o(3.0, 5.0, 1.0);
        for obj in [
            Objective::EDP,
            Objective::Base(BaseObjective::Latency),
            Objective::penalized_edp(Some(2.0), Some(1.0), 4.0),
        ] {
            let by_key = obj.key(&a, 0.0) < obj.key(&b, 0.0);
            let by_score = obj.score(&a, 0.0) < obj.score(&b, 0.0);
            assert_eq!(by_key, by_score, "{obj:?}");
        }
    }
}
