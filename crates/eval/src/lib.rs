//! # lego-eval — the canonical request/response evaluation layer
//!
//! Every earlier generation of this workspace priced designs through free
//! functions: `simulate_layer` / `simulate_layer_tiled` /
//! `simulate_layer_ctx`, `best_mapping` and friends, `map_model` and
//! friends — three generations of entry points over one honest cost model,
//! with every bench binary hand-wiring `HwConfig` + `TechModel` + sparsity
//! on the side. This crate collapses them into one API, the shape
//! Sparseloop- and Timeloop-style evaluators expose:
//!
//! * [`EvalRequest`] — *what* to price: a workload, a hardware
//!   configuration (dense + sparse halves), a technology model, the
//!   [`Objective`] to score, and the tiling knob;
//! * [`EvalSession`] — *how* it is priced: owns
//!   [`CostContext`](lego_model::CostContext) construction, the memoized
//!   [`EvalCache`], and the worker pool, behind
//!   [`evaluate`](EvalSession::evaluate) /
//!   [`evaluate_batch`](EvalSession::evaluate_batch) /
//!   [`evaluate_stream`](EvalSession::evaluate_stream);
//! * [`EvalReport`] — the response: per-layer mapping results (including
//!   the [`CompressedFormat`](lego_model::CompressedFormat) selected per
//!   operand), aggregated [`ModelPerf`](lego_sim::ModelPerf), a
//!   [`CostSummary`], and [`Provenance`].
//!
//! Requests and reports carry a versioned binary codec
//! ([`EvalRequest::encode`] / [`EvalReport::encode`]; same magic+version
//! discipline as the explorer's `Snapshot`, `encode → decode → encode`
//! byte-identical), so a multi-host driver can ship work over any byte
//! transport.
//!
//! ```
//! use lego_eval::{EvalRequest, EvalSession};
//! use lego_sim::HwConfig;
//!
//! let session = EvalSession::new();
//! let request = EvalRequest::new(lego_workloads::zoo::lenet(), HwConfig::lego_256());
//! let report = session.evaluate(&request);
//! assert!(report.cost.edp() > 0.0);
//!
//! // The request round-trips byte-identically through the codec…
//! let bytes = request.encode();
//! let decoded = lego_eval::EvalRequest::decode(&bytes).unwrap();
//! assert_eq!(decoded.encode(), bytes);
//! // …and a remote worker evaluating the decoded request reproduces the
//! // report bit-for-bit (evaluation is pure; a fresh session matches the
//! // sender's cold cache, which provenance records).
//! assert_eq!(EvalSession::new().evaluate(&decoded), report);
//! ```
//!
//! The pre-session free-function shims (`simulate_layer`, `best_mapping`,
//! `map_model`, …) served one full `#[deprecated]` cycle and are now gone;
//! `simulate_layer_ctx` / `best_mapping_ctx` / `map_model_ctx` — what a
//! session runs per layer — remain the supported low-level entry points,
//! and workspace CI still builds with `-D deprecated` so future
//! deprecations are enforced the same way.
//!
//! Failures across the stack — codec, validation, transport, admission —
//! collapse into one [`EvalError`] enum whose [`StatusCode`] mapping is
//! the `lego-serve` wire status contract.

pub mod builder;
pub mod cache;
pub mod codec;
pub mod error;
pub mod hash;
pub mod objective;
pub mod pool;
pub mod session;

pub use builder::EvalRequestBuilder;
pub use cache::{estimated_resident_bytes_for, layer_key, CacheGauges, EvalCache};
pub use codec::{CodecError, ALL_MAPPINGS, VERSION as CODEC_VERSION};
pub use error::{EvalError, Reject, StatusCode};
pub use hash::{stable_hash, FnvHasher};
pub use objective::{BaseObjective, Objective, Objectives};
pub use pool::WorkerPool;
pub use session::{
    CostSummary, EvalReport, EvalRequest, EvalRequestRef, EvalSession, LayerReport, Provenance,
};
