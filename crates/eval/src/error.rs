//! The unified evaluation error: one public [`EvalError`] enum with a
//! stable [`StatusCode`] mapping.
//!
//! Earlier generations of this workspace reported failure three different
//! ways: [`CodecError`] from the wire codec, `SnapshotError` from the
//! explorer, and ad-hoc `Result<_, String>` / panics in the bench bins.
//! A network boundary forces the question of what a failure *is*, because
//! a server must answer with bytes, not a stack trace. `EvalError` is the
//! answer: every failure mode in the evaluation stack collapses into one
//! enum, and every variant maps onto a stable `u16` [`StatusCode`] that
//! `lego-serve` writes verbatim as the wire status byte-pair. The status
//! ranges are HTTP-shaped on purpose:
//!
//! | range | meaning                                             |
//! |-------|-----------------------------------------------------|
//! | `0`   | OK                                                  |
//! | `1xx` | malformed bytes (codec/frame decode failures)       |
//! | `2xx` | well-formed but semantically invalid request        |
//! | `3xx` | admission control (queue full, frame too large, …)  |
//! | `4xx` | transport I/O                                       |
//! | `5xx` | internal server failure                             |
//!
//! Codes are part of the wire contract: a code, once shipped, never
//! changes meaning.

use crate::codec::CodecError;
use lego_sim::HwConfigError;
use std::fmt;

/// A stable `u16` status for one evaluation outcome, written verbatim as
/// the two-byte status field of a `lego-serve` reply frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// The request was evaluated; the reply body is an encoded report.
    pub const OK: StatusCode = StatusCode(0);

    // 1xx — the bytes themselves were bad.
    /// Payload ended before a field was complete.
    pub const TRUNCATED: StatusCode = StatusCode(100);
    /// Payload does not start with the evaluation-codec magic.
    pub const BAD_MAGIC: StatusCode = StatusCode(101);
    /// Codec version not understood by this build.
    pub const UNSUPPORTED_VERSION: StatusCode = StatusCode(102);
    /// Kind byte does not match what the decoder expected.
    pub const WRONG_KIND: StatusCode = StatusCode(103);
    /// An enum/option tag byte held an undefined value.
    pub const INVALID_TAG: StatusCode = StatusCode(104);
    /// A length-prefixed string was not valid UTF-8.
    pub const INVALID_UTF8: StatusCode = StatusCode(105);
    /// Well-formed data followed by garbage.
    pub const TRAILING_BYTES: StatusCode = StatusCode(106);
    /// A framed payload's checksum did not match its bytes.
    pub const CHECKSUM_MISMATCH: StatusCode = StatusCode(107);

    // 2xx — the bytes decoded, but the request makes no sense.
    /// The hardware configuration failed validation.
    pub const INVALID_HW: StatusCode = StatusCode(200);
    /// The workload has no layers.
    pub const EMPTY_WORKLOAD: StatusCode = StatusCode(201);
    /// The tile cap is not a positive layer count.
    pub const INVALID_TILE_CAP: StatusCode = StatusCode(202);
    /// A name (model, objective, …) matched nothing known.
    pub const UNKNOWN_NAME: StatusCode = StatusCode(203);
    /// Command-line / request usage error.
    pub const USAGE: StatusCode = StatusCode(204);

    // 3xx — the request was fine; the server declined to admit it.
    /// The bounded admission queue was full.
    pub const QUEUE_FULL: StatusCode = StatusCode(300);
    /// The frame announced a payload beyond the server's limit.
    pub const FRAME_TOO_LARGE: StatusCode = StatusCode(301);
    /// The server is draining and no longer admits work.
    pub const SHUTTING_DOWN: StatusCode = StatusCode(302);

    // 4xx — transport.
    /// Reading or writing bytes failed.
    pub const IO: StatusCode = StatusCode(400);

    // 5xx — the server itself broke.
    /// An internal invariant failed while evaluating.
    pub const INTERNAL: StatusCode = StatusCode(500);

    /// The code as the raw `u16` written on the wire.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// True iff this is [`StatusCode::OK`].
    #[must_use]
    pub fn is_ok(self) -> bool {
        self.0 == 0
    }

    /// Canonical reason phrase for a code (the range name for codes this
    /// build does not know by name).
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self.0 {
            0 => "ok",
            100 => "truncated payload",
            101 => "bad magic",
            102 => "unsupported codec version",
            103 => "wrong payload kind",
            104 => "invalid tag",
            105 => "invalid utf-8",
            106 => "trailing bytes",
            107 => "checksum mismatch",
            200 => "invalid hardware configuration",
            201 => "empty workload",
            202 => "invalid tile cap",
            203 => "unknown name",
            204 => "usage error",
            300 => "queue full",
            301 => "frame too large",
            302 => "shutting down",
            400 => "i/o failure",
            500 => "internal error",
            108..=199 => "malformed payload",
            205..=299 => "invalid request",
            303..=399 => "not admitted",
            401..=499 => "transport failure",
            _ => "internal error",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.0, self.reason())
    }
}

/// Why the server refused to admit an otherwise well-formed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The bounded admission queue already held `capacity` requests.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The frame announced a payload larger than the server accepts.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The server's limit.
        max: usize,
    },
    /// The server is draining and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reject::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} requests queued)")
            }
            Reject::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            Reject::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// Every way the evaluation stack can fail, from bad bytes to a full
/// admission queue, with a stable wire [`StatusCode`] per variant.
#[derive(Debug)]
pub enum EvalError {
    /// The payload bytes could not be decoded (or written to disk).
    Codec(CodecError),
    /// The request's hardware configuration failed validation.
    Hw(HwConfigError),
    /// The request's workload has no layers to price.
    EmptyWorkload,
    /// The request's tile cap is not a positive layer count.
    InvalidTileCap(i64),
    /// A name looked up against a registry matched nothing.
    Unknown {
        /// What kind of thing was being looked up.
        what: &'static str,
        /// The name that matched nothing.
        name: String,
    },
    /// The caller's arguments were malformed (bench-bin usage errors).
    Usage(String),
    /// The server declined to admit the request.
    Rejected(Reject),
    /// A transport read or write failed.
    Io(std::io::Error),
    /// A remote peer answered with a non-OK status frame.
    Remote {
        /// The wire status.
        code: StatusCode,
        /// The UTF-8 message carried in the reply body.
        message: String,
    },
    /// An internal invariant failed.
    Internal(String),
}

impl EvalError {
    /// The stable wire status for this failure.
    #[must_use]
    pub fn status(&self) -> StatusCode {
        match self {
            EvalError::Codec(e) => match e {
                CodecError::Truncated { .. } => StatusCode::TRUNCATED,
                CodecError::BadMagic => StatusCode::BAD_MAGIC,
                CodecError::UnsupportedVersion(_) => StatusCode::UNSUPPORTED_VERSION,
                CodecError::WrongKind { .. } => StatusCode::WRONG_KIND,
                CodecError::InvalidTag { .. } => StatusCode::INVALID_TAG,
                CodecError::InvalidUtf8 => StatusCode::INVALID_UTF8,
                CodecError::TrailingBytes(_) => StatusCode::TRAILING_BYTES,
                CodecError::ChecksumMismatch => StatusCode::CHECKSUM_MISMATCH,
                CodecError::FrameTooLarge { .. } => StatusCode::FRAME_TOO_LARGE,
                CodecError::Io(_) => StatusCode::IO,
            },
            EvalError::Hw(_) => StatusCode::INVALID_HW,
            EvalError::EmptyWorkload => StatusCode::EMPTY_WORKLOAD,
            EvalError::InvalidTileCap(_) => StatusCode::INVALID_TILE_CAP,
            EvalError::Unknown { .. } => StatusCode::UNKNOWN_NAME,
            EvalError::Usage(_) => StatusCode::USAGE,
            EvalError::Rejected(r) => match r {
                Reject::QueueFull { .. } => StatusCode::QUEUE_FULL,
                Reject::FrameTooLarge { .. } => StatusCode::FRAME_TOO_LARGE,
                Reject::ShuttingDown => StatusCode::SHUTTING_DOWN,
            },
            EvalError::Io(_) => StatusCode::IO,
            EvalError::Remote { code, .. } => *code,
            EvalError::Internal(_) => StatusCode::INTERNAL,
        }
    }

    /// Reconstructs the error a remote peer reported: the status code it
    /// sent plus the UTF-8 message from the reply body.
    #[must_use]
    pub fn from_wire(code: StatusCode, message: String) -> EvalError {
        EvalError::Remote { code, message }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Codec(e) => write!(f, "{e}"),
            EvalError::Hw(e) => write!(f, "invalid hardware configuration: {e}"),
            EvalError::EmptyWorkload => write!(f, "workload has no layers"),
            EvalError::InvalidTileCap(v) => {
                write!(f, "tile cap must be a positive layer count, got {v}")
            }
            EvalError::Unknown { what, name } => write!(f, "unknown {what} {name:?}"),
            EvalError::Usage(msg) => write!(f, "{msg}"),
            EvalError::Rejected(r) => write!(f, "{r}"),
            EvalError::Io(e) => write!(f, "i/o failed: {e}"),
            EvalError::Remote { code, message } => {
                if message.is_empty() {
                    write!(f, "remote status {code}")
                } else {
                    write!(f, "remote status {code}: {message}")
                }
            }
            EvalError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Codec(e) => Some(e),
            EvalError::Hw(e) => Some(e),
            EvalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for EvalError {
    fn from(e: CodecError) -> EvalError {
        EvalError::Codec(e)
    }
}

impl From<HwConfigError> for EvalError {
    fn from(e: HwConfigError) -> EvalError {
        EvalError::Hw(e)
    }
}

impl From<std::io::Error> for EvalError {
    fn from(e: std::io::Error) -> EvalError {
        EvalError::Io(e)
    }
}

impl From<Reject> for EvalError {
    fn from(r: Reject) -> EvalError {
        EvalError::Rejected(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_are_stable() {
        // The wire contract: these exact numbers, forever.
        assert_eq!(StatusCode::OK.as_u16(), 0);
        assert_eq!(StatusCode::TRUNCATED.as_u16(), 100);
        assert_eq!(StatusCode::BAD_MAGIC.as_u16(), 101);
        assert_eq!(StatusCode::UNSUPPORTED_VERSION.as_u16(), 102);
        assert_eq!(StatusCode::WRONG_KIND.as_u16(), 103);
        assert_eq!(StatusCode::INVALID_TAG.as_u16(), 104);
        assert_eq!(StatusCode::INVALID_UTF8.as_u16(), 105);
        assert_eq!(StatusCode::TRAILING_BYTES.as_u16(), 106);
        assert_eq!(StatusCode::CHECKSUM_MISMATCH.as_u16(), 107);
        assert_eq!(StatusCode::INVALID_HW.as_u16(), 200);
        assert_eq!(StatusCode::EMPTY_WORKLOAD.as_u16(), 201);
        assert_eq!(StatusCode::INVALID_TILE_CAP.as_u16(), 202);
        assert_eq!(StatusCode::UNKNOWN_NAME.as_u16(), 203);
        assert_eq!(StatusCode::USAGE.as_u16(), 204);
        assert_eq!(StatusCode::QUEUE_FULL.as_u16(), 300);
        assert_eq!(StatusCode::FRAME_TOO_LARGE.as_u16(), 301);
        assert_eq!(StatusCode::SHUTTING_DOWN.as_u16(), 302);
        assert_eq!(StatusCode::IO.as_u16(), 400);
        assert_eq!(StatusCode::INTERNAL.as_u16(), 500);
    }

    #[test]
    fn every_codec_error_maps_into_the_1xx_or_4xx_range() {
        let cases: Vec<(CodecError, StatusCode)> = vec![
            (
                CodecError::Truncated { at: 0, needed: 1 },
                StatusCode::TRUNCATED,
            ),
            (CodecError::BadMagic, StatusCode::BAD_MAGIC),
            (
                CodecError::UnsupportedVersion(9),
                StatusCode::UNSUPPORTED_VERSION,
            ),
            (
                CodecError::WrongKind {
                    expected: 1,
                    found: 2,
                },
                StatusCode::WRONG_KIND,
            ),
            (
                CodecError::InvalidTag { what: "x", tag: 9 },
                StatusCode::INVALID_TAG,
            ),
            (CodecError::InvalidUtf8, StatusCode::INVALID_UTF8),
            (CodecError::TrailingBytes(3), StatusCode::TRAILING_BYTES),
            (CodecError::ChecksumMismatch, StatusCode::CHECKSUM_MISMATCH),
            (
                CodecError::FrameTooLarge { len: 10, max: 5 },
                StatusCode::FRAME_TOO_LARGE,
            ),
            (CodecError::Io(std::io::Error::other("x")), StatusCode::IO),
        ];
        for (err, want) in cases {
            assert_eq!(EvalError::from(err).status(), want);
        }
    }

    #[test]
    fn remote_round_trips_the_wire_status() {
        let err = EvalError::from_wire(StatusCode::QUEUE_FULL, "busy".into());
        assert_eq!(err.status(), StatusCode::QUEUE_FULL);
        assert!(err.to_string().contains("queue full"));
    }

    #[test]
    fn reason_covers_every_named_code_and_the_ranges() {
        assert_eq!(StatusCode::OK.reason(), "ok");
        assert_eq!(StatusCode(199).reason(), "malformed payload");
        assert_eq!(StatusCode(250).reason(), "invalid request");
        assert_eq!(StatusCode(399).reason(), "not admitted");
        assert_eq!(StatusCode(499).reason(), "transport failure");
        assert_eq!(StatusCode(999).reason(), "internal error");
    }
}
