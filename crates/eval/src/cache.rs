//! The memoized evaluation cache shared by every consumer of a session.

use lego_sim::LayerPerf;
use lego_workloads::Layer;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

const SHARDS: usize = 16;

/// One cached mapping result plus its CLOCK reference bit. The bit is an
/// atomic so the hit path can mark recency through a shared read lock —
/// hits stay reader-parallel even in a bounded cache.
#[derive(Debug)]
struct Slot {
    perf: LayerPerf,
    referenced: AtomicBool,
}

/// One shard: the memo map plus (in bounded mode) the CLOCK ring of
/// resident keys in insertion/rotation order. The ring holds exactly the
/// map's keys; eviction pops the front, giving recently referenced
/// entries a second chance at the back.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<(u64, u64), Slot>,
    ring: VecDeque<(u64, u64)>,
}

impl Shard {
    /// Inserts `key` if absent, evicting via CLOCK second-chance until the
    /// shard fits `cap` entries (`None` = unbounded). Returns whether the
    /// value joined, plus how many entries were evicted to admit it.
    fn insert(&mut self, key: (u64, u64), perf: LayerPerf, cap: Option<usize>) -> (bool, u64) {
        if self.map.contains_key(&key) {
            return (false, 0);
        }
        let mut evicted = 0;
        if let Some(cap) = cap {
            if cap == 0 {
                // A budget below one entry per shard: nothing is resident.
                return (false, 0);
            }
            while self.map.len() >= cap {
                let candidate = self.ring.pop_front().expect("ring tracks the map");
                let slot = self.map.get(&candidate).expect("ring tracks the map");
                if slot.referenced.swap(false, Ordering::Relaxed) {
                    // Second chance: referenced since the hand last passed.
                    self.ring.push_back(candidate);
                } else {
                    self.map.remove(&candidate);
                    evicted += 1;
                }
            }
            self.ring.push_back(key);
        }
        self.map.insert(
            key,
            Slot {
                perf,
                referenced: AtomicBool::new(false),
            },
        );
        (true, evicted)
    }
}

/// Concurrent memo table from (hardware fingerprint, layer fingerprint) to
/// the layer's best mapping result.
///
/// Evaluation workloads overlap heavily — search strategies revisit elite
/// genomes, random sampling collides with grid enumeration, and repeated
/// blocks within a model share layer shapes — so the cache is shared
/// across every request of an [`EvalSession`](crate::EvalSession) and
/// across the worker threads inside one. (The hardware fingerprint is part
/// of the key: every configuration field feeds the simulation, so entries
/// cannot be shared across configurations.) It is sharded by key, and each
/// shard is an `RwLock` so the warm-run steady state — ~100% hits — takes
/// only shared read locks and never serializes readers; writers appear only
/// on misses and absorbs. It counts hits and misses so callers can verify
/// the sharing actually happens.
///
/// # Bounded mode
///
/// By default the cache grows without bound — right for a one-shot sweep,
/// wrong for a long-lived server. [`EvalCache::with_byte_budget`] caps
/// resident memory (as priced by [`estimated_resident_bytes_for`]) with a
/// CLOCK second-chance policy: each hit sets the entry's reference bit
/// through the read lock (hits never take the write lock, bounded or
/// not), and an insert that would breach the budget sweeps the clock
/// ring, giving referenced entries a second chance and evicting the first
/// unreferenced one. Evictions are counted and surfaced through
/// [`CacheGauges::evictions`].
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<RwLock<Shard>>,
    /// Per-shard entry cap; `None` = unbounded.
    shard_cap: Option<usize>,
    /// The configured budget in bytes (`None` = unbounded).
    budget_bytes: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            shard_cap: None,
            budget_bytes: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl EvalCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that keeps
    /// [`estimated_resident_bytes`](EvalCache::estimated_resident_bytes)
    /// at or under `budget_bytes` by CLOCK second-chance eviction.
    ///
    /// The budget is split evenly across the cache's shards, so the
    /// guarantee is exact: the cache never reports more resident bytes
    /// than the budget. Budgets smaller than one entry per shard
    /// (16 entries) leave some or all shards capped at zero — those
    /// shards simply never retain, which keeps the bound honest at any
    /// budget.
    pub fn with_byte_budget(budget_bytes: usize) -> Self {
        let per_entry = estimated_resident_bytes_for(1);
        let total_entries = budget_bytes / per_entry;
        EvalCache {
            shard_cap: Some(total_entries / SHARDS),
            budget_bytes: Some(budget_bytes),
            ..Self::default()
        }
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn byte_budget(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Looks up `(hw_key, layer_key)`, running `compute` on a miss.
    ///
    /// The hit path takes only a shared read lock (and `LayerPerf` is
    /// `Copy`), so warm lookups from many threads proceed without mutual
    /// exclusion. `compute` runs outside any lock, so a pure-but-slow
    /// evaluation never blocks other workers; two threads racing on the
    /// same fresh key may both compute, and the first insert wins (the
    /// evaluation is deterministic, so both results are identical).
    pub fn get_or_compute<F: FnOnce() -> LayerPerf>(
        &self,
        hw_key: u64,
        layer_key: u64,
        compute: F,
    ) -> LayerPerf {
        let key = (hw_key, layer_key);
        let shard = &self.shards[(hw_key ^ layer_key) as usize % SHARDS];
        if let Some(hit) = shard.read().expect("cache shard poisoned").map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hit.referenced.store(true, Ordering::Relaxed);
            return hit.perf;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        let (_, evicted) =
            shard
                .write()
                .expect("cache shard poisoned")
                .insert(key, value, self.shard_cap);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        value
    }

    /// Lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to evaluate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to honor the byte budget (always `0` unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Reads an entry without computing (and without touching the hit/miss
    /// statistics or the entry's recency) — the lookup merge tooling and
    /// tests use.
    pub fn peek(&self, hw_key: u64, layer_key: u64) -> Option<LayerPerf> {
        self.shards[(hw_key ^ layer_key) as usize % SHARDS]
            .read()
            .expect("cache shard poisoned")
            .map
            .get(&(hw_key, layer_key))
            .map(|s| s.perf)
    }

    /// Every `((hw_key, layer_key), perf)` entry, sorted by key — the
    /// canonical order a snapshot serializes, so two caches with the same
    /// contents encode byte-identically regardless of insertion history.
    pub fn entries(&self) -> Vec<((u64, u64), LayerPerf)> {
        let mut out: Vec<((u64, u64), LayerPerf)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache shard poisoned")
                    .map
                    .iter()
                    .map(|(k, v)| (*k, v.perf))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Set-unions foreign entries (a peer shard's snapshot) into this
    /// cache. The keys are stable FNV fingerprints, so union is the whole
    /// merge story — and an existing entry is **never** overwritten: on a
    /// key collision the resident value wins (both sides computed the same
    /// deterministic simulation, so they agree; the invariant is pinned by
    /// proptests). Returns the number of entries actually added. A bounded
    /// cache absorbs through the same CLOCK admission as a miss, so the
    /// byte budget holds across warms and merges too.
    pub fn absorb<I: IntoIterator<Item = ((u64, u64), LayerPerf)>>(&self, entries: I) -> usize {
        let mut added = 0;
        for ((hw_key, layer_key), perf) in entries {
            let shard = &self.shards[(hw_key ^ layer_key) as usize % SHARDS];
            let mut guard = shard.write().expect("cache shard poisoned");
            let (joined, evicted) = guard.insert((hw_key, layer_key), perf, self.shard_cap);
            if joined {
                added += 1;
            }
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        added
    }

    /// Rough resident memory of the table: key + value + per-entry
    /// `HashMap` bookkeeping for every stored entry. An estimate
    /// (allocator slack and unused table capacity are not counted), but a
    /// deterministic function of the entry count, so it is safe to
    /// surface in deterministic observability summaries.
    pub fn estimated_resident_bytes(&self) -> usize {
        estimated_resident_bytes_for(self.len())
    }

    /// One coherent reading of every gauge ([`CacheGauges`]). Each counter
    /// is read once; the set is not a transaction (concurrent lookups may
    /// land between reads), which is fine for the stats tables this feeds.
    pub fn gauges(&self) -> CacheGauges {
        CacheGauges {
            entries: self.len(),
            resident_bytes: self.estimated_resident_bytes(),
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            budget_bytes: self.budget_bytes,
        }
    }

    /// Distinct entries stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The [`EvalCache::estimated_resident_bytes`] formula applied to an
/// arbitrary entry count — for tooling (the `dse_shard merge` report)
/// that prices snapshot entry lists without materializing a cache.
pub fn estimated_resident_bytes_for(entries: usize) -> usize {
    // Control byte plus amortized empty-slot overhead per occupied
    // bucket (the hash table keeps its load factor below ~7/8).
    const PER_ENTRY_OVERHEAD: usize = 16;
    entries * (std::mem::size_of::<((u64, u64), LayerPerf)>() + PER_ENTRY_OVERHEAD)
}

/// A point-in-time reading of an [`EvalCache`]'s size and effectiveness
/// gauges — what `eval_report` and `dse_shard merge --report` surface in
/// their stats tables, and what `lego-serve` exposes for a long-lived
/// session (where the byte budget and eviction count are the proof the
/// cache is actually bounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGauges {
    /// Distinct entries resident.
    pub entries: usize,
    /// Estimated resident bytes ([`EvalCache::estimated_resident_bytes`]).
    pub resident_bytes: usize,
    /// Lookups answered from the table since construction.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries evicted to honor the byte budget (`0` when unbounded).
    pub evictions: u64,
    /// The configured byte budget (`None` = unbounded).
    pub budget_bytes: Option<usize>,
}

impl CacheGauges {
    /// Fraction of lookups answered from the table (`0` when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Whether resident bytes respect the budget (vacuously true
    /// unbounded).
    pub fn within_budget(&self) -> bool {
        self.budget_bytes.is_none_or(|b| self.resident_bytes <= b)
    }
}

/// Stable fingerprint of a layer's *shape* (kind + non-tensor work +
/// density annotations).
///
/// The name and repetition count are deliberately excluded: two layers with
/// the same shape in different models (or under different names) evaluate
/// identically on the same hardware, and should hit the same cache line.
/// The sparsity annotation is *included* — a pruned layer and its dense
/// twin cost differently on sparse hardware, so they must not collide.
pub fn layer_key(layer: &Layer) -> u64 {
    crate::hash::stable_hash(&(&layer.kind, &layer.nonlinear, &layer.sparsity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_model::{CostContext, TechModel};
    use lego_sim::{simulate_layer_ctx, HwConfig, SpatialMapping};
    use lego_workloads::LayerKind;

    fn perf() -> LayerPerf {
        simulate_layer_ctx(
            &Layer::new("l", LayerKind::Gemm { m: 8, n: 8, k: 8 }),
            SpatialMapping::GemmMN,
            &CostContext::new(HwConfig::lego_256(), TechModel::default()),
            None,
        )
    }

    /// A budget that admits exactly `entries_per_shard` entries per shard.
    fn budget_for(entries_per_shard: usize) -> usize {
        estimated_resident_bytes_for(entries_per_shard * SHARDS)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = EvalCache::new();
        let mut computed = 0;
        for _ in 0..3 {
            cache.get_or_compute(1, 2, || {
                computed += 1;
                perf()
            });
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.byte_budget(), None);
    }

    #[test]
    fn resident_bytes_track_entry_count() {
        let cache = EvalCache::new();
        assert_eq!(cache.estimated_resident_bytes(), 0);
        cache.get_or_compute(1, 1, perf);
        let one = cache.estimated_resident_bytes();
        assert!(one > 0);
        cache.get_or_compute(1, 2, perf);
        assert_eq!(cache.estimated_resident_bytes(), 2 * one);
        assert_eq!(estimated_resident_bytes_for(2), 2 * one);
    }

    #[test]
    fn gauges_snapshot_the_counters() {
        let cache = EvalCache::new();
        assert_eq!(cache.gauges().hit_rate(), 0.0, "empty cache: no lookups");
        cache.get_or_compute(1, 1, perf);
        cache.get_or_compute(1, 1, perf);
        cache.get_or_compute(1, 1, perf);
        cache.get_or_compute(1, 2, perf);
        let g = cache.gauges();
        assert_eq!(g.entries, 2);
        assert_eq!(g.resident_bytes, cache.estimated_resident_bytes());
        assert_eq!((g.hits, g.misses), (2, 2));
        assert_eq!(g.hit_rate(), 0.5);
        assert_eq!(g.evictions, 0);
        assert_eq!(g.budget_bytes, None);
        assert!(g.within_budget());
    }

    #[test]
    fn keys_separate_entries() {
        let cache = EvalCache::new();
        cache.get_or_compute(1, 1, perf);
        cache.get_or_compute(1, 2, perf);
        cache.get_or_compute(2, 1, perf);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn absorb_unions_without_overwriting() {
        let a = EvalCache::new();
        let resident = perf();
        a.get_or_compute(1, 1, || resident);
        // A foreign snapshot carrying a colliding key plus a new one.
        let mut foreign = perf();
        foreign.cycles += 999;
        let added = a.absorb(vec![((1, 1), foreign), ((2, 2), foreign)]);
        assert_eq!(added, 1, "only the new key joins");
        assert_eq!(a.len(), 2);
        // The resident value survived the collision…
        assert_eq!(a.peek(1, 1), Some(resident));
        // …and the absorbed entry is served as a hit, not recomputed.
        let miss_before = a.misses();
        let got = a.get_or_compute(2, 2, || unreachable!("absorbed entry must hit"));
        assert_eq!(got, foreign);
        assert_eq!(a.misses(), miss_before);
        // peek never disturbs the statistics.
        let (h, m) = (a.hits(), a.misses());
        let _ = a.peek(2, 2);
        assert_eq!((a.hits(), a.misses()), (h, m));
    }

    #[test]
    fn entries_are_canonically_ordered() {
        let a = EvalCache::new();
        let b = EvalCache::new();
        // Same contents, different insertion orders.
        for (hw, layer) in [(3u64, 1u64), (1, 2), (2, 9)] {
            a.get_or_compute(hw, layer, perf);
        }
        for (hw, layer) in [(1u64, 2u64), (2, 9), (3, 1)] {
            b.get_or_compute(hw, layer, perf);
        }
        assert_eq!(a.entries(), b.entries());
        let keys: Vec<(u64, u64)> = a.entries().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(1, 2), (2, 9), (3, 1)]);
        // Round trip through absorb reproduces the contents.
        let c = EvalCache::new();
        assert_eq!(c.absorb(a.entries()), 3);
        assert_eq!(c.entries(), a.entries());
    }

    #[test]
    fn bounded_cache_never_exceeds_its_budget() {
        let budget = budget_for(2);
        let cache = EvalCache::with_byte_budget(budget);
        assert_eq!(cache.byte_budget(), Some(budget));
        // Hammer one shard far past its cap: all keys with the same
        // (hw ^ layer) % SHARDS land together when hw varies by SHARDS.
        for i in 0..64u64 {
            cache.get_or_compute(i * SHARDS as u64, 0, perf);
        }
        let g = cache.gauges();
        assert!(
            g.within_budget(),
            "resident {} > budget {budget}",
            g.resident_bytes
        );
        assert!(g.evictions > 0, "overflow must evict");
        // The shard holds exactly its cap.
        assert_eq!(g.entries, 2);
        assert_eq!(g.evictions, 62);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        // One shard, cap 2: insert A and B, touch A, then insert C.
        // The clock hand must pass over referenced A and evict B.
        let cache = EvalCache::with_byte_budget(budget_for(2));
        let s = SHARDS as u64;
        cache.get_or_compute(s, 0, perf); // A
        cache.get_or_compute(2 * s, 0, perf); // B
        cache.get_or_compute(s, 0, perf); // hit A → referenced
        cache.get_or_compute(3 * s, 0, perf); // C → evicts B
        assert!(cache.peek(s, 0).is_some(), "referenced A survives");
        assert!(cache.peek(2 * s, 0).is_none(), "unreferenced B evicted");
        assert!(cache.peek(3 * s, 0).is_some(), "C resident");
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn absorb_respects_the_budget() {
        let budget = budget_for(1);
        let cache = EvalCache::with_byte_budget(budget);
        let p = perf();
        // 4 entries into one shard, cap 1: three must be refused/evicted.
        let s = SHARDS as u64;
        let added = cache.absorb((1..=4).map(|i| ((i * s, 0), p)));
        assert!(added >= 1);
        let g = cache.gauges();
        assert!(g.within_budget());
        assert_eq!(g.entries, 1);
    }

    #[test]
    fn zero_budget_caches_nothing_but_still_serves() {
        let cache = EvalCache::with_byte_budget(0);
        let mut computed = 0;
        for _ in 0..2 {
            cache.get_or_compute(1, 2, || {
                computed += 1;
                perf()
            });
        }
        assert_eq!(computed, 2, "nothing retained, every lookup computes");
        assert_eq!(cache.len(), 0);
        assert!(cache.gauges().within_budget());
    }

    #[test]
    fn layer_key_ignores_name_and_count() {
        let kind = LayerKind::Gemm { m: 4, n: 4, k: 4 };
        let a = Layer::new("a", kind);
        let b = Layer::new("b", kind).repeat(7);
        assert_eq!(layer_key(&a), layer_key(&b));
        let c = Layer::new("c", LayerKind::Gemm { m: 4, n: 4, k: 8 });
        assert_ne!(layer_key(&a), layer_key(&c));
    }

    #[test]
    fn layer_key_separates_sparsity_annotations() {
        use lego_workloads::{DensityModel, LayerSparsity};
        let kind = LayerKind::Gemm { m: 4, n: 4, k: 4 };
        let dense = Layer::new("a", kind);
        let pruned = Layer::new("a", kind)
            .with_sparsity(LayerSparsity::weights(DensityModel::two_to_four()));
        assert_ne!(layer_key(&dense), layer_key(&pruned));
    }
}
