//! Stable fingerprinting: FNV-1a as a `Hasher`.
//!
//! Every cache key, snapshot key, and request fingerprint in the
//! evaluation stack must be identical across processes and hosts (a
//! coordinator merges worker checkpoints by key-set union), so nothing
//! here may use `DefaultHasher`, which is randomly keyed per process.

use std::hash::{Hash, Hasher};

/// FNV-1a as a `Hasher`, so fingerprints are stable across processes
/// (unlike `DefaultHasher`, which is randomly keyed per process).
pub struct FnvHasher(u64);

impl FnvHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

/// Stable fingerprint of any `Hash` value under FNV-1a.
pub fn stable_hash<T: Hash>(value: &T) -> u64 {
    let mut h = FnvHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_value_sensitive() {
        assert_eq!(stable_hash(&(1u64, "a")), stable_hash(&(1u64, "a")));
        assert_ne!(stable_hash(&(1u64, "a")), stable_hash(&(2u64, "a")));
        assert_ne!(stable_hash(&(1u64, "a")), stable_hash(&(1u64, "b")));
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        let h = FnvHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
    }
}
