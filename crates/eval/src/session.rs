//! The request/response evaluation session.
//!
//! One [`EvalSession`] owns everything a caller used to hand-wire per call
//! site: [`CostContext`] construction, the
//! memoized [`EvalCache`], and a worker pool for batch evaluation. Callers
//! describe *what* to price as an [`EvalRequest`] and get back an
//! [`EvalReport`]; how the pricing happens (context reuse, caching,
//! threading) is the session's business.

use crate::cache::{layer_key, EvalCache};
use crate::hash::FnvHasher;
use crate::objective::{Objective, Objectives};
use lego_model::{
    CompressedFormat, CostContext, HwConfig, MacroArea, SparseHw, SramModel, TechModel,
};
use lego_obs::Obs;
use lego_sim::{aggregate_iter, best_mapping_obs, LayerPerf, ModelPerf};
use lego_workloads::Model;
use std::cell::{Cell, UnsafeCell};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything one evaluation needs: the workload, the hardware (dense and
/// sparse halves), the technology, the scalarization to report, and the
/// tiling knob.
///
/// A request is a plain owned value with a versioned binary codec
/// ([`EvalRequest::encode`]/[`EvalRequest::decode`]), so a multi-host
/// driver can ship it over any byte transport and replay it bit-for-bit on
/// the other side.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// The model to price, layer by layer.
    pub workload: Model,
    /// The dense hardware configuration under evaluation.
    pub hw: HwConfig,
    /// The sparse half of the configuration (gating/skipping frontend).
    pub sparse: SparseHw,
    /// Technology constants every cost is priced under.
    pub tech: TechModel,
    /// The scalarization reported in [`CostSummary::score`].
    pub objective: Objective,
    /// Optional L1 tile-edge cap (`None` = buffer-limited automatic
    /// tiling).
    pub tile_cap: Option<i64>,
    /// Lazily memoized [`layer_key`] per workload layer (index-aligned
    /// with `workload.layers`). Layer shapes are hashed once per request
    /// instead of once per evaluation — a sweep driver re-evaluating one
    /// request object pays the hashing cost only on the first call.
    layer_keys: std::sync::OnceLock<Box<[u64]>>,
}

impl PartialEq for EvalRequest {
    fn eq(&self, other: &Self) -> bool {
        // The memo is derived state; equality is over the request fields.
        self.workload == other.workload
            && self.hw == other.hw
            && self.sparse == other.sparse
            && self.tech == other.tech
            && self.objective == other.objective
            && self.tile_cap == other.tile_cap
    }
}

impl EvalRequest {
    /// A request with the default technology, a dense datapath, the EDP
    /// objective, and automatic tiling.
    pub fn new(workload: Model, hw: HwConfig) -> Self {
        EvalRequest {
            workload,
            hw,
            sparse: SparseHw::dense(),
            tech: TechModel::default(),
            objective: Objective::EDP,
            tile_cap: None,
            layer_keys: std::sync::OnceLock::new(),
        }
    }

    /// Per-layer [`layer_key`] values, hashed on first use and memoized.
    fn layer_keys(&self) -> &[u64] {
        self.layer_keys
            .get_or_init(|| self.workload.layers.iter().map(layer_key).collect())
    }

    /// Replaces the sparse datapath configuration.
    #[must_use]
    pub fn with_sparse(mut self, sparse: SparseHw) -> Self {
        self.sparse = sparse;
        self
    }

    /// Replaces the technology model.
    #[must_use]
    pub fn with_tech(mut self, tech: TechModel) -> Self {
        self.tech = tech;
        self
    }

    /// Replaces the reported scalarization.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Caps the L1 tile edge (see `lego_sim::tiled_dram_traffic`).
    #[must_use]
    pub fn with_tile_cap(mut self, tile_cap: Option<i64>) -> Self {
        self.tile_cap = tile_cap;
        self
    }

    /// The borrowed view of this request ([`EvalRequestRef`]) — what the
    /// hot evaluation path consumes, so sweep drivers that evaluate one
    /// workload under thousands of configurations never clone the model.
    pub fn as_view(&self) -> EvalRequestRef<'_> {
        EvalRequestRef {
            workload: &self.workload,
            hw: &self.hw,
            sparse: self.sparse,
            tech: self.tech,
            objective: self.objective,
            tile_cap: self.tile_cap,
            hw_key: None,
            layer_keys: Some(self.layer_keys()),
        }
    }

    /// Stable fingerprint of the request's hardware side — the hardware
    /// half of [`EvalCache`] keys for this request. Two requests with the
    /// same `hw`/`sparse`/`tech`/`tile_cap` share cache lines; any field
    /// difference separates them, because every field feeds the
    /// simulation.
    pub fn hw_key(&self) -> u64 {
        hw_fingerprint(&self.hw, self.sparse, &self.tech, self.tile_cap)
    }

    /// Stable fingerprint of the whole request (hardware side plus the
    /// workload's name and layer shapes) — recorded in
    /// [`Provenance::request_fingerprint`] so a report can be matched back
    /// to the request that produced it.
    pub fn fingerprint(&self) -> u64 {
        request_fingerprint(&self.workload, self.hw_key(), Some(self.layer_keys()))
    }
}

/// The borrowed form of an [`EvalRequest`] — same fields, no ownership,
/// plus an optional explicit cache key for callers (like the explorer)
/// that already fingerprint configurations their own way.
#[derive(Debug, Clone, Copy)]
pub struct EvalRequestRef<'a> {
    /// The model to price.
    pub workload: &'a Model,
    /// The dense hardware configuration under evaluation.
    pub hw: &'a HwConfig,
    /// The sparse half of the configuration.
    pub sparse: SparseHw,
    /// Technology constants.
    pub tech: TechModel,
    /// The scalarization reported in [`CostSummary::score`].
    pub objective: Objective,
    /// Optional L1 tile-edge cap.
    pub tile_cap: Option<i64>,
    /// Overrides the hardware half of the cache key (`None` = derive it
    /// from the request fields). The explorer passes its genome
    /// fingerprint here so session cache entries line up with snapshot
    /// checkpoints and warm-started caches.
    pub hw_key: Option<u64>,
    /// Precomputed [`layer_key`] values, index-aligned with
    /// `workload.layers` (`None` = hash each layer during evaluation).
    /// Callers that price one workload under many configurations (the
    /// explorer, [`EvalRequest::as_view`]) hash the layers once and pass
    /// the keys here; the values must equal `layer_key` of each layer or
    /// cache entries and provenance fingerprints will not line up.
    pub layer_keys: Option<&'a [u64]>,
}

impl<'a> EvalRequestRef<'a> {
    /// A borrowed request with the default technology, a dense datapath,
    /// the EDP objective, and automatic tiling.
    pub fn new(workload: &'a Model, hw: &'a HwConfig) -> Self {
        EvalRequestRef {
            workload,
            hw,
            sparse: SparseHw::dense(),
            tech: TechModel::default(),
            objective: Objective::EDP,
            tile_cap: None,
            hw_key: None,
            layer_keys: None,
        }
    }
}

/// Stable fingerprint of one hardware-side configuration (dense config,
/// sparse feature, technology, tiling cap).
fn hw_fingerprint(hw: &HwConfig, sparse: SparseHw, tech: &TechModel, tile_cap: Option<i64>) -> u64 {
    let mut h = FnvHasher::new();
    (
        hw.array,
        hw.clusters,
        hw.buffer_kb,
        hw.dram_gbps.to_bits(),
        hw.num_ppus,
    )
        .hash(&mut h);
    for m in &hw.dataflows {
        m.hash(&mut h);
    }
    (hw.static_mw.to_bits(), hw.dynamic_mw.to_bits()).hash(&mut h);
    sparse.hash(&mut h);
    for field in crate::codec::tech_fields(tech) {
        field.to_bits().hash(&mut h);
    }
    tile_cap.hash(&mut h);
    h.finish()
}

/// The [`SramModel`] fields that feed per-layer pricing
/// (`sram_energy_pj`), for cache-key fingerprinting.
fn sram_fields(s: &SramModel) -> [f64; 4] {
    [
        s.area_um2_per_byte,
        s.bank_overhead,
        s.access_pj_per_byte,
        s.leak_uw_per_kb,
    ]
}

/// Stable fingerprint of (workload, hardware key): what
/// [`Provenance::request_fingerprint`] records. `layer_keys`, when
/// supplied, must be the memoized [`layer_key`] of each layer in order —
/// the fingerprint is identical either way, the precomputed form just
/// skips re-hashing every layer shape.
fn request_fingerprint(workload: &Model, hw_key: u64, layer_keys: Option<&[u64]>) -> u64 {
    let mut h = FnvHasher::new();
    hw_key.hash(&mut h);
    workload.name.hash(&mut h);
    for (i, l) in workload.layers.iter().enumerate() {
        let key = layer_keys
            .and_then(|keys| keys.get(i).copied())
            .unwrap_or_else(|| layer_key(l));
        (key, l.count, &l.name).hash(&mut h);
    }
    h.finish()
}

/// One priced layer of an [`EvalReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name, as in the workload (shared with the workload's interned
    /// name — a refcount bump per report row, not a string copy).
    pub name: Arc<str>,
    /// Repetition count.
    pub count: i64,
    /// Chosen mapping and predicted performance.
    pub perf: LayerPerf,
    /// Storage format selected for the weight operand (`Dense` on the
    /// dense path — only a skipping frontend streams compressed operands).
    pub weight_format: CompressedFormat,
    /// Storage format selected for the input-activation operand.
    pub input_format: CompressedFormat,
}

/// The whole-design cost roll-up of one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSummary {
    /// The (latency, energy, area) objective vector.
    pub objectives: Objectives,
    /// Analytic area breakdown (array / SRAM / NoC / PPU).
    pub area: MacroArea,
    /// Peak power draw (static + full-activity dynamic) in mW.
    pub peak_power_mw: f64,
    /// The scalarization the request asked for.
    pub objective: Objective,
    /// `objective` applied to this design (lower is better).
    pub score: f64,
}

impl CostSummary {
    /// Energy-delay product of the evaluated design.
    pub fn edp(&self) -> f64 {
        self.objectives.edp()
    }
}

/// Where a report came from: enough to match it to its request, to refuse
/// codec mismatches, and to say whether the evaluation was warm. Every
/// field except [`Provenance::request_id`] is a deterministic function of
/// the request and the session's cache state when the request was priced —
/// two runs of the same request against the same cache state produce
/// byte-identical provenance. The request id is an identity token (which
/// evaluation of this session produced the report), so it is excluded
/// from equality: reports differing only in `request_id` compare equal.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Session-local request id, minted per evaluation (the first request
    /// a session prices is `1`). This is the id trace events carry (see
    /// `lego_obs::Obs::request_scope`), so an exported trace's spans can
    /// be attributed back to the report they produced. Not a cross-session
    /// identity: two sessions both mint `1` first.
    pub request_id: u64,
    /// Version of the evaluating `lego-eval` crate.
    pub version: String,
    /// Codec version the report round-trips under.
    pub codec_version: u8,
    /// [`EvalRequest::fingerprint`] of the priced request.
    pub request_fingerprint: u64,
    /// [`EvalRequest::hw_key`] of the priced request (the request-level
    /// hardware-side fingerprint, not the session-internal cache key).
    pub hw_key: u64,
    /// Layer lookups *this request* answered from the session cache —
    /// counted locally per request, not read from the global cache
    /// counters, so parallel batches still produce deterministic reports.
    /// `cache_misses == 0` means the evaluation was fully warm.
    pub cache_hits: u64,
    /// Layer lookups this request had to simulate.
    pub cache_misses: u64,
}

impl PartialEq for Provenance {
    fn eq(&self, other: &Self) -> bool {
        // `request_id` is an identity token, not a property of the result:
        // a warm replay of the same request must compare equal to the
        // original report even though the session minted it a fresh id.
        self.version == other.version
            && self.codec_version == other.codec_version
            && self.request_fingerprint == other.request_fingerprint
            && self.hw_key == other.hw_key
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
    }
}

impl Provenance {
    /// Whether every layer was answered from the cache (no simulation ran).
    pub fn warm(&self) -> bool {
        self.cache_misses == 0
    }
}

/// The response to an [`EvalRequest`]: per-layer mapping results, the
/// aggregated model performance, the design-level cost summary, and
/// provenance. Serializable next to the request
/// ([`EvalReport::encode`]/[`EvalReport::decode`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// One entry per workload layer, in execution order.
    pub per_layer: Vec<LayerReport>,
    /// Aggregated whole-model performance.
    pub model: ModelPerf,
    /// Design-level cost roll-up (objectives, area, peak power, score).
    pub cost: CostSummary,
    /// Who evaluated what.
    pub provenance: Provenance,
}

impl EvalReport {
    /// Counts how many layers chose each dataflow — fused designs switch
    /// mappings at runtime, and this is the evidence.
    pub fn dataflow_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut hist: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for l in &self.per_layer {
            *hist.entry(l.perf.mapping.name()).or_default() += 1;
        }
        hist.into_iter().collect()
    }
}

/// The canonical evaluation layer: prices [`EvalRequest`]s into
/// [`EvalReport`]s through one [`CostContext`] per request, one shared
/// memoized [`EvalCache`], and a worker pool for batches.
///
/// Evaluation is pure, so everything a session does is deterministic:
/// batches return in input order regardless of thread interleaving, and
/// two sessions given the same requests produce byte-identical reports.
///
/// ```
/// use lego_eval::{EvalRequest, EvalSession};
/// use lego_sim::HwConfig;
///
/// let session = EvalSession::new();
/// let report = session.evaluate(&EvalRequest::new(
///     lego_workloads::zoo::lenet(),
///     HwConfig::lego_256(),
/// ));
/// assert!(report.model.gops > 0.0);
/// assert_eq!(report.per_layer.len(), lego_workloads::zoo::lenet().layers.len());
/// ```
#[derive(Debug)]
pub struct EvalSession {
    cache: EvalCache,
    sram: SramModel,
    threads: usize,
    obs: Obs,
    /// The next request id to mint ([`Provenance::request_id`]); the
    /// first request a session prices is `1`.
    next_request: AtomicU64,
    /// Recently built evaluation contexts, most-recently-used last, keyed
    /// by the session cache key. Sweeps and explorer generations revisit
    /// configurations (elites, re-scored genomes), and when a slot *is*
    /// recycled for a new configuration it is updated in place
    /// ([`CostContext::update`]) so unchanged cost components (the NoC
    /// models) are not re-derived.
    ctxs: Mutex<Vec<(u64, Arc<CostContext>)>>,
}

/// Contexts kept per session — enough for an explorer generation's worth
/// of elite revisits without growing unboundedly on huge sweeps.
const CTX_SLOTS: usize = 8;

impl Default for EvalSession {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(8);
        EvalSession {
            cache: EvalCache::new(),
            sram: SramModel::default(),
            threads,
            obs: Obs::disabled(),
            next_request: AtomicU64::new(1),
            ctxs: Mutex::new(Vec::new()),
        }
    }
}

impl EvalSession {
    /// A session with a fresh cache, the default SRAM model, an automatic
    /// worker count, and observability disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides how many concurrent lanes batch evaluation uses (0 means
    /// one thread). Lanes map onto the process-wide [`WorkerPool`](crate::pool::WorkerPool), so the
    /// effective parallelism is additionally bounded by the machine.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the SRAM model every request is priced under.
    #[must_use]
    pub fn with_sram(mut self, sram: SramModel) -> Self {
        self.sram = sram;
        self
    }

    /// Bounds the session cache to `budget_bytes` of estimated resident
    /// memory ([`EvalCache::with_byte_budget`]): the shape a long-lived
    /// server needs, where the cache would otherwise grow monotonically
    /// across millions of requests. Replaces the cache, so apply it
    /// before [`warm_cache`](EvalSession::warm_cache).
    #[must_use]
    pub fn with_cache_budget(mut self, budget_bytes: usize) -> Self {
        self.cache = EvalCache::with_byte_budget(budget_bytes);
        self
    }

    /// Attaches an observability handle: every evaluation records
    /// per-phase spans (`eval/context_build`, `eval/mapping_search`,
    /// `eval/aggregate`, and `sim/best_mapping` per simulated layer) and
    /// counters (`eval.requests`, `eval.layers`, `cache.hits`,
    /// `cache.misses`, `sim.mappings_tried`). Instrumentation never
    /// changes results: reports are byte-identical with any [`Obs`] mode.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle evaluations record into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The shared memo table.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Absorbs foreign cache entries — typically a merged snapshot's cache
    /// from a previous (possibly distributed) run — so this session starts
    /// warm instead of re-simulating layers a peer already priced. Returns
    /// the number of entries actually added ([`EvalCache::absorb`]: a
    /// resident entry is never overwritten).
    ///
    /// Safe by keying, not by trust: cache keys fold in the technology
    /// and SRAM models (see the key derivation on the session), so
    /// entries absorbed from a run that priced under different models
    /// simply never hit — a mismatched warm start costs recomputation,
    /// never correctness.
    pub fn warm_cache<I: IntoIterator<Item = ((u64, u64), LayerPerf)>>(&self, entries: I) -> usize {
        self.cache.absorb(entries)
    }

    /// Prices one request.
    pub fn evaluate(&self, request: &EvalRequest) -> EvalReport {
        self.evaluate_view(request.as_view())
    }

    /// Prices one request with *pristine* provenance: the report is
    /// byte-identical to what `EvalSession::new().evaluate(request)`
    /// would produce, regardless of how warm this session is or how many
    /// requests it has already served.
    ///
    /// Per-layer pricing is deterministic and cache-transparent, so the
    /// only session-dependent report fields are provenance's
    /// `request_id` (this session's mint counter) and the
    /// `cache_hits`/`cache_misses` warmth counters (this session's cache
    /// state). A fresh one-shot session would mint id `1` and miss once
    /// per *distinct* layer shape (repeated blocks within the model hit
    /// the line the first occurrence filled), so those are the values
    /// recorded — while the actual computation still flows through the
    /// shared warm cache. This is the `lego-serve` reply contract: a
    /// server answer is indistinguishable from offline evaluation, which
    /// is what lets CI `cmp` server replies across runs and against
    /// offline reports.
    pub fn evaluate_pristine(&self, request: &EvalRequest) -> EvalReport {
        let mut report = self.evaluate(request);
        let mut seen = std::collections::HashSet::new();
        let distinct = request
            .layer_keys()
            .iter()
            .filter(|&&k| seen.insert(k))
            .count() as u64;
        report.provenance.request_id = 1;
        report.provenance.cache_misses = distinct;
        report.provenance.cache_hits = report.per_layer.len() as u64 - distinct;
        report
    }

    /// The hardware half of the cache key one evaluation uses.
    ///
    /// Every input that feeds per-layer pricing must separate cache
    /// entries, including the ones a caller-supplied
    /// [`EvalRequestRef::hw_key`] cannot know about: the technology model
    /// (the explorer's genome fingerprint hashes only genome fields) and
    /// this session's [`SramModel`]. Folding them in here means
    /// warm-cache entries absorbed from a run that priced under a
    /// different technology or SRAM model *miss* — recomputing honestly —
    /// instead of being served as silently wrong results.
    /// `hw_fp` is the request-level hardware fingerprint the caller already
    /// computed (it is also what provenance records), so one evaluation
    /// hashes the configuration exactly once.
    fn cache_key(&self, request: &EvalRequestRef<'_>, hw_fp: u64) -> u64 {
        let mut h = FnvHasher::new();
        match request.hw_key {
            None => {
                hw_fp.hash(&mut h);
            }
            Some(key) => {
                key.hash(&mut h);
                // A caller key covers the configuration, not the tech.
                for field in crate::codec::tech_fields(&request.tech) {
                    field.to_bits().hash(&mut h);
                }
            }
        }
        for field in sram_fields(&self.sram) {
            field.to_bits().hash(&mut h);
        }
        h.finish()
    }

    /// The session context cache: returns the context for `key` if one is
    /// resident, otherwise builds it — recycling the least-recently-used
    /// slot in place once the cache is full, so a sweep stepping through
    /// configurations re-derives only the cost components its mutation
    /// touched (see [`CostContext::update`]).
    fn context_for(&self, request: &EvalRequestRef<'_>, key: u64) -> Arc<CostContext> {
        let mut slots = self.ctxs.lock().expect("context cache poisoned");
        if let Some(pos) = slots.iter().position(|(k, _)| *k == key) {
            let hit = slots.remove(pos);
            let ctx = Arc::clone(&hit.1);
            slots.push(hit);
            return ctx;
        }
        let ctx = if slots.len() >= CTX_SLOTS {
            // Recycle the coldest slot. If nothing else holds it, update
            // it in place (the incremental fast path); a still-shared
            // context falls back to a fresh build.
            let (_, lru) = slots.remove(0);
            match Arc::try_unwrap(lru) {
                Ok(mut owned) => {
                    owned.update(request.hw, request.tech, self.sram, request.sparse);
                    Arc::new(owned)
                }
                Err(_) => Arc::new(
                    CostContext::new(request.hw.clone(), request.tech)
                        .with_sram(self.sram)
                        .with_sparse(request.sparse),
                ),
            }
        } else {
            Arc::new(
                CostContext::new(request.hw.clone(), request.tech)
                    .with_sram(self.sram)
                    .with_sparse(request.sparse),
            )
        };
        slots.push((key, Arc::clone(&ctx)));
        ctx
    }

    /// Prices a borrowed request view — the zero-clone form sweep drivers
    /// and the explorer use (see [`EvalRequestRef`]).
    pub fn evaluate_view(&self, request: EvalRequestRef<'_>) -> EvalReport {
        // Mint this evaluation's request id and mark the calling thread
        // with it: every trace event recorded below (the eval/* spans and
        // cache counters) carries the id, which is how an exported trace
        // attributes spans to the report's provenance.
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let _req_scope = self.obs.request_scope(request_id);
        let _eval_span = self.obs.span("eval/evaluate");
        self.obs.count("eval.requests", 1);
        self.obs
            .count("eval.layers", request.workload.layers.len() as u64);
        // The request-level hardware fingerprint, computed exactly once per
        // evaluation: it keys the cache (when the caller supplied no key)
        // and is recorded in provenance.
        let hw_fp = hw_fingerprint(request.hw, request.sparse, &request.tech, request.tile_cap);
        let cache_key = self.cache_key(&request, hw_fp);
        let ctx = self.obs.time("eval/context_build", || {
            self.context_for(&request, cache_key)
        });
        // Cache warmth is counted locally (not read from the global cache
        // counters) so a report's provenance depends only on this
        // request's lookups, never on what parallel batch neighbors did.
        let computed = Cell::new(0u64);
        let search_span = self.obs.span("eval/mapping_search");
        let per_layer: Vec<LayerReport> = request
            .workload
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let lk = request
                    .layer_keys
                    .and_then(|keys| keys.get(i).copied())
                    .unwrap_or_else(|| layer_key(layer));
                let perf = self.cache.get_or_compute(cache_key, lk, || {
                    computed.set(computed.get() + 1);
                    best_mapping_obs(layer, &ctx, request.tile_cap, &self.obs)
                });
                let (weight_format, input_format) = ctx
                    .sparse_effects(&layer.sparsity)
                    .map_or((CompressedFormat::Dense, CompressedFormat::Dense), |e| {
                        (e.weight_format, e.input_format)
                    });
                LayerReport {
                    name: Arc::clone(&layer.name),
                    count: layer.count,
                    perf,
                    weight_format,
                    input_format,
                }
            })
            .collect();
        drop(search_span);
        let cache_misses = computed.get();
        let cache_hits = per_layer.len() as u64 - cache_misses;
        self.obs.count("cache.hits", cache_hits);
        self.obs.count("cache.misses", cache_misses);
        let model = self.obs.time("eval/aggregate", || {
            aggregate_iter(
                request.workload,
                per_layer.iter().map(|l| (l.count, &l.perf)),
                &request.tech,
            )
        });

        let latency_cycles = model.cycles as f64;
        let time_s = latency_cycles / (request.tech.freq_ghz * 1e9);
        let energy_pj = model.watts * time_s * 1e12;
        // Memory banked per array edge so wider arrays get more ports.
        let banks = (request.hw.array.0 + request.hw.array.1).max(1) as u64;
        let area = ctx.area(banks);
        let peak_power_mw = ctx.peak_power_mw();
        let objectives = Objectives {
            latency_cycles,
            energy_pj,
            area_um2: area.total_um2(),
        };
        let score = request.objective.score(&objectives, peak_power_mw);
        EvalReport {
            per_layer,
            model,
            cost: CostSummary {
                objectives,
                area,
                peak_power_mw,
                objective: request.objective,
                score,
            },
            // Provenance records *request-level* fingerprints — the
            // values [`EvalRequest::hw_key`]/[`EvalRequest::fingerprint`]
            // compute, so a driver can match reports back to requests.
            // The session-internal cache key (which additionally folds
            // in the SRAM model and any caller-supplied key) is an
            // implementation detail and is deliberately not exposed.
            provenance: Provenance {
                request_id,
                version: env!("CARGO_PKG_VERSION").to_string(),
                codec_version: crate::codec::VERSION,
                request_fingerprint: request_fingerprint(
                    request.workload,
                    hw_fp,
                    request.layer_keys,
                ),
                hw_key: hw_fp,
                cache_hits,
                cache_misses,
            },
        }
    }

    /// Prices a batch on the worker pool, sharing the cache; reports come
    /// back in input order.
    pub fn evaluate_batch(&self, requests: &[EvalRequest]) -> Vec<EvalReport> {
        self.run_batch(requests, |r| self.evaluate(r))
    }

    /// Prices requests lazily, one per `next()` call, sharing the session
    /// cache across the whole stream — the shape sweep drivers consume
    /// (generate requests on the fly, fold reports as they arrive, never
    /// hold the full sweep in memory).
    pub fn evaluate_stream<'s, I>(&'s self, requests: I) -> impl Iterator<Item = EvalReport> + 's
    where
        I: IntoIterator<Item = EvalRequest>,
        I::IntoIter: 's,
    {
        requests.into_iter().map(move |req| self.evaluate(&req))
    }

    /// Runs `f` over `items` on the session's worker pool, returning
    /// results in input order. This is the pool behind
    /// [`EvalSession::evaluate_batch`], exposed so callers with their own
    /// unit of work (the explorer evaluates genomes, not requests) share
    /// one pool implementation. The pool threads persist across batches
    /// ([`WorkerPool`](crate::pool::WorkerPool)), so per-call overhead is a condvar handoff rather
    /// than `threads` fresh OS threads; `f` must be pure for the output to
    /// be deterministic, which every evaluation in this workspace is.
    /// `f` must not call back into `run_batch` on the same session (the
    /// pool runs one job at a time).
    pub fn run_batch<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len()).max(1);
        // Pool shape metrics are scheduling-dependent (worker counts vary
        // with thread interleaving), so they only exist in wall-clock mode
        // and never leak into deterministic summaries. Queue depth and
        // per-lane task counts are recorded by the pool's own submit path
        // (`run_obs`).
        self.obs.count_scheduling("pool.batches", 1);
        self.obs.record_scheduling("pool.workers", workers as f64);
        if workers == 1 {
            // The sequential path never reaches the pool; record the same
            // submit-path series it would have (everything ran on lane 0).
            self.obs
                .record_scheduling("pool.queue_depth", items.len() as f64);
            self.obs
                .count_scheduling("pool.lane.0.tasks", items.len() as u64);
            self.obs
                .record_scheduling("pool.tasks_per_lane", items.len() as f64);
            return items.iter().map(f).collect();
        }
        // One result slot per item. Each slot is written by exactly one
        // claimant of its index (the pool hands out every index once), so
        // the raw shared mutation is race-free; the pool's completion
        // handshake orders the writes before the reads below.
        struct Slot<R>(UnsafeCell<Option<R>>);
        unsafe impl<R: Send> Sync for Slot<R> {}
        let slots: Vec<Slot<R>> = (0..items.len())
            .map(|_| Slot(UnsafeCell::new(None)))
            .collect();
        crate::pool::global().run_obs(
            items.len(),
            workers,
            &|i| {
                let result = f(&items[i]);
                // SAFETY: index `i` is claimed exactly once, so no other
                // thread touches this slot.
                unsafe { *slots[i].0.get() = Some(result) };
            },
            &self.obs,
        );
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("every task produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_model::SparseAccel;
    use lego_sim::best_mapping_ctx;
    use lego_workloads::zoo;

    #[test]
    fn session_matches_the_ctx_internals_exactly() {
        // The session is a packaging of the `_ctx` path: same context, same
        // per-layer simulation, same aggregate — so results are
        // byte-identical to hand-wiring the internals.
        let model = zoo::mobilenet_v2();
        let hw = HwConfig::lego_256();
        let tech = TechModel::default();
        let report = EvalSession::new().evaluate(&EvalRequest::new(model.clone(), hw.clone()));
        let ctx = CostContext::new(hw, tech);
        for (layer, got) in model.layers.iter().zip(&report.per_layer) {
            assert_eq!(
                got.perf,
                best_mapping_ctx(layer, &ctx, None),
                "{}",
                layer.name
            );
            assert_eq!(got.name, layer.name);
            assert_eq!(got.count, layer.count);
        }
        let pairs: Vec<(i64, LayerPerf)> = model
            .layers
            .iter()
            .map(|l| (l.count, best_mapping_ctx(l, &ctx, None)))
            .collect();
        assert_eq!(
            report.model,
            aggregate_iter(&model, pairs.iter().map(|(c, p)| (*c, p)), &tech)
        );
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let session = EvalSession::new();
        let req = EvalRequest::new(zoo::resnet50(), HwConfig::lego_256());
        session.evaluate(&req);
        let misses = session.cache().misses();
        let again = session.evaluate(&req);
        assert_eq!(session.cache().misses(), misses, "second eval is all hits");
        assert!(session.cache().hits() > 0);
        assert!(again.cost.edp() > 0.0);
    }

    #[test]
    fn pristine_reports_match_a_fresh_session_byte_for_byte() {
        let warm = EvalSession::new();
        let requests = [
            EvalRequest::new(zoo::lenet(), HwConfig::lego_256()),
            EvalRequest::new(zoo::resnet50(), HwConfig::lego_256()),
        ];
        // Warm the session thoroughly and advance its id mint.
        for req in &requests {
            warm.evaluate(req);
            warm.evaluate(req);
        }
        for req in &requests {
            let offline = EvalSession::new().evaluate(req);
            let served = warm.evaluate_pristine(req);
            assert_eq!(served, offline);
            assert_eq!(served.encode(), offline.encode(), "byte-identical");
        }
    }

    #[test]
    fn budgeted_session_stays_bounded_across_a_sweep() {
        let budget = crate::cache::estimated_resident_bytes_for(64);
        let session = EvalSession::new().with_cache_budget(budget);
        for buffer_kb in [64u64, 128, 256, 512, 1024, 2048] {
            let mut hw = HwConfig::lego_256();
            hw.buffer_kb = buffer_kb;
            session.evaluate(&EvalRequest::new(zoo::resnet50(), hw));
        }
        let g = session.cache().gauges();
        assert!(
            g.within_budget(),
            "resident {} > budget {budget}",
            g.resident_bytes
        );
        assert!(g.evictions > 0, "a sweep past the budget must evict");
        assert_eq!(g.budget_bytes, Some(budget));
    }

    #[test]
    fn batch_and_stream_match_sequential_evaluation() {
        let hws = [HwConfig::lego_256(), HwConfig::lego_icoc_1k()];
        let requests: Vec<EvalRequest> = hws
            .iter()
            .map(|hw| EvalRequest::new(zoo::lenet(), hw.clone()))
            .collect();
        let par = EvalSession::new().with_threads(4);
        let seq = EvalSession::new().with_threads(1);
        let batched = par.evaluate_batch(&requests);
        let sequential = seq.evaluate_batch(&requests);
        // A fresh session for the stream: provenance records cache
        // warmth, so only equal cache states compare byte-identical.
        let stream_session = EvalSession::new().with_threads(1);
        let streamed: Vec<EvalReport> = stream_session.evaluate_stream(requests.clone()).collect();
        assert_eq!(batched, sequential);
        assert_eq!(streamed, sequential);
    }

    #[test]
    fn provenance_reports_cache_warmth() {
        let session = EvalSession::new();
        let req = EvalRequest::new(zoo::lenet(), HwConfig::lego_256());
        let cold = session.evaluate(&req);
        assert!(cold.provenance.cache_misses > 0, "cold run must simulate");
        assert!(!cold.provenance.warm());
        assert_eq!(
            cold.provenance.cache_hits + cold.provenance.cache_misses,
            req.workload.layers.len() as u64
        );
        let warm = session.evaluate(&req);
        assert!(warm.provenance.warm());
        assert_eq!(warm.provenance.cache_hits, req.workload.layers.len() as u64);
        // Warmth is the only difference between the two reports.
        assert_eq!(warm.per_layer, cold.per_layer);
        assert_eq!(warm.model, cold.model);
        assert_eq!(warm.cost, cold.cost);
    }

    #[test]
    fn observability_never_perturbs_reports() {
        let req = EvalRequest::new(zoo::resnet50(), HwConfig::lego_256());
        let plain = EvalSession::new().evaluate(&req);
        let obs = Obs::deterministic();
        let instrumented = EvalSession::new().with_obs(obs.clone()).evaluate(&req);
        assert_eq!(instrumented, plain, "instrumentation must not perturb");
        assert_eq!(instrumented.encode(), plain.encode());
        // And the recorder saw the evaluation's shape.
        let summary = obs.summary();
        assert_eq!(summary.counter("eval.requests"), 1);
        assert_eq!(
            summary.counter("eval.layers"),
            req.workload.layers.len() as u64
        );
        assert_eq!(
            summary.counter("cache.hits") + summary.counter("cache.misses"),
            req.workload.layers.len() as u64
        );
        assert!(summary.counter("sim.mappings_tried") > 0);
        assert_eq!(summary.spans["eval/evaluate"].count, 1);
        assert_eq!(summary.spans["eval/context_build"].count, 1);
        assert_eq!(summary.spans["eval/mapping_search"].count, 1);
        assert_eq!(summary.spans["eval/aggregate"].count, 1);
        // Deterministic mode never reads the clock.
        assert!(summary.spans.values().all(|s| s.total_ns == 0));
    }

    #[test]
    fn sparse_requests_report_format_selection() {
        let session = EvalSession::new();
        let skip = session.evaluate(
            &EvalRequest::new(zoo::resnet50_2to4(), HwConfig::lego_256())
                .with_sparse(SparseHw::with_accel(SparseAccel::Skipping)),
        );
        // 2:4 weights on a skipping frontend stream as bitmask.
        assert!(skip
            .per_layer
            .iter()
            .any(|l| l.weight_format == CompressedFormat::Bitmask));
        // The dense twin reports dense formats everywhere.
        let dense = session.evaluate(&EvalRequest::new(zoo::resnet50(), HwConfig::lego_256()));
        assert!(dense
            .per_layer
            .iter()
            .all(|l| l.weight_format == CompressedFormat::Dense
                && l.input_format == CompressedFormat::Dense));
    }

    #[test]
    fn warm_cache_preloads_evaluations() {
        let first = EvalSession::new();
        let req = EvalRequest::new(zoo::lenet(), HwConfig::lego_256());
        first.evaluate(&req);
        let entries = first.cache().entries();
        assert!(!entries.is_empty());
        // A fresh session warmed with those entries answers the same
        // request without a single simulation.
        let second = EvalSession::new();
        assert_eq!(second.warm_cache(entries), first.cache().len());
        let report = second.evaluate(&req);
        assert_eq!(second.cache().misses(), 0, "warm start: no misses");
        assert_eq!(report, first.evaluate(&req));
    }

    #[test]
    fn foreign_cache_entries_from_a_different_sram_model_never_lie() {
        let req = EvalRequest::new(zoo::lenet(), HwConfig::lego_256());
        let default_sram = EvalSession::new();
        let cheap = default_sram.evaluate(&req);
        // A session pricing under a pricier SRAM model absorbs the
        // default-model entries…
        let pricier = EvalSession::new().with_sram(SramModel {
            access_pj_per_byte: 10.0 * SramModel::default().access_pj_per_byte,
            ..SramModel::default()
        });
        assert!(pricier.warm_cache(default_sram.cache().entries()) > 0);
        let report = pricier.evaluate(&req);
        // …but never serves them: the SRAM model is folded into the cache
        // key, so the mismatched entries miss and pricing stays honest.
        assert!(pricier.cache().misses() > 0, "foreign entries must miss");
        assert!(
            report.model.watts > cheap.model.watts,
            "the pricier SRAM must show up in the result"
        );
    }

    #[test]
    fn fingerprints_separate_requests() {
        let a = EvalRequest::new(zoo::lenet(), HwConfig::lego_256());
        let mut b = a.clone();
        b.hw.buffer_kb = 512;
        let mut c = a.clone();
        c.tile_cap = Some(32);
        let mut d = a.clone();
        d.sparse = SparseHw::with_accel(SparseAccel::Skipping);
        assert_ne!(a.hw_key(), b.hw_key());
        assert_ne!(a.hw_key(), c.hw_key());
        assert_ne!(a.hw_key(), d.hw_key());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same request, same fingerprint — across sessions and processes.
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn request_ids_are_minted_per_evaluation() {
        let session = EvalSession::new();
        let req = EvalRequest::new(zoo::lenet(), HwConfig::lego_256());
        let first = session.evaluate(&req);
        let second = session.evaluate(&req);
        let third = session.evaluate(&req);
        assert_eq!(first.provenance.request_id, 1);
        assert_eq!(second.provenance.request_id, 2);
        assert_eq!(third.provenance.request_id, 3);
        // The id is an identity token, excluded from report equality: the
        // two warm replays differ only in their ids and compare equal.
        assert_eq!(first.per_layer, second.per_layer);
        assert_eq!(second.provenance, third.provenance);
        assert_eq!(second, third);
        // Batches mint one id per item (order across lanes is arbitrary).
        let batch_session = EvalSession::new().with_threads(4);
        let reports = batch_session.evaluate_batch(&[req.clone(), req.clone(), req.clone()]);
        let mut ids: Vec<u64> = reports.iter().map(|r| r.provenance.request_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn provenance_matches_the_request_fingerprints() {
        // The report-to-request matching contract a multi-host driver
        // leans on: provenance records exactly what the request computes.
        let req = EvalRequest::new(zoo::lenet(), HwConfig::lego_256());
        let report = EvalSession::new().evaluate(&req);
        assert_eq!(report.provenance.request_fingerprint, req.fingerprint());
        assert_eq!(report.provenance.hw_key, req.hw_key());
        // The contract holds regardless of session-level state (SRAM) or
        // caller-supplied cache keys.
        let custom = EvalSession::new().with_sram(SramModel {
            access_pj_per_byte: 1.0,
            ..SramModel::default()
        });
        assert_eq!(
            custom.evaluate(&req).provenance.request_fingerprint,
            req.fingerprint()
        );
        let mut view = req.as_view();
        view.hw_key = Some(0xDEAD_BEEF);
        assert_eq!(
            EvalSession::new().evaluate_view(view).provenance.hw_key,
            req.hw_key()
        );
    }
}
