//! Fluent, validating construction of an [`EvalRequest`].
//!
//! [`EvalRequest::new`] plus the `with_*` combinators build a request
//! without looking at it; nothing stops an empty workload, a hardware
//! configuration that fuses no dataflows, or a zero tile cap from reaching
//! the evaluator (where the cost model would price nonsense or panic deep
//! in a mapping search). The builder is the validated front door:
//! [`EvalRequestBuilder::build`] checks the request the way `lego-serve`
//! checks one arriving off the wire and returns a typed [`EvalError`]
//! instead of evaluating garbage.
//!
//! ```
//! use lego_eval::EvalRequest;
//! use lego_sim::HwConfig;
//!
//! let request = EvalRequest::builder(lego_workloads::zoo::lenet(), HwConfig::lego_256())
//!     .tile_cap(64)
//!     .build()
//!     .expect("a valid zoo request");
//! assert_eq!(request.tile_cap, Some(64));
//! ```

use crate::error::EvalError;
use crate::objective::Objective;
use crate::session::EvalRequest;
use lego_model::{SparseHw, TechModel};
use lego_sim::HwConfig;
use lego_workloads::Model;

/// Builds a validated [`EvalRequest`]; see the [module docs](self).
///
/// Created by [`EvalRequest::builder`]. Workload and hardware are the two
/// required inputs and are taken up front; everything else defaults the
/// same way [`EvalRequest::new`] defaults (dense datapath, default
/// technology, EDP objective, automatic tiling).
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until build() is called"]
pub struct EvalRequestBuilder {
    workload: Model,
    hw: HwConfig,
    sparse: SparseHw,
    tech: TechModel,
    objective: Objective,
    tile_cap: Option<i64>,
}

impl EvalRequestBuilder {
    pub(crate) fn new(workload: Model, hw: HwConfig) -> Self {
        EvalRequestBuilder {
            workload,
            hw,
            sparse: SparseHw::dense(),
            tech: TechModel::default(),
            objective: Objective::EDP,
            tile_cap: None,
        }
    }

    /// Replaces the sparse datapath configuration (default: dense).
    pub fn sparse(mut self, sparse: SparseHw) -> Self {
        self.sparse = sparse;
        self
    }

    /// Replaces the technology model (default: [`TechModel::default`]).
    pub fn tech(mut self, tech: TechModel) -> Self {
        self.tech = tech;
        self
    }

    /// Replaces the reported scalarization (default: EDP).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Caps the L1 tile edge (default: buffer-limited automatic tiling).
    pub fn tile_cap(mut self, cap: i64) -> Self {
        self.tile_cap = Some(cap);
        self
    }

    /// Clears a previously set tile cap back to automatic tiling.
    pub fn auto_tiling(mut self) -> Self {
        self.tile_cap = None;
        self
    }

    /// Validates and produces the request.
    ///
    /// # Errors
    ///
    /// - [`EvalError::EmptyWorkload`] if the workload has no layers;
    /// - [`EvalError::Hw`] if the hardware configuration fails
    ///   [`HwConfig::validate`];
    /// - [`EvalError::InvalidTileCap`] if a tile cap was set and is not
    ///   positive.
    pub fn build(self) -> Result<EvalRequest, EvalError> {
        if self.workload.layers.is_empty() {
            return Err(EvalError::EmptyWorkload);
        }
        self.hw.validate()?;
        if let Some(cap) = self.tile_cap {
            if cap <= 0 {
                return Err(EvalError::InvalidTileCap(cap));
            }
        }
        Ok(EvalRequest::new(self.workload, self.hw)
            .with_sparse(self.sparse)
            .with_tech(self.tech)
            .with_objective(self.objective)
            .with_tile_cap(self.tile_cap))
    }
}

impl EvalRequest {
    /// Starts a validating builder for a request pricing `workload` on
    /// `hw`; see [`EvalRequestBuilder`].
    pub fn builder(workload: Model, hw: HwConfig) -> EvalRequestBuilder {
        EvalRequestBuilder::new(workload, hw)
    }

    /// Validates an already-constructed request against the same rules
    /// [`EvalRequestBuilder::build`] enforces — what `lego-serve` runs on
    /// every request admitted off the wire.
    ///
    /// # Errors
    ///
    /// See [`EvalRequestBuilder::build`].
    pub fn validate(&self) -> Result<(), EvalError> {
        if self.workload.layers.is_empty() {
            return Err(EvalError::EmptyWorkload);
        }
        self.hw.validate()?;
        if let Some(cap) = self.tile_cap {
            if cap <= 0 {
                return Err(EvalError::InvalidTileCap(cap));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StatusCode;

    #[test]
    fn builder_defaults_match_new() {
        let built = EvalRequest::builder(lego_workloads::zoo::lenet(), HwConfig::lego_256())
            .build()
            .unwrap();
        let direct = EvalRequest::new(lego_workloads::zoo::lenet(), HwConfig::lego_256());
        assert_eq!(built, direct);
        assert_eq!(built.encode(), direct.encode());
    }

    #[test]
    fn builder_rejects_empty_workload() {
        let empty = Model {
            name: "empty".into(),
            layers: Vec::new(),
        };
        let err = EvalRequest::builder(empty, HwConfig::lego_256())
            .build()
            .unwrap_err();
        assert_eq!(err.status(), StatusCode::EMPTY_WORKLOAD);
    }

    #[test]
    fn builder_rejects_invalid_hw() {
        let mut hw = HwConfig::lego_256();
        hw.dataflows.clear();
        let err = EvalRequest::builder(lego_workloads::zoo::lenet(), hw)
            .build()
            .unwrap_err();
        assert_eq!(err.status(), StatusCode::INVALID_HW);
    }

    #[test]
    fn builder_rejects_nonpositive_tile_cap() {
        let err = EvalRequest::builder(lego_workloads::zoo::lenet(), HwConfig::lego_256())
            .tile_cap(0)
            .build()
            .unwrap_err();
        assert_eq!(err.status(), StatusCode::INVALID_TILE_CAP);
        let ok = EvalRequest::builder(lego_workloads::zoo::lenet(), HwConfig::lego_256())
            .tile_cap(-3)
            .auto_tiling()
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn validate_agrees_with_the_builder() {
        let request = EvalRequest::new(lego_workloads::zoo::lenet(), HwConfig::lego_256());
        assert!(request.validate().is_ok());
        let bad = EvalRequest::new(lego_workloads::zoo::lenet(), HwConfig::lego_256())
            .with_tile_cap(Some(-1));
        assert_eq!(
            bad.validate().unwrap_err().status(),
            StatusCode::INVALID_TILE_CAP
        );
    }
}
