//! The persistent worker pool behind the batch evaluation paths.
//!
//! `EvalSession::run_batch` originally spawned a fresh set of OS threads per
//! call via `thread::scope`. Profiling showed the spawn/join cost (~500 µs
//! for an 8-thread batch on this class of machine) dwarfing the evaluation
//! work itself — explorer generations with warm caches finish in tens of
//! microseconds. This pool spawns its workers once per **process**
//! ([`global`]) and hands each batch to them through a condvar, so
//! steady-state batch dispatch costs a couple of lock round-trips instead
//! of a round of thread spawns — and a freshly constructed session (the
//! explorer builds one per `explore` call) starts with a hot pool.
//!
//! Design notes:
//!
//! - One job at a time (concurrent submitters are serialized). A job is a
//!   type-erased `Fn(usize)` closure invoked with item indices claimed
//!   from a shared atomic counter; the submitting thread participates in
//!   the index race too, so `lanes` parallelism needs only `lanes - 1`
//!   workers and the caller never idles.
//! - The closure is borrowed from the submitter's stack. That is sound
//!   because [`WorkerPool::run`] does not return until every index has been
//!   claimed **and** completed (tracked by an acquire/release counter), so
//!   the borrow outlives all worker access. The `'static` transmute below
//!   is confined to that window.
//! - Worker panics are caught, carried back, and re-raised on the
//!   submitting thread, matching the propagation `thread::scope` gave us.

use lego_obs::{Obs, ObsMode};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The process-wide pool, sized to the machine (`parallelism - 1` workers;
/// the submitting thread is the final lane). Spawned on first use and
/// never torn down — idle workers park on a condvar and cost nothing.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .saturating_sub(1);
        WorkerPool::new(workers)
    })
}

/// The unit of work shared between the submitter and the workers.
struct Job {
    /// Type-erased `&dyn Fn(usize)` from the submitter's stack; valid for
    /// the duration of the job because the submitter blocks on completion.
    task: *const (dyn Fn(usize) + Sync),
    /// Number of items; indices `0..len` are claimed from `next`.
    len: usize,
    /// Worker seats left: a worker joins the job only if its decrement
    /// keeps this nonnegative, capping parallelism at the submitter's
    /// requested lane count rather than the pool width.
    seats: AtomicIsize,
    /// Next index to claim.
    next: AtomicUsize,
    /// Number of indices fully executed (successfully or by panic).
    completed: AtomicUsize,
    /// Items executed per lane: slot 0 is the submitter, slots `1..` the
    /// workers that claimed a seat. Each lane's tally is bumped before the
    /// item's `completed` release-increment, so once the submitter
    /// observes `completed == len` every tally is visible too.
    lane_tasks: Box<[AtomicU64]>,
    /// First captured worker panic, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `task` points at a `Sync` closure, and the raw pointer is only
// dereferenced between job publication and the completion handshake, while
// the submitter keeps the referent alive.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs indices until the counter is exhausted, tallying
    /// each executed item against `lane`. Returns the number of indices
    /// this caller executed.
    fn drain(&self, lane: usize) -> usize {
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return ran;
            }
            // SAFETY: see the struct-level invariant — the submitter keeps
            // the closure alive until `completed == len`.
            let task = unsafe { &*self.task };
            let outcome = catch_unwind(AssertUnwindSafe(|| task(i)));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            ran += 1;
            self.lane_tasks[lane].fetch_add(1, Ordering::Relaxed);
            // Release pairs with the submitter's Acquire load so every
            // side effect of `task(i)` (and the lane tally above) is
            // visible once the count reaches `len`.
            self.completed.fetch_add(1, Ordering::Release);
        }
    }

    fn done(&self) -> bool {
        self.completed.load(Ordering::Acquire) >= self.len
    }
}

struct State {
    job: Option<Arc<Job>>,
    /// Bumped per published job so sleeping workers distinguish "new job"
    /// from a spurious wake on the same exhausted job.
    generation: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Lock-free mirror of [`State::generation`], written under the state
    /// lock. Lets workers and submitters spin-watch for progress without
    /// touching the mutex.
    epoch: AtomicU64,
    /// Workers wait here for a new generation (or shutdown).
    work: Condvar,
    /// The submitter waits here for `completed == len`.
    done: Condvar,
}

/// How long a worker spins watching [`Shared::epoch`] before parking on
/// the condvar. Back-to-back batches (an explorer stepping generations)
/// arrive well inside this window, so steady-state dispatch never pays a
/// futex wakeup; after one quiet interval the pool goes fully idle.
const WORKER_SPIN: u32 = 1 << 15;

/// How long the submitter spins watching the completion counter before
/// parking. Once the submitter has drained the index race, stragglers are
/// at most one item from done, so this almost always avoids the sleep.
const SUBMIT_SPIN: u32 = 1 << 14;

/// A fixed-width pool of persistent worker threads. See the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes submitters: the pool runs one job at a time.
    gate: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (0 is valid: every `run` then
    /// executes entirely on the submitting thread, preserving sequential
    /// order guarantees the deterministic mode relies on elsewhere).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                shutdown: false,
            }),
            epoch: AtomicU64::new(0),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            gate: Mutex::new(()),
        }
    }

    /// Number of persistent worker threads (excluding the submitter lane).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `task(i)` for every `i in 0..len`, spreading indices across at
    /// most `lanes` concurrent executors (the calling thread plus up to
    /// `lanes - 1` workers), and returns once all are complete. Concurrent
    /// submitters are serialized (second caller waits its turn), so `task`
    /// must not call back into the same pool. A panic inside `task` is
    /// re-raised here after the batch drains.
    pub fn run(&self, len: usize, lanes: usize, task: &(dyn Fn(usize) + Sync)) {
        self.run_obs(len, lanes, task, &Obs::disabled());
    }

    /// [`WorkerPool::run`] with scheduling observability: the submit path
    /// records the batch's queue depth (`pool.queue_depth`) and, once the
    /// batch drains, how many items each lane executed
    /// (`pool.lane.N.tasks` counters plus a `pool.tasks_per_lane` value
    /// series; lane 0 is the submitting thread). All of it is
    /// scheduling-dependent — which lane wins an index race varies run to
    /// run — so the series exist only in
    /// [`ObsMode::WallClock`] and
    /// deterministic summaries stay byte-stable.
    pub fn run_obs(&self, len: usize, lanes: usize, task: &(dyn Fn(usize) + Sync), obs: &Obs) {
        if len == 0 {
            return;
        }
        obs.record_scheduling("pool.queue_depth", len as f64);
        let helpers = lanes
            .saturating_sub(1)
            .min(self.workers.len())
            .min(len.saturating_sub(1));
        if helpers == 0 {
            for i in 0..len {
                task(i);
            }
            if obs.mode() == ObsMode::WallClock {
                obs.count_scheduling("pool.lane.0.tasks", len as u64);
                obs.record_scheduling("pool.tasks_per_lane", len as f64);
            }
            return;
        }
        // A panicked batch unwinds through `resume_unwind` below while
        // holding this guard, poisoning the gate; the pool itself is still
        // consistent (the job was fully retired first), so recover.
        let _turn = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the borrow's lifetime is erased to 'static; that is
        // sound because the job is retired before this function returns —
        // we block until `completed == len` — so no worker can observe the
        // closure dangling.
        let task: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let job = Arc::new(Job {
            task,
            len,
            seats: AtomicIsize::new(helpers as isize),
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            lane_tasks: (0..=helpers).map(|_| AtomicU64::new(0)).collect(),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.job = Some(Arc::clone(&job));
            state.generation = state.generation.wrapping_add(1);
            self.shared.epoch.store(state.generation, Ordering::Release);
            // Wake only as many workers as the job has seats for — a
            // notify_all on a wide machine stampedes every idle worker
            // through the state lock for a job most of them can't join.
            // Spinning workers pick the epoch change up without any wakeup.
            if helpers >= self.workers.len() {
                self.shared.work.notify_all();
            } else {
                for _ in 0..helpers {
                    self.shared.work.notify_one();
                }
            }
        }
        // The submitter is a full participant in the index race (lane 0).
        job.drain(0);
        // Stragglers are at most one in-flight item each from done — spin
        // for them first so the common case never parks on the condvar.
        let mut spins = 0;
        while !job.done() && spins < SUBMIT_SPIN {
            std::hint::spin_loop();
            spins += 1;
        }
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            while !job.done() {
                state = self.shared.done.wait(state).expect("pool state poisoned");
            }
            state.job = None;
        }
        let payload = job.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        if obs.mode() == ObsMode::WallClock {
            for (lane, tally) in job.lane_tasks.iter().enumerate() {
                let tasks = tally.load(Ordering::Relaxed);
                if tasks > 0 {
                    obs.count_scheduling(&format!("pool.lane.{lane}.tasks"), tasks);
                    obs.record_scheduling("pool.tasks_per_lane", tasks as f64);
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            // Bump the epoch so spinning workers fall through to the lock
            // (where they observe `shutdown`) instead of spinning out.
            state.generation = state.generation.wrapping_add(1);
            self.shared.epoch.store(state.generation, Ordering::Release);
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        // Spin-watch the epoch before touching the mutex: in steady state
        // (an explorer stepping generation batches back to back) the next
        // job lands inside this window and dispatch costs no futex wakeup.
        let mut spins = 0;
        while shared.epoch.load(Ordering::Acquire) == seen && spins < WORKER_SPIN {
            std::hint::spin_loop();
            spins += 1;
        }
        let (job, lane) = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen {
                    seen = state.generation;
                    // Join only if the job still has a worker seat (it may
                    // be retired already, or want fewer lanes than the
                    // pool is wide).
                    if let Some(job) = &state.job {
                        let s = job.seats.fetch_sub(1, Ordering::Relaxed);
                        if s > 0 {
                            // Seat `s` counts down from `helpers`, so this
                            // claim maps to the unique lane slot
                            // `helpers - s + 1` (the submitter is lane 0).
                            break (Arc::clone(job), job.lane_tasks.len() - s as usize);
                        }
                    }
                }
                state = shared.work.wait(state).expect("pool state poisoned");
            }
        };
        job.drain(lane);
        if job.done() {
            // Notify under the state mutex: the submitter's done-check and
            // its condvar wait form one critical section, so taking the
            // lock here guarantees this wakeup is either observed by the
            // check or delivered to the wait — never lost between them.
            let _sync = shared.state.lock().expect("pool state poisoned");
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        for len in [0usize, 1, 2, 7, 64, 1000] {
            let counts: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
            pool.run(len, 4, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "len={len}"
            );
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let counts: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
        pool.run(10, 4, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn results_are_visible_after_run() {
        let pool = WorkerPool::new(4);
        for _ in 0..50 {
            let slots: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
            pool.run(32, 5, &|i| {
                slots[i].store(i as u64 + 1, Ordering::Relaxed);
            });
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(slot.load(Ordering::Relaxed), i as u64 + 1);
            }
        }
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 3, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(outcome.is_err(), "panic must cross the pool boundary");
        // The pool survives a panicked batch.
        let ran = AtomicU64::new(0);
        pool.run(4, 3, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn lane_accounting_covers_every_task_in_wallclock_mode() {
        let pool = WorkerPool::new(3);
        let obs = Obs::wall_clock();
        pool.run_obs(64, 4, &|_| {}, &obs);
        let summary = obs.summary();
        assert_eq!(summary.values["pool.queue_depth"].sum, 64.0);
        // Every executed item is attributed to exactly one lane.
        let lane_total: u64 = (0..4)
            .map(|lane| summary.counter(&format!("pool.lane.{lane}.tasks")))
            .sum();
        assert_eq!(lane_total, 64);
        // The submitter races indices too, so lane 0 always runs something.
        assert!(summary.counter("pool.lane.0.tasks") > 0);
        assert_eq!(summary.values["pool.tasks_per_lane"].sum, 64.0);
        // The inline path (one lane) attributes everything to lane 0.
        let inline = Obs::wall_clock();
        pool.run_obs(5, 1, &|_| {}, &inline);
        assert_eq!(inline.summary().counter("pool.lane.0.tasks"), 5);
    }

    #[test]
    fn lane_accounting_is_absent_in_deterministic_mode() {
        let pool = WorkerPool::new(2);
        let obs = Obs::deterministic();
        pool.run_obs(16, 3, &|_| {}, &obs);
        let summary = obs.summary();
        // Scheduling-dependent series never reach deterministic summaries.
        assert!(summary.is_empty());
    }

    #[test]
    fn sequential_batches_reuse_the_pool() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(16, 5, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1600);
    }
}
