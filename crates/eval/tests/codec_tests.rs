//! Codec contract tests: requests and reports are canonical wire payloads
//! (`encode → decode → encode` byte-identical), and malformed bytes error
//! instead of panicking — the properties a multi-host driver leans on.

use lego_eval::{CodecError, EvalReport, EvalRequest, EvalSession, Objective};
use lego_model::{SparseAccel, SparseHw, TechModel};
use lego_sim::HwConfig;
use lego_workloads::zoo;

/// A request exercising every codec branch: sparse model (uniform +
/// structured + masked-output densities), non-default technology,
/// penalized objective, tile cap, skipping datapath.
fn kitchen_sink_request() -> EvalRequest {
    let mut tech = TechModel::default().scaled_to(45.0);
    tech.freq_ghz = 0.5;
    EvalRequest::new(zoo::gpt2_prefill_causal(), HwConfig::lego_icoc_1k())
        .with_sparse(SparseHw::with_accel(SparseAccel::Skipping))
        .with_tech(tech)
        .with_objective(Objective::penalized_edp(Some(2.5), Some(1.0), 4.0))
        .with_tile_cap(Some(64))
}

fn requests() -> Vec<EvalRequest> {
    vec![
        EvalRequest::new(zoo::lenet(), HwConfig::lego_256()),
        EvalRequest::new(zoo::resnet50_2to4(), HwConfig::lego_256())
            .with_sparse(SparseHw::with_accel(SparseAccel::Gating)),
        EvalRequest::new(zoo::lenet(), HwConfig::lego_256())
            .with_objective(Objective::Lexicographic),
        kitchen_sink_request(),
    ]
}

#[test]
fn request_roundtrip_is_byte_identical() {
    for request in requests() {
        let bytes = request.encode();
        let decoded = EvalRequest::decode(&bytes).expect("own encoding decodes");
        assert_eq!(decoded, request, "{}", request.workload.name);
        assert_eq!(decoded.encode(), bytes, "canonical form");
    }
}

#[test]
fn report_roundtrip_is_byte_identical() {
    let session = EvalSession::new();
    for request in requests() {
        let report = session.evaluate(&request);
        let bytes = report.encode();
        let decoded = EvalReport::decode(&bytes).expect("own encoding decodes");
        assert_eq!(decoded, report, "{}", request.workload.name);
        assert_eq!(decoded.encode(), bytes, "canonical form");
    }
}

#[test]
fn a_decoded_request_evaluates_to_the_same_report() {
    // The multi-host contract: ship the bytes anywhere, evaluate there,
    // get bit-for-bit the report the sender would have computed. Each side
    // evaluates on a fresh session: provenance records cache warmth, so
    // the contract compares equal cache states (cold vs cold).
    for request in requests() {
        let remote = EvalRequest::decode(&request.encode()).expect("decodes");
        assert_eq!(
            EvalSession::new().evaluate(&remote),
            EvalSession::new().evaluate(&request)
        );
        assert_eq!(remote.fingerprint(), request.fingerprint());
    }
}

#[test]
fn every_request_prefix_truncation_errors_instead_of_panicking() {
    let bytes = kitchen_sink_request().encode();
    for len in 0..bytes.len() {
        assert!(
            EvalRequest::decode(&bytes[..len]).is_err(),
            "a {len}-byte prefix must fail to decode"
        );
    }
}

#[test]
fn every_report_prefix_truncation_errors_instead_of_panicking() {
    let bytes = EvalSession::new()
        .evaluate(&kitchen_sink_request())
        .encode();
    for len in 0..bytes.len() {
        assert!(
            EvalReport::decode(&bytes[..len]).is_err(),
            "a {len}-byte prefix must fail to decode"
        );
    }
}

#[test]
fn corruption_is_reported_not_panicked() {
    let request = kitchen_sink_request();
    let good = request.encode();
    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        EvalRequest::decode(&bad),
        Err(CodecError::BadMagic)
    ));
    // Unknown version.
    let mut bad = good.clone();
    bad[8] = 0xEE;
    assert!(matches!(
        EvalRequest::decode(&bad),
        Err(CodecError::UnsupportedVersion(0xEE))
    ));
    // A report payload is not a request (and vice versa).
    let report_bytes = EvalSession::new().evaluate(&request).encode();
    assert!(matches!(
        EvalRequest::decode(&report_bytes),
        Err(CodecError::WrongKind { .. })
    ));
    assert!(matches!(
        EvalReport::decode(&good),
        Err(CodecError::WrongKind { .. })
    ));
    // Trailing garbage.
    let mut bad = good.clone();
    bad.push(0);
    assert!(matches!(
        EvalRequest::decode(&bad),
        Err(CodecError::TrailingBytes(1))
    ));
    // Every single-byte corruption either decodes (the byte was inert for
    // validation — e.g. part of a float) or errors; none panic.
    for i in 0..good.len() {
        let mut fuzz = good.clone();
        fuzz[i] ^= 0xA5;
        let _ = EvalRequest::decode(&fuzz);
    }
    for i in 0..report_bytes.len() {
        let mut fuzz = report_bytes.clone();
        fuzz[i] ^= 0xA5;
        let _ = EvalReport::decode(&fuzz);
    }
}

#[test]
fn files_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join(format!("lego_eval_codec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let request = kitchen_sink_request();
    let report = EvalSession::new().evaluate(&request);
    let req_path = dir.join("request.bin");
    let rep_path = dir.join("report.bin");
    request.write_to(&req_path).expect("request writes");
    report.write_to(&rep_path).expect("report writes");
    assert_eq!(EvalRequest::read_from(&req_path).expect("reads"), request);
    assert_eq!(EvalReport::read_from(&rep_path).expect("reads"), report);
    std::fs::remove_dir_all(&dir).ok();
}
