//! Concrete model definitions (batch 1, image sizes per paper §VI-A:
//! 224×224×3 for vision models, 384×384×3 for EfficientNetV2, BERT sequence
//! length 16, GPT-2/LLaMA prompt length 1000 with one generated token).
//!
//! Shapes are the standard published configurations; grouped convolutions
//! are folded into their dense-equivalent MAC counts.

use crate::{DensityModel, Layer, LayerKind, LayerSparsity, Model, Nonlinear};

fn conv(name: &str, ic: i64, oc: i64, oh: i64, kh: i64, stride: i64) -> Layer {
    let l = Layer::new(
        name,
        LayerKind::Conv {
            n: 1,
            ic,
            oc,
            oh,
            ow: oh,
            kh,
            kw: kh,
            stride,
        },
    );
    let outs = l.output_elems();
    l.with_nonlinear(Nonlinear::Activation, outs)
        .with_nonlinear(Nonlinear::Normalization, outs)
}

fn dwconv(name: &str, c: i64, oh: i64, kh: i64, stride: i64) -> Layer {
    let l = Layer::new(
        name,
        LayerKind::DwConv {
            n: 1,
            c,
            oh,
            ow: oh,
            kh,
            kw: kh,
            stride,
        },
    );
    let outs = l.output_elems();
    l.with_nonlinear(Nonlinear::Activation, outs)
        .with_nonlinear(Nonlinear::Normalization, outs)
}

fn fc(name: &str, n: i64, k: i64) -> Layer {
    Layer::new(name, LayerKind::Gemm { m: 1, n, k })
}

/// LeNet-5 on 28×28 MNIST (SODA comparison, Table VII).
pub fn lenet() -> Model {
    Model {
        name: "LeNet".into(),
        layers: vec![
            conv("conv1", 1, 6, 24, 5, 1),
            conv("conv2", 6, 16, 8, 5, 1),
            fc("fc1", 120, 400),
            fc("fc2", 84, 120),
            fc("fc3", 10, 84),
        ],
    }
}

/// AlexNet at 224×224 (groups folded dense).
pub fn alexnet() -> Model {
    Model {
        name: "AlexNet".into(),
        layers: vec![
            conv("conv1", 3, 96, 55, 11, 4),
            conv("conv2", 96, 256, 27, 5, 1),
            conv("conv3", 256, 384, 13, 3, 1),
            conv("conv4", 384, 384, 13, 3, 1),
            conv("conv5", 384, 256, 13, 3, 1),
            fc("fc6", 4096, 9216),
            fc("fc7", 4096, 4096),
            fc("fc8", 1000, 4096),
        ],
    }
}

/// MobileNetV2 at 224×224: the depthwise-separable blocks that dominate
/// the paper's Figure 11 speedup.
pub fn mobilenet_v2() -> Model {
    let mut layers = vec![conv("stem", 3, 32, 112, 3, 2)];
    // (expansion t, channels c, repeats n, first stride s, input size)
    let blocks: [(i64, i64, i64, i64, i64); 7] = [
        (1, 16, 1, 1, 112),
        (6, 24, 2, 2, 112),
        (6, 32, 3, 2, 56),
        (6, 64, 4, 2, 28),
        (6, 96, 3, 1, 14),
        (6, 160, 3, 2, 14),
        (6, 320, 1, 1, 7),
    ];
    let mut cin = 32i64;
    for (bi, (t, c, n, s, insize)) in blocks.into_iter().enumerate() {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let out = insize / s;
            let hidden = cin * t;
            if t != 1 {
                // The 1×1 expand runs at the block's *input* resolution
                // (out·stride); only the depthwise conv downsamples.
                layers.push(conv(
                    &format!("b{bi}.{rep}.expand"),
                    cin,
                    hidden,
                    out * stride,
                    1,
                    1,
                ));
            }
            layers.push(dwconv(&format!("b{bi}.{rep}.dw"), hidden, out, 3, stride));
            layers.push(conv(&format!("b{bi}.{rep}.project"), hidden, c, out, 1, 1));
            cin = c;
        }
    }
    layers.push(conv("head", 320, 1280, 7, 1, 1));
    layers.push(fc("fc", 1000, 1280));
    Model {
        name: "MobileNetV2".into(),
        layers,
    }
}

/// ResNet50 at 224×224.
pub fn resnet50() -> Model {
    let mut layers = vec![conv("conv1", 3, 64, 112, 7, 2)];
    let stages: [(i64, i64, i64, i64); 4] = [
        (64, 256, 3, 56),
        (128, 512, 4, 28),
        (256, 1024, 6, 14),
        (512, 2048, 3, 7),
    ];
    let mut cin = 64i64;
    for (si, (mid, out, blocks, size)) in stages.into_iter().enumerate() {
        for b in 0..blocks {
            let stride = if b == 0 && si > 0 { 2 } else { 1 };
            layers.push(conv(&format!("s{si}.{b}.c1"), cin, mid, size, 1, stride));
            layers.push(conv(&format!("s{si}.{b}.c2"), mid, mid, size, 3, 1));
            layers.push(conv(&format!("s{si}.{b}.c3"), mid, out, size, 1, 1));
            if b == 0 {
                layers.push(conv(&format!("s{si}.{b}.down"), cin, out, size, 1, stride));
            }
            cin = out;
        }
    }
    layers.push(fc("fc", 1000, 2048));
    Model {
        name: "ResNet50".into(),
        layers,
    }
}

/// EfficientNetV2-S at 384×384 (fused-MBConv early, MBConv late).
pub fn efficientnet_v2() -> Model {
    let mut layers = vec![conv("stem", 3, 24, 192, 3, 2)];
    // Fused-MBConv stages (plain conv3x3 expansion).
    for i in 0..2 {
        layers.push(conv(&format!("f1.{i}"), 24, 24, 192, 3, 1));
    }
    for i in 0..4 {
        let s = if i == 0 { 2 } else { 1 };
        layers.push(conv(
            &format!("f2.{i}.a"),
            if i == 0 { 24 } else { 48 },
            192,
            96,
            3,
            s,
        ));
        layers.push(conv(&format!("f2.{i}.b"), 192, 48, 96, 1, 1));
    }
    for i in 0..4 {
        let s = if i == 0 { 2 } else { 1 };
        layers.push(conv(
            &format!("f3.{i}.a"),
            if i == 0 { 48 } else { 64 },
            256,
            48,
            3,
            s,
        ));
        layers.push(conv(&format!("f3.{i}.b"), 256, 64, 48, 1, 1));
    }
    // MBConv stages with depthwise.
    let mb: [(i64, i64, i64, i64, i64); 3] = [
        (64, 128, 6, 24, 2),
        (128, 160, 9, 24, 1),
        (160, 256, 15, 12, 2),
    ];
    for (si, (cin0, cout, n, size, s0)) in mb.into_iter().enumerate() {
        let mut cin = cin0;
        for i in 0..n {
            let s = if i == 0 { s0 } else { 1 };
            let hidden = cin * 4;
            layers.push(conv(
                &format!("mb{si}.{i}.expand"),
                cin,
                hidden,
                size * s,
                1,
                1,
            ));
            layers.push(dwconv(&format!("mb{si}.{i}.dw"), hidden, size, 3, s));
            layers.push(conv(
                &format!("mb{si}.{i}.project"),
                hidden,
                cout,
                size,
                1,
                1,
            ));
            cin = cout;
        }
    }
    layers.push(conv("head", 256, 1280, 12, 1, 1));
    layers.push(fc("fc", 1000, 1280));
    Model {
        name: "EfficientNetV2".into(),
        layers,
    }
}

fn transformer_block(name: &str, seq: i64, d: i64, heads: i64, ffn: i64, kv: i64) -> Vec<Layer> {
    let dk = d / heads;
    vec![
        Layer::new(
            format!("{name}.qkv"),
            LayerKind::Gemm {
                m: seq,
                n: 3 * d,
                k: d,
            },
        )
        .with_nonlinear(Nonlinear::Normalization, seq * d),
        Layer::new(
            format!("{name}.attn"),
            LayerKind::Attention {
                heads,
                seq_q: seq,
                seq_kv: kv,
                dk,
                dv: dk,
            },
        )
        .with_nonlinear(Nonlinear::Softmax, heads * seq * kv),
        Layer::new(
            format!("{name}.proj"),
            LayerKind::Gemm { m: seq, n: d, k: d },
        ),
        Layer::new(
            format!("{name}.ffn1"),
            LayerKind::Gemm {
                m: seq,
                n: ffn,
                k: d,
            },
        )
        .with_nonlinear(Nonlinear::Activation, seq * ffn)
        .with_nonlinear(Nonlinear::Normalization, seq * d),
        Layer::new(
            format!("{name}.ffn2"),
            LayerKind::Gemm {
                m: seq,
                n: d,
                k: ffn,
            },
        ),
    ]
}

/// BERT-base with sequence length 16 (paper §VI-A).
pub fn bert_base() -> Model {
    let mut layers = Vec::new();
    for b in 0..12 {
        layers.extend(transformer_block(&format!("l{b}"), 16, 768, 12, 3072, 16));
    }
    Model {
        name: "BERT".into(),
        layers,
    }
}

/// GPT-2 decoding one token with a 1000-token prompt in the KV cache.
pub fn gpt2_decode() -> Model {
    let mut layers = Vec::new();
    for b in 0..12 {
        layers.extend(transformer_block(&format!("l{b}"), 1, 768, 12, 3072, 1001));
    }
    layers.push(fc("lm_head", 50257, 768));
    Model {
        name: "GPT2".into(),
        layers,
    }
}

/// CoAtNet-0 at 224×224: convolution stages followed by attention stages.
pub fn coatnet() -> Model {
    let mut layers = vec![
        conv("stem.0", 3, 64, 112, 3, 2),
        conv("stem.1", 64, 64, 112, 3, 1),
    ];
    // MBConv stages.
    let mut cin = 64i64;
    for (si, (c, n, size)) in [(96i64, 2i64, 56i64), (192, 3, 28)].into_iter().enumerate() {
        for i in 0..n {
            let s = if i == 0 { 2 } else { 1 };
            let hidden = cin * 4;
            layers.push(conv(
                &format!("c{si}.{i}.expand"),
                cin,
                hidden,
                size * s,
                1,
                1,
            ));
            layers.push(dwconv(&format!("c{si}.{i}.dw"), hidden, size, 3, s));
            layers.push(conv(&format!("c{si}.{i}.project"), hidden, c, size, 1, 1));
            cin = c;
        }
    }
    // Transformer stages (relative attention ≈ standard attention cost).
    for (si, (d, n, size)) in [(384i64, 5i64, 14i64), (768, 2, 7)].into_iter().enumerate() {
        let seq = size * size;
        layers.push(conv(&format!("t{si}.proj_in"), cin, d, size, 1, 2));
        for i in 0..n {
            layers.extend(transformer_block(
                &format!("t{si}.{i}"),
                seq,
                d,
                d / 32,
                d * 4,
                seq,
            ));
            let _ = i;
        }
        cin = d;
    }
    layers.push(fc("fc", 1000, 768));
    Model {
        name: "CoAtNet".into(),
        layers,
    }
}

/// DDPM denoising UNet (CIFAR-scale 32×32, channel multiplier 128).
pub fn ddpm() -> Model {
    let c = 128i64;
    let mut layers = Vec::new();
    layers.push(conv("in", 3, c, 32, 3, 1));
    for (si, (mult, size)) in [(1i64, 32i64), (2, 16), (2, 8), (2, 4)]
        .into_iter()
        .enumerate()
    {
        let ch = c * mult;
        layers.push(conv(&format!("down{si}.a"), ch, ch, size, 3, 1).repeat(2));
        layers.push(conv(&format!("down{si}.b"), ch, ch, size, 3, 1).repeat(2));
        if size == 16 {
            let seq = size * size;
            layers.push(
                Layer::new(
                    format!("down{si}.attn"),
                    LayerKind::Attention {
                        heads: 8,
                        seq_q: seq,
                        seq_kv: seq,
                        dk: ch / 8,
                        dv: ch / 8,
                    },
                )
                .with_nonlinear(Nonlinear::Softmax, 8 * seq * seq),
            );
        }
    }
    for (si, (mult, size)) in [(2i64, 4i64), (2, 8), (2, 16), (1, 32)]
        .into_iter()
        .enumerate()
    {
        let ch = c * mult;
        layers.push(conv(&format!("up{si}.a"), ch * 2, ch, size, 3, 1).repeat(3));
    }
    layers.push(conv("out", c, 3, 32, 3, 1));
    Model {
        name: "DDPM".into(),
        layers,
    }
}

/// Stable Diffusion UNet, one denoising step on a 64×64 latent.
pub fn stable_diffusion() -> Model {
    let c = 320i64;
    let mut layers = Vec::new();
    layers.push(conv("in", 4, c, 64, 3, 1));
    let stages: [(i64, i64, bool); 4] =
        [(1, 64, true), (2, 32, true), (4, 16, true), (4, 8, false)];
    for (si, (mult, size, attn)) in stages.into_iter().enumerate() {
        let ch = c * mult;
        layers.push(conv(&format!("down{si}.res"), ch, ch, size, 3, 1).repeat(2));
        if attn {
            let seq = size * size;
            let heads = 8;
            layers.push(
                Layer::new(
                    format!("down{si}.attn"),
                    LayerKind::Attention {
                        heads,
                        seq_q: seq,
                        seq_kv: seq,
                        dk: ch / heads,
                        dv: ch / heads,
                    },
                )
                .with_nonlinear(Nonlinear::Softmax, heads * seq * seq),
            );
            layers.push(
                Layer::new(
                    format!("down{si}.xattn_proj"),
                    LayerKind::Gemm {
                        m: seq,
                        n: ch,
                        k: ch,
                    },
                )
                .repeat(2),
            );
        }
    }
    for (si, (mult, size, _)) in stages.into_iter().rev().enumerate() {
        let ch = c * mult;
        layers.push(conv(&format!("up{si}.res"), ch * 2, ch, size, 3, 1).repeat(3));
    }
    layers.push(conv("out", c, 4, 64, 3, 1));
    Model {
        name: "StableDiffusion".into(),
        layers,
    }
}

/// LLaMA-7B decoding one token (32 layers, d=4096, KV cache of 1000).
pub fn llama7b_decode(batch: i64) -> Model {
    let d = 4096i64;
    let heads = 32i64;
    let ffn = 11008i64;
    let kv = 1000i64;
    let mut layers = Vec::new();
    for b in 0..32 {
        let dk = d / heads;
        layers.push(
            Layer::new(
                format!("l{b}.qkv"),
                LayerKind::Gemm {
                    m: batch,
                    n: 3 * d,
                    k: d,
                },
            )
            .with_nonlinear(Nonlinear::Normalization, batch * d),
        );
        layers.push(
            Layer::new(
                format!("l{b}.attn"),
                LayerKind::Attention {
                    heads: heads * batch,
                    seq_q: 1,
                    seq_kv: kv,
                    dk,
                    dv: dk,
                },
            )
            .with_nonlinear(Nonlinear::Softmax, batch * heads * kv),
        );
        layers.push(Layer::new(
            format!("l{b}.proj"),
            LayerKind::Gemm {
                m: batch,
                n: d,
                k: d,
            },
        ));
        layers.push(
            Layer::new(
                format!("l{b}.gate"),
                LayerKind::Gemm {
                    m: batch,
                    n: ffn,
                    k: d,
                },
            )
            .with_nonlinear(Nonlinear::Activation, batch * ffn),
        );
        layers.push(Layer::new(
            format!("l{b}.up"),
            LayerKind::Gemm {
                m: batch,
                n: ffn,
                k: d,
            },
        ));
        layers.push(Layer::new(
            format!("l{b}.down"),
            LayerKind::Gemm {
                m: batch,
                n: d,
                k: ffn,
            },
        ));
    }
    Model {
        name: format!("LLaMA-7B bs={batch}"),
        layers,
    }
}

/// Annotates every weight-carrying layer (GEMM, Conv, DwConv) of `model`
/// with the given weight density, renaming the model `"{name} {tag}"`.
/// Attention layers carry no weights and are left untouched.
pub fn prune_weights(mut model: Model, density: DensityModel, tag: &str) -> Model {
    for layer in &mut model.layers {
        if layer.weight_elems() > 0 {
            layer.sparsity.weights = density;
        }
    }
    model.name = format!("{} {tag}", model.name);
    model
}

/// ResNet50 with 2:4 structured weight sparsity on every convolution and
/// the classifier — the sparse-tensor-core pruning recipe, which loses
/// almost no accuracy and is exactly schedulable by skipping hardware.
pub fn resnet50_2to4() -> Model {
    prune_weights(resnet50(), DensityModel::two_to_four(), "@2:4")
}

/// BERT-base with 90 % unstructured weight sparsity (10 % density) on
/// every GEMM — the magnitude-pruning operating point; skipping hardware
/// pays a load-imbalance factor on the irregular nonzero pattern.
pub fn bert_base_pruned90() -> Model {
    prune_weights(bert_base(), DensityModel::uniform(0.10), "@90%sparse")
}

/// GPT-2 *prefill* over a 256-token prompt with causal masking: the
/// upper triangle of every attention score matrix is masked away, so
/// only `(seq+1)/2·seq` ≈ 50.2 % of score positions are ever computed or
/// written. The mask lands on the attention layers' *output* density;
/// the dense GEMMs around them are untouched.
pub fn gpt2_prefill_causal() -> Model {
    let seq = 256i64;
    // Lower triangle of a seq×seq score matrix, exact in permille.
    let causal = DensityModel::uniform((seq + 1) as f64 / (2 * seq) as f64);
    let mut layers = Vec::new();
    for b in 0..12 {
        layers.extend(transformer_block(&format!("l{b}"), seq, 768, 12, 3072, seq));
    }
    for layer in &mut layers {
        if matches!(layer.kind, LayerKind::Attention { .. }) {
            layer.sparsity = LayerSparsity::dense().with_outputs(causal);
        }
    }
    Model {
        name: "GPT2-prefill-causal".into(),
        layers,
    }
}

/// The three sparse-scenario models: structured pruning, unstructured
/// pruning, and masked attention.
pub fn sparse_models() -> Vec<Model> {
    vec![resnet50_2to4(), bert_base_pruned90(), gpt2_prefill_causal()]
}

/// The seven models of Figure 11, in the paper's order.
pub fn figure11_models() -> Vec<Model> {
    vec![
        alexnet(),
        mobilenet_v2(),
        resnet50(),
        efficientnet_v2(),
        bert_base(),
        gpt2_decode(),
        coatnet(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_counts_are_in_published_ballparks() {
        // Published MAC counts (±40% tolerance — folding groups and heads
        // shifts the totals slightly).
        let cases: [(Model, f64); 4] = [
            (alexnet(), 0.71e9),
            (mobilenet_v2(), 0.30e9),
            (resnet50(), 4.1e9),
            (lenet(), 0.4e6),
        ];
        for (m, expect) in cases {
            let macs = m.total_macs() as f64;
            assert!(
                macs > expect * 0.6 && macs < expect * 1.7,
                "{}: {macs:.2e} vs published {expect:.2e}",
                m.name
            );
        }
    }

    #[test]
    fn decode_models_are_memory_bound_shapes() {
        let g = gpt2_decode();
        // GEMV-dominated: weight bytes ≫ activation bytes.
        let weights = g.weight_bytes(1);
        assert!(weights > 80_000_000, "GPT-2 ~124M params, got {weights}");
        let l = llama7b_decode(1);
        assert!(l.weight_bytes(1) > 6_000_000_000, "LLaMA-7B ~6.7G params");
    }

    #[test]
    fn mobilenet_contains_depthwise() {
        let m = mobilenet_v2();
        assert!(m
            .layers
            .iter()
            .any(|l| matches!(l.kind, LayerKind::DwConv { .. })));
        // Depthwise MACs are a small share of totals but dominate runtime on
        // channel-parallel hardware.
        let dw: i64 = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::DwConv { .. }))
            .map(|l| l.macs() * l.count)
            .sum();
        assert!(dw > 0 && dw < m.total_macs() / 5);
    }

    #[test]
    fn transformers_record_softmax_work() {
        for m in [bert_base(), gpt2_decode(), coatnet()] {
            assert!(
                m.layers
                    .iter()
                    .any(|l| l.nonlinear.iter().any(|(k, _)| *k == Nonlinear::Softmax)),
                "{} has no softmax",
                m.name
            );
        }
    }

    #[test]
    fn pruned_variants_annotate_without_changing_shapes() {
        let dense = resnet50();
        let sparse = resnet50_2to4();
        assert_eq!(dense.total_macs(), sparse.total_macs());
        assert_eq!(dense.layers.len(), sparse.layers.len());
        assert!(sparse.name.contains("2:4"));
        for (d, s) in dense.layers.iter().zip(&sparse.layers) {
            assert_eq!(d.kind, s.kind);
            if s.weight_elems() > 0 {
                assert_eq!(s.sparsity.weights, DensityModel::two_to_four());
                assert_eq!(s.effectual_macs(), (s.macs() + 1) / 2);
            } else {
                assert!(s.sparsity.is_dense());
            }
        }
        let bert = bert_base_pruned90();
        for l in bert.layers.iter().filter(|l| l.weight_elems() > 0) {
            assert!((l.sparsity.weights.density() - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn causal_prefill_masks_only_attention_outputs() {
        let m = gpt2_prefill_causal();
        let attn: Vec<_> = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Attention { .. }))
            .collect();
        assert_eq!(attn.len(), 12);
        for l in &attn {
            let d = l.sparsity.outputs.density();
            assert!((d - 257.0 / 512.0).abs() < 1e-3, "causal mask ≈ 50.2 %");
            assert!(l.sparsity.weights.is_dense() && l.sparsity.inputs.is_dense());
            assert!(l.effectual_macs() < l.macs());
        }
        // The surrounding GEMMs stay dense.
        assert!(m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Gemm { .. }))
            .all(|l| l.sparsity.is_dense()));
    }

    #[test]
    fn sparsity_flows_into_ir_tensor_annotations() {
        let l = Layer::new(
            "c",
            LayerKind::Conv {
                n: 1,
                ic: 4,
                oc: 8,
                oh: 6,
                ow: 6,
                kh: 3,
                kw: 3,
                stride: 1,
            },
        )
        .with_sparsity(LayerSparsity::weights(DensityModel::two_to_four()));
        let w = l.to_workload();
        assert_eq!(w.tensor_density("W"), DensityModel::two_to_four());
        assert_eq!(w.tensor_density("X"), DensityModel::Dense);
    }

    #[test]
    fn all_models_have_positive_ops() {
        for m in [
            alexnet(),
            mobilenet_v2(),
            resnet50(),
            efficientnet_v2(),
            bert_base(),
            gpt2_decode(),
            coatnet(),
            lenet(),
            ddpm(),
            stable_diffusion(),
            llama7b_decode(1),
            llama7b_decode(32),
        ] {
            assert!(m.total_ops() > 0, "{}", m.name);
            for l in &m.layers {
                assert!(l.macs() > 0, "{}: layer {} empty", m.name, l.name);
            }
        }
    }
}
