//! Neural-network model zoo (paper §VI-A).
//!
//! Layer-shape descriptors for every model the paper evaluates: AlexNet,
//! MobileNetV2, ResNet50, EfficientNetV2, BERT, GPT-2, CoAtNet, LeNet, and
//! the generative models DDPM, Stable Diffusion, and LLaMA-7B. Only shapes
//! and operation counts matter to the performance/energy evaluation;
//! non-tensor work (activations, normalization, softmax) is recorded per
//! layer so the post-processing-unit model can charge it (Figure 12b).

pub mod zoo;

pub use lego_sparse::{DensityModel, LayerSparsity};
pub use zoo::*;

/// A tensor layer: the unit of mapping and simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Dense matrix multiply `M×K · K×N`.
    Gemm {
        /// Rows of the output.
        m: i64,
        /// Columns of the output.
        n: i64,
        /// Contraction depth.
        k: i64,
    },
    /// 2D convolution (output-centric shape, stride folded in).
    Conv {
        /// Batch.
        n: i64,
        /// Input channels.
        ic: i64,
        /// Output channels.
        oc: i64,
        /// Output height.
        oh: i64,
        /// Output width.
        ow: i64,
        /// Kernel height.
        kh: i64,
        /// Kernel width.
        kw: i64,
        /// Stride.
        stride: i64,
    },
    /// Depthwise 2D convolution.
    DwConv {
        /// Batch.
        n: i64,
        /// Channels.
        c: i64,
        /// Output height.
        oh: i64,
        /// Output width.
        ow: i64,
        /// Kernel height.
        kh: i64,
        /// Kernel width.
        kw: i64,
        /// Stride.
        stride: i64,
    },
    /// Multi-head attention (both matmuls of `heads` heads).
    Attention {
        /// Number of heads.
        heads: i64,
        /// Query length.
        seq_q: i64,
        /// Key/value length.
        seq_kv: i64,
        /// Per-head key dimension.
        dk: i64,
        /// Per-head value dimension.
        dv: i64,
    },
}

/// Non-tensor operations executed on the post-processing units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Nonlinear {
    /// ReLU / ReLU6 / SiLU-style pointwise activation.
    Activation,
    /// Softmax (exp + reduce + divide).
    Softmax,
    /// Layer/batch/group normalization.
    Normalization,
}

/// One layer instance (possibly repeated) within a model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    /// Human-readable name. Interned as `Arc<str>` so clones along the
    /// evaluation hot path (reports, mapped layers) are refcount bumps,
    /// not heap copies; hashes identically to a `String` of the same text.
    pub name: std::sync::Arc<str>,
    /// Shape descriptor.
    pub kind: LayerKind,
    /// Repetition count (identical blocks).
    pub count: i64,
    /// Non-tensor work: (kind, element count) per single instance.
    pub nonlinear: Vec<(Nonlinear, i64)>,
    /// Per-tensor density annotations (dense by default). Only hardware
    /// with a sparse acceleration feature can exploit them; dense hardware
    /// executes the layer as if every tensor were dense.
    pub sparsity: LayerSparsity,
}

impl Layer {
    /// Creates a layer with no non-tensor work.
    pub fn new(name: impl Into<std::sync::Arc<str>>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
            count: 1,
            nonlinear: Vec::new(),
            sparsity: LayerSparsity::dense(),
        }
    }

    /// Sets the repetition count.
    #[must_use]
    pub fn repeat(mut self, count: i64) -> Self {
        self.count = count;
        self
    }

    /// Adds non-tensor work.
    #[must_use]
    pub fn with_nonlinear(mut self, kind: Nonlinear, elems: i64) -> Self {
        self.nonlinear.push((kind, elems));
        self
    }

    /// Sets the per-tensor density annotations.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: LayerSparsity) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Expected nonzero MACs of one instance (the MACs a perfect skipping
    /// datapath would execute). Equals [`Layer::macs`] for dense layers.
    pub fn effectual_macs(&self) -> i64 {
        if self.sparsity.is_dense() {
            return self.macs();
        }
        (self.macs() as f64 * self.sparsity.mac_density()).ceil() as i64
    }

    /// Multiply-accumulate count of a single instance.
    pub fn macs(&self) -> i64 {
        match self.kind {
            LayerKind::Gemm { m, n, k } => m * n * k,
            LayerKind::Conv {
                n,
                ic,
                oc,
                oh,
                ow,
                kh,
                kw,
                ..
            } => n * ic * oc * oh * ow * kh * kw,
            LayerKind::DwConv {
                n,
                c,
                oh,
                ow,
                kh,
                kw,
                ..
            } => n * c * oh * ow * kh * kw,
            LayerKind::Attention {
                heads,
                seq_q,
                seq_kv,
                dk,
                dv,
            } => heads * seq_q * seq_kv * (dk + dv),
        }
    }

    /// Operations (2 per MAC, paper convention).
    pub fn ops(&self) -> i64 {
        2 * self.macs()
    }

    /// Weight footprint in elements (zero for attention).
    pub fn weight_elems(&self) -> i64 {
        match self.kind {
            LayerKind::Gemm { n, k, .. } => n * k,
            LayerKind::Conv { ic, oc, kh, kw, .. } => ic * oc * kh * kw,
            LayerKind::DwConv { c, kh, kw, .. } => c * kh * kw,
            LayerKind::Attention { .. } => 0,
        }
    }

    /// Input activation footprint in elements.
    pub fn input_elems(&self) -> i64 {
        match self.kind {
            LayerKind::Gemm { m, k, .. } => m * k,
            LayerKind::Conv {
                n,
                ic,
                oh,
                ow,
                kh,
                kw,
                stride,
                ..
            } => n * ic * (stride * (oh - 1) + kh) * (stride * (ow - 1) + kw),
            LayerKind::DwConv {
                n,
                c,
                oh,
                ow,
                kh,
                kw,
                stride,
            } => n * c * (stride * (oh - 1) + kh) * (stride * (ow - 1) + kw),
            LayerKind::Attention {
                heads,
                seq_q,
                seq_kv,
                dk,
                dv,
            } => heads * (seq_q * dk + seq_kv * (dk + dv)),
        }
    }

    /// Output footprint in elements.
    pub fn output_elems(&self) -> i64 {
        match self.kind {
            LayerKind::Gemm { m, n, .. } => m * n,
            LayerKind::Conv { n, oc, oh, ow, .. } => n * oc * oh * ow,
            LayerKind::DwConv { n, c, oh, ow, .. } => n * c * oh * ow,
            LayerKind::Attention {
                heads, seq_q, dv, ..
            } => heads * seq_q * dv,
        }
    }

    /// Total non-tensor elements of one instance.
    pub fn nonlinear_elems(&self) -> i64 {
        self.nonlinear.iter().map(|&(_, e)| e).sum()
    }

    /// Builds the equivalent `lego-ir` workload (for hardware generation),
    /// propagating this layer's density annotations onto the IR tensors
    /// (`W` weights, `X` inputs, `Y`/`S` outputs).
    pub fn to_workload(&self) -> lego_ir::Workload {
        let w = self.kind_workload();
        if self.sparsity.is_dense() {
            return w;
        }
        w.with_tensor_density("W", self.sparsity.weights)
            .with_tensor_density("X", self.sparsity.inputs)
            .with_tensor_density("Q", self.sparsity.inputs)
            .with_tensor_density("K", self.sparsity.inputs)
            .with_tensor_density("Y", self.sparsity.outputs)
            .with_tensor_density("S", self.sparsity.outputs)
    }

    /// The density-free IR workload of this layer's shape.
    fn kind_workload(&self) -> lego_ir::Workload {
        use lego_ir::kernels;
        match self.kind {
            LayerKind::Gemm { m, n, k } => kernels::gemm(m, n, k),
            LayerKind::Conv {
                n,
                ic,
                oc,
                oh,
                ow,
                kh,
                kw,
                stride,
            } => kernels::conv2d(n, ic, oc, oh, ow, kh, kw, stride),
            LayerKind::DwConv {
                n,
                c,
                oh,
                ow,
                kh,
                kw,
                stride,
            } => kernels::depthwise_conv2d(n, c, oh, ow, kh, kw, stride),
            LayerKind::Attention {
                seq_q, seq_kv, dk, ..
            } => kernels::attention_scores(seq_q, seq_kv, dk),
        }
    }
}

/// A whole network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Model name as used in the paper's figures.
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Total MACs over all layers and repetitions.
    pub fn total_macs(&self) -> i64 {
        self.layers.iter().map(|l| l.macs() * l.count).sum()
    }

    /// Total operations (2 × MACs).
    pub fn total_ops(&self) -> i64 {
        2 * self.total_macs()
    }

    /// Total weight bytes at the given element width.
    pub fn weight_bytes(&self, bytes_per_elem: i64) -> i64 {
        self.layers
            .iter()
            .map(|l| l.weight_elems() * l.count * bytes_per_elem)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_arithmetic() {
        let l = Layer::new("g", LayerKind::Gemm { m: 4, n: 8, k: 16 });
        assert_eq!(l.macs(), 512);
        assert_eq!(l.ops(), 1024);
        assert_eq!(l.weight_elems(), 128);
        assert_eq!(l.input_elems(), 64);
        assert_eq!(l.output_elems(), 32);
    }

    #[test]
    fn conv_input_accounts_stride_and_halo() {
        let l = Layer::new(
            "c",
            LayerKind::Conv {
                n: 1,
                ic: 3,
                oc: 8,
                oh: 10,
                ow: 10,
                kh: 3,
                kw: 3,
                stride: 2,
            },
        );
        // ih = 2*9 + 3 = 21.
        assert_eq!(l.input_elems(), 3 * 21 * 21);
    }

    #[test]
    fn attention_macs_cover_both_matmuls() {
        let l = Layer::new(
            "a",
            LayerKind::Attention {
                heads: 12,
                seq_q: 16,
                seq_kv: 16,
                dk: 64,
                dv: 64,
            },
        );
        assert_eq!(l.macs(), 12 * 16 * 16 * 128);
    }

    #[test]
    fn model_totals_respect_repeats() {
        let m = Model {
            name: "t".into(),
            layers: vec![Layer::new("g", LayerKind::Gemm { m: 2, n: 2, k: 2 }).repeat(3)],
        };
        assert_eq!(m.total_macs(), 24);
    }

    #[test]
    fn to_workload_shapes_match() {
        let l = Layer::new(
            "c",
            LayerKind::Conv {
                n: 1,
                ic: 4,
                oc: 8,
                oh: 6,
                ow: 6,
                kh: 3,
                kw: 3,
                stride: 1,
            },
        );
        let w = l.to_workload();
        assert_eq!(w.domain_size(), l.macs());
    }
}
