//! Property-based tests of the front end's core guarantees over randomized
//! dataflows: reuse solutions satisfy their defining equations, every FU is
//! fed under every dataflow, memory plans are conflict-free, and output
//! partial sums always reach a committer.

use lego_frontend::{analyze_tensor, build_adg, memory, FrontendConfig};
use lego_ir::{kernels, DataflowBuilder, TensorRole};
use proptest::prelude::*;

fn gemm_dataflow_strategy() -> impl Strategy<Value = (lego_ir::Workload, lego_ir::Dataflow)> {
    // Random GEMM shape with random divisor parallelization and control.
    (
        1usize..3,
        1usize..3,
        1usize..3,
        0usize..2,
        0usize..2,
        proptest::bool::ANY,
    )
        .prop_map(|(mi, ni, ki, pi, pj, systolic)| {
            let dims = [4i64, 8];
            let (m, n, k) = (dims[mi % 2], dims[ni % 2], dims[ki % 2]);
            let g = kernels::gemm(m, n, k);
            let ps = [2i64, 4];
            let p_i = ps[pi].min(m);
            let p_j = ps[pj].min(n);
            let c = if systolic { vec![1, 1] } else { vec![0, 0] };
            let df = DataflowBuilder::new(&g)
                .par("i", p_i)
                .par("j", p_j)
                .control(c)
                .build("rand")
                .expect("divisor parallelization is valid");
            (g, df)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reuse_solutions_satisfy_equations((w, df) in gemm_dataflow_strategy()) {
        for access in &w.accesses {
            for s in analyze_tensor(&w, &df, access, 1) {
                // M_td·Δt + M_sd·Δs = 0 (Equations 6-7).
                let lhs = df.m_td(access).mul_vec(&s.delta_t);
                let rhs = df.m_sd(access).mul_vec(&s.delta_s);
                for (a, b) in lhs.iter().zip(&rhs) {
                    prop_assert_eq!(a + b, 0);
                }
                // Physically realizable: non-negative absolute delay and
                // in-bounds temporal shift.
                prop_assert!(s.depth >= 0);
                for (dt, r) in s.delta_t.iter().zip(&df.temporal_sizes) {
                    prop_assert!(dt.abs() < *r);
                }
            }
        }
    }

    #[test]
    fn every_fu_is_fed_and_outputs_drain((w, df) in gemm_dataflow_strategy()) {
        let adg = build_adg(&w, &[df], &FrontendConfig::default()).unwrap();
        for plan in &adg.tensors {
            if plan.role == TensorRole::Input {
                // Reachability from ports over the tensor's edges.
                let mut fed: std::collections::HashSet<usize> =
                    plan.data_nodes.iter().map(|d| d.fu).collect();
                let mut changed = true;
                while changed {
                    changed = false;
                    for e in adg.edges_for(&plan.tensor) {
                        if fed.contains(&e.from) && fed.insert(e.to) {
                            changed = true;
                        }
                    }
                }
                prop_assert_eq!(fed.len(), adg.num_fus);
            } else {
                // Every FU's partial sums reach a committer acyclically.
                let committers: std::collections::HashSet<usize> =
                    plan.data_nodes.iter().map(|d| d.fu).collect();
                for start in 0..adg.num_fus {
                    let mut cur = start;
                    let mut steps = 0;
                    while !committers.contains(&cur) {
                        let next = adg
                            .edges_for(&plan.tensor)
                            .find(|e| e.from == cur);
                        prop_assert!(next.is_some(), "FU {cur} cannot drain");
                        cur = next.unwrap().to;
                        steps += 1;
                        prop_assert!(steps <= adg.num_fus, "cycle in drain path");
                    }
                }
            }
        }
    }

    #[test]
    fn memory_plans_have_no_bank_conflicts((w, df) in gemm_dataflow_strategy()) {
        let adg = build_adg(&w, std::slice::from_ref(&df), &FrontendConfig::default()).unwrap();
        for plan in &adg.tensors {
            let access = w.access(&plan.tensor).unwrap();
            let coords: Vec<Vec<i64>> = plan
                .data_nodes_in(0)
                .map(|d| df.fu_coords()[d.fu].clone())
                .collect();
            prop_assert!(memory::conflict_free(
                &df,
                access,
                &coords,
                &plan.memory.per_dataflow[0]
            ));
        }
    }

    #[test]
    fn fifo_depth_bound_by_tile_volume((w, df) in gemm_dataflow_strategy()) {
        // A reuse FIFO can never need to hold more than one full temporal
        // tile of data.
        let adg = build_adg(&w, std::slice::from_ref(&df), &FrontendConfig::default()).unwrap();
        let total = df.total_steps();
        for e in &adg.edges {
            prop_assert!(e.max_depth() <= total, "{e:?} deeper than a tile");
        }
    }
}
