//! LEGO front end (paper §IV): from relation-centric workload + dataflows to
//! an FU-level Architecture Description Graph (ADG).
//!
//! The pipeline is:
//!
//! 1. [`interconnect`] — solve the integer linear systems of Equations 6–7
//!    to find every feasible direct and delay interconnection per tensor;
//! 2. [`plan`] — partition FUs into *chains* (sets reachable through direct
//!    interconnections), prune delay connections with a minimum spanning
//!    arborescence over chains (Chu-Liu/Edmonds, §IV-B), and fuse multiple
//!    spatial dataflows with the BFS heuristic of Figure 5 (§IV-C);
//! 3. [`memory`] — derive conflict-free bank counts from index deltas at
//!    `t = 0` with the GCD reduction of Equation 9 (§IV-D);
//! 4. [`adg`] — assemble the result into an [`adg::Adg`].
//!
//! # Examples
//!
//! ```
//! use lego_frontend::{build_adg, FrontendConfig};
//! use lego_ir::kernels::{self, dataflows};
//!
//! // The 2×2 systolic array of paper Figure 3.
//! let gemm = kernels::gemm(4, 4, 4);
//! let df = dataflows::gemm_kj(&gemm, 2);
//! let adg = build_adg(&gemm, &[df], &FrontendConfig::default()).unwrap();
//! assert_eq!(adg.num_fus, 4);
//! // X is forwarded along j, Y reduced along k: 2 edges each.
//! assert_eq!(adg.edges_for("X").count(), 2);
//! assert_eq!(adg.edges_for("Y").count(), 2);
//! ```

pub mod adg;
pub mod interconnect;
pub mod memory;
pub mod plan;

pub use adg::{Adg, ConnKind, DataNode, FuEdge, TensorPlan};
pub use interconnect::{analyze_tensor, ReuseKind, ReuseSolution};
pub use memory::{BankShape, MemoryPlan};

use lego_ir::{Dataflow, Workload};

/// Tuning knobs for the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfig {
    /// Maximum spatial distance `d_S` of an interconnection (Equation 6's
    /// `‖Δs‖∞ ≤ d_S` constraint). The paper uses nearest neighbors.
    pub max_spatial_distance: i64,
    /// Cost of labeling an FU with a data node (a memory port) in the
    /// spanning-tree objective; larger values trade FIFO depth for fewer
    /// data-distribution switches.
    pub root_cost: i64,
    /// Cost per FIFO stage in the spanning-tree objective.
    pub depth_cost: i64,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            max_spatial_distance: 1,
            root_cost: 64,
            depth_cost: 8,
        }
    }
}

/// Errors raised by [`build_adg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Fused dataflows must run on the same number of FUs.
    FuCountMismatch {
        /// FU count of the first dataflow.
        first: i64,
        /// The offending dataflow's FU count.
        other: i64,
    },
    /// At least one dataflow is required.
    NoDataflows,
    /// A tensor in one dataflow references a different workload shape.
    Internal(String),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::FuCountMismatch { first, other } => {
                write!(f, "dataflows disagree on FU count: {first} vs {other}")
            }
            FrontendError::NoDataflows => write!(f, "at least one dataflow is required"),
            FrontendError::Internal(msg) => write!(f, "internal front-end error: {msg}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Runs the complete front end and returns the architecture description
/// graph for the given workload and (possibly multiple) spatial dataflows.
///
/// # Errors
///
/// Returns [`FrontendError::NoDataflows`] for an empty dataflow list and
/// [`FrontendError::FuCountMismatch`] when dataflows cannot share one array.
pub fn build_adg(
    workload: &Workload,
    dataflows: &[Dataflow],
    config: &FrontendConfig,
) -> Result<Adg, FrontendError> {
    let Some(first) = dataflows.first() else {
        return Err(FrontendError::NoDataflows);
    };
    for df in dataflows {
        if df.num_fus() != first.num_fus() {
            return Err(FrontendError::FuCountMismatch {
                first: first.num_fus(),
                other: df.num_fus(),
            });
        }
    }
    plan::plan_architecture(workload, dataflows, config)
}
