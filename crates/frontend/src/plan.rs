//! Interconnection planning: MST pruning and multi-dataflow fusion
//! (paper §IV-B and §IV-C, Figure 5).
//!
//! Per tensor and per dataflow, FUs are partitioned into *chains* — the
//! equivalence classes of the direct-reuse relation. Data reaches a chain
//! either from memory (a data node on the chain root) or from another chain
//! through a delay FIFO; choosing the cheapest set of deliveries is a
//! minimum spanning arborescence over chains with a virtual memory root
//! (Chu-Liu/Edmonds, weight = FIFO depth, constant penalty per data node).
//!
//! When several spatial dataflows are fused into one design, the direct
//! interconnections are re-established with the paper's heuristic: chains
//! are processed longest-first; the chain root is picked among delivery
//! points (or all members) by fewest possible input direct interconnections
//! with preference for FUs already carrying a data node; and the chain is
//! grown outward from the root by a Prim/BFS sweep that prefers reusing
//! connections already present in the merged design.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::adg::{Adg, DataNode, FuEdge, TensorPlan};
use crate::interconnect::{analyze_tensor, ReuseKind, ReuseSolution};
use crate::memory::{bank_shape, MemoryPlan};
use crate::{FrontendConfig, FrontendError};
use lego_graph::{min_spanning_arborescence, DiGraph, UnionFind};
use lego_ir::{Dataflow, TensorAccess, TensorRole, Workload};

/// How a chain receives (input) or disposes of (output) its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainLink {
    /// Chain root carries a data node (memory port).
    Memory,
    /// Data crosses from/to another chain through a FIFO of `depth` between
    /// the given FUs (physical flow `from_fu → to_fu`).
    Delay {
        from_fu: usize,
        to_fu: usize,
        depth: i64,
    },
}

struct DfPlan {
    directs: Vec<ReuseSolution>,
    chains: Vec<Vec<usize>>,
    links: Vec<ChainLink>,
    stationary: bool,
}

/// Runs planning for every tensor and assembles the ADG.
pub(crate) fn plan_architecture(
    workload: &Workload,
    dataflows: &[Dataflow],
    config: &FrontendConfig,
) -> Result<Adg, FrontendError> {
    let num_fus = dataflows[0].num_fus() as usize;
    let mut edges: BTreeMap<(String, usize, usize), Vec<Option<i64>>> = BTreeMap::new();
    let mut tensors = Vec::new();

    for access in &workload.accesses {
        let plan = plan_tensor(workload, dataflows, access, config, num_fus, &mut edges)?;
        tensors.push(plan);
    }

    let edges = edges
        .into_iter()
        .map(|((tensor, from, to), depth_per_df)| FuEdge {
            tensor,
            from,
            to,
            depth_per_df,
        })
        .collect();

    Ok(Adg {
        workload: workload.clone(),
        dataflows: dataflows.to_vec(),
        num_fus,
        edges,
        tensors,
    })
}

fn plan_tensor(
    workload: &Workload,
    dataflows: &[Dataflow],
    access: &TensorAccess,
    config: &FrontendConfig,
    num_fus: usize,
    edges: &mut BTreeMap<(String, usize, usize), Vec<Option<i64>>>,
) -> Result<TensorPlan, FrontendError> {
    let n_df = dataflows.len();
    let is_output = access.role == TensorRole::Output;

    // Per-dataflow analysis: solutions, chains, delivery links.
    let mut df_plans = Vec::with_capacity(n_df);
    for df in dataflows {
        df_plans.push(analyze_dataflow(workload, df, access, config, is_output)?);
    }

    // Static possible-input-direct-interconnection degree per FU, over all
    // dataflows (the root-selection metric of Figure 5).
    let mut static_in = vec![0usize; num_fus];
    for (df, plan) in dataflows.iter().zip(&df_plans) {
        for (u, coord) in df.fu_coords().iter().enumerate() {
            for sol in &plan.directs {
                if let Some(v) = step(df, coord, &sol.delta_s) {
                    let recv = if is_output { u } else { v };
                    static_in[recv] += 1;
                }
            }
        }
    }

    // Merged planning state.
    let mut data_nodes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut built_root_len: HashMap<usize, usize> = HashMap::new();
    let mut merged: HashSet<(usize, usize)> = HashSet::new();
    let mut root_of_chain: Vec<Vec<usize>> = df_plans
        .iter()
        .map(|p| vec![usize::MAX; p.chains.len()])
        .collect();

    // Work list: (df, chain members, link), longest chains first; leftover
    // fragments are appended with a Memory link.
    let mut work: VecDeque<(usize, Vec<usize>, ChainLink)> = {
        let mut items: Vec<(usize, usize)> = (0..n_df)
            .flat_map(|k| (0..df_plans[k].chains.len()).map(move |c| (k, c)))
            .collect();
        items.sort_by_key(|&(k, c)| std::cmp::Reverse(df_plans[k].chains[c].len()));
        items
            .into_iter()
            .map(|(k, c)| (k, df_plans[k].chains[c].clone(), df_plans[k].links[c]))
            .collect()
    };

    let mut chain_seq = 0usize;
    while let Some((k, members, link)) = work.pop_front() {
        chain_seq += 1;
        if chain_seq > 16 * num_fus * n_df.max(1) {
            return Err(FrontendError::Internal(
                "chain planning did not converge".into(),
            ));
        }
        let df = &dataflows[k];
        let plan = &df_plans[k];

        // Root candidates per Figure 5 steps 2-3.
        let mut candidates: Vec<usize> = match link {
            ChainLink::Delay { from_fu, to_fu, .. } => {
                vec![if is_output { from_fu } else { to_fu }]
            }
            ChainLink::Memory => members.clone(),
        };
        // Step 4: fewest possible input direct interconnections, preferring
        // FUs already labeled with a data node.
        candidates.sort_by_key(|&fu| {
            (
                static_in[fu],
                usize::from(!data_nodes.contains_key(&fu)),
                fu,
            )
        });

        // Grow the chain from the best candidate that spans it fully;
        // otherwise take the best partial cover and re-queue the leftovers.
        #[allow(clippy::type_complexity)]
        let mut best: Option<(usize, Vec<(usize, usize, i64)>, Vec<bool>)> = None;
        for &root in &candidates {
            let (chosen, visited) = grow_chain(
                df,
                plan,
                &members,
                root,
                is_output,
                &merged,
                &built_root_len,
            );
            let count = visited.iter().filter(|&&v| v).count();
            if count == members.len() {
                best = Some((root, chosen, visited));
                break;
            }
            if best
                .as_ref()
                .is_none_or(|(_, _, bv)| count > bv.iter().filter(|&&v| v).count())
            {
                best = Some((root, chosen, visited));
            }
        }
        let (root, chosen, visited) = best.expect("chain always has at least one candidate root");

        for (from, to, depth) in chosen {
            insert_edge(edges, &access.tensor, from, to, k, depth, n_df);
            merged.insert((from, to));
        }
        let len = visited.iter().filter(|&&v| v).count();
        let entry = built_root_len.entry(root).or_insert(0);
        *entry = (*entry).max(len);
        // Remember the root for delay-edge endpoints resolved later.
        if let Some(pos) = df_plans[k]
            .chains
            .iter()
            .position(|c| c.contains(&root) && c.len() == members.len() && c == &members)
        {
            root_of_chain[k][pos] = root;
        }

        match link {
            ChainLink::Memory => {
                let active = data_nodes.entry(root).or_default();
                if !active.contains(&k) {
                    active.push(k);
                }
            }
            ChainLink::Delay {
                from_fu,
                to_fu,
                depth,
            } => {
                insert_edge(edges, &access.tensor, from_fu, to_fu, k, depth, n_df);
                merged.insert((from_fu, to_fu));
            }
        }

        // Leftovers (unreachable under the directed direct solutions from
        // the chosen root) become memory-fed fragments.
        let leftover: Vec<usize> = members
            .iter()
            .enumerate()
            .filter(|&(i, _)| !visited[i])
            .map(|(_, &fu)| fu)
            .collect();
        if !leftover.is_empty() {
            for frag in fragments(df, plan, &leftover) {
                work.push_back((k, frag, ChainLink::Memory));
            }
        }
    }

    // Memory analysis per dataflow over the data nodes active in it.
    let per_dataflow = (0..n_df)
        .map(|k| {
            let coords: Vec<Vec<i64>> = data_nodes
                .iter()
                .filter(|(_, dfs)| dfs.contains(&k))
                .map(|(&fu, _)| dataflows[k].fu_coords()[fu].clone())
                .collect();
            bank_shape(&dataflows[k], access, &coords)
        })
        .collect();

    Ok(TensorPlan {
        tensor: access.tensor.clone(),
        role: access.role,
        data_nodes: data_nodes
            .into_iter()
            .map(|(fu, active_in)| DataNode { fu, active_in })
            .collect(),
        memory: MemoryPlan { per_dataflow },
        stationary_in: df_plans.iter().map(|p| p.stationary).collect(),
    })
}

/// Analysis of one tensor under one dataflow: reuse solutions, chains from
/// the direct relation, and the chain-level spanning arborescence that
/// assigns each chain a data node or a delay delivery.
fn analyze_dataflow(
    workload: &Workload,
    df: &Dataflow,
    access: &TensorAccess,
    config: &FrontendConfig,
    is_output: bool,
) -> Result<DfPlan, FrontendError> {
    let solutions = analyze_tensor(workload, df, access, config.max_spatial_distance);
    let stationary = solutions.iter().any(|s| s.kind == ReuseKind::Stationary);
    let directs: Vec<ReuseSolution> = solutions
        .iter()
        .filter(|s| s.kind == ReuseKind::Direct)
        .cloned()
        .collect();
    let delays: Vec<ReuseSolution> = solutions
        .iter()
        .filter(|s| s.kind == ReuseKind::Delay)
        .cloned()
        .collect();

    let coords = df.fu_coords();
    let n = coords.len();
    let mut uf = UnionFind::new(n);
    for (u, coord) in coords.iter().enumerate() {
        for sol in &directs {
            if let Some(v) = step(df, coord, &sol.delta_s) {
                uf.union(u, v);
            }
        }
    }
    let chains = uf.groups();
    let mut chain_of = vec![0usize; n];
    for (c, members) in chains.iter().enumerate() {
        for &fu in members {
            chain_of[fu] = c;
        }
    }

    // Chain-level arborescence with a virtual memory root. For outputs the
    // graph is reversed so the arborescence root side is the committer.
    let virt = chains.len();
    let mut g = DiGraph::new(virt + 1);
    let mut payload: Vec<(usize, usize, i64)> = Vec::new(); // flow from→to, depth
    let mut payload_of_edge: HashMap<usize, usize> = HashMap::new();
    for c in 0..chains.len() {
        let id = g.add_edge(virt, c, config.root_cost);
        let _ = id;
    }
    for (u, coord) in coords.iter().enumerate() {
        for sol in &delays {
            if let Some(v) = step(df, coord, &sol.delta_s) {
                let (cu, cv) = (chain_of[u], chain_of[v]);
                if cu == cv {
                    continue;
                }
                let w = sol.depth * config.depth_cost + 1;
                let eid = if is_output {
                    g.add_edge(cv, cu, w)
                } else {
                    g.add_edge(cu, cv, w)
                };
                payload_of_edge.insert(eid, payload.len());
                payload.push((u, v, sol.depth));
            }
        }
    }

    let arb = min_spanning_arborescence(&g, virt).ok_or_else(|| {
        FrontendError::Internal("chain arborescence infeasible despite virtual root".into())
    })?;
    let mut links = vec![ChainLink::Memory; chains.len()];
    for eid in arb.edges {
        let e = g.edge(eid);
        if e.from == virt {
            continue;
        }
        let &(from_fu, to_fu, depth) = payload
            .get(*payload_of_edge.get(&eid).expect("payload recorded"))
            .expect("payload index valid");
        // For input the arborescence edge enters the receiving chain; for
        // output it enters the *sending* chain of the physical flow.
        let chain = e.to;
        links[chain] = ChainLink::Delay {
            from_fu,
            to_fu,
            depth,
        };
    }

    Ok(DfPlan {
        directs,
        chains,
        links,
        stationary,
    })
}

/// Moves one step of `delta_s` from `coord`; `None` if it leaves the array.
fn step(df: &Dataflow, coord: &[i64], delta_s: &[i64]) -> Option<usize> {
    let mut next = Vec::with_capacity(coord.len());
    for ((&c, &d), &p) in coord.iter().zip(delta_s).zip(&df.spatial_sizes) {
        let v = c + d;
        if v < 0 || v >= p {
            return None;
        }
        next.push(v);
    }
    Some(df.fu_index(&next))
}

/// Prim/BFS growth of one chain from `root` (Figure 5 step 5): repeatedly
/// attach the unvisited member reachable through a valid direct solution,
/// preferring edges that already exist in the merged design, then smaller
/// forwarding depth, then targets that root longer previously-built chains.
///
/// Returns the chosen physical edges `(from, to, depth)` and the visit mask
/// (parallel to `members`).
fn grow_chain(
    df: &Dataflow,
    plan: &DfPlan,
    members: &[usize],
    root: usize,
    is_output: bool,
    merged: &HashSet<(usize, usize)>,
    built_root_len: &HashMap<usize, usize>,
) -> (Vec<(usize, usize, i64)>, Vec<bool>) {
    let coords = df.fu_coords();
    let member_pos: HashMap<usize, usize> =
        members.iter().enumerate().map(|(i, &fu)| (fu, i)).collect();
    let mut visited = vec![false; members.len()];
    let Some(&root_pos) = member_pos.get(&root) else {
        return (Vec::new(), visited);
    };
    visited[root_pos] = true;
    let mut chosen = Vec::new();

    loop {
        // Candidate moves: (key, physical_from, physical_to, depth, w_pos).
        #[allow(clippy::type_complexity)]
        let mut best: Option<((usize, i64, i64, usize), usize, usize, i64, usize)> = None;
        for (i, &u) in members.iter().enumerate() {
            if !visited[i] {
                continue;
            }
            for sol in &plan.directs {
                // Input: data flows u → w, so w = u + Δs.
                // Output: partial sums flow w → u, so w = u − Δs.
                let target = if is_output {
                    let neg: Vec<i64> = sol.delta_s.iter().map(|d| -d).collect();
                    step(df, &coords[u], &neg)
                } else {
                    step(df, &coords[u], &sol.delta_s)
                };
                let Some(w) = target else { continue };
                let Some(&wp) = member_pos.get(&w) else {
                    continue;
                };
                if visited[wp] {
                    continue;
                }
                let (pf, pt) = if is_output { (w, u) } else { (u, w) };
                let key = (
                    usize::from(!merged.contains(&(pf, pt))),
                    sol.depth,
                    -(built_root_len.get(&w).copied().unwrap_or(0) as i64),
                    w,
                );
                if best.as_ref().is_none_or(|(bk, ..)| key < *bk) {
                    best = Some((key, pf, pt, sol.depth, wp));
                }
            }
        }
        let Some((_, pf, pt, depth, wp)) = best else {
            break;
        };
        chosen.push((pf, pt, depth));
        visited[wp] = true;
    }
    (chosen, visited)
}

/// Splits leftover FUs into connected fragments under the undirected direct
/// relation, so each fragment can be re-planned as its own memory-fed chain.
fn fragments(df: &Dataflow, plan: &DfPlan, leftover: &[usize]) -> Vec<Vec<usize>> {
    let set: HashSet<usize> = leftover.iter().copied().collect();
    let coords = df.fu_coords();
    let mut uf_index: HashMap<usize, usize> = HashMap::new();
    for (i, &fu) in leftover.iter().enumerate() {
        uf_index.insert(fu, i);
    }
    let mut uf = UnionFind::new(leftover.len());
    for &u in leftover {
        for sol in &plan.directs {
            for dir in [1i64, -1] {
                let d: Vec<i64> = sol.delta_s.iter().map(|x| x * dir).collect();
                if let Some(v) = step(df, &coords[u], &d) {
                    if set.contains(&v) {
                        uf.union(uf_index[&u], uf_index[&v]);
                    }
                }
            }
        }
    }
    uf.groups()
        .into_iter()
        .map(|g| g.into_iter().map(|i| leftover[i]).collect())
        .collect()
}

fn insert_edge(
    edges: &mut BTreeMap<(String, usize, usize), Vec<Option<i64>>>,
    tensor: &str,
    from: usize,
    to: usize,
    df: usize,
    depth: i64,
    n_df: usize,
) {
    let slot = edges
        .entry((tensor.to_string(), from, to))
        .or_insert_with(|| vec![None; n_df]);
    slot[df] = Some(slot[df].map_or(depth, |d: i64| d.max(depth)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_adg;
    use lego_ir::kernels::{self, dataflows};

    fn cfg() -> FrontendConfig {
        FrontendConfig::default()
    }

    #[test]
    fn tpu_systolic_gemm_topology() {
        // Paper Figure 3(c): 2×2 systolic array. X forwarded along j (depth
        // 1), Y reduced along k (depth 1), W fully partitioned (no edges,
        // 4 data nodes).
        let gemm = kernels::gemm(8, 4, 4);
        let df = dataflows::gemm_kj(&gemm, 2);
        let adg = build_adg(&gemm, &[df], &cfg()).unwrap();

        let x_edges: Vec<_> = adg.edges_for("X").collect();
        assert_eq!(x_edges.len(), 2, "{}", adg.summary());
        for e in &x_edges {
            assert_eq!(e.max_depth(), 1, "systolic X forward has depth 1");
        }
        // X ports on the first column (s_j = 0): FUs 0 and 2.
        let x_plan = adg.tensor_plan("X").unwrap();
        let ports: Vec<usize> = x_plan.data_nodes.iter().map(|d| d.fu).collect();
        assert_eq!(ports, vec![0, 2]);

        let y_edges: Vec<_> = adg.edges_for("Y").collect();
        assert_eq!(y_edges.len(), 2);
        let y_plan = adg.tensor_plan("Y").unwrap();
        assert_eq!(y_plan.data_nodes.len(), 2, "one committer per column");

        let w_plan = adg.tensor_plan("W").unwrap();
        assert_eq!(adg.edges_for("W").count(), 0, "W has no spatial reuse");
        assert_eq!(w_plan.data_nodes.len(), 4, "every FU fetches its own W");
        // W is weight-stationary over the inner i loop.
        assert!(w_plan.stationary_in[0]);
    }

    #[test]
    fn shidiannao_conv_topology() {
        // Paper Figure 4(c): 2×2 array, oh/ow parallel. W broadcast (one
        // port), X forwarded with delay FIFOs, Y committed per FU.
        let conv = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
        let df = dataflows::conv_ohow(&conv, 2);
        let adg = build_adg(&conv, &[df], &cfg()).unwrap();

        let w_plan = adg.tensor_plan("W").unwrap();
        assert_eq!(w_plan.data_nodes.len(), 1, "W is broadcast from one port");
        assert_eq!(adg.edges_for("W").count(), 3, "broadcast chain spans 4 FUs");
        for e in adg.edges_for("W") {
            assert_eq!(e.max_depth(), 0, "broadcast chain is wires");
        }

        // X: delay interconnections let neighbors reuse shifted rows.
        assert!(adg.edges_for("X").count() >= 2);
        assert!(adg.edges_for("X").any(|e| e.max_depth() > 0));

        let y_plan = adg.tensor_plan("Y").unwrap();
        assert_eq!(y_plan.data_nodes.len(), 4, "output-parallel commit");
        assert!(
            y_plan.stationary_in[0],
            "Y accumulates locally over ic/kh/kw"
        );
    }

    #[test]
    fn gemm_ij_broadcast_rows_and_columns() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = dataflows::gemm_ij(&gemm, 2);
        let adg = build_adg(&gemm, &[df], &cfg()).unwrap();
        // X invariant along j: one port per row; W invariant along i: one
        // port per column; Y stationary with a port per FU.
        assert_eq!(adg.tensor_plan("X").unwrap().data_nodes.len(), 2);
        assert_eq!(adg.tensor_plan("W").unwrap().data_nodes.len(), 2);
        assert_eq!(adg.tensor_plan("Y").unwrap().data_nodes.len(), 4);
        assert!(adg.tensor_plan("Y").unwrap().stationary_in[0]);
    }

    #[test]
    fn every_fu_is_reachable_per_dataflow() {
        // Spanning property: under each dataflow, every FU must receive
        // every input tensor (through a port or a chain of edges).
        let gemm = kernels::gemm(8, 8, 8);
        for df in [
            dataflows::gemm_ij(&gemm, 2),
            dataflows::gemm_ik(&gemm, 2),
            dataflows::gemm_kj(&gemm, 2),
        ] {
            let adg = build_adg(&gemm, &[df], &cfg()).unwrap();
            for plan in &adg.tensors {
                if plan.role == TensorRole::Output {
                    continue;
                }
                let mut fed: HashSet<usize> = plan.data_nodes.iter().map(|d| d.fu).collect();
                let mut changed = true;
                while changed {
                    changed = false;
                    for e in adg.edges_for(&plan.tensor) {
                        if fed.contains(&e.from) && fed.insert(e.to) {
                            changed = true;
                        }
                    }
                }
                assert_eq!(
                    fed.len(),
                    adg.num_fus,
                    "tensor {} not delivered to all FUs: {}",
                    plan.tensor,
                    adg.summary()
                );
            }
        }
    }

    #[test]
    fn output_edges_point_toward_committer() {
        let gemm = kernels::gemm(8, 4, 4);
        let df = dataflows::gemm_kj(&gemm, 2);
        let adg = build_adg(&gemm, &[df], &cfg()).unwrap();
        let y_plan = adg.tensor_plan("Y").unwrap();
        let committers: HashSet<usize> = y_plan.data_nodes.iter().map(|d| d.fu).collect();
        // Follow edges from any FU: must reach a committer.
        for start in 0..adg.num_fus {
            let mut cur = start;
            let mut steps = 0;
            while !committers.contains(&cur) {
                let next = adg
                    .edges_for("Y")
                    .find(|e| e.from == cur)
                    .unwrap_or_else(|| panic!("FU {cur} has no Y path"));
                cur = next.to;
                steps += 1;
                assert!(steps <= adg.num_fus, "cycle in Y reduction path");
            }
        }
    }

    #[test]
    fn fusing_two_dataflows_shares_edges() {
        // GEMM-IJ and GEMM-KJ fused: the merged design must not duplicate
        // connections both dataflows can share, and every dataflow stays
        // fully fed.
        let gemm = kernels::gemm(8, 8, 8);
        let ij = dataflows::gemm_ij(&gemm, 2);
        let kj = dataflows::gemm_kj(&gemm, 2);
        let fused = build_adg(&gemm, &[ij.clone(), kj.clone()], &cfg()).unwrap();
        let solo_ij = build_adg(&gemm, &[ij], &cfg()).unwrap();
        let solo_kj = build_adg(&gemm, &[kj], &cfg()).unwrap();

        // Fusion is no worse than disjoint union (the heuristic's goal).
        assert!(
            fused.edges.len() <= solo_ij.edges.len() + solo_kj.edges.len(),
            "fused {} vs {} + {}",
            fused.edges.len(),
            solo_ij.edges.len(),
            solo_kj.edges.len()
        );
        // Both dataflows are active somewhere.
        assert!(fused.edges.iter().any(|e| e.active_in(0)));
        assert!(fused.edges.iter().any(|e| e.active_in(1)));
    }

    #[test]
    fn fu_count_mismatch_is_rejected() {
        let gemm = kernels::gemm(8, 8, 8);
        let small = dataflows::gemm_ij(&gemm, 2);
        let large = dataflows::gemm_ij(&gemm, 4);
        let err = build_adg(&gemm, &[small, large], &cfg()).unwrap_err();
        assert!(matches!(err, FrontendError::FuCountMismatch { .. }));
    }

    #[test]
    fn no_dataflows_rejected() {
        let gemm = kernels::gemm(4, 4, 4);
        assert!(matches!(
            build_adg(&gemm, &[], &cfg()),
            Err(FrontendError::NoDataflows)
        ));
    }

    #[test]
    fn mttkrp_three_inputs_all_planned() {
        let m = kernels::mttkrp(4, 4, 4, 4);
        let df = dataflows::mttkrp_ij(&m, 2);
        let adg = build_adg(&m, &[df], &cfg()).unwrap();
        assert_eq!(adg.tensors.len(), 4);
        for t in ["A", "B", "C", "Y"] {
            assert!(adg.tensor_plan(t).is_some(), "missing plan for {t}");
        }
        // B = [k, j] is invariant along i → shared along the i axis.
        assert!(adg.tensor_plan("B").unwrap().data_nodes.len() < adg.num_fus);
    }

    #[test]
    fn memory_plans_are_conflict_free() {
        use crate::memory::conflict_free;
        let conv = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
        let df = dataflows::conv_ohow(&conv, 2);
        let adg = build_adg(&conv, std::slice::from_ref(&df), &cfg()).unwrap();
        for plan in &adg.tensors {
            let access = conv.access(&plan.tensor).unwrap();
            let coords: Vec<Vec<i64>> = plan
                .data_nodes_in(0)
                .map(|d| df.fu_coords()[d.fu].clone())
                .collect();
            assert!(
                conflict_free(&df, access, &coords, &plan.memory.per_dataflow[0]),
                "bank conflict for {}",
                plan.tensor
            );
        }
    }
}
