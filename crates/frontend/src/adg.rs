//! The Architecture Description Graph — the front end's output (paper §IV).
//!
//! The ADG describes hardware at the FU level: functional units, the pruned
//! set of direct/delay interconnections per tensor, data nodes (memory
//! ports), and the banked L1 memory plan. The back end lowers it to the
//! primitive-level DAG.

use crate::memory::MemoryPlan;
use lego_ir::{Dataflow, TensorRole, Workload};

/// Kind of physical FU-to-FU connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnKind {
    /// Plain wire (absolute-cycle depth 0).
    Direct,
    /// Programmable-depth FIFO.
    Delay,
}

/// One FU-to-FU interconnection in the fused design.
///
/// `from` produces the value, `to` consumes it. For output tensors the
/// connection carries a partial sum toward the committing FU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuEdge {
    /// Tensor whose data travels on this connection.
    pub tensor: String,
    /// Producing FU (dense index).
    pub from: usize,
    /// Consuming FU (dense index).
    pub to: usize,
    /// FIFO depth per dataflow (`None` = inactive in that dataflow). Depth 0
    /// means the connection degenerates to a wire in that configuration.
    pub depth_per_df: Vec<Option<i64>>,
}

impl FuEdge {
    /// The connection kind required by the worst-case active dataflow.
    pub fn kind(&self) -> ConnKind {
        if self.max_depth() > 0 {
            ConnKind::Delay
        } else {
            ConnKind::Direct
        }
    }

    /// Maximum FIFO depth over the dataflows that activate this edge.
    pub fn max_depth(&self) -> i64 {
        self.depth_per_df
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// `true` if the edge carries data under dataflow `df`.
    pub fn active_in(&self, df: usize) -> bool {
        self.depth_per_df.get(df).copied().flatten().is_some()
    }
}

/// A memory port: an FU that fetches (input) or commits (output) a tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataNode {
    /// The FU carrying the port.
    pub fu: usize,
    /// Dataflows in which this port is active.
    pub active_in: Vec<usize>,
}

/// Everything the front end decided about one tensor.
#[derive(Debug, Clone)]
pub struct TensorPlan {
    /// Tensor name.
    pub tensor: String,
    /// Input or output.
    pub role: TensorRole,
    /// Memory ports.
    pub data_nodes: Vec<DataNode>,
    /// Banked L1 memory plan.
    pub memory: MemoryPlan,
    /// Per dataflow: whether the operand is stationary (reused in a local
    /// register across time) — drives the energy model's buffer traffic.
    pub stationary_in: Vec<bool>,
}

impl TensorPlan {
    /// Data nodes active under dataflow `df`.
    pub fn data_nodes_in(&self, df: usize) -> impl Iterator<Item = &DataNode> {
        self.data_nodes
            .iter()
            .filter(move |d| d.active_in.contains(&df))
    }
}

/// The FU-level architecture description graph.
#[derive(Debug, Clone)]
pub struct Adg {
    /// The workload this architecture executes.
    pub workload: Workload,
    /// The spatial dataflows fused into the design.
    pub dataflows: Vec<Dataflow>,
    /// Number of functional units.
    pub num_fus: usize,
    /// All FU-to-FU interconnections (all tensors).
    pub edges: Vec<FuEdge>,
    /// Per-tensor plans, in workload access order.
    pub tensors: Vec<TensorPlan>,
}

impl Adg {
    /// Interconnections carrying the named tensor.
    pub fn edges_for<'a>(&'a self, tensor: &'a str) -> impl Iterator<Item = &'a FuEdge> {
        self.edges.iter().filter(move |e| e.tensor == tensor)
    }

    /// The plan for the named tensor.
    pub fn tensor_plan(&self, tensor: &str) -> Option<&TensorPlan> {
        self.tensors.iter().find(|t| t.tensor == tensor)
    }

    /// Total number of data nodes (memory ports) across tensors.
    pub fn data_node_count(&self) -> usize {
        self.tensors.iter().map(|t| t.data_nodes.len()).sum()
    }

    /// Sum of FIFO stages over all delay connections (a proxy for the data
    /// path register cost the MST minimizes).
    pub fn total_fifo_depth(&self) -> i64 {
        self.edges.iter().map(FuEdge::max_depth).sum()
    }

    /// Edges active under dataflow `df`.
    pub fn edges_in(&self, df: usize) -> impl Iterator<Item = &FuEdge> {
        self.edges.iter().filter(move |e| e.active_in(df))
    }

    /// A compact human-readable summary (FUs, edges, ports, banks).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "ADG `{}`: {} FUs, {} dataflow(s), {} edges ({} delay stages), {} data nodes\n",
            self.workload.name,
            self.num_fus,
            self.dataflows.len(),
            self.edges.len(),
            self.total_fifo_depth(),
            self.data_node_count(),
        );
        for t in &self.tensors {
            s.push_str(&format!(
                "  {}: {} ports, {} banks\n",
                t.tensor,
                t.data_nodes.len(),
                t.memory.fused_banks(),
            ));
        }
        s
    }
}
