//! Relation-based interconnection analysis (paper §IV-A).
//!
//! Two FUs can share a tensor element when the composed relation
//! `f_{TS→D}` maps their (timestamp, coordinate) pairs to the same index:
//!
//! * **direct** (Equation 6): `M_{I→D}·M_{S→I}·Δs = 0` — same data at the
//!   same local timestamp;
//! * **delay** (Equation 7): `M_{I→D}·(M_{T→I}·Δt + M_{S→I}·Δs) = 0` — same
//!   data after a constant timestamp gap, realizable as a FIFO.
//!
//! Because timestamps are *local* to each FU (§III-C), the physical FIFO
//! depth of a connection is the difference in absolute cycles:
//! `depth = scalar(Δt) + Δsᵀ·c ≥ 0`, where `scalar` linearizes the loop
//! index per Equation 3. A systolic control flow (`c = [1,1]`) thus turns a
//! same-timestamp broadcast into a depth-1 store-and-forward, exactly the
//! conversion the paper describes.
//!
//! The temporal shift must additionally stay inside the loop bounds
//! (`|Δt_j| ≤ R_j − 1`), otherwise the solution lattice contains shifts
//! whose iteration overlap is empty — algebraically valid but physically
//! meaningless. The solver enumerates the lattice inside that box.

use lego_ir::{Dataflow, TensorAccess, Workload};
use lego_linalg::{dot, solve, IMat};

/// Kind of data-reuse interconnection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseKind {
    /// Same local timestamp (`Δt = 0`).
    Direct,
    /// Constant positive timestamp gap, implemented as a FIFO.
    Delay,
    /// Same FU across time (`Δs = 0`): the operand is stationary in a
    /// local register; no interconnection is created but the reuse matters
    /// for memory-traffic modeling.
    Stationary,
}

/// One solution of the reuse equations for a given tensor and dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseSolution {
    /// Spatial displacement `Δs` (receiver = sender + Δs).
    pub delta_s: Vec<i64>,
    /// Temporal displacement `Δt` in loop-index space (zero for direct).
    pub delta_t: Vec<i64>,
    /// Physical FIFO depth `scalar(Δt) + Δsᵀ·c` (0 = plain wire).
    pub depth: i64,
    /// Classification of the solution.
    pub kind: ReuseKind,
}

/// Scalarizes a temporal displacement per Equation 3: the constant cycle
/// gap between local timestamps `t` and `t + Δt`.
fn scalar_gap(delta_t: &[i64], sizes: &[i64]) -> i64 {
    let mut stride = 1i64;
    let mut gap = 0i64;
    for (dt, r) in delta_t.iter().zip(sizes).rev() {
        gap += dt * stride;
        stride *= r;
    }
    gap
}

/// Enumerates all non-zero `Δs` within the `‖Δs‖∞ ≤ d` box of the array.
fn spatial_deltas(rank: usize, d: i64) -> Vec<Vec<i64>> {
    let mut out = vec![vec![]];
    for _ in 0..rank {
        let mut next = Vec::new();
        for v in &out {
            for x in -d..=d {
                let mut v2 = v.clone();
                v2.push(x);
                next.push(v2);
            }
        }
        out = next;
    }
    out.retain(|v| v.iter().any(|&x| x != 0));
    out
}

/// Finds all direct, delay, and stationary reuse solutions for one tensor
/// access under one dataflow (paper Equations 6–7).
///
/// `max_distance` is the `d_S` bound on `‖Δs‖∞`. For each spatial
/// displacement the minimal-depth in-bounds temporal shift is returned;
/// displacements with no non-negative-depth realization are discarded
/// (data cannot flow backward in absolute time).
///
/// # Examples
///
/// ```
/// use lego_frontend::{analyze_tensor, ReuseKind};
/// use lego_ir::kernels::{self, dataflows};
///
/// let gemm = kernels::gemm(4, 4, 4);
/// let df = dataflows::gemm_kj(&gemm, 2); // systolic: c = [1, 1]
/// let x = gemm.access("X").unwrap();
/// let sols = analyze_tensor(&gemm, &df, x, 1);
/// // X is invariant along j: forward (0,1) is a depth-1 systolic wire.
/// assert!(sols.iter().any(|s| s.delta_s == vec![0, 1]
///     && s.depth == 1 && s.kind == ReuseKind::Direct));
/// ```
pub fn analyze_tensor(
    _workload: &Workload,
    dataflow: &Dataflow,
    access: &TensorAccess,
    max_distance: i64,
) -> Vec<ReuseSolution> {
    let m_sd = dataflow.m_sd(access);
    let m_td = dataflow.m_td(access);
    let sizes = &dataflow.temporal_sizes;
    let mut solutions = Vec::new();

    // Stationary reuse: Δs = 0, minimal positive in-bounds Δt with
    // M_td·Δt = 0.
    if let Some((delta_t, gap)) = minimal_shift(&m_td, &vec![0; m_td.rows()], sizes, 1) {
        solutions.push(ReuseSolution {
            delta_s: vec![0; dataflow.spatial_rank()],
            delta_t,
            depth: gap,
            kind: ReuseKind::Stationary,
        });
    }

    for delta_s in spatial_deltas(dataflow.spatial_rank(), max_distance) {
        let bias = dot(&delta_s, &dataflow.control);
        let rhs: Vec<i64> = m_sd.mul_vec(&delta_s).iter().map(|&x| -x).collect();

        if rhs.iter().all(|&x| x == 0) {
            if bias >= 0 {
                // Direct interconnection (Δt = 0), systolic depth = bias.
                solutions.push(ReuseSolution {
                    delta_s: delta_s.clone(),
                    delta_t: vec![0; sizes.len()],
                    depth: bias,
                    kind: ReuseKind::Direct,
                });
            } else if let Some((delta_t, gap)) = minimal_shift(&m_td, &rhs, sizes, -bias) {
                // The direct form would flow backward in absolute time;
                // realize the reuse as a delay connection instead (the
                // paper's Δs = (0,−1) example in §IV-A).
                solutions.push(ReuseSolution {
                    delta_s: delta_s.clone(),
                    delta_t,
                    depth: gap + bias,
                    kind: ReuseKind::Delay,
                });
            }
            continue;
        }

        // Delay interconnection: minimal in-bounds Δt, depth = gap + bias.
        if let Some((delta_t, gap)) = minimal_shift(&m_td, &rhs, sizes, -bias) {
            let depth = gap + bias;
            debug_assert!(depth >= 0);
            solutions.push(ReuseSolution {
                delta_s,
                delta_t,
                depth,
                kind: ReuseKind::Delay,
            });
        }
    }
    solutions
}

/// Solves `M·Δt = rhs` over the integers, subject to the loop-bound box
/// `|Δt_j| ≤ R_j − 1`, returning the solution minimizing the scalar gap
/// under `gap ≥ min_gap` (ties broken by L1 norm). `None` if infeasible.
///
/// The solution set is a lattice `p + span(B)`; `p` is first reduced into
/// the box by Babai-style rounding along the basis, then the lattice is
/// enumerated in a small coefficient window around the reduced point.
fn minimal_shift(m: &IMat, rhs: &[i64], sizes: &[i64], min_gap: i64) -> Option<(Vec<i64>, i64)> {
    let sol = solve(m, rhs)?;
    let mut p = sol.particular.clone();
    let basis = &sol.basis;

    // Babai-style reduction of the particular solution toward the box.
    for _ in 0..3 {
        for b in basis {
            let (j, bj) = b
                .iter()
                .enumerate()
                .max_by_key(|(_, v)| v.unsigned_abs())
                .map(|(j, &v)| (j, v))
                .unwrap_or((0, 0));
            if bj == 0 {
                continue;
            }
            let t0 = (p[j] as f64 / bj as f64).round() as i64;
            let mut best_t = 0i64;
            let mut best_pen = penalty(&p, sizes);
            for t in t0 - 2..=t0 + 2 {
                if t == 0 {
                    continue;
                }
                let cand: Vec<i64> = p.iter().zip(b).map(|(x, y)| x - t * y).collect();
                let pen = penalty(&cand, sizes);
                if pen < best_pen {
                    best_pen = pen;
                    best_t = t;
                }
            }
            if best_t != 0 {
                for (x, y) in p.iter_mut().zip(b) {
                    *x -= best_t * y;
                }
            }
        }
    }

    // Enumerate lattice coefficients in a window; dimensions beyond the
    // first four stay at zero (LEGO loop nests are shallow, so the reduced
    // basis dimensions beyond that never help).
    let dims = basis.len().min(4);
    let range: i64 = match dims {
        0 => 0,
        1 => 12,
        2 => 8,
        3 => 6,
        _ => 4,
    };
    let mut best: Option<(i64, i64, Vec<i64>)> = None; // (gap, l1, Δt)
    let mut k = vec![0i64; dims];
    loop {
        let mut cand = p.clone();
        for (ki, b) in k.iter().zip(basis) {
            if *ki != 0 {
                for (x, y) in cand.iter_mut().zip(b) {
                    *x += ki * y;
                }
            }
        }
        let in_box = cand.iter().zip(sizes).all(|(x, &r)| x.abs() < r);
        if in_box {
            let gap = scalar_gap(&cand, sizes);
            if gap >= min_gap {
                let l1: i64 = cand.iter().map(|x| x.abs()).sum();
                if best
                    .as_ref()
                    .is_none_or(|(bg, bl, _)| (gap, l1) < (*bg, *bl))
                {
                    best = Some((gap, l1, cand));
                }
            }
        }
        // Odometer over k.
        let mut d = 0;
        loop {
            if d == dims {
                return best.map(|(gap, _, dt)| {
                    debug_assert_eq!(m.mul_vec(&dt), rhs.to_vec());
                    (dt, gap)
                });
            }
            k[d] += 1;
            if k[d] <= range {
                break;
            }
            k[d] = -range;
            d += 1;
        }
    }
}

/// Out-of-box violation plus a small norm term, used by the reduction.
fn penalty(v: &[i64], sizes: &[i64]) -> i64 {
    let mut pen = 0i64;
    for (x, r) in v.iter().zip(sizes) {
        let excess = (x.abs() - (r - 1)).max(0);
        pen += excess * 1_000 + x.abs();
    }
    pen
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_ir::kernels::{self, dataflows};
    use lego_ir::DataflowBuilder;

    #[test]
    fn figure3_gemm_systolic_solutions() {
        let gemm = kernels::gemm(8, 4, 4);
        let df = dataflows::gemm_kj(&gemm, 2);
        // Tensor X = [i, k]: invariant along s_j.
        let x = gemm.access("X").unwrap();
        let sols = analyze_tensor(&gemm, &df, x, 1);
        let direct: Vec<_> = sols
            .iter()
            .filter(|s| s.kind == ReuseKind::Direct)
            .collect();
        // (0,1) kept with depth 1 (systolic); (0,-1) has Δt_bias = -1 and is
        // realized instead through the delay equation: advancing the j loop
        // by one (2 cycles here, k is innermost) minus the bias → depth 1.
        assert!(direct
            .iter()
            .any(|s| s.delta_s == vec![0, 1] && s.depth == 1));
        assert!(!direct.iter().any(|s| s.delta_s == vec![0, -1]));
        let back = sols
            .iter()
            .find(|s| s.delta_s == vec![0, -1] && s.kind == ReuseKind::Delay)
            .expect("backward reuse via delay");
        assert_eq!(back.depth, 1);

        // Tensor Y = [i, j]: invariant along s_k → reduction along k.
        let y = gemm.access("Y").unwrap();
        let sols = analyze_tensor(&gemm, &df, y, 1);
        assert!(sols
            .iter()
            .any(|s| s.kind == ReuseKind::Direct && s.delta_s == vec![1, 0] && s.depth == 1));

        // Tensor W = [k, j]: no spatial reuse at all (fully partitioned),
        // but W is stationary over the i loop.
        let w = gemm.access("W").unwrap();
        let sols = analyze_tensor(&gemm, &df, w, 1);
        assert!(
            sols.iter().all(|s| s.delta_s.iter().all(|&d| d == 0)),
            "unexpected spatial reuse for W: {sols:?}"
        );
        assert!(sols.iter().any(|s| s.kind == ReuseKind::Stationary));
    }

    #[test]
    fn paper_tiling_backward_reuse_needs_full_tile_revisit() {
        // With the paper's exact Figure 3 tiling, X's backward reuse along
        // −j only recurs when the j loop advances: gap = R0_k·R0_i = 8
        // cycles, minus the systolic bias −1 → a 7-deep FIFO. The cheap
        // forward direct wire (depth 1) is what the MST will pick instead.
        let gemm = kernels::gemm(8, 4, 4);
        let df = DataflowBuilder::new(&gemm)
            .par("k", 2)
            .par("j", 2)
            .seq("i", 2) // t1_i
            .seq("j", 2) // t0_j
            .seq("k", 2) // t0_k
            .seq("i", 4) // t0_i (innermost)
            .control(vec![1, 1])
            .build("fig3")
            .unwrap();
        let x = gemm.access("X").unwrap();
        let sols = analyze_tensor(&gemm, &df, x, 1);
        let back = sols
            .iter()
            .find(|s| s.delta_s == vec![0, -1] && s.kind == ReuseKind::Delay)
            .expect("backward reuse via delay");
        assert_eq!(back.depth, 7);
        assert_eq!(back.delta_t, vec![0, 1, 0, 0]);
        let fwd = sols
            .iter()
            .find(|s| s.delta_s == vec![0, 1] && s.kind == ReuseKind::Direct)
            .expect("forward systolic wire");
        assert_eq!(fwd.depth, 1);
    }

    #[test]
    fn figure4_conv_ohow_solutions() {
        // ShiDianNao: spatial [ow, oh], broadcast control c = [0,0].
        let conv = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
        let df = dataflows::conv_ohow(&conv, 2);
        // W = [oc, ic, kh, kw]: invariant along both spatial dims → direct
        // interconnections in all four directions (depth 0).
        let w = conv.access("W").unwrap();
        let sols = analyze_tensor(&conv, &df, w, 1);
        for ds in [[0, 1], [0, -1], [1, 0], [-1, 0]] {
            assert!(
                sols.iter()
                    .any(|s| s.kind == ReuseKind::Direct && s.delta_s == ds && s.depth == 0),
                "missing direct solution {ds:?}"
            );
        }

        // X = [n, ic, oh+kh, ow+kw]: moving one FU along s_oh is compensated
        // by kh → delay interconnection (Figure 4's table) with positive
        // depth (the kh loop advances by one).
        let x = conv.access("X").unwrap();
        let sols = analyze_tensor(&conv, &df, x, 1);
        let delayed: Vec<_> = sols
            .iter()
            .filter(|s| s.kind == ReuseKind::Delay && s.delta_s == vec![0, -1])
            .collect();
        assert_eq!(delayed.len(), 1, "{sols:?}");
        assert!(delayed[0].depth > 0, "got {:?}", delayed[0]);
        // The shift advances kh by exactly one.
        let kh_slot = 5; // temporal order [n, oc, ic, oh, ow, kh, kw]
        assert_eq!(delayed[0].delta_t[kh_slot], 1, "{:?}", delayed[0]);

        // Y = [n, oc, oh, ow]: output moves with the array → no spatial
        // reuse; accumulation is stationary over ic/kh/kw.
        let y = conv.access("Y").unwrap();
        let sols = analyze_tensor(&conv, &df, y, 1);
        assert!(sols.iter().all(|s| s.kind == ReuseKind::Stationary));
    }

    #[test]
    fn broadcast_gemm_ij_shares_x_along_j() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = dataflows::gemm_ij(&gemm, 2);
        let x = gemm.access("X").unwrap();
        let sols = analyze_tensor(&gemm, &df, x, 1);
        // X = [i, k] is invariant along s_j (axis 1): both directions direct
        // with depth 0 (true broadcast, c = 0).
        assert!(sols
            .iter()
            .any(|s| s.kind == ReuseKind::Direct && s.delta_s == vec![0, 1] && s.depth == 0));
        assert!(sols
            .iter()
            .any(|s| s.kind == ReuseKind::Direct && s.delta_s == vec![0, -1] && s.depth == 0));
    }

    #[test]
    fn stationary_output_detected_for_ij() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = dataflows::gemm_ij(&gemm, 2);
        let y = gemm.access("Y").unwrap();
        let sols = analyze_tensor(&gemm, &df, y, 1);
        // Output-stationary: Y reused across the whole k loop.
        assert!(sols
            .iter()
            .any(|s| s.kind == ReuseKind::Stationary && s.depth == 1));
    }

    #[test]
    fn depth_respects_larger_distance() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = dataflows::gemm_ij(&gemm, 4);
        let x = gemm.access("X").unwrap();
        let sols = analyze_tensor(&gemm, &df, x, 2);
        // Distance-2 jumps along j are also valid reuse.
        assert!(sols
            .iter()
            .any(|s| s.kind == ReuseKind::Direct && s.delta_s == vec![0, 2]));
    }

    #[test]
    fn scalar_gap_is_mixed_radix() {
        assert_eq!(scalar_gap(&[0, 0, 1], &[2, 3, 4]), 1);
        assert_eq!(scalar_gap(&[0, 1, 0], &[2, 3, 4]), 4);
        assert_eq!(scalar_gap(&[1, 0, 0], &[2, 3, 4]), 12);
        assert_eq!(scalar_gap(&[1, -1, 2], &[2, 3, 4]), 12 - 4 + 2);
    }

    #[test]
    fn out_of_box_shifts_rejected() {
        // A shift that algebraically exists but exceeds the loop bounds must
        // not be reported: gemm with tiny loops where the only solution
        // would need |Δt| ≥ R.
        let gemm = kernels::gemm(2, 2, 2);
        let df = dataflows::gemm_ij(&gemm, 2);
        let x = gemm.access("X").unwrap();
        let sols = analyze_tensor(&gemm, &df, x, 1);
        for s in &sols {
            for (dt, r) in s.delta_t.iter().zip(&df.temporal_sizes) {
                assert!(dt.abs() < *r, "out-of-box Δt in {s:?}");
            }
        }
    }

    #[test]
    fn all_solutions_satisfy_reuse_equation() {
        // Defining property (Equations 6-7) checked exhaustively across
        // kernels and dataflows.
        let cases: Vec<(lego_ir::Workload, lego_ir::Dataflow)> = vec![
            {
                let w = kernels::gemm(8, 4, 4);
                let d = dataflows::gemm_kj(&w, 2);
                (w, d)
            },
            {
                let w = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
                let d = dataflows::conv_ohow(&w, 2);
                (w, d)
            },
            {
                let w = kernels::mttkrp(4, 4, 4, 4);
                let d = dataflows::mttkrp_kj(&w, 2);
                (w, d)
            },
        ];
        for (w, df) in &cases {
            for access in &w.accesses {
                for s in analyze_tensor(w, df, access, 1) {
                    let lhs = df.m_td(access).mul_vec(&s.delta_t);
                    let rhs = df.m_sd(access).mul_vec(&s.delta_s);
                    for (a, b) in lhs.iter().zip(&rhs) {
                        assert_eq!(a + b, 0, "reuse equation violated: {s:?}");
                    }
                    assert!(s.depth >= 0, "negative absolute delay: {s:?}");
                }
            }
        }
    }

    #[test]
    fn interleaved_temporal_order_affects_depth() {
        // Same spatial layout, different loop orders: the FIFO depth of the
        // X delay connection follows the position of kh in the loop nest.
        let conv = kernels::conv2d(1, 1, 1, 4, 4, 3, 3, 1);
        let inner = DataflowBuilder::new(&conv)
            .par("ow", 2)
            .par("oh", 2)
            .seq("kw", 3)
            .seq("kh", 3) // kh innermost → small gap
            .build("kh-inner")
            .unwrap();
        let outer = DataflowBuilder::new(&conv)
            .par("ow", 2)
            .par("oh", 2)
            .seq("kh", 3) // kh outermost of the declared pair → larger gap
            .seq("kw", 3)
            .build("kh-outer")
            .unwrap();
        let x = conv.access("X").unwrap();
        let d_inner = analyze_tensor(&conv, &inner, x, 1)
            .into_iter()
            .find(|s| s.kind == ReuseKind::Delay && s.delta_s == vec![0, -1])
            .expect("delay solution");
        let d_outer = analyze_tensor(&conv, &outer, x, 1)
            .into_iter()
            .find(|s| s.kind == ReuseKind::Delay && s.delta_s == vec![0, -1])
            .expect("delay solution");
        assert!(
            d_inner.depth < d_outer.depth,
            "inner {} vs outer {}",
            d_inner.depth,
            d_outer.depth
        );
    }
}
