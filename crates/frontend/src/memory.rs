//! Relation-based memory analysis (paper §IV-D).
//!
//! Data distribution switches let LEGO keep the L1 memory system decoupled
//! from the FU array: the only constraint is that concurrent accesses from
//! different data nodes never collide on a bank. Because all relations are
//! affine, the index difference between two data nodes is time-invariant,
//! so examining `t = 0` suffices (Equation 8). Banks per tensor dimension
//! follow Equation 9: `B_i = max|Δd_i| / gcd({|Δd_i|}) + 1`, with the GCD
//! folding strided accesses onto fewer banks.

use lego_ir::{Dataflow, TensorAccess};
use lego_linalg::{gcd_all, AffineMap};

/// Bank geometry of one tensor under one dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankShape {
    /// Banks per tensor dimension (`B_i`).
    pub counts: Vec<i64>,
    /// Stride divisor per dimension (`g_i` in `b_i = (d_i / g_i) mod B_i`).
    pub gcds: Vec<i64>,
}

impl BankShape {
    /// Total bank count (product over dimensions).
    pub fn total(&self) -> i64 {
        self.counts.iter().product()
    }

    /// Maps a tensor index to its bank coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches the shape.
    pub fn bank_of(&self, index: &[i64]) -> Vec<i64> {
        assert_eq!(index.len(), self.counts.len(), "bank_of: rank mismatch");
        index
            .iter()
            .zip(&self.counts)
            .zip(&self.gcds)
            .map(|((&d, &b), &g)| (d.div_euclid(g)).rem_euclid(b))
            .collect()
    }
}

/// Banked L1 plan for one tensor across all fused dataflows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Per-dataflow bank geometry.
    pub per_dataflow: Vec<BankShape>,
}

impl MemoryPlan {
    /// Physical banks needed by the fused design: the maximum bank count
    /// over dataflows (each dataflow views the pool in its own geometry, as
    /// in paper Figure 6c where 4 banks serve both 4×1 and 2×2 views).
    pub fn fused_banks(&self) -> i64 {
        self.per_dataflow
            .iter()
            .map(BankShape::total)
            .max()
            .unwrap_or(1)
    }
}

/// Computes the bank shape for one tensor under one dataflow given the FU
/// coordinates of its data nodes.
///
/// Follows §IV-D: evaluate the composed relation at `t = 0` for every data
/// node, collect per-dimension index deltas, and size banks by
/// `max|Δ| / gcd + 1`.
pub fn bank_shape(
    dataflow: &Dataflow,
    access: &TensorAccess,
    data_node_coords: &[Vec<i64>],
) -> BankShape {
    let f = dataflow.composed_map(access);
    let t_zero = vec![0i64; dataflow.temporal_sizes.len()];
    let indexes: Vec<Vec<i64>> = data_node_coords
        .iter()
        .map(|s| {
            let ts: Vec<i64> = t_zero.iter().chain(s).copied().collect();
            f.apply(&ts)
        })
        .collect();
    shape_from_indexes(&access.map, &indexes)
}

fn shape_from_indexes(map: &AffineMap, indexes: &[Vec<i64>]) -> BankShape {
    let nd = map.out_dim();
    let mut counts = vec![1i64; nd];
    let mut gcds = vec![1i64; nd];
    for dim in 0..nd {
        let mut deltas = Vec::new();
        for a in 0..indexes.len() {
            for b in a + 1..indexes.len() {
                let d = (indexes[a][dim] - indexes[b][dim]).abs();
                if d != 0 {
                    deltas.push(d);
                }
            }
        }
        if deltas.is_empty() {
            continue;
        }
        let g = gcd_all(&deltas).max(1);
        let max = deltas.iter().copied().max().unwrap_or(0);
        counts[dim] = max / g + 1;
        gcds[dim] = g;
    }
    BankShape { counts, gcds }
}

/// Checks Equation 8 directly: no two data nodes may hit the same bank at
/// the same timestamp. Exposed for tests and ablations.
pub fn conflict_free(
    dataflow: &Dataflow,
    access: &TensorAccess,
    data_node_coords: &[Vec<i64>],
    shape: &BankShape,
) -> bool {
    let f = dataflow.composed_map(access);
    let t_zero = vec![0i64; dataflow.temporal_sizes.len()];
    let mut seen = std::collections::HashSet::new();
    for s in data_node_coords {
        let ts: Vec<i64> = t_zero.iter().chain(s).copied().collect();
        let idx = f.apply(&ts);
        if !seen.insert(shape.bank_of(&idx)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_ir::kernels::{self, dataflows};

    #[test]
    fn figure6a_khoh_banking() {
        // Paper Figure 6(a): spatial [kh, oh] on a 2×2 array; data nodes
        // access X[0,0], X[1,0], X[2,0] at t=0 → 3 banks along IH, 1 along
        // IW.
        let conv = kernels::conv2d(1, 1, 1, 4, 4, 2, 2, 1);
        let df = dataflows::conv_khoh(&conv, 2, 2);
        let x = conv.access("X").unwrap();
        // Data nodes mirror the figure: (0,0), (1,0), (1,1) reach rows 0,1,2.
        let coords = vec![vec![0, 0], vec![1, 0], vec![1, 1]];
        let shape = bank_shape(&df, x, &coords);
        // X dims: [n, ic, ih, iw]; ih = oh + kh.
        assert_eq!(shape.counts, vec![1, 1, 3, 1]);
        assert!(conflict_free(&df, x, &coords, &shape));
    }

    #[test]
    fn figure6b_ohow_banking() {
        // Figure 6(b): spatial [ow, oh], 2×2 → 2×2 banks on (ih, iw).
        let conv = kernels::conv2d(1, 1, 1, 4, 4, 3, 3, 1);
        let df = dataflows::conv_ohow(&conv, 2);
        let x = conv.access("X").unwrap();
        let coords: Vec<Vec<i64>> = df.fu_coords();
        let shape = bank_shape(&df, x, &coords);
        assert_eq!(shape.counts, vec![1, 1, 2, 2]);
        assert!(conflict_free(&df, x, &coords, &shape));
    }

    #[test]
    fn fused_banks_take_maximum() {
        let plan = MemoryPlan {
            per_dataflow: vec![
                BankShape {
                    counts: vec![3, 1],
                    gcds: vec![1, 1],
                },
                BankShape {
                    counts: vec![2, 2],
                    gcds: vec![1, 1],
                },
            ],
        };
        // Figure 6(c): 3 banks vs 4 banks → fused pool of 4.
        assert_eq!(plan.fused_banks(), 4);
    }

    #[test]
    fn gcd_reduces_strided_banks() {
        // Strided access X[2i]: deltas {2, 4} → gcd 2 → 3 banks, not 5.
        let gemm = kernels::gemm(8, 2, 2);
        let df = lego_ir::DataflowBuilder::new(&gemm)
            .par("i", 3)
            .seq("i", 1)
            .build("strided")
            .unwrap_err(); // 3 does not divide 8 — construct a valid one:
        let _ = df;
        let gemm = kernels::gemm(9, 2, 2);
        let df = lego_ir::DataflowBuilder::new(&gemm)
            .par("i", 3)
            .build("i-par")
            .unwrap();
        let x = gemm.access("X").unwrap();
        // Data nodes at i ∈ {0, 1, 2}; X row index = i. Scale deltas by
        // choosing every other FU: {0, 2} → deltas {2} → gcd 2 → 2 banks.
        let coords = vec![vec![0], vec![2]];
        let shape = bank_shape(&df, x, &coords);
        assert_eq!(shape.counts[0], 2);
        assert_eq!(shape.gcds[0], 2);
        assert!(conflict_free(&df, x, &coords, &shape));
    }

    #[test]
    fn single_data_node_needs_one_bank() {
        let gemm = kernels::gemm(4, 4, 4);
        let df = dataflows::gemm_ij(&gemm, 2);
        let y = gemm.access("Y").unwrap();
        let shape = bank_shape(&df, y, &[vec![0, 0]]);
        assert_eq!(shape.total(), 1);
    }

    #[test]
    fn bank_of_handles_negative_indexes() {
        let shape = BankShape {
            counts: vec![4],
            gcds: vec![1],
        };
        assert_eq!(shape.bank_of(&[-1]), vec![3]);
        assert_eq!(shape.bank_of(&[7]), vec![3]);
    }
}
