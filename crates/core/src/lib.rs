//! The top-level LEGO generator API: workload + dataflows in, optimized
//! hardware out.
//!
//! This crate ties the front end (§IV), back end (§V), RTL emission, cost
//! model, and functional simulation together behind one builder:
//!
//! ```
//! use lego_core::Lego;
//! use lego_ir::kernels::{self, dataflows};
//!
//! let gemm = kernels::gemm(8, 4, 4);
//! let design = Lego::new(gemm.clone())
//!     .dataflow(dataflows::gemm_kj(&gemm, 2))
//!     .generate()
//!     .expect("generation succeeds");
//! assert_eq!(design.adg.num_fus, 4);
//! let verilog = design.verilog("gemm_top");
//! assert!(verilog.contains("module gemm_top"));
//! ```

use lego_backend::{lower, optimize, BackendConfig, Dag, OptimizeOptions, OptimizeReport};
use lego_eval::{EvalReport, EvalRequest, EvalSession};
use lego_explorer::{DesignSpace, ExplorationResult, ExploreOptions, ShardedExplorationResult};
use lego_frontend::{build_adg, Adg, FrontendConfig, FrontendError};
use lego_ir::{tensor::TensorData, Dataflow, Workload};
use lego_model::{dag_cost, DagCost, TechModel};
use lego_rtl::{emit_verilog, simulate, SimOutput};
use lego_workloads::Model;

/// Builder for generating a spatial accelerator from a tensor workload.
#[derive(Debug, Clone)]
pub struct Lego {
    workload: Workload,
    dataflows: Vec<Dataflow>,
    frontend: FrontendConfig,
    backend: BackendConfig,
    options: OptimizeOptions,
}

impl Lego {
    /// Starts a generation session for one workload.
    pub fn new(workload: Workload) -> Self {
        Lego {
            workload,
            dataflows: Vec::new(),
            frontend: FrontendConfig::default(),
            backend: BackendConfig::default(),
            options: OptimizeOptions::default(),
        }
    }

    /// Adds a spatial dataflow (call several times to fuse designs).
    #[must_use]
    pub fn dataflow(mut self, df: Dataflow) -> Self {
        self.dataflows.push(df);
        self
    }

    /// Overrides the front-end configuration.
    #[must_use]
    pub fn frontend_config(mut self, cfg: FrontendConfig) -> Self {
        self.frontend = cfg;
        self
    }

    /// Overrides the back-end configuration.
    #[must_use]
    pub fn backend_config(mut self, cfg: BackendConfig) -> Self {
        self.backend = cfg;
        self
    }

    /// Selects which optimization passes run.
    #[must_use]
    pub fn optimize_options(mut self, opts: OptimizeOptions) -> Self {
        self.options = opts;
        self
    }

    /// Prices one evaluation request through a one-shot [`EvalSession`] —
    /// the canonical workload-on-configuration evaluation of the stack.
    ///
    /// Sweeps that evaluate many requests should hold their own session
    /// (`EvalSession::new()`) so the memoized evaluation cache and worker
    /// pool are shared; this convenience exists for the single-question
    /// case ("what does ResNet50 cost on this configuration?").
    ///
    /// ```
    /// use lego_core::Lego;
    /// use lego_eval::EvalRequest;
    /// use lego_model::HwConfig;
    ///
    /// let report = Lego::evaluate(&EvalRequest::new(
    ///     lego_workloads::zoo::lenet(),
    ///     HwConfig::lego_256(),
    /// ));
    /// assert!(report.model.gops > 0.0);
    /// ```
    pub fn evaluate(request: &EvalRequest) -> EvalReport {
        EvalSession::new().evaluate(request)
    }

    /// Searches the joint hardware design space (array shape, L2 cluster
    /// grid, buffer, bandwidth, dataflow set, tiling) for `model` with the
    /// standard `lego-explorer` portfolio — exhaustive grid, seeded random
    /// sampling, and a (μ+λ) evolution strategy sharing one memoized cache.
    ///
    /// Every candidate is priced through one `lego_model::CostContext`
    /// (multi-cluster designs pay modeled L2-mesh latency and router
    /// area), and `opts.constraints` applies hard area/power feasibility
    /// budgets before a design may reach the frontier.
    ///
    /// This is the configuration-level complement of [`Lego::generate`]:
    /// explore first to pick a hardware configuration, then generate RTL
    /// for the winner's dataflows. `seed` makes the run reproducible.
    pub fn explore(
        model: &Model,
        space: &DesignSpace,
        seed: u64,
        opts: &ExploreOptions,
    ) -> ExplorationResult {
        let mut strategies = lego_explorer::default_strategies(seed);
        lego_explorer::explore(model, space, &mut strategies, opts)
    }

    /// Like [`Lego::explore`], but splits the space into `shards` disjoint
    /// slices (`DesignSpace::shard`), explores each with its own
    /// seed-split strategy portfolio on the worker thread pool, and merges
    /// the per-shard Pareto frontiers and evaluation caches — the
    /// in-process form of the distributed shard → checkpoint → merge
    /// workflow (each shard's result can be serialized with
    /// `ShardRunResult::snapshot` for the cross-process form). For a grid
    /// partition the merged frontier is dominance-equal to what
    /// [`Lego::explore`] finds in one process, provided
    /// `opts.budget_per_strategy` covers the whole space — the budget
    /// applies per shard, so a budget between `size/shards` and `size`
    /// leaves the shards exhaustive while the single process truncates.
    pub fn explore_sharded(
        model: &Model,
        space: &DesignSpace,
        shards: u32,
        seed: u64,
        opts: &ExploreOptions,
    ) -> ShardedExplorationResult {
        lego_explorer::explore_sharded(model, space, shards, seed, opts)
    }

    /// Runs the full pipeline: interconnect planning, memory synthesis,
    /// lowering, and back-end optimization.
    ///
    /// # Errors
    ///
    /// Propagates [`FrontendError`] for invalid dataflow combinations.
    pub fn generate(&self) -> Result<Design, FrontendError> {
        let adg = build_adg(&self.workload, &self.dataflows, &self.frontend)?;
        let mut dag = lower(&adg, &self.backend);
        let report = optimize(&mut dag, &self.options);
        Ok(Design { adg, dag, report })
    }
}

/// A generated accelerator design.
#[derive(Debug, Clone)]
pub struct Design {
    /// FU-level architecture description graph.
    pub adg: Adg,
    /// Optimized primitive-level graph.
    pub dag: Dag,
    /// Per-pass optimization statistics (Figures 13/14 raw data).
    pub report: OptimizeReport,
}

impl Design {
    /// Emits synthesizable Verilog for the design.
    pub fn verilog(&self, module: &str) -> String {
        emit_verilog(&self.dag, module)
    }

    /// ASIC/FPGA cost under a technology model.
    pub fn cost(&self, tech: &TechModel) -> DagCost {
        dag_cost(&self.dag, tech, 1.0)
    }

    /// Runs the edge-accurate functional simulation under one dataflow.
    ///
    /// # Panics
    ///
    /// Panics if `df` is out of range or inputs mismatch the workload.
    pub fn simulate(&self, df: usize, inputs: &[&TensorData]) -> SimOutput {
        simulate(&self.adg, df, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_ir::kernels::{self, dataflows};
    use lego_ir::tensor::reference_execute;

    #[test]
    fn end_to_end_generation_and_verification() {
        let gemm = kernels::gemm(8, 4, 4);
        let design = Lego::new(gemm.clone())
            .dataflow(dataflows::gemm_kj(&gemm, 2))
            .generate()
            .unwrap();
        design.dag.check().unwrap();

        let x = TensorData::from_fn(&[8, 4], |i| i as i64 % 7 - 3);
        let w = TensorData::from_fn(&[4, 4], |i| i as i64 % 5 - 2);
        let out = design.simulate(0, &[&x, &w]);
        let expect = reference_execute(&gemm, &[&x, &w]);
        assert_eq!(out.output, expect);

        let cost = design.cost(&TechModel::default());
        assert!(cost.area_um2 > 0.0);
    }

    #[test]
    fn fused_design_generates() {
        let gemm = kernels::gemm(8, 8, 8);
        let design = Lego::new(gemm.clone())
            .dataflow(dataflows::gemm_ij(&gemm, 2))
            .dataflow(dataflows::gemm_kj(&gemm, 2))
            .generate()
            .unwrap();
        assert_eq!(design.adg.dataflows.len(), 2);
        assert!(design.report.final_stats.register_bits <= design.report.baseline.register_bits);
    }

    #[test]
    fn explore_finds_a_design_for_lenet() {
        let result = Lego::explore(
            &lego_workloads::zoo::lenet(),
            &DesignSpace::tiny(),
            42,
            &lego_explorer::ExploreOptions {
                budget_per_strategy: 16,
                ..Default::default()
            },
        );
        assert!(result.best_by_edp().is_some());
        assert!(result.cache_hits > 0);
    }

    #[test]
    fn explore_sharded_agrees_with_single_process_grid() {
        let model = lego_workloads::zoo::lenet();
        let space = DesignSpace::tiny();
        // Budget covers the whole space, so the grid strategy inside each
        // portfolio is exhaustive over its shard and the union frontier
        // must be dominance-equal to the single-process one.
        let opts = lego_explorer::ExploreOptions::default();
        let single = Lego::explore(&model, &space, 42, &opts);
        let sharded = Lego::explore_sharded(&model, &space, 4, 42, &opts);
        assert!(sharded.frontier.dominance_equal(&single.frontier));
        assert_eq!(
            sharded.best_by_edp().unwrap().genome,
            single.best_by_edp().unwrap().genome
        );
        assert_eq!(sharded.shards.len(), 4);
    }

    #[test]
    fn baseline_options_respected() {
        let gemm = kernels::gemm(4, 4, 4);
        let design = Lego::new(gemm.clone())
            .dataflow(dataflows::gemm_ij(&gemm, 2))
            .optimize_options(OptimizeOptions::baseline())
            .generate()
            .unwrap();
        assert!(design.report.after_reduction.is_none());
    }
}
