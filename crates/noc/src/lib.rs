//! Network-on-chip models (paper §II): multi-stage butterfly and wormhole
//! mesh with X-Y routing.
//!
//! LEGO uses the L1 NoC for strided access and tensor transpose between L1
//! memories and the L2, and a wormhole NoC to scale beyond 1024 FUs by
//! tiling PEs (Table IV shows < 10 % overhead for the L2 NoC). Deadlock in
//! the mesh is prevented by dimension-ordered (X-Y) routing.

pub mod butterfly;
pub mod mesh;

pub use butterfly::Butterfly;
pub use mesh::{Mesh, XyRoute};

/// Kind of NoC instantiated at a given level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocKind {
    /// Multi-stage butterfly (L1 ↔ L2 distribution).
    Butterfly,
    /// 2D wormhole mesh with X-Y routing (L2 scale-out).
    Mesh,
}

/// Latency/energy summary of a modeled transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Cycles from head injection to tail delivery.
    pub cycles: u64,
    /// Router/link hops traversed.
    pub hops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(NocKind::Butterfly, NocKind::Mesh);
    }
}
