//! Multi-stage butterfly network.
//!
//! A radix-2 butterfly over `n = 2^k` endpoints has `k` stages of `n/2`
//! 2×2 switches. Any single source-destination pair is connected by a
//! unique path; the destination address bits directly encode the switch
//! settings, which is what makes the network cheap to control.

use crate::Transfer;

/// A radix-2 butterfly over `2^stages` endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Butterfly {
    stages: u32,
}

impl Butterfly {
    /// Creates a butterfly spanning at least `endpoints` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints == 0`.
    pub fn with_endpoints(endpoints: u64) -> Self {
        assert!(endpoints > 0, "butterfly needs at least one endpoint");
        let stages = (64 - (endpoints - 1).leading_zeros()).max(1);
        Butterfly { stages }
    }

    /// Number of switch stages.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> u64 {
        1 << self.stages
    }

    /// Number of 2×2 switches.
    pub fn switch_count(&self) -> u64 {
        u64::from(self.stages) * (self.endpoints() / 2)
    }

    /// The unique path: at stage `i` the packet exits on the i-th address
    /// bit of the destination (MSB first). Returns the per-stage output
    /// port (0/1).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn route(&self, _src: u64, dst: u64) -> Vec<u8> {
        assert!(dst < self.endpoints(), "destination out of range");
        (0..self.stages)
            .rev()
            .map(|bit| ((dst >> bit) & 1) as u8)
            .collect()
    }

    /// Models one transfer of `bytes` with the given link width.
    ///
    /// Pipeline latency = one cycle per stage; serialization = bytes over
    /// the link width.
    pub fn transfer(&self, bytes: u64, link_bytes: u64) -> Transfer {
        let ser = bytes.div_ceil(link_bytes.max(1));
        Transfer {
            cycles: u64::from(self.stages) + ser.max(1) - 1,
            hops: u64::from(self.stages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing() {
        let b = Butterfly::with_endpoints(16);
        assert_eq!(b.stages(), 4);
        assert_eq!(b.endpoints(), 16);
        assert_eq!(b.switch_count(), 32);
        // Non-power-of-two rounds up.
        assert_eq!(Butterfly::with_endpoints(9).endpoints(), 16);
    }

    #[test]
    fn route_bits_follow_destination() {
        let b = Butterfly::with_endpoints(8);
        assert_eq!(b.route(0, 0b101), vec![1, 0, 1]);
        assert_eq!(b.route(7, 0), vec![0, 0, 0]);
    }

    #[test]
    fn routes_reach_distinct_destinations() {
        // The port sequence uniquely determines the destination.
        let b = Butterfly::with_endpoints(16);
        let mut seen = std::collections::HashSet::new();
        for dst in 0..16 {
            assert!(seen.insert(b.route(3, dst)));
        }
    }

    #[test]
    fn transfer_latency() {
        let b = Butterfly::with_endpoints(16);
        let t = b.transfer(64, 16);
        assert_eq!(t.cycles, 4 + 3);
        assert_eq!(t.hops, 4);
    }
}
