//! 2D wormhole mesh with dimension-ordered (X-Y) routing.
//!
//! X-Y routing is deadlock-free because packets fully traverse the X
//! dimension before turning into Y: the channel dependency graph contains
//! no cycle (turns from Y back to X never occur). The test suite checks
//! that property explicitly by building the dependency graph.

use crate::Transfer;

/// A `cols × rows` wormhole mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    /// Columns (X extent).
    pub cols: u32,
    /// Rows (Y extent).
    pub rows: u32,
    /// Link width in bytes.
    pub link_bytes: u32,
    /// Per-hop router latency in cycles.
    pub hop_cycles: u32,
}

/// One hop of an X-Y route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XyRoute {
    /// Node sequence from source to destination (inclusive).
    pub path: Vec<(u32, u32)>,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics on zero extents.
    pub fn new(cols: u32, rows: u32, link_bytes: u32, hop_cycles: u32) -> Self {
        assert!(cols > 0 && rows > 0, "mesh extents must be positive");
        Mesh {
            cols,
            rows,
            link_bytes,
            hop_cycles,
        }
    }

    /// Number of routers.
    pub fn routers(&self) -> u64 {
        u64::from(self.cols) * u64::from(self.rows)
    }

    /// X-Y route: move along X to the destination column, then along Y.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is outside the mesh.
    pub fn route(&self, src: (u32, u32), dst: (u32, u32)) -> XyRoute {
        assert!(src.0 < self.cols && src.1 < self.rows, "src out of mesh");
        assert!(dst.0 < self.cols && dst.1 < self.rows, "dst out of mesh");
        let mut path = vec![src];
        let (mut x, mut y) = src;
        while x != dst.0 {
            x = if dst.0 > x { x + 1 } else { x - 1 };
            path.push((x, y));
        }
        while y != dst.1 {
            y = if dst.1 > y { y + 1 } else { y - 1 };
            path.push((x, y));
        }
        XyRoute { path }
    }

    /// Wormhole transfer: head latency = hops × hop_cycles, then the body
    /// streams at one flit per cycle.
    pub fn transfer(&self, src: (u32, u32), dst: (u32, u32), bytes: u64) -> Transfer {
        let hops = (self.route(src, dst).path.len() - 1) as u64;
        self.stream(hops, bytes)
    }

    /// A wormhole stream over a fixed hop count: head latency plus flit
    /// serialization at one flit per cycle.
    fn stream(&self, hops: u64, bytes: u64) -> Transfer {
        let flits = bytes.div_ceil(u64::from(self.link_bytes).max(1)).max(1);
        Transfer {
            cycles: hops * u64::from(self.hop_cycles) + flits - 1,
            hops,
        }
    }

    /// Longest X-Y route in the mesh (corner to corner).
    pub fn max_hops(&self) -> u64 {
        u64::from(self.cols - 1) + u64::from(self.rows - 1)
    }

    /// Multicast of one payload from the injection port to every router.
    ///
    /// The payload is serialized once at the port; links replicate flits in
    /// a multicast tree, so delivery completes when the tail reaches the
    /// farthest router: `max_hops` of head latency plus one flit per cycle.
    pub fn broadcast(&self, bytes: u64) -> Transfer {
        self.stream(self.max_hops(), bytes)
    }

    /// Scatter of disjoint per-router payloads totalling `bytes` from the
    /// injection port.
    ///
    /// Every flit crosses the shared injection link, so serialization covers
    /// the whole payload; the last packet still pays the worst-case head
    /// latency. A gather of the same total traffic is symmetric.
    pub fn scatter(&self, bytes: u64) -> Transfer {
        self.stream(self.max_hops(), bytes)
    }

    /// Exchange of `bytes` between adjacent clusters (halo traffic): a
    /// single-hop stream per boundary, overlapped across all boundaries.
    pub fn neighbor_exchange(&self, bytes: u64) -> Transfer {
        self.stream(1, bytes)
    }

    /// Average hop count under uniform random traffic (≈ (cols+rows)/3),
    /// used by the analytic energy model.
    pub fn mean_hops(&self) -> f64 {
        (f64::from(self.cols) + f64::from(self.rows)) / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_goes_x_first() {
        let m = Mesh::new(4, 4, 16, 1);
        let r = m.route((0, 0), (3, 2));
        assert_eq!(r.path.first(), Some(&(0, 0)));
        assert_eq!(r.path.last(), Some(&(3, 2)));
        // X strictly before Y: once Y changes, X must be final.
        let mut y_started = false;
        for w in r.path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.1 != b.1 {
                y_started = true;
            }
            if y_started {
                assert_eq!(a.0, 3, "X movement after Y turn");
            }
        }
    }

    #[test]
    fn transfer_latency_model() {
        let m = Mesh::new(4, 4, 16, 2);
        let t = m.transfer((0, 0), (3, 3), 64);
        assert_eq!(t.hops, 6);
        assert_eq!(t.cycles, 6 * 2 + 4 - 1);
    }

    #[test]
    fn xy_routing_is_deadlock_free() {
        // Build the channel dependency graph over all source/destination
        // pairs: a dependency exists when a route uses channel A then B.
        // X-Y routing must yield an acyclic dependency graph.
        let m = Mesh::new(3, 3, 8, 1);
        let chan_id = |a: (u32, u32), b: (u32, u32)| -> usize {
            let na = (a.1 * m.cols + a.0) as usize;
            let nb = (b.1 * m.cols + b.0) as usize;
            na * m.routers() as usize + nb
        };
        let n_chan = (m.routers() * m.routers()) as usize;
        let mut deps: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for sx in 0..3 {
            for sy in 0..3 {
                for dx in 0..3 {
                    for dy in 0..3 {
                        let r = m.route((sx, sy), (dx, dy));
                        for w in r.path.windows(3) {
                            deps.insert((chan_id(w[0], w[1]), chan_id(w[1], w[2])));
                        }
                    }
                }
            }
        }
        // Cycle detection over the dependency graph.
        let mut g = lego_noc_test_graph(n_chan, &deps);
        assert!(toposort_ok(&mut g), "channel dependency cycle found");
    }

    fn lego_noc_test_graph(
        n: usize,
        deps: &std::collections::HashSet<(usize, usize)>,
    ) -> (usize, Vec<(usize, usize)>) {
        (n, deps.iter().copied().collect())
    }

    fn toposort_ok((n, edges): &mut (usize, Vec<(usize, usize)>)) -> bool {
        let mut indeg = vec![0usize; *n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); *n];
        for &(a, b) in edges.iter() {
            indeg[b] += 1;
            adj[a].push(b);
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..*n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop_front() {
            seen += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        seen == *n
    }

    #[test]
    fn mean_hops_reasonable() {
        let m = Mesh::new(4, 5, 16, 1);
        assert!((m.mean_hops() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn collectives_pay_the_worst_case_head() {
        let m = Mesh::new(4, 4, 16, 2);
        assert_eq!(m.max_hops(), 6);
        // Broadcast and scatter both serialize at the injection port and
        // finish when the tail reaches the far corner.
        assert_eq!(m.broadcast(64).cycles, 6 * 2 + 4 - 1);
        assert_eq!(m.scatter(128).cycles, 6 * 2 + 8 - 1);
        // Halo exchange is a one-hop stream.
        assert_eq!(m.neighbor_exchange(32).cycles, 2 + 2 - 1);
        // A 1×1 "mesh" has no links to cross beyond serialization.
        let single = Mesh::new(1, 1, 16, 1);
        assert_eq!(single.broadcast(64).hops, 0);
    }
}
