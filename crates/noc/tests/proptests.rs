//! Property tests for the NoC latency models: mesh wormhole transfers are
//! monotone in hop count and payload size, and butterfly latency follows
//! the log2(ports) stage count.

use lego_noc::{Butterfly, Mesh};
use proptest::prelude::*;

proptest! {
    #[test]
    fn mesh_cycles_monotone_in_hop_count(
        cols in 1u32..=8,
        rows in 1u32..=8,
        hop_cycles in 1u32..=4,
        bytes in 1u64..4096,
        ax in 0u32..8, ay in 0u32..8,
        bx in 0u32..8, by in 0u32..8,
    ) {
        let m = Mesh::new(cols, rows, 16, hop_cycles);
        let a = (ax % cols, ay % rows);
        let b = (bx % cols, by % rows);
        let src = (0u32, 0u32);
        let ta = m.transfer(src, a, bytes);
        let tb = m.transfer(src, b, bytes);
        if ta.hops <= tb.hops {
            prop_assert!(ta.cycles <= tb.cycles, "{ta:?} vs {tb:?}");
        } else {
            prop_assert!(tb.cycles <= ta.cycles, "{tb:?} vs {ta:?}");
        }
    }

    #[test]
    fn mesh_cycles_monotone_in_payload(
        cols in 1u32..=8,
        rows in 1u32..=8,
        link in 1u32..=32,
        dx in 0u32..8, dy in 0u32..8,
        small in 1u64..2048,
        extra in 0u64..2048,
    ) {
        let m = Mesh::new(cols, rows, link, 1);
        let dst = (dx % cols, dy % rows);
        let a = m.transfer((0, 0), dst, small);
        let b = m.transfer((0, 0), dst, small + extra);
        prop_assert!(a.cycles <= b.cycles, "{a:?} vs {b:?}");
        prop_assert_eq!(a.hops, b.hops);
        // The collectives inherit both monotonicities.
        prop_assert!(m.broadcast(small).cycles <= m.broadcast(small + extra).cycles);
        prop_assert!(m.scatter(small).cycles <= m.scatter(small + extra).cycles);
    }

    #[test]
    fn butterfly_latency_is_log2_stages(
        log_ports in 1u32..=12,
        bytes in 1u64..4096,
        link in 1u64..=64,
    ) {
        // Power-of-two endpoint counts: stages must be exactly log2(ports)
        // and the pipeline latency one cycle per stage plus serialization.
        let ports = 1u64 << log_ports;
        let b = Butterfly::with_endpoints(ports);
        prop_assert_eq!(b.stages(), log_ports);
        prop_assert_eq!(b.endpoints(), ports);
        let t = b.transfer(bytes, link);
        let ser = bytes.div_ceil(link);
        prop_assert_eq!(t.cycles, u64::from(log_ports) + ser - 1);
        prop_assert_eq!(t.hops, u64::from(log_ports));
    }
}
