//! Structural models of the related generators (Tables VI, VII, VIII) and
//! the naive dataflow-fusion baseline (Table V).

use std::collections::BTreeMap;

use lego_backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego_frontend::{build_adg, Adg, FrontendConfig, FuEdge};
use lego_ir::{Dataflow, Workload};
use lego_model::{dag_cost, DagCost, TechModel};

/// Cost of a LEGO design with the shared control unit and full backend
/// optimization — the "LEGO" column of Tables VI and VIII.
pub fn shared_control_cost(
    workload: &Workload,
    dataflows: &[Dataflow],
    tech: &TechModel,
) -> DagCost {
    let adg = build_adg(workload, dataflows, &FrontendConfig::default()).expect("valid design");
    let mut dag = lower(&adg, &BackendConfig::default());
    optimize(&mut dag, &OptimizeOptions::default());
    dag_cost(&dag, tech, 1.0)
}

/// Cost of the same array generated AutoSA/TensorLib-style: the polyhedral
/// and STT representations treat the timestamp as global, so every FU
/// instantiates its own counters and address generators (paper §III-D), and
/// no LP register minimization runs beyond mandatory delay matching.
pub fn per_fu_control_cost(
    workload: &Workload,
    dataflows: &[Dataflow],
    tech: &TechModel,
) -> DagCost {
    let adg = build_adg(workload, dataflows, &FrontendConfig::default()).expect("valid design");
    let mut dag = lower(
        &adg,
        &BackendConfig {
            per_fu_control: true,
            ..Default::default()
        },
    );
    optimize(&mut dag, &OptimizeOptions::baseline());
    dag_cost(&dag, tech, 1.0)
}

/// DSAGen-style CGRA cost: LEGO's datapath plus a flexible switch fabric
/// (an 8-input 32-bit crossbar and a route-table register file per FU),
/// which is what buys its reconfigurability (Table VI: ≈2.4× area, ≈2.6×
/// power over LEGO).
pub fn dsagen_cost(
    workload: &Workload,
    dataflows: &[Dataflow],
    num_fus: usize,
    tech: &TechModel,
) -> DagCost {
    let mut cost = shared_control_cost(workload, dataflows, tech);
    // Per-FU switch: 8-to-1 × 32-bit mux fabric (in and out) + 64-bit route
    // table + 4× 32-bit pipeline registers at the switch boundary.
    let per_fu_area = 2.0 * 8.0 * 32.0 * tech.mux_area_um2_per_bit
        + 64.0 * tech.ff_area_um2
        + 4.0 * 32.0 * tech.ff_area_um2;
    let per_fu_dyn =
        2.0 * 8.0 * 32.0 * tech.add_energy_pj_per_bit * 0.2 + (64.0 + 128.0) * tech.ff_energy_pj;
    cost.area_um2 += num_fus as f64 * per_fu_area;
    cost.dynamic_mw += num_fus as f64 * per_fu_dyn * tech.freq_ghz;
    cost.static_mw += num_fus as f64 * per_fu_area * tech.static_uw_per_um2 / 1000.0;
    cost.ff_bits += num_fus as f64 * (64.0 + 128.0);
    cost.fpga.ff += num_fus as f64 * (64.0 + 128.0);
    cost.fpga.lut += num_fus as f64 * 8.0 * 32.0;
    cost
}

/// Naive dataflow fusion (Table V's "Simply Merged" column): take each
/// dataflow's standalone interconnect plan and union the edges and data
/// nodes with muxes, skipping the chain-merging heuristic of §IV-C.
pub fn naive_fusion_adg(workload: &Workload, dataflows: &[Dataflow]) -> Adg {
    let cfg = FrontendConfig::default();
    let solos: Vec<Adg> = dataflows
        .iter()
        .map(|df| build_adg(workload, std::slice::from_ref(df), &cfg).expect("valid solo design"))
        .collect();
    let fused = build_adg(workload, dataflows, &cfg).expect("valid fused design");

    // "Naive design fusion with multiplexers" (paper §IV-C): every
    // dataflow keeps its own physical connections and FIFOs; the merge only
    // muxes them at the FU pins. No wire, FIFO, or data node is shared
    // across configurations — exactly what the chain-merging heuristic
    // exists to avoid.
    let n_df = dataflows.len();
    let mut edges: Vec<FuEdge> = Vec::new();
    for (k, solo) in solos.iter().enumerate() {
        for e in &solo.edges {
            let mut depth_per_df = vec![None; n_df];
            depth_per_df[k] = Some(e.max_depth());
            edges.push(FuEdge {
                tensor: e.tensor.clone(),
                from: e.from,
                to: e.to,
                depth_per_df,
            });
        }
    }

    // Union of data nodes, and per-dataflow memory plans from the solos.
    let tensors = fused
        .tensors
        .iter()
        .map(|plan| {
            let mut nodes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (k, solo) in solos.iter().enumerate() {
                let sp = solo.tensor_plan(&plan.tensor).expect("same tensors");
                for dn in &sp.data_nodes {
                    nodes.entry(dn.fu).or_default().push(k);
                }
            }
            lego_frontend::TensorPlan {
                tensor: plan.tensor.clone(),
                role: plan.role,
                data_nodes: nodes
                    .into_iter()
                    .map(|(fu, active_in)| lego_frontend::DataNode { fu, active_in })
                    .collect(),
                memory: lego_frontend::MemoryPlan {
                    per_dataflow: solos
                        .iter()
                        .map(|s| {
                            s.tensor_plan(&plan.tensor)
                                .expect("same tensors")
                                .memory
                                .per_dataflow[0]
                                .clone()
                        })
                        .collect(),
                },
                stationary_in: plan.stationary_in.clone(),
            }
        })
        .collect();

    Adg {
        workload: workload.clone(),
        dataflows: dataflows.to_vec(),
        num_fus: fused.num_fus,
        edges,
        tensors,
    }
}

/// SODA-toolchain comparison point (Table VII): an HLS-scheduled datapath
/// at FreePDK 45 nm / 500 MHz. The HLS pipeline re-fetches operands through
/// a global interface and stalls on loop-carried dependences, which caps
/// achieved throughput at a few percent of peak; area carries the generic
/// load/store plumbing. Returns `(gflops, gflops_per_watt, area_mm2)`.
pub fn soda_perf(model: &lego_workloads::Model) -> (f64, f64, f64) {
    // 16 lanes at 500 MHz, ~5.5% sustained (memory-port serialization).
    let peak_gflops = 16.0 * 2.0 * 0.5;
    let sustained = peak_gflops * 0.055;
    // Power: mostly interface/control, ~0.27 W independent of model size.
    let watts = 0.22 + 0.10 * (model.total_macs() as f64 / 4.0e9).min(1.0);
    (sustained, sustained / watts, 0.61)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_ir::kernels::{self, dataflows};

    #[test]
    fn per_fu_control_is_much_heavier() {
        // Table VIII's shape: AutoSA's per-FU control costs several times
        // the FF/LUT of LEGO's shared control on the same 8×8 GEMM.
        let gemm = kernels::gemm(64, 64, 64);
        let df = dataflows::gemm_ij(&gemm, 8);
        let t = TechModel::default();
        let lego = shared_control_cost(&gemm, std::slice::from_ref(&df), &t);
        let autosa = per_fu_control_cost(&gemm, &[df], &t);
        let ratio = autosa.fpga.ff / lego.fpga.ff;
        assert!(ratio > 3.0, "FF ratio {ratio}");
        assert!(autosa.fpga.lut > 2.0 * lego.fpga.lut);
    }

    #[test]
    fn dsagen_overhead_in_paper_band() {
        let gemm = kernels::gemm(64, 64, 64);
        let df = dataflows::gemm_ij(&gemm, 8);
        let t = TechModel::default();
        let lego = shared_control_cost(&gemm, std::slice::from_ref(&df), &t);
        let dsa = dsagen_cost(&gemm, &[df], 64, &t);
        let area_ratio = dsa.area_um2 / lego.area_um2;
        let power_ratio = dsa.total_mw() / lego.total_mw();
        assert!((1.5..4.5).contains(&area_ratio), "area ratio {area_ratio}");
        assert!(power_ratio > 1.3, "power ratio {power_ratio}");
    }

    #[test]
    fn naive_fusion_is_not_cheaper_than_heuristic() {
        let gemm = kernels::gemm(8, 8, 8);
        let dfs = vec![dataflows::gemm_ij(&gemm, 2), dataflows::gemm_kj(&gemm, 2)];
        let heuristic = build_adg(&gemm, &dfs, &FrontendConfig::default()).unwrap();
        let naive = naive_fusion_adg(&gemm, &dfs);
        assert!(
            naive.edges.len() >= heuristic.edges.len(),
            "naive {} vs heuristic {}",
            naive.edges.len(),
            heuristic.edges.len()
        );
        assert!(naive.data_node_count() >= heuristic.data_node_count());
    }

    #[test]
    fn soda_is_slow_but_positive() {
        let (gflops, eff, area) = soda_perf(&lego_workloads::zoo::lenet());
        assert!(gflops > 0.3 && gflops < 2.0);
        assert!(eff > 1.0 && eff < 10.0);
        assert!(area > 0.0);
    }
}
