//! Gemmini-style weight-stationary systolic baseline.
//!
//! Gemmini (DAC'21) generates a 16×16 systolic array with two templates
//! (output/weight stationary) and a fixed interconnect: the contraction
//! dimension maps to rows and output channels to columns. Convolutions run
//! through im2col. There is no output-plane dataflow, so depthwise
//! convolutions collapse to ~1/16 column utilization — the effect behind
//! MobileNetV2's gap in the paper's Figure 11. Non-tensor operators run on
//! the host and are *excluded* from its cycle counts, matching the paper's
//! methodology ("only counting the #cycles of the tensor kernel itself").

use lego_model::{CostContext, TechModel};
use lego_sim::{aggregate, simulate_layer_ctx, HwConfig, LayerPerf, ModelPerf, SpatialMapping};
use lego_workloads::Model;

/// The Gemmini-comparable hardware configuration.
pub fn gemmini_hw() -> HwConfig {
    HwConfig {
        array: (16, 16),
        clusters: (1, 1),
        buffer_kb: 256,
        dram_gbps: 16.0,
        num_ppus: 1,
        // Fixed systolic dataflow: contraction on rows, outputs on columns.
        dataflows: vec![SpatialMapping::GemmKN],
        static_mw: 50.0,
        dynamic_mw: 250.0,
    }
}

/// Dataflow-rigidity and scheduling overhead of the template design:
/// per-tile fill/drain of the 16-deep systolic pipe plus mvin/mvout
/// serialization that LEGO's decoupled distribution switches avoid.
const SCHEDULING_OVERHEAD: f64 = 1.22;

/// Simulates one layer on the Gemmini baseline.
pub fn simulate_layer_gemmini(layer: &lego_workloads::Layer, tech: &TechModel) -> LayerPerf {
    let hw = gemmini_hw();
    // Host handles non-tensor work; strip it for the kernel-only count.
    let mut kernel_only = layer.clone();
    kernel_only.nonlinear.clear();
    let ctx = CostContext::new(hw.clone(), *tech);
    let mut perf = simulate_layer_ctx(&kernel_only, SpatialMapping::GemmKN, &ctx, None);

    // Convolutions run through im2col: the expanded activation matrix is
    // materialized through the scratchpad (written once, read once), losing
    // LEGO's halo reuse. Depthwise additionally decomposes into per-channel
    // GEMMs, each paying the 16-deep fill/drain and mvin/mvout latency.
    use lego_workloads::LayerKind;
    let (extra_bytes, instances) = match layer.kind {
        LayerKind::Conv {
            n,
            ic,
            oh,
            ow,
            kh,
            kw,
            ..
        } => {
            let im2col = n * oh * ow * ic * kh * kw;
            (
                2 * (im2col - layer.input_elems().min(im2col)),
                n * div_ceil(oh * ow, 256),
            )
        }
        LayerKind::DwConv {
            n,
            c,
            oh,
            ow,
            kh,
            kw,
            ..
        } => {
            let im2col = n * c * oh * ow * kh * kw;
            (2 * im2col, n * c * div_ceil(oh * ow, 256))
        }
        LayerKind::Gemm { m, n, k } => (0, div_ceil(m, 16) * div_ceil(n, 16) * div_ceil(k, 16) / 8),
        LayerKind::Attention { heads, seq_q, .. } => (0, heads * div_ceil(seq_q, 16)),
    };
    // The host CPU performs the im2col expansion; it moves data at a
    // fraction of DRAM stream bandwidth (load + index arithmetic + store).
    let bytes_per_cycle = hw.dram_gbps / tech.freq_ghz / 4.0;
    let im2col_cycles = (extra_bytes as f64 / bytes_per_cycle).ceil() as i64;
    let setup_cycles = instances * 48; // fill + drain + mvin per tile batch

    perf.cycles =
        (perf.cycles as f64 * SCHEDULING_OVERHEAD).ceil() as i64 + im2col_cycles + setup_cycles;
    perf.dram_bytes += extra_bytes;
    perf.energy.dram_pj += extra_bytes as f64 * tech.dram_pj_per_byte;
    perf.energy.static_pj = hw.static_mw * perf.cycles as f64 / tech.freq_ghz;
    perf.utilization = perf.macs as f64 / (256.0 * perf.cycles.max(1) as f64);
    perf
}

fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Simulates a whole model on the Gemmini baseline.
pub fn simulate_model_gemmini(model: &Model, tech: &TechModel) -> ModelPerf {
    let perfs: Vec<(i64, LayerPerf)> = model
        .layers
        .iter()
        .map(|l| (l.count, simulate_layer_gemmini(l, tech)))
        .collect();
    aggregate(model, &perfs, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_eval::{EvalRequest, EvalSession};
    use lego_workloads::zoo;

    /// LEGO-side reference numbers, through the canonical session API.
    fn simulate_model(m: &Model, hw: &HwConfig, tech: &TechModel) -> ModelPerf {
        EvalSession::new()
            .evaluate(&EvalRequest::new(m.clone(), hw.clone()).with_tech(*tech))
            .model
    }

    #[test]
    fn lego_beats_gemmini_on_every_figure11_model() {
        let tech = TechModel::default();
        let lego = HwConfig::lego_256();
        for m in zoo::figure11_models() {
            let g = simulate_model_gemmini(&m, &tech);
            let l = simulate_model(&m, &lego, &tech);
            assert!(
                l.gops >= g.gops,
                "{}: LEGO {} vs Gemmini {} GOP/s",
                m.name,
                l.gops,
                g.gops
            );
        }
    }

    #[test]
    fn mobilenet_gap_is_large() {
        // Figure 11's standout: depthwise layers crush the fixed dataflow.
        let tech = TechModel::default();
        let m = zoo::mobilenet_v2();
        let g = simulate_model_gemmini(&m, &tech);
        let l = simulate_model(&m, &HwConfig::lego_256(), &tech);
        assert!(
            l.gops > 4.0 * g.gops,
            "expected a large MobileNetV2 gap: {} vs {}",
            l.gops,
            g.gops
        );
    }

    #[test]
    fn gpt2_is_memory_bound_for_both() {
        // Figure 11: "Both Gemmini and LEGO are bounded by memory bandwidth
        // on GPT2" — neither should get anywhere near peak (512 GOP/s).
        let tech = TechModel::default();
        let m = zoo::gpt2_decode();
        let g = simulate_model_gemmini(&m, &tech);
        let l = simulate_model(&m, &HwConfig::lego_256(), &tech);
        assert!(g.gops < 80.0, "Gemmini GPT-2 {}", g.gops);
        assert!(l.gops < 80.0, "LEGO GPT-2 {}", l.gops);
        assert!(
            l.gops < 3.5 * g.gops,
            "gap should be modest when DRAM-bound"
        );
    }
}
