//! Baseline systems the paper compares against (§VI).
//!
//! * [`gemmini`] — an analytic model of Gemmini's 16×16 weight-stationary
//!   systolic array (256 MACs, 256 KB scratchpad, 16 GB/s — the paper's
//!   "fair comparison" configuration). Its fixed dataflow is what LEGO's
//!   switchable dataflows beat, most dramatically on depthwise layers.
//! * [`structural`] — structural models of the related generators. Their
//!   overheads are *mechanistic*, not fudge factors: AutoSA/TensorLib
//!   replicate control (counters + address generators) per FU, DSAGen adds
//!   a flexible switch fabric per FU, SODA's HLS pipeline stalls on memory;
//!   we build those structures with the same backend and count them.

pub mod gemmini;
pub mod structural;

pub use gemmini::{gemmini_hw, simulate_model_gemmini};
pub use structural::{
    dsagen_cost, naive_fusion_adg, per_fu_control_cost, shared_control_cost, soda_perf,
};
