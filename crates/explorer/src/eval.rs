//! Candidate evaluation: genome → objectives, in parallel, through the
//! shared session.
//!
//! The explorer does not price hardware itself — it owns the *search*
//! (genomes, constraints, frontiers) and routes every evaluation through
//! one [`EvalSession`] from `lego-eval`, the same request/response layer
//! the bench harness and the facade speak. The session owns the
//! `CostContext`, the memoized [`EvalCache`], and the
//! worker pool; the evaluator adds the genome↔request translation and the
//! feasibility check.

use crate::pareto::{Constraints, Objective};
use crate::space::Genome;
use lego_eval::{EvalCache, EvalRequestRef, EvalSession, Objectives};
use lego_model::{SparseHw, TechModel};
use lego_obs::Obs;
use lego_sim::{LayerPerf, ModelPerf};
use lego_workloads::Model;

/// One fully evaluated candidate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The hardware configuration genome.
    pub genome: Genome,
    /// Latency / energy / area scores.
    pub objectives: Objectives,
    /// The underlying whole-model simulation result.
    pub perf: ModelPerf,
    /// Peak power draw (static + full-activity dynamic) in mW — the
    /// quantity power budgets constrain.
    pub peak_power_mw: f64,
    /// Whether the design fits the evaluator's [`Constraints`].
    pub feasible: bool,
}

/// Evaluates genomes against one target model.
///
/// Wraps an [`EvalSession`] (which owns the shared [`EvalCache`] and the
/// `std::thread` worker pool): a genome is materialized into a borrowed
/// request view keyed by [`Genome::key`], so session cache entries line up
/// with snapshot checkpoints and warm-started caches. Evaluation is pure,
/// so batches return in input order and the whole exploration is
/// deterministic regardless of thread interleaving.
pub struct Evaluator<'m> {
    model: &'m Model,
    /// Memoized `lego_eval::layer_key` per model layer: the model is fixed
    /// for the evaluator's lifetime, so layer shapes are hashed once here
    /// instead of once per genome evaluation.
    layer_keys: Box<[u64]>,
    tech: TechModel,
    session: EvalSession,
    constraints: Constraints,
    objective: Objective,
}

impl<'m> Evaluator<'m> {
    /// Evaluator for `model` with a fresh session (empty cache, automatic
    /// thread count).
    pub fn new(model: &'m Model, tech: TechModel) -> Self {
        Evaluator {
            model,
            layer_keys: model.layers.iter().map(lego_eval::layer_key).collect(),
            tech,
            session: EvalSession::new(),
            constraints: Constraints::none(),
            objective: Objective::EDP,
        }
    }

    /// Overrides the worker-pool width (0 means one thread).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.session = self.session.with_threads(threads);
        self
    }

    /// Attaches an observability handle; it is forwarded to the underlying
    /// [`EvalSession`], so every genome evaluation records the session's
    /// per-phase spans and cache counters, and the strategies record
    /// search-level series (`explore.evals`, `explore/generation`).
    /// Instrumentation never changes search results.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.session = self.session.with_obs(obs);
        self
    }

    /// The observability handle evaluations and strategies record into.
    pub fn obs(&self) -> &Obs {
        self.session.obs()
    }

    /// Applies hard feasibility budgets to every evaluation.
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// The active feasibility budgets.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Sets the scalarization strategies minimize (default: plain EDP).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// The active scalarization.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Scores a point under the active scalarization (lower is better).
    pub fn score(&self, point: &DesignPoint) -> f64 {
        self.objective.score(&point.objectives, point.peak_power_mw)
    }

    /// The full ranking key of a point (lower is better, compared
    /// lexicographically). For scalar objectives this ranks exactly like
    /// [`score`](Evaluator::score); for [`Objective::Lexicographic`] it
    /// carries the latency → energy → area tie-break chain.
    pub fn key(&self, point: &DesignPoint) -> [f64; 3] {
        self.objective.key(&point.objectives, point.peak_power_mw)
    }

    /// The target model.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The underlying evaluation session.
    pub fn session(&self) -> &EvalSession {
        &self.session
    }

    /// The shared memo table.
    pub fn cache(&self) -> &EvalCache {
        self.session.cache()
    }

    /// Preloads the session cache with entries from a previous run —
    /// typically a merged snapshot's cache
    /// ([`ExploreOptions::warm_cache`](crate::ExploreOptions)). Returns
    /// the number of entries actually added (resident entries win
    /// collisions).
    pub fn warm_cache<I: IntoIterator<Item = ((u64, u64), LayerPerf)>>(&self, entries: I) -> usize {
        self.session.warm_cache(entries)
    }

    /// Evaluates one genome through the session, memoizing every per-layer
    /// simulation under the genome's stable fingerprint.
    ///
    /// The genome's `CostContext` is built once per evaluation and
    /// threaded through every per-layer simulation, the area roll-up
    /// (which includes L2 router area for multi-cluster designs), and the
    /// peak-power figure the feasibility budgets check — all inside
    /// [`EvalSession::evaluate_view`].
    pub fn eval(&self, genome: &Genome) -> DesignPoint {
        let hw = genome.to_hw_config();
        let report = self.session.evaluate_view(EvalRequestRef {
            workload: self.model,
            hw: &hw,
            sparse: SparseHw::with_accel(genome.sparse),
            tech: self.tech,
            objective: self.objective,
            tile_cap: genome.tile_cap,
            hw_key: Some(genome.key()),
            layer_keys: Some(&self.layer_keys),
        });
        DesignPoint {
            genome: *genome,
            feasible: self
                .constraints
                .admits(report.cost.objectives.area_um2, report.cost.peak_power_mw),
            objectives: report.cost.objectives,
            perf: report.model,
            peak_power_mw: report.cost.peak_power_mw,
        }
    }

    /// Evaluates a batch on the session's worker pool; results come back
    /// in input order.
    pub fn eval_batch(&self, genomes: &[Genome]) -> Vec<DesignPoint> {
        self.session.run_batch(genomes, |g| self.eval(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_model::CostContext;
    use lego_sim::HwConfig;
    use lego_workloads::zoo;

    #[test]
    fn baseline_matches_direct_simulation() {
        let model = zoo::mobilenet_v2();
        let tech = TechModel::default();
        let ev = Evaluator::new(&model, tech);
        let point = ev.eval(&Genome::lego_256_baseline());
        let direct =
            lego_mapper::map_model_ctx(&model, &CostContext::new(HwConfig::lego_256(), tech), None);
        assert_eq!(point.perf.cycles, direct.perf.cycles);
        assert!((point.perf.gops - direct.perf.gops).abs() < 1e-9);
        assert!(point.objectives.area_um2 > 0.0);
        assert!(point.objectives.energy_pj > 0.0);
    }

    #[test]
    fn eval_batch_is_deterministic_and_ordered() {
        let model = zoo::lenet();
        let mut rng = crate::rng::SplitMix64::new(5);
        let space = crate::space::DesignSpace::tiny();
        let genomes: Vec<Genome> = (0..12).map(|_| space.sample(&mut rng)).collect();
        let ev_par = Evaluator::new(&model, TechModel::default()).with_threads(4);
        let ev_seq = Evaluator::new(&model, TechModel::default()).with_threads(1);
        let par = ev_par.eval_batch(&genomes);
        let seq = ev_seq.eval_batch(&genomes);
        assert_eq!(par.len(), genomes.len());
        for ((p, s), g) in par.iter().zip(&seq).zip(&genomes) {
            assert_eq!(p.genome, *g);
            assert_eq!(p.perf.cycles, s.perf.cycles);
            assert!((p.objectives.edp() - s.objectives.edp()).abs() < 1e-6);
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        // ResNet50 repeats bottleneck shapes: a second eval of the same
        // genome must be answered entirely from the cache.
        let model = zoo::resnet50();
        let ev = Evaluator::new(&model, TechModel::default());
        let g = Genome::lego_256_baseline();
        ev.eval(&g);
        let misses_after_first = ev.cache().misses();
        ev.eval(&g);
        assert_eq!(ev.cache().misses(), misses_after_first);
        assert!(ev.cache().hits() > 0);
    }

    #[test]
    fn warm_cache_from_a_different_tech_model_never_lies() {
        // Genome fingerprints hash only genome fields, but the session
        // folds the technology model into its cache keys — so entries
        // checkpointed under one tech can never be served as another
        // tech's results.
        let model = zoo::lenet();
        let g = Genome::lego_256_baseline();
        let t28 = Evaluator::new(&model, TechModel::default());
        let p28 = t28.eval(&g);
        let t45 = Evaluator::new(&model, TechModel::default().scaled_to(45.0));
        assert!(t45.warm_cache(t28.cache().entries()) > 0);
        let p45 = t45.eval(&g);
        assert!(t45.cache().misses() > 0, "foreign-tech entries must miss");
        assert_ne!(
            p45.perf.cycles, p28.perf.cycles,
            "45 nm pricing must be recomputed, not replayed from 28 nm"
        );
    }

    #[test]
    fn warm_cache_answers_without_simulating() {
        let model = zoo::lenet();
        let g = Genome::lego_256_baseline();
        let first = Evaluator::new(&model, TechModel::default());
        let point = first.eval(&g);
        // A fresh evaluator warmed with the first one's entries answers
        // the same genome entirely from the cache — and identically.
        let second = Evaluator::new(&model, TechModel::default());
        assert!(second.warm_cache(first.cache().entries()) > 0);
        let again = second.eval(&g);
        assert_eq!(second.cache().misses(), 0);
        assert_eq!(again.perf, point.perf);
        assert_eq!(again.objectives, point.objectives);
    }
}
