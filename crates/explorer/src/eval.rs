//! Candidate evaluation: genome → objectives, in parallel, through the
//! shared cache.

use crate::cache::{layer_key, EvalCache};
use crate::pareto::{Constraints, Objective, Objectives};
use crate::space::Genome;
use lego_mapper::map_model_with;
use lego_model::{CostContext, SparseHw, SramModel, TechModel};
use lego_sim::{best_mapping_ctx, ModelPerf};
use lego_workloads::Model;
use std::sync::mpsc;
use std::sync::Mutex;

/// One fully evaluated candidate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The hardware configuration genome.
    pub genome: Genome,
    /// Latency / energy / area scores.
    pub objectives: Objectives,
    /// The underlying whole-model simulation result.
    pub perf: ModelPerf,
    /// Peak power draw (static + full-activity dynamic) in mW — the
    /// quantity power budgets constrain.
    pub peak_power_mw: f64,
    /// Whether the design fits the evaluator's [`Constraints`].
    pub feasible: bool,
}

/// Evaluates genomes against one target model.
///
/// Owns the [`EvalCache`] all strategies share, and a `std::thread` worker
/// pool (fed over channels) for batch evaluation. Evaluation is pure, so
/// batches return in input order and the whole exploration is deterministic
/// regardless of thread interleaving.
pub struct Evaluator<'m> {
    model: &'m Model,
    tech: TechModel,
    sram: SramModel,
    cache: EvalCache,
    threads: usize,
    constraints: Constraints,
    objective: Objective,
}

impl<'m> Evaluator<'m> {
    /// Evaluator for `model` with a fresh cache and an automatic thread
    /// count.
    pub fn new(model: &'m Model, tech: TechModel) -> Self {
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(8);
        Evaluator {
            model,
            tech,
            sram: SramModel::default(),
            cache: EvalCache::new(),
            threads,
            constraints: Constraints::none(),
            objective: Objective::EDP,
        }
    }

    /// Overrides the worker-pool width (0 means one thread).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Applies hard feasibility budgets to every evaluation.
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// The active feasibility budgets.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Sets the scalarization strategies minimize (default: plain EDP).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// The active scalarization.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Scores a point under the active scalarization (lower is better).
    pub fn score(&self, point: &DesignPoint) -> f64 {
        self.objective.score(point)
    }

    /// The target model.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The shared memo table.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Evaluates one genome, memoizing every per-layer simulation.
    ///
    /// The genome's [`CostContext`] is built once and threaded through
    /// every per-layer simulation, the area roll-up (which includes L2
    /// router area for multi-cluster designs), and the peak-power figure
    /// the feasibility budgets check.
    pub fn eval(&self, genome: &Genome) -> DesignPoint {
        let ctx = CostContext::new(genome.to_hw_config(), self.tech)
            .with_sram(self.sram)
            .with_sparse(SparseHw::with_accel(genome.sparse));
        let hw_key = genome.key();
        let mapping = map_model_with(self.model, &self.tech, |layer| {
            self.cache.get_or_compute(hw_key, layer_key(layer), || {
                best_mapping_ctx(layer, &ctx, genome.tile_cap)
            })
        });
        let latency_cycles = mapping.perf.cycles as f64;
        let time_s = latency_cycles / (self.tech.freq_ghz * 1e9);
        let energy_pj = mapping.perf.watts * time_s * 1e12;
        // Memory banked per array edge so wider arrays get more ports.
        let banks = (ctx.hw.array.0 + ctx.hw.array.1).max(1) as u64;
        let area = ctx.area(banks);
        let peak_power_mw = ctx.peak_power_mw();
        let objectives = Objectives {
            latency_cycles,
            energy_pj,
            area_um2: area.total_um2(),
        };
        DesignPoint {
            genome: *genome,
            feasible: self.constraints.admits(objectives.area_um2, peak_power_mw),
            objectives,
            perf: mapping.perf,
            peak_power_mw,
        }
    }

    /// Evaluates a batch on the worker pool; results come back in input
    /// order.
    pub fn eval_batch(&self, genomes: &[Genome]) -> Vec<DesignPoint> {
        if genomes.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(genomes.len()).max(1);
        if workers == 1 {
            return genomes.iter().map(|g| self.eval(g)).collect();
        }
        let (task_tx, task_rx) = mpsc::channel::<(usize, Genome)>();
        for (i, g) in genomes.iter().enumerate() {
            task_tx.send((i, *g)).expect("queue open");
        }
        drop(task_tx);
        let task_rx = Mutex::new(task_rx);
        let (result_tx, result_rx) = mpsc::channel::<(usize, DesignPoint)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let result_tx = result_tx.clone();
                let task_rx = &task_rx;
                scope.spawn(move || loop {
                    let task = task_rx.lock().expect("task queue poisoned").recv();
                    match task {
                        Ok((i, genome)) => {
                            if result_tx.send((i, self.eval(&genome))).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(result_tx);
            let mut out: Vec<Option<DesignPoint>> = vec![None; genomes.len()];
            for (i, point) in result_rx.iter() {
                out[i] = Some(point);
            }
            out.into_iter()
                .map(|p| p.expect("every task produced a result"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sim::HwConfig;
    use lego_workloads::zoo;

    #[test]
    fn baseline_matches_direct_simulation() {
        let model = zoo::mobilenet_v2();
        let tech = TechModel::default();
        let ev = Evaluator::new(&model, tech);
        let point = ev.eval(&Genome::lego_256_baseline());
        let direct = lego_mapper::map_model(&model, &HwConfig::lego_256(), &tech);
        assert_eq!(point.perf.cycles, direct.perf.cycles);
        assert!((point.perf.gops - direct.perf.gops).abs() < 1e-9);
        assert!(point.objectives.area_um2 > 0.0);
        assert!(point.objectives.energy_pj > 0.0);
    }

    #[test]
    fn eval_batch_is_deterministic_and_ordered() {
        let model = zoo::lenet();
        let mut rng = crate::rng::SplitMix64::new(5);
        let space = crate::space::DesignSpace::tiny();
        let genomes: Vec<Genome> = (0..12).map(|_| space.sample(&mut rng)).collect();
        let ev_par = Evaluator::new(&model, TechModel::default()).with_threads(4);
        let ev_seq = Evaluator::new(&model, TechModel::default()).with_threads(1);
        let par = ev_par.eval_batch(&genomes);
        let seq = ev_seq.eval_batch(&genomes);
        assert_eq!(par.len(), genomes.len());
        for ((p, s), g) in par.iter().zip(&seq).zip(&genomes) {
            assert_eq!(p.genome, *g);
            assert_eq!(p.perf.cycles, s.perf.cycles);
            assert!((p.objectives.edp() - s.objectives.edp()).abs() < 1e-6);
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        // ResNet50 repeats bottleneck shapes: a second eval of the same
        // genome must be answered entirely from the cache.
        let model = zoo::resnet50();
        let ev = Evaluator::new(&model, TechModel::default());
        let g = Genome::lego_256_baseline();
        ev.eval(&g);
        let misses_after_first = ev.cache().misses();
        ev.eval(&g);
        assert_eq!(ev.cache().misses(), misses_after_first);
        assert!(ev.cache().hits() > 0);
    }
}
