//! Tiny deterministic RNG for seeded search strategies.

/// splitmix64: one u64 of state, full-period, reproducible across
/// platforms. Search strategies take explicit seeds so that every
/// exploration is replayable; this generator is that contract's whole
/// implementation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.below(options.len())]
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..700 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
